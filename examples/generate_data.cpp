// Regenerates the checked-in CSVs under data/ (all seeded, so the
// outputs are reproducible):
//   data/djia.csv          synthetic 25-year index closes
//   data/quotes.csv        a 5-stock portfolio for CLUSTER BY demos
//   data/double_bottoms.csv  series with 12 planted double bottoms
//
//   ./build/examples/generate_data [output_dir]

#include <cstdio>
#include <string>

#include "storage/csv.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace sqlts;
  const std::string dir = argc > 1 ? argv[1] : "data";
  Date start = *Date::Parse("1974-01-02");

  auto write = [&](const std::string& name, const Table& t) {
    const std::string path = dir + "/" + name;
    Status st = WriteCsvFile(t, path);
    SQLTS_CHECK(st.ok()) << st;
    std::printf("wrote %s (%lld rows)\n", path.c_str(),
                static_cast<long long>(t.num_rows()));
  };

  write("djia.csv",
        PricesToQuoteTable("DJIA", start, SynthesizeDjia(6300)));
  write("double_bottoms.csv",
        PricesToQuoteTable("DJIA", start,
                           SeriesWithPlantedDoubleBottoms(12)));

  Table quotes(QuoteSchema());
  uint64_t seed = 42;
  for (const char* name : {"IBM", "INTC", "MSFT", "GE", "XOM"}) {
    RandomWalkOptions opt;
    opt.n = 2500;
    opt.daily_vol = 0.015;
    opt.seed = seed++;
    opt.start_price = 40.0 + 20.0 * static_cast<double>(seed % 5);
    SQLTS_CHECK_OK(AppendInstrument(&quotes, name,
                                    *Date::Parse("1999-01-04"),
                                    GeometricRandomWalk(opt)));
  }
  write("quotes.csv", quotes);
  return 0;
}
