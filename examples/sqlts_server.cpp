// sqlts_server: serve SQL-TS datasets over the length-prefixed JSON
// protocol (docs/SERVER.md).
//
//   sqlts_server --dataset NAME=PATH@SCHEMA [--dataset ...] [flags]
//
//   --dataset NAME=PATH@SCHEMA  register a dataset; SCHEMA is the CLI
//                               schema syntax, e.g.
//                               quotes=data/quotes.csv@name:STRING,date:DATE,price:DOUBLE+
//                               PATH may also be a `.sqlc` columnar
//                               container (auto-detected by magic
//                               bytes); its embedded schema is used, so
//                               pass "-" for SCHEMA
//   --port N           TCP port on 127.0.0.1 (default 0 = ephemeral;
//                      the bound port is printed on startup)
//   --max-sessions N   concurrent session cap (default 32)
//   --backlog N        FIFO admission queue bound (default 64)
//   --max-queries N    global in-flight query cap (default 1024)
//   --num-threads N    worker shards per executor (default 1)
//   --stream-delay-us N  pacing between stream pushes (default 0)
//   --help             print this usage and exit
//
// The server runs until SIGINT/SIGTERM.  Try it with sqlts_client.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "server/server.h"
#include "storage/csv.h"
#include "types/schema.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dataset NAME=CSV@SCHEMA [--dataset ...]\n"
               "  [--port N] [--max-sessions N] [--backlog N]\n"
               "  [--max-queries N] [--num-threads N] [--stream-delay-us N]\n"
               "SCHEMA is col:TYPE[,col:TYPE...] with TYPE in\n"
               "INT64/DOUBLE/STRING/BOOL/DATE, '?' nullable, '+' positive.\n",
               argv0);
}

sqlts::StatusOr<sqlts::Schema> ParseSchemaText(const std::string& text) {
  sqlts::Schema schema;
  for (const std::string& part : sqlts::SplitString(text, ',')) {
    auto bits = sqlts::SplitString(part, ':');
    if (bits.size() != 2) {
      return sqlts::Status::InvalidArgument("bad schema entry '" + part + "'");
    }
    std::string type_text(sqlts::StripWhitespace(bits[1]));
    bool nullable = false, positive = false;
    while (!type_text.empty()) {
      if (type_text.back() == '?') nullable = true;
      else if (type_text.back() == '+') positive = true;
      else break;
      type_text.pop_back();
    }
    SQLTS_ASSIGN_OR_RETURN(sqlts::TypeKind kind,
                           sqlts::TypeKindFromString(type_text));
    SQLTS_RETURN_IF_ERROR(schema.AddColumn(
        std::string(sqlts::StripWhitespace(bits[0])), kind, nullable,
        positive));
  }
  return schema;
}

}  // namespace

int main(int argc, char** argv) {
  sqlts::Server::Options options;
  struct DatasetSpec {
    std::string name, csv, schema;
  };
  std::vector<DatasetSpec> specs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg == "--dataset") {
      const char* value = next();
      if (value == nullptr) break;
      const std::string spec = value;
      const size_t eq = spec.find('=');
      const size_t at = spec.find('@');
      if (eq == std::string::npos || at == std::string::npos || at < eq) {
        std::fprintf(stderr, "bad --dataset '%s' (want NAME=CSV@SCHEMA)\n",
                     spec.c_str());
        return 2;
      }
      specs.push_back({spec.substr(0, eq), spec.substr(eq + 1, at - eq - 1),
                       spec.substr(at + 1)});
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--max-sessions") {
      options.max_sessions = std::atoi(next());
    } else if (arg == "--backlog") {
      options.admission_backlog = std::atoi(next());
    } else if (arg == "--max-queries") {
      options.max_queries_in_flight = std::atoi(next());
    } else if (arg == "--num-threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--stream-delay-us") {
      options.stream_delay_us = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (specs.empty()) {
    std::fprintf(stderr, "no --dataset given\n");
    Usage(argv[0]);
    return 2;
  }

  sqlts::Server server(options);
  for (const DatasetSpec& spec : specs) {
    // "-" (or empty) means no schema text: valid for `.sqlc` containers,
    // which embed theirs.
    sqlts::Schema schema;
    bool have_schema = false;
    if (!spec.schema.empty() && spec.schema != "-") {
      auto parsed = ParseSchemaText(spec.schema);
      if (!parsed.ok()) {
        std::fprintf(stderr, "dataset %s: %s\n", spec.name.c_str(),
                     parsed.status().ToString().c_str());
        return 2;
      }
      schema = std::move(*parsed);
      have_schema = true;
    }
    auto st = server.AddDatasetFile(spec.name, spec.csv,
                                    have_schema ? &schema : nullptr);
    if (!st.ok()) {
      std::fprintf(stderr, "dataset %s: %s\n", spec.name.c_str(),
                   st.ToString().c_str());
      return 2;
    }
    std::printf("dataset %s: loaded from %s\n", spec.name.c_str(),
                spec.csv.c_str());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  auto st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("sqlts_server listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  server.Stop();
  return 0;
}
