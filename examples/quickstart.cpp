// Quickstart: build a quote table, run the paper's Example 1 query with
// both the naive and the OPS matcher, and compare the work done.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "engine/executor.h"
#include "workload/generators.h"

int main() {
  using namespace sqlts;

  // 1. A small market: three stocks, 500 trading days each.
  Table quotes(QuoteSchema());
  Date d0 = Date::Parse("1999-01-04").value();
  uint64_t seed = 1;
  for (const char* name : {"INTC", "IBM", "MSFT"}) {
    RandomWalkOptions opt;
    opt.n = 500;
    opt.daily_vol = 0.06;  // volatile enough for ±15% moves to exist
    opt.seed = seed++;
    SQLTS_CHECK_OK(
        AppendInstrument(&quotes, name, d0, GeometricRandomWalk(opt)));
  }

  // 2. The paper's Example 1: up ≥15% one day, down ≥20% the next.
  const std::string query = R"sql(
    SELECT X.name, Y.date AS spike_date, Y.price
    FROM quote CLUSTER BY name SEQUENCE BY date
    AS (X, Y, Z)
    WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
  )sql";

  // 3. Run with OPS (default) and with the naive baseline.
  auto ops = QueryExecutor::Execute(quotes, query);
  SQLTS_CHECK_OK(ops.status());
  ExecOptions naive_opt;
  naive_opt.algorithm = SearchAlgorithm::kNaive;
  auto naive = QueryExecutor::Execute(quotes, query, naive_opt);
  SQLTS_CHECK_OK(naive.status());

  std::cout << "Compiled pattern:\n" << ops->plan.ToString() << "\n";
  std::cout << "Matches:\n" << ops->output.ToString() << "\n";
  std::cout << "predicate evaluations: naive = " << naive->stats.evaluations
            << ", OPS = " << ops->stats.evaluations << " (speedup "
            << static_cast<double>(naive->stats.evaluations) /
                   static_cast<double>(ops->stats.evaluations)
            << "x)\n";
  return 0;
}
