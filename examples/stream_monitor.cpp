// Live-monitoring example: SQL-TS as a streaming alert engine.  A
// simulated multi-stock tick feed is pushed tuple-by-tuple into a
// StreamingQueryExecutor; pattern completions print alerts the moment
// their last tuple arrives (the paper's stream deployment, Sec 6).

#include <cstdio>

#include "engine/stream_executor.h"
#include "workload/generators.h"

int main() {
  using namespace sqlts;

  // Alert: a >3% one-day drop followed by one or more consecutive >1%
  // recovery days that do not regain the pre-drop price.
  const std::string alert_query = R"sql(
    SELECT X.name, X.date AS drop_day, X.price AS drop_price,
           COUNT(R) AS recovery_days, LAST(R).price
    FROM quote CLUSTER BY name SEQUENCE BY date
    AS (X, *R, S)
    WHERE X.price < 0.97 * X.previous.price
      AND R.price > 1.01 * R.previous.price
      AND S.price <= 1.01 * S.previous.price
      AND S.previous.price < X.previous.price
  )sql";

  int64_t alerts = 0;
  auto exec = StreamingQueryExecutor::Create(
      alert_query, QuoteSchema(), [&](const Row& r) {
        ++alerts;
        std::printf("ALERT %-6s drop on %s at %.2f, %lld recovery days, "
                    "now %.2f\n",
                    r[0].string_value().c_str(),
                    r[1].date_value().ToString().c_str(),
                    r[2].double_value(),
                    static_cast<long long>(r[3].int64_value()),
                    r[4].double_value());
      });
  SQLTS_CHECK_OK(exec.status());

  // Simulated feed: four stocks ticking in round-robin.
  const char* names[4] = {"IBM", "INTC", "MSFT", "AAPL"};
  std::vector<std::vector<double>> series;
  for (int s = 0; s < 4; ++s) {
    RandomWalkOptions opt;
    opt.n = 5000;
    opt.daily_vol = 0.022;
    opt.seed = 1000 + s;
    series.push_back(GeometricRandomWalk(opt));
  }
  Date day = *Date::Parse("1999-01-04");
  int64_t pushed = 0;
  for (int i = 0; i < 5000; ++i) {
    for (int s = 0; s < 4; ++s) {
      SQLTS_CHECK_OK((*exec)->Push({Value::String(names[s]),
                                    Value::FromDate(day),
                                    Value::Double(series[s][i])}));
      ++pushed;
    }
    day = day.AddDays(1);
  }
  (*exec)->Finish();

  SearchStats s = (*exec)->stats();
  std::printf("\nprocessed %lld ticks across %d instruments; %lld alerts; "
              "%lld predicate tests (%.2f per tick)\n",
              static_cast<long long>(pushed), (*exec)->num_clusters(),
              static_cast<long long>(alerts),
              static_cast<long long>(s.evaluations),
              static_cast<double>(s.evaluations) /
                  static_cast<double>(pushed));
  return 0;
}
