// sqlts_cli: run ad-hoc SQL-TS queries against a CSV file.
//
//   sqlts_cli <csv> <schema> <query> [--naive] [--explain]
//
//   <schema> is "col:TYPE,col:TYPE,..." with TYPE in
//   {INT64,DOUBLE,STRING,DATE,BOOL}.
//
// Example:
//   ./build/examples/sqlts_cli data/djia.csv
//     "name:STRING,date:DATE,price:DOUBLE"
//     "SELECT X.date, X.price FROM djia SEQUENCE BY date AS (X, Y)
//      WHERE Y.price < 0.95 * X.price"
// (all on one shell line)

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "engine/executor.h"
#include "engine/explain.h"
#include "storage/csv.h"

namespace {

int Fail(const sqlts::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqlts;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <csv> <schema> <query> [--naive] [--explain]\n",
                 argv[0]);
    return 2;
  }
  const std::string csv_path = argv[1];
  const std::string schema_text = argv[2];
  const std::string query = argv[3];
  bool naive = false, explain = false;
  for (int i = 4; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--naive") naive = true;
    else if (a == "--explain") explain = true;
  }

  Schema schema;
  for (const std::string& part : SplitString(schema_text, ',')) {
    auto bits = SplitString(part, ':');
    if (bits.size() != 2) {
      std::fprintf(stderr, "bad schema entry '%s'\n", part.c_str());
      return 2;
    }
    // A trailing '?' marks the column nullable ("vol:INT64?"), which
    // makes the optimizer drop θ/φ deductions that are unsound when the
    // column can be NULL.  A trailing '+' declares it strictly positive
    // ("price:DOUBLE+" or "price:DOUBLE+?"), enabling the log-domain
    // ratio reasoning for patterns that only touch such columns.
    std::string type_text(StripWhitespace(bits[1]));
    bool nullable = false, positive = false;
    while (!type_text.empty()) {
      if (type_text.back() == '?') nullable = true;
      else if (type_text.back() == '+') positive = true;
      else break;
      type_text.pop_back();
    }
    auto kind = TypeKindFromString(type_text);
    if (!kind.ok()) return Fail(kind.status());
    Status st =
        schema.AddColumn(StripWhitespace(bits[0]), *kind, nullable, positive);
    if (!st.ok()) return Fail(st);
  }

  auto table = ReadCsvFile(csv_path, schema);
  if (!table.ok()) return Fail(table.status());
  std::fprintf(stderr, "loaded %lld rows (%s)\n",
               static_cast<long long>(table->num_rows()),
               schema.ToString().c_str());

  ExecOptions opt;
  opt.algorithm = naive ? SearchAlgorithm::kNaive : SearchAlgorithm::kOps;
  auto result = QueryExecutor::Execute(*table, query, opt);
  if (!result.ok()) return Fail(result.status());

  if (explain) {
    auto report = ExplainQueryText(query, schema);
    std::printf("%s", report.ok() ? report->c_str()
                                  : report.status().ToString().c_str());
  }
  std::printf("%s", result->output.ToString(1000).c_str());
  std::fprintf(stderr,
               "%lld matches over %d cluster(s); %lld predicate tests "
               "(%s)\n",
               static_cast<long long>(result->stats.matches),
               result->num_clusters,
               static_cast<long long>(result->stats.evaluations),
               naive ? "naive" : "OPS");
  return 0;
}
