// sqlts_cli: run ad-hoc SQL-TS queries against a CSV or columnar file.
//
//   sqlts_cli <data> <schema> <query> [flags]
//   sqlts_cli --convert <in.csv> <out.sqlc> --schema <schema>
//             [--cluster-by a,b] [--sequence-by c] [--no-bloom]
//             [--skip-bad-input]
//
//   <schema> is "col:TYPE,col:TYPE,..." with TYPE in
//   {INT64,DOUBLE,STRING,DATE,BOOL}.  Columnar files embed their
//   schema; pass "-" to use it as-is.
//
// Flags:
//   --format=csv|columnar
//                       input format; default auto-detects by the
//                       columnar magic bytes
//   --no-skip           columnar: disable zone-map block skipping
//   --no-planner        columnar: disable the selectivity probe planner
//                       (conjunct reorder + anchored start prefilter)
//   --queryset FILE     run every query in FILE (';'-separated, or one
//                       per line when the file has no ';') over ONE
//                       shared scan with cross-query predicate
//                       deduplication; prints each query's results and
//                       the MultiQueryStats summary.  Composes with
//                       --stream, --threads, --explain, --check,
//                       --checkpoint/--restore
//   --naive             batch: use the naive backtracking matcher
//   --explain           print the optimizer report before results
//   --check             lint only: run the static analyzer and exit
//                       without touching the CSV; exit 1 when the query
//                       is provably empty (E-level diagnostics).  With
//                       --queryset, also runs the cross-query lint:
//                       W007 (duplicate member) and W008 (member
//                       subsumed by a sibling)
//   --lint=json         like --check, but print machine-readable JSON
//   --Werror            --check/--lint: warnings also fail (exit 1)
//   --threads N         shard execution across N worker threads
//   --stream            push rows through the streaming executor
//                       instead of the batch engine
//   --max-buffered N    streaming: budget of concurrently buffered
//                       tuples (exceeding it fails the query with
//                       RESOURCE_EXHAUSTED instead of growing)
//   --skip-bad-input    drop + count malformed CSV records and stream
//                       rows instead of failing fast
//   --checkpoint FILE   streaming: write a checkpoint to FILE...
//   --checkpoint-at N   ...after consuming N rows, then stop (simulates
//                       a crash mid-stream)
//   --restore FILE      streaming: restore from FILE and continue from
//                       the row it was consumed at
//
// Example (crash/resume):
//   sqlts_cli data.csv "$S" "$Q" --stream --checkpoint ckpt --checkpoint-at 500
//   sqlts_cli data.csv "$S" "$Q" --stream --restore ckpt
//
// Example:
//   ./build/examples/sqlts_cli data/djia.csv
//     "name:STRING,date:DATE,price:DOUBLE"
//     "SELECT X.date, X.price FROM djia SEQUENCE BY date AS (X, Y)
//      WHERE Y.price < 0.95 * X.price"
// (all on one shell line)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <vector>

#include "analysis/linter.h"
#include "colstore/columnar_executor.h"
#include "colstore/reader.h"
#include "colstore/writer.h"
#include "common/string_util.h"
#include "engine/executor.h"
#include "engine/explain.h"
#include "engine/stream_executor.h"
#include "multiquery/multi_executor.h"
#include "multiquery/multi_stream.h"
#include "multiquery/queryset_lint.h"
#include "storage/csv.h"

namespace {

int Fail(const sqlts::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

/// Splits a queryset file into individual queries: on ';' when present,
/// else one query per (non-empty) line.
std::vector<std::string> SplitQuerySet(const std::string& text) {
  std::vector<std::string> out;
  std::vector<std::string> parts =
      text.find(';') != std::string::npos ? sqlts::SplitString(text, ';')
                                          : sqlts::SplitString(text, '\n');
  for (const std::string& part : parts) {
    std::string q(sqlts::StripWhitespace(part));
    if (!q.empty()) out.push_back(std::move(q));
  }
  return out;
}

/// Parses "col:TYPE,col:TYPE,..." into `schema`; prints the problem and
/// returns false on bad input.  A trailing '?' marks the column
/// nullable ("vol:INT64?"), which makes the optimizer drop θ/φ
/// deductions that are unsound when the column can be NULL.  A trailing
/// '+' declares it strictly positive ("price:DOUBLE+" or
/// "price:DOUBLE+?"), enabling the log-domain ratio reasoning for
/// patterns that only touch such columns.
bool ParseSchemaText(const std::string& schema_text, sqlts::Schema* schema) {
  using namespace sqlts;
  for (const std::string& part : SplitString(schema_text, ',')) {
    auto bits = SplitString(part, ':');
    if (bits.size() != 2) {
      std::fprintf(stderr, "bad schema entry '%s'\n", part.c_str());
      return false;
    }
    std::string type_text(StripWhitespace(bits[1]));
    bool nullable = false, positive = false;
    while (!type_text.empty()) {
      if (type_text.back() == '?') nullable = true;
      else if (type_text.back() == '+') positive = true;
      else break;
      type_text.pop_back();
    }
    auto kind = TypeKindFromString(type_text);
    if (!kind.ok()) {
      std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
      return false;
    }
    Status st = schema->AddColumn(StripWhitespace(bits[0]), *kind, nullable,
                                  positive);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return false;
    }
  }
  return true;
}

/// Comma-separated column list -> trimmed names ("a, b" -> {"a","b"}).
std::vector<std::string> SplitColumnList(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& part : sqlts::SplitString(text, ',')) {
    std::string name(sqlts::StripWhitespace(part));
    if (!name.empty()) out.push_back(std::move(name));
  }
  return out;
}

/// `sqlts_cli --convert in.csv out.sqlc --schema S [...]`: CSV -> the
/// columnar container, optionally clustered for the skipping fast path.
int RunConvert(int argc, char** argv) {
  using namespace sqlts;
  std::string in_path, out_path, schema_text, cluster_by, sequence_by;
  bool bloom = true, skip_bad = false;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--schema") schema_text = next();
    else if (a == "--cluster-by") cluster_by = next();
    else if (a == "--sequence-by") sequence_by = next();
    else if (a == "--no-bloom") bloom = false;
    else if (a == "--skip-bad-input") skip_bad = true;
    else if (a[0] != '-') positional.push_back(a);
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (positional.size() != 2 || schema_text.empty()) {
    std::fprintf(stderr,
                 "usage: %s --convert <in.csv> <out.sqlc> --schema S "
                 "[--cluster-by a,b] [--sequence-by c] [--no-bloom] "
                 "[--skip-bad-input]\n",
                 argv[0]);
    return 2;
  }
  in_path = positional[0];
  out_path = positional[1];

  Schema schema;
  if (!ParseSchemaText(schema_text, &schema)) return 2;
  CsvReadOptions csv_options;
  if (skip_bad) csv_options.bad_input = BadInputPolicy::kSkipAndCount;
  CsvReadStats csv_stats;
  auto table = ReadCsvFile(in_path, schema, csv_options, &csv_stats);
  if (!table.ok()) return Fail(table.status());

  ColumnarWriterOptions wopt;
  wopt.cluster_by = SplitColumnList(cluster_by);
  wopt.sequence_by = SplitColumnList(sequence_by);
  wopt.bloom = bloom;
  auto bytes = ColumnarWriter::WriteBytes(*table, wopt);
  if (!bytes.ok()) return Fail(bytes.status());
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write failed for '%s'\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "converted %lld row(s) -> '%s' (%zu bytes%s%s)",
               static_cast<long long>(table->num_rows()), out_path.c_str(),
               bytes->size(),
               wopt.cluster_by.empty() ? "" : ", clustered",
               bloom ? ", blooms" : "");
  if (csv_stats.rows_skipped > 0) {
    std::fprintf(stderr, ", skipped %lld malformed record(s)",
                 static_cast<long long>(csv_stats.rows_skipped));
  }
  std::fprintf(stderr, "\n");
  return 0;
}

void PrintRow(const sqlts::Row& row, const char* prefix) {
  std::string line;
  for (const sqlts::Value& v : row) {
    if (!line.empty()) line += " | ";
    line += v.ToString();
  }
  std::printf("%s%s\n", prefix, line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqlts;
  if (argc >= 2 && std::string(argv[1]) == "--convert") {
    return RunConvert(argc, argv);
  }
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <csv> <schema> <query> [--queryset FILE] "
                 "[--naive] [--explain] "
                 "[--check] [--lint=json] [--Werror] "
                 "[--threads N] [--stream] [--max-buffered N] "
                 "[--skip-bad-input] [--checkpoint FILE] "
                 "[--checkpoint-at N] [--restore FILE]\n",
                 argv[0]);
    return 2;
  }
  const std::string csv_path = argv[1];
  const std::string schema_text = argv[2];
  // The query is positional, but optional when --queryset supplies the
  // queries (the third argument is then already a flag).
  std::string query;
  int flag_start = 3;
  if (argv[3][0] != '-') {
    query = argv[3];
    flag_start = 4;
  }
  bool naive = false, explain = false, stream = false, skip_bad = false;
  bool check = false, lint_json = false, werror = false;
  bool no_skip = false, no_planner = false;
  int threads = 1;
  int64_t max_buffered = 0, checkpoint_at = -1;
  std::string checkpoint_path, restore_path, queryset_path;
  std::string format = "auto";
  for (int i = flag_start; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--naive") naive = true;
    else if (a == "--explain") explain = true;
    else if (a == "--check") check = true;
    else if (a == "--lint=json") { check = true; lint_json = true; }
    else if (a == "--Werror") werror = true;
    else if (a == "--stream") stream = true;
    else if (a == "--skip-bad-input") skip_bad = true;
    else if (a == "--no-skip") no_skip = true;
    else if (a == "--no-planner") no_planner = true;
    else if (a == "--threads") threads = std::atoi(next());
    else if (a == "--max-buffered") max_buffered = std::atoll(next());
    else if (a == "--checkpoint") checkpoint_path = next();
    else if (a == "--checkpoint-at") checkpoint_at = std::atoll(next());
    else if (a == "--restore") restore_path = next();
    else if (a == "--queryset") queryset_path = next();
    else if (a == "--format") format = next();
    else if (a.rfind("--format=", 0) == 0) format = a.substr(9);
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (format != "auto" && format != "csv" && format != "columnar") {
    std::fprintf(stderr, "--format must be csv or columnar\n");
    return 2;
  }
  // Format auto-detection: the columnar container announces itself with
  // magic bytes, so "--format=auto" (the default) just sniffs them.
  const bool columnar =
      format == "columnar" ||
      (format == "auto" && ColumnarReader::SniffFile(csv_path));

  if (query.empty() && queryset_path.empty()) {
    std::fprintf(stderr, "need a query or --queryset FILE\n");
    return 2;
  }

  Schema schema;
  std::unique_ptr<ColumnarReader> reader;
  if (columnar) {
    // Columnar containers embed their schema (including nullable /
    // positive markers); the positional schema argument is "-" or a
    // consistency check.
    auto r = ColumnarReader::Open(csv_path);
    if (!r.ok()) return Fail(r.status());
    reader = std::move(*r);
    schema = reader->schema();
    if (schema_text != "-" && !schema_text.empty()) {
      Schema given;
      if (!ParseSchemaText(schema_text, &given)) return 2;
      if (given.ToString() != schema.ToString()) {
        std::fprintf(stderr,
                     "schema argument disagrees with the schema embedded "
                     "in '%s' (%s); pass '-' to use the embedded one\n",
                     csv_path.c_str(), schema.ToString().c_str());
        return 2;
      }
    }
  } else if (!ParseSchemaText(schema_text, &schema)) {
    return 2;
  }

  // Queryset mode: run every query of the file over one shared scan.
  if (!queryset_path.empty()) {
    if (!query.empty()) {
      std::fprintf(stderr, "--queryset replaces the positional query\n");
      return 2;
    }
    std::ifstream qin(queryset_path);
    if (!qin) {
      std::fprintf(stderr, "cannot read queryset '%s'\n",
                   queryset_path.c_str());
      return 1;
    }
    std::ostringstream qbuf;
    qbuf << qin.rdbuf();
    std::vector<std::string> queries = SplitQuerySet(qbuf.str());
    if (queries.empty()) {
      std::fprintf(stderr, "queryset '%s' contains no queries\n",
                   queryset_path.c_str());
      return 2;
    }

    // Lint-only: per-query diagnostics, one report per member.
    if (check) {
      bool any_err = false, any_warn = false;
      if (lint_json) std::printf("[");
      for (size_t k = 0; k < queries.size(); ++k) {
        auto lint = LintQueryText(queries[k], schema);
        if (!lint.ok()) return Fail(lint.status());
        any_err = any_err || lint->has_errors();
        any_warn = any_warn || lint->has_warnings();
        if (lint_json) {
          std::printf("%s{\"query\": %zu, \"diagnostics\": %s}",
                      k > 0 ? ", " : "", k + 1,
                      DiagnosticsToJson(lint->diagnostics, queries[k]).c_str());
        } else {
          std::fprintf(stderr, "-- query #%zu --\n", k + 1);
          if (lint->diagnostics.empty()) {
            std::fprintf(stderr, "no diagnostics\n");
          } else {
            std::fprintf(stderr, "%s",
                         RenderDiagnostics(lint->diagnostics,
                                           queries[k]).c_str());
          }
        }
      }
      // Cross-query findings (W007/W008), from the same shared
      // predicate catalog verdicts the multi-query executor trusts.
      auto set_lint = LintQuerySet(schema, queries);
      if (!set_lint.ok()) return Fail(set_lint.status());
      any_warn = any_warn || set_lint->has_warnings();
      if (lint_json) {
        std::printf(", {\"set\": %s}]\n",
                    QuerySetLintToJson(*set_lint).c_str());
      } else {
        std::fprintf(stderr, "-- query set --\n%s",
                     RenderQuerySetLint(*set_lint).c_str());
      }
      return any_err || (werror && any_warn) ? 1 : 0;
    }

    ExecOptions opt;
    opt.algorithm = naive ? SearchAlgorithm::kNaive : SearchAlgorithm::kOps;
    opt.num_threads = threads;
    opt.governance.max_buffered_tuples = max_buffered;
    if (skip_bad) opt.governance.bad_input = BadInputPolicy::kSkipAndCount;

    if (explain) {
      auto report = ExplainQuerySet(schema, queries, opt);
      if (!report.ok()) return Fail(report.status());
      std::printf("%s", report->c_str());
    }

    CsvReadOptions csv_options;
    if (skip_bad) csv_options.bad_input = BadInputPolicy::kSkipAndCount;
    CsvReadStats csv_stats;
    // The multi-query executors consume an in-memory table either way;
    // columnar inputs take the full-decode path here.
    auto table = columnar
                     ? reader->ReadTable()
                     : ReadCsvFile(csv_path, schema, csv_options, &csv_stats);
    if (!table.ok()) return Fail(table.status());
    std::fprintf(stderr, "loaded %lld rows; running %zu queries\n",
                 static_cast<long long>(table->num_rows()), queries.size());

    if (stream) {
      auto exec = MultiStreamExecutor::Create(schema, opt);
      if (!exec.ok()) return Fail(exec.status());
      auto callback_for = [&](size_t k) {
        std::string prefix = "[q" + std::to_string(k + 1) + "] ";
        return [prefix](const Row& row) { PrintRow(row, prefix.c_str()); };
      };

      int64_t start_row = 0;
      if (!restore_path.empty()) {
        std::ifstream in(restore_path, std::ios::binary);
        if (!in) {
          std::fprintf(stderr, "cannot read checkpoint '%s'\n",
                       restore_path.c_str());
          return 1;
        }
        std::ostringstream bytes;
        bytes << in.rdbuf();
        Status st = (*exec)->Restore(
            bytes.str(), [&](int index, const std::string&) {
              return callback_for(static_cast<size_t>(index));
            });
        if (!st.ok()) return Fail(st);
        start_row = (*exec)->rows_consumed();
        std::fprintf(stderr, "restored %d queries from '%s': resuming at "
                             "row %lld\n",
                     (*exec)->num_queries(), restore_path.c_str(),
                     static_cast<long long>(start_row));
      } else {
        for (size_t k = 0; k < queries.size(); ++k) {
          auto id = (*exec)->AddQuery(queries[k], callback_for(k));
          if (!id.ok()) return Fail(id.status());
        }
      }

      for (int64_t r = start_row; r < table->num_rows(); ++r) {
        if (checkpoint_at >= 0 &&
            (*exec)->rows_consumed() >= checkpoint_at) {
          break;
        }
        Status st = (*exec)->Push(table->GetRow(r));
        if (!st.ok()) return Fail(st);
      }

      if (checkpoint_at >= 0 &&
          (*exec)->rows_consumed() < table->num_rows()) {
        if (checkpoint_path.empty()) {
          std::fprintf(stderr, "--checkpoint-at needs --checkpoint FILE\n");
          return 2;
        }
        std::string bytes;
        Status st = (*exec)->Checkpoint(&bytes);
        if (!st.ok()) return Fail(st);
        std::ofstream out(checkpoint_path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
          std::fprintf(stderr, "cannot write checkpoint '%s'\n",
                       checkpoint_path.c_str());
          return 1;
        }
        std::fprintf(stderr,
                     "checkpointed %zu bytes to '%s' at row %lld; "
                     "resume with --restore\n",
                     bytes.size(), checkpoint_path.c_str(),
                     static_cast<long long>((*exec)->rows_consumed()));
        return 0;
      }

      Status st = (*exec)->Finish();
      if (!st.ok()) return Fail(st);
      for (size_t k = 0; k < queries.size(); ++k) {
        const StreamingQueryExecutor* q =
            (*exec)->query(static_cast<int>(k));
        if (q == nullptr) continue;
        std::fprintf(stderr, "query #%zu: %lld match(es)\n", k + 1,
                     static_cast<long long>(q->stats().matches));
      }
      std::fprintf(stderr, "%s", (*exec)->stats().ToString().c_str());
      return 0;
    }

    auto result = MultiQueryExecutor::Execute(*table, queries, opt);
    if (!result.ok()) return Fail(result.status());
    for (size_t k = 0; k < queries.size(); ++k) {
      const QueryResult& qr = result->per_query[k];
      std::printf("== query #%zu ==\n%s", k + 1,
                  qr.output.ToString(1000).c_str());
      std::fprintf(stderr,
                   "query #%zu: %lld match(es), %lld predicate tests\n",
                   k + 1, static_cast<long long>(qr.stats.matches),
                   static_cast<long long>(qr.stats.evaluations));
    }
    std::fprintf(stderr, "%s", result->stats.ToString().c_str());
    return 0;
  }

  // Lint-only mode: analyze the query and exit without reading the CSV.
  if (check) {
    auto lint = LintQueryText(query, schema);
    if (!lint.ok()) return Fail(lint.status());
    if (lint_json) {
      std::printf("%s\n", DiagnosticsToJson(lint->diagnostics, query).c_str());
    } else if (!lint->diagnostics.empty()) {
      std::fprintf(stderr, "%s",
                   RenderDiagnostics(lint->diagnostics, query).c_str());
    } else {
      std::fprintf(stderr, "no diagnostics\n");
    }
    return lint->has_errors() || (werror && lint->has_warnings()) ? 1 : 0;
  }

  ExecOptions opt;
  opt.algorithm = naive ? SearchAlgorithm::kNaive : SearchAlgorithm::kOps;
  opt.num_threads = threads;
  opt.governance.max_buffered_tuples = max_buffered;
  if (skip_bad) opt.governance.bad_input = BadInputPolicy::kSkipAndCount;
  // Refuse provably-empty queries up front, and surface warnings on
  // stderr before running (the search itself is unaffected by them).
  opt.compile.refuse_provably_empty = true;
  if (auto lint = LintQueryText(query, schema);
      lint.ok() && lint->has_warnings()) {
    std::fprintf(stderr, "%s",
                 RenderDiagnostics(lint->diagnostics, query).c_str());
  }

  // Columnar batch execution runs straight off the container: cluster
  // filters and zone maps skip refuted blocks before any I/O, and the
  // probe planner prefilters attempt starts.  --explain reports the
  // planner's estimates and the skipping configuration.
  if (columnar && !stream) {
    ColumnarExecOptions copt;
    copt.exec = opt;
    copt.skipping = !no_skip;
    copt.planner = !no_planner;
    std::string report;
    auto result = ColumnarExecutor::Execute(*reader, query, copt,
                                            explain ? &report : nullptr);
    if (explain && !report.empty()) std::printf("%s", report.c_str());
    if (!result.ok()) return Fail(result.status());
    std::printf("%s", result->output.ToString(1000).c_str());
    std::fprintf(stderr,
                 "%lld matches over %d cluster(s); %lld predicate tests; "
                 "%lld/%lld blocks skipped; %lld bytes read (%s)\n",
                 static_cast<long long>(result->stats.matches),
                 result->num_clusters,
                 static_cast<long long>(result->stats.evaluations),
                 static_cast<long long>(result->stats.blocks_skipped),
                 static_cast<long long>(result->stats.blocks_total),
                 static_cast<long long>(result->stats.bytes_read),
                 naive ? "naive" : "OPS");
    return 0;
  }

  CsvReadOptions csv_options;
  if (skip_bad) csv_options.bad_input = BadInputPolicy::kSkipAndCount;
  CsvReadStats csv_stats;
  auto table = columnar
                   ? reader->ReadTable()
                   : ReadCsvFile(csv_path, schema, csv_options, &csv_stats);
  if (!table.ok()) return Fail(table.status());
  std::fprintf(stderr, "loaded %lld rows (%s)",
               static_cast<long long>(table->num_rows()),
               schema.ToString().c_str());
  if (csv_stats.rows_skipped > 0) {
    std::fprintf(stderr, ", skipped %lld malformed record(s)",
                 static_cast<long long>(csv_stats.rows_skipped));
  }
  std::fprintf(stderr, "\n");

  if (explain) {
    auto report = ExplainQueryText(query, schema);
    std::printf("%s", report.ok() ? report->c_str()
                                  : report.status().ToString().c_str());
  }

  if (stream) {
    int64_t emitted = 0;
    auto exec = StreamingQueryExecutor::Create(
        query, schema,
        [&](const Row& row) {
          ++emitted;
          std::string line;
          for (const Value& v : row) {
            if (!line.empty()) line += " | ";
            line += v.ToString();
          }
          std::printf("%s\n", line.c_str());
        },
        opt);
    if (!exec.ok()) return Fail(exec.status());

    int64_t start_row = 0;
    if (!restore_path.empty()) {
      std::ifstream in(restore_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read checkpoint '%s'\n",
                     restore_path.c_str());
        return 1;
      }
      std::ostringstream bytes;
      bytes << in.rdbuf();
      Status st = (*exec)->Restore(bytes.str());
      if (!st.ok()) return Fail(st);
      start_row = (*exec)->rows_consumed();
      std::fprintf(stderr, "restored from '%s': resuming at row %lld\n",
                   restore_path.c_str(),
                   static_cast<long long>(start_row));
    }

    for (int64_t r = start_row; r < table->num_rows(); ++r) {
      if (checkpoint_at >= 0 && (*exec)->rows_consumed() >= checkpoint_at) {
        break;
      }
      Status st = (*exec)->Push(table->GetRow(r));
      if (!st.ok()) return Fail(st);
    }

    if (checkpoint_at >= 0 &&
        (*exec)->rows_consumed() < table->num_rows()) {
      // Stopped mid-stream: persist the checkpoint and exit without
      // Finish, as a crashed process would.
      if (checkpoint_path.empty()) {
        std::fprintf(stderr, "--checkpoint-at needs --checkpoint FILE\n");
        return 2;
      }
      std::string bytes;
      Status st = (*exec)->Checkpoint(&bytes);
      if (!st.ok()) return Fail(st);
      std::ofstream out(checkpoint_path,
                        std::ios::binary | std::ios::trunc);
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
      if (!out) {
        std::fprintf(stderr, "cannot write checkpoint '%s'\n",
                     checkpoint_path.c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "checkpointed %zu bytes to '%s' at row %lld; "
                   "resume with --restore\n",
                   bytes.size(), checkpoint_path.c_str(),
                   static_cast<long long>((*exec)->rows_consumed()));
      return 0;
    }

    Status st = (*exec)->Finish();
    if (!st.ok()) return Fail(st);
    if (!checkpoint_path.empty() && checkpoint_at < 0) {
      // Checkpoint after a complete run is legal but pointless; warn.
      std::fprintf(stderr, "--checkpoint without --checkpoint-at ignored "
                           "(stream already finished)\n");
    }
    std::fprintf(stderr,
                 "%lld match(es) over %d cluster(s); %lld predicate tests "
                 "(streaming, %d thread(s))",
                 static_cast<long long>((*exec)->stats().matches),
                 (*exec)->num_clusters(),
                 static_cast<long long>((*exec)->stats().evaluations),
                 threads);
    if ((*exec)->rows_skipped() > 0) {
      std::fprintf(stderr, "; skipped %lld bad row(s)",
                   static_cast<long long>((*exec)->rows_skipped()));
    }
    std::fprintf(stderr, "\n");
    (void)emitted;
    return 0;
  }

  auto result = QueryExecutor::Execute(*table, query, opt);
  if (!result.ok()) return Fail(result.status());

  std::printf("%s", result->output.ToString(1000).c_str());
  std::fprintf(stderr,
               "%lld matches over %d cluster(s); %lld predicate tests "
               "(%s)\n",
               static_cast<long long>(result->stats.matches),
               result->num_clusters,
               static_cast<long long>(result->stats.evaluations),
               naive ? "naive" : "OPS");
  return 0;
}
