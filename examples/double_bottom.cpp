// The paper's headline application (Sec 7): find relaxed double bottoms
// (Example 10) in 25 years of daily index closes, compare naive vs OPS
// work, and render the matches.
//
//   ./build/examples/double_bottom [path/to/quotes.csv]
//
// Without an argument a calibrated synthetic DJIA is generated.  A CSV
// must have columns name,date,price.

#include <cstdio>
#include <iostream>

#include "engine/executor.h"
#include "storage/csv.h"
#include "workload/generators.h"

namespace {

/// Tiny ASCII sparkline of a price series with match spans marked.
void RenderSeries(const sqlts::Table& t, const sqlts::QueryResult& r) {
  const int64_t n = t.num_rows();
  if (n == 0) return;
  const int width = 100;
  int price_col = *t.schema().FindColumn("price");
  double lo = 1e300, hi = -1e300;
  for (int64_t i = 0; i < n; ++i) {
    double p = t.at(i, price_col).AsDouble();
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const int rows = 12;
  std::vector<std::string> grid(rows, std::string(width, ' '));
  for (int x = 0; x < width; ++x) {
    int64_t i = x * (n - 1) / (width - 1);
    double p = t.at(i, price_col).AsDouble();
    int y = static_cast<int>((p - lo) / (hi - lo + 1e-12) * (rows - 1));
    grid[rows - 1 - y][x] = '*';
  }
  std::printf("\nprice chart (log of %lld days):\n",
              static_cast<long long>(n));
  for (const std::string& line : grid) std::printf("|%s|\n", line.c_str());
  std::printf("matches: %lld double bottoms found\n",
              static_cast<long long>(r.stats.matches));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqlts;

  Table quotes = [&] {
    if (argc > 1) {
      auto t = ReadCsvFile(argv[1], QuoteSchema());
      SQLTS_CHECK(t.ok()) << t.status();
      return std::move(*t);
    }
    std::printf("no CSV given; generating a synthetic 25-year DJIA\n");
    return PricesToQuoteTable("DJIA", *Date::Parse("1974-01-02"),
                              SynthesizeDjia());
  }();

  const std::string query = PaperExampleQuery(10);
  std::printf("query:\n%s\n", query.c_str());

  auto ops = QueryExecutor::Execute(quotes, query);
  SQLTS_CHECK_OK(ops.status());
  ExecOptions naive_opt;
  naive_opt.algorithm = SearchAlgorithm::kNaive;
  auto naive = QueryExecutor::Execute(quotes, query, naive_opt);
  SQLTS_CHECK_OK(naive.status());

  std::printf("\ncompiled shift/next tables:\n%s\n",
              ops->plan.ToString().c_str());
  std::printf("results:\n%s\n", ops->output.ToString(15).c_str());
  std::printf("predicate tests: naive=%lld ops=%lld speedup=%.1fx\n",
              static_cast<long long>(naive->stats.evaluations),
              static_cast<long long>(ops->stats.evaluations),
              static_cast<double>(naive->stats.evaluations) /
                  static_cast<double>(ops->stats.evaluations));
  RenderSeries(quotes, *ops);
  return 0;
}
