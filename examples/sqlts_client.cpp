// sqlts_client: talk to a running sqlts_server (docs/SERVER.md).
//
//   sqlts_client --port N [--host H] query <dataset> <sql> [--stream]
//                [--deadline-ms N] [--solo] [--retries N] [--backoff-ms N]
//   sqlts_client --port N metrics
//   sqlts_client --help
//
// `query` prints result rows as JSON lines and the stats line from the
// terminal reply; `--stream` subscribes instead (rows arrive as the
// server replays the dataset) and reports the join epoch.
//
// `--retries N` (default 0: off) reconnects with bounded exponential
// backoff + jitter on transient network failures — connection refused
// while the server restarts, ECONNRESET before any output — and
// reissues the request.  Once row output has started the request is
// never reissued (a blind reissue would duplicate rows; see
// docs/OPERATIONS.md for the failover runbook).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H] [--client NAME]\n"
               "  [--retries N] [--backoff-ms N] COMMAND\n"
               "  query <dataset> <sql> [--stream] [--deadline-ms N] "
               "[--solo]\n"
               "  metrics\n",
               argv0);
}

int Fail(const sqlts::Status& st) {
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string client_name = "sqlts_client";
  sqlts::RetryOptions retry;
  int port = 0;
  std::vector<std::string> rest;
  bool stream = false, solo = false;
  int64_t deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--client") {
      client_name = next();
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--solo") {
      solo = true;
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atoll(next());
    } else if (arg == "--retries") {
      retry.retries = std::atoi(next());
    } else if (arg == "--backoff-ms") {
      retry.backoff_ms = std::atoll(next());
    } else {
      rest.push_back(arg);
    }
  }
  if (port == 0 || rest.empty()) {
    Usage(argv[0]);
    return 2;
  }
  if (rest[0] == "query" && rest.size() != 3) {
    Usage(argv[0]);
    return 2;
  }
  if (rest[0] != "query" && rest[0] != "metrics") {
    Usage(argv[0]);
    return 2;
  }

  // One full session attempt: connect, handshake, issue, print replies.
  // `output_started` gates the reissue loop below — a request is only
  // retried while nothing of its result has been printed.
  bool output_started = false;
  auto run_session = [&]() -> sqlts::Status {
    auto client =
        sqlts::SqltsClient::ConnectWithRetry(host, static_cast<uint16_t>(port),
                                             retry);
    if (!client.ok()) return client.status();
    auto welcome = client->Hello(client_name);
    if (!welcome.ok()) return welcome.status();

    if (rest[0] == "metrics") {
      sqlts::Json req = sqlts::Json::Obj();
      req.Set("type", sqlts::Json::Str("METRICS"));
      SQLTS_RETURN_IF_ERROR(client->Send(req));
      auto reply = client->Read();
      if (!reply.ok()) return reply.status();
      output_started = true;
      std::printf("%s\n", reply->Dump().c_str());
      (void)client->Close();
      return sqlts::Status::OK();
    }
    const std::string& dataset = rest[1];
    const std::string& sql = rest[2];

    sqlts::Json req = sqlts::Json::Obj();
    req.Set("type", sqlts::Json::Str(stream ? "STREAM" : "QUERY"));
    req.Set("id", sqlts::Json::Int(1));
    req.Set("dataset", sqlts::Json::Str(dataset));
    req.Set("query", sqlts::Json::Str(sql));
    if (solo) req.Set("solo", sqlts::Json::Bool(true));
    if (deadline_ms > 0) req.Set("deadline_ms", sqlts::Json::Int(deadline_ms));
    SQLTS_RETURN_IF_ERROR(client->Send(req));

    while (true) {
      auto reply = client->Read();
      if (!reply.ok()) return reply.status();
      const std::string type = reply->GetString("type", "");
      if (type == "ROW") {
        output_started = true;
        std::printf("%s\n", reply->Find("row")->Dump().c_str());
      } else if (type == "STREAM_START") {
        std::printf("stream started (epoch %lld)\n",
                    static_cast<long long>(reply->GetInt("epoch", 0)));
      } else if (type == "RESULT") {
        output_started = true;
        const sqlts::Json* rows = reply->Find("rows");
        if (rows != nullptr) {
          for (const auto& row : rows->array()) {
            std::printf("%s\n", row.Dump().c_str());
          }
        }
        std::printf("%lld rows, stats %s\n",
                    static_cast<long long>(reply->GetInt("rows_returned", 0)),
                    reply->Find("stats")->Dump().c_str());
        break;
      } else if (type == "STREAM_END") {
        output_started = true;
        std::printf("stream ended, stats %s\n",
                    reply->Find("stats")->Dump().c_str());
        break;
      } else if (type == "ERROR") {
        return sqlts::StatusFromErrorMessage(*reply);
      } else if (type == "CANCELLED") {
        output_started = true;
        std::printf("cancelled\n");
        break;
      }
    }
    (void)client->Close();
    return sqlts::Status::OK();
  };

  // Reconnect-and-reissue: transient failures before any output are
  // retried with the same bounded backoff the connect path uses.
  uint64_t rng = retry.jitter_seed ^ 0x5e551095ULL;
  for (int attempt = 0;; ++attempt) {
    sqlts::Status st = run_session();
    if (st.ok()) return 0;
    if (output_started || attempt >= retry.retries ||
        !sqlts::IsTransientNetworkError(st)) {
      return Fail(st);
    }
    std::fprintf(stderr, "transient failure (%s), reconnecting...\n",
                 st.ToString().c_str());
    sqlts::SleepForBackoff(attempt, retry, &rng);
  }
}
