// SQL-TS as a text searcher: the degenerate case where every predicate
// is an equality with a constant reduces OPS to classic KMP (Sec 3).
// This example runs the same search three ways — character-level naive,
// character-level KMP, and a SQL-TS query over a one-character-per-row
// table — and shows that the OPS tables coincide with KMP's next.

#include <cstdio>
#include <string>

#include "engine/executor.h"
#include "engine/kmp_search.h"
#include "pattern/shift_next.h"

int main() {
  using namespace sqlts;

  const std::string pattern = "abcabcacab";
  std::string text;
  for (int i = 0; i < 40; ++i) text += "babcbabcabcaabcabcabcacabc";

  // 1. Character-level search.
  int64_t naive_cmps = 0, kmp_cmps = 0;
  auto naive_hits = NaiveTextSearch(text, pattern, &naive_cmps);
  auto kmp_hits = KmpTextSearch(text, pattern, &kmp_cmps);
  SQLTS_CHECK(naive_hits == kmp_hits);
  std::printf("text length %zu, %zu occurrences\n", text.size(),
              kmp_hits.size());
  std::printf("char comparisons: naive=%lld kmp=%lld\n",
              static_cast<long long>(naive_cmps),
              static_cast<long long>(kmp_cmps));

  std::vector<int> next = BuildKmpNext(pattern);
  std::printf("KMP next:   ");
  for (size_t j = 1; j < next.size(); ++j) std::printf(" %d", next[j]);
  std::printf("\n");

  // 2. The same search as a SQL-TS query: one row per character, the
  // pattern as equality predicates.
  Schema schema;
  SQLTS_CHECK_OK(schema.AddColumn("pos", TypeKind::kInt64));
  SQLTS_CHECK_OK(schema.AddColumn("ch", TypeKind::kString));
  Table chars(schema);
  for (size_t i = 0; i < text.size(); ++i) {
    SQLTS_CHECK_OK(chars.AppendRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::String(std::string(1, text[i]))}));
  }
  std::string q = "SELECT C0.pos FROM chars SEQUENCE BY pos AS (";
  for (size_t j = 0; j < pattern.size(); ++j) {
    if (j) q += ", ";
    q += "C" + std::to_string(j);
  }
  q += ") WHERE ";
  for (size_t j = 0; j < pattern.size(); ++j) {
    if (j) q += " AND ";
    q += "C" + std::to_string(j) + ".ch = '" + pattern[j] + "'";
  }
  auto result = QueryExecutor::Execute(chars, q);
  SQLTS_CHECK_OK(result.status());
  std::printf("\nSQL-TS found %lld matches (leftmost non-overlapping; the "
              "char-level search reports overlaps too)\n",
              static_cast<long long>(result->stats.matches));
  std::printf("OPS shift/next tables for the equality pattern:\n%s",
              result->plan.ToString().c_str());
  std::printf("predicate tests via OPS: %lld\n",
              static_cast<long long>(result->stats.evaluations));
  return 0;
}
