// Trend analysis across a portfolio: the paper's Example 2 (maximal
// falling periods) and Example 8 (rise-fall-rise waves) over many
// clustered instruments, exercising CLUSTER BY, star patterns, the
// FIRST/LAST accessors, and anchored cross-element conditions.

#include <cstdio>

#include "engine/executor.h"
#include "workload/generators.h"

int main() {
  using namespace sqlts;

  // A portfolio of ten instruments with distinct volatility characters.
  Table quotes(QuoteSchema());
  Date d0 = *Date::Parse("1999-01-04");
  for (int s = 0; s < 10; ++s) {
    RandomWalkOptions opt;
    opt.n = 2000;
    opt.daily_vol = 0.01 + 0.004 * s;
    opt.daily_drift = (s % 2 == 0) ? 0.0004 : -0.0004;
    opt.seed = 100 + s;
    SQLTS_CHECK_OK(AppendInstrument(&quotes, "STK" + std::to_string(s), d0,
                                    GeometricRandomWalk(opt)));
  }
  // Plus one instrument that melts down (a 60% slide in one run) so the
  // Example-2 screen has something to find.
  {
    std::vector<double> crash;
    double p = 80;
    for (int i = 0; i < 200; ++i) crash.push_back(p *= 1.001);
    for (int i = 0; i < 40; ++i) crash.push_back(p *= 0.975);
    for (int i = 0; i < 200; ++i) crash.push_back(p *= 1.002);
    SQLTS_CHECK_OK(AppendInstrument(&quotes, "ENRN", d0, crash));
  }
  std::printf("portfolio: %lld rows, 11 instruments\n",
              static_cast<long long>(quotes.num_rows()));

  // Example 2: maximal periods where the price fell by more than 50%.
  std::printf("\n--- Example 2: crashes losing half their value ---\n%s\n",
              PaperExampleQuery(2).c_str());
  auto crashes = QueryExecutor::Execute(quotes, PaperExampleQuery(2));
  SQLTS_CHECK_OK(crashes.status());
  std::printf("%s\n", crashes->output.ToString(10).c_str());

  // Example 8: rise-fall-rise waves, reported via FIRST()/LAST().
  std::printf("--- Example 8: rise-fall-rise waves ---\n%s\n",
              PaperExampleQuery(8).c_str());
  auto waves = QueryExecutor::Execute(quotes, PaperExampleQuery(8));
  SQLTS_CHECK_OK(waves.status());
  std::printf("found %lld waves; first few:\n%s\n",
              static_cast<long long>(waves->stats.matches),
              waves->output.ToString(8).c_str());

  // A custom screen: three consecutive >2% up days after a >5% drop,
  // with the recovery still below the pre-drop price.
  const std::string rebound = R"sql(
    SELECT X.name, X.date AS drop_date, LAST(R).date AS rebound_date,
           LAST(R).price
    FROM quote CLUSTER BY name SEQUENCE BY date
    AS (X, *R, S)
    WHERE X.price < 0.95 * X.previous.price
      AND R.price > 1.02 * R.previous.price
      AND S.price <= 1.02 * S.previous.price
      AND S.previous.price < X.previous.price
  )sql";
  std::printf("--- custom screen: V-shaped rebounds ---\n");
  auto rb = QueryExecutor::Execute(quotes, rebound);
  SQLTS_CHECK_OK(rb.status());
  std::printf("%s\n", rb->output.ToString(10).c_str());
  std::printf("predicate tests for the three screens: %lld / %lld / %lld\n",
              static_cast<long long>(crashes->stats.evaluations),
              static_cast<long long>(waves->stats.evaluations),
              static_cast<long long>(rb->stats.evaluations));
  return 0;
}
