#ifndef SQLTS_PATTERN_THETA_PHI_H_
#define SQLTS_PATTERN_THETA_PHI_H_

#include <vector>

#include "constraints/gsw.h"
#include "expr/normalize.h"
#include "pattern/logic_matrix.h"

namespace sqlts {

/// Knobs for the implication oracle (the ablation benchmarks flip
/// these).
struct OracleOptions {
  GswOptions gsw;
  bool use_gsw = true;        ///< GSW difference-constraint reasoning
  bool use_intervals = true;  ///< interval-set reasoning (extension [13])
};

/// Sound 3-valued reasoning over analyzed predicates, combining the GSW
/// procedure with the interval-set oracle.  All answers are
/// conservative: `true` is a theorem, `false` is "cannot prove".
class ImplicationOracle {
 public:
  explicit ImplicationOracle(OracleOptions options = OracleOptions{});

  /// p is unsatisfiable.
  bool Unsat(const PredicateAnalysis& p) const;
  /// p is a tautology.
  bool Valid(const PredicateAnalysis& p) const;
  /// p ∧ q is unsatisfiable (p ⇒ ¬q).
  bool Exclusive(const PredicateAnalysis& p,
                 const PredicateAnalysis& q) const;
  /// p ⇒ q.
  bool Implies(const PredicateAnalysis& p, const PredicateAnalysis& q) const;
  /// ¬p ⇒ q  (used for φ = 1).
  bool NegImplies(const PredicateAnalysis& p,
                  const PredicateAnalysis& q) const;
  /// ¬p ⇒ ¬q  (used for φ = 0).
  bool NegExcludes(const PredicateAnalysis& p,
                   const PredicateAnalysis& q) const;

  const GswSolver& solver() const { return solver_; }

 private:
  /// Enumerates the disjuncts of ¬p as singleton systems; returns false
  /// when ¬p cannot be enumerated (p incomplete).
  bool ForEachNegatedConjunct(
      const PredicateAnalysis& p,
      const std::function<bool(const ConstraintSystem&)>& fn) const;

  /// premise ⇒ q (base system and every OR conjunct of q).
  bool EntailsWhole(const ConstraintSystem& premise,
                    const PredicateAnalysis& q) const;
  /// premise ∧ q is unsatisfiable (with case splits on q's OR
  /// conjuncts).
  bool RefutesWhole(const ConstraintSystem& premise,
                    const PredicateAnalysis& q) const;

  OracleOptions options_;
  GswSolver solver_;
};

/// The paper's positive and negative precondition matrices (Sec 4.2):
///   θ_jk = 1 if p_j ⇒ p_k ∧ p_j ≢ F;  0 if p_j ⇒ ¬p_k;  U otherwise
///   φ_jk = 1 if ¬p_j ⇒ p_k;  0 if ¬p_j ⇒ ¬p_k ∧ p_j ≢ T;  U otherwise
/// Both are m×m lower-triangular (entries defined for j ≥ k).
struct ThetaPhi {
  LogicMatrix theta;
  LogicMatrix phi;
};

/// Computes θ and φ for the given per-element predicate analyses.
ThetaPhi BuildThetaPhi(const std::vector<PredicateAnalysis>& preds,
                       const ImplicationOracle& oracle);

}  // namespace sqlts

#endif  // SQLTS_PATTERN_THETA_PHI_H_
