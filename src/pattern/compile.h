#ifndef SQLTS_PATTERN_COMPILE_H_
#define SQLTS_PATTERN_COMPILE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "constraints/catalog.h"
#include "parser/analyzer.h"
#include "pattern/shift_next.h"
#include "pattern/star_graph.h"
#include "pattern/theta_phi.h"

namespace sqlts {

/// Compilation knobs; the defaults give the full OPS optimizer.  The
/// ablation benchmarks flip these.
struct CompileOptions {
  OracleOptions oracle;
  /// When false, `next` degrades to 0/1 (shift-only optimization) — the
  /// E8 ablation that quantifies how much the resume-point analysis
  /// contributes on top of the shift analysis.
  bool enable_next = true;
  /// When true, the executors run the static analyzer (analysis/linter.h)
  /// before searching and refuse queries it proves return zero rows
  /// (E-level diagnostics) with InvalidArgument instead of silently
  /// scanning for matches that cannot exist.
  bool refuse_provably_empty = false;
};

/// Everything the OPS matcher needs at run time, plus the intermediate
/// matrices for inspection, testing, and EXPLAIN output.
struct PatternPlan {
  int m = 0;                        ///< number of pattern elements
  std::vector<bool> star;           ///< 1-based
  std::vector<ExprPtr> predicates;  ///< 1-based; null = TRUE
  std::vector<PredicateAnalysis> analyses;  ///< 0-based (element i-1)
  ThetaPhi matrices;
  SearchTables tables;
  bool has_star = false;
  /// True when some predicate carries an anchored (non-relative) column
  /// reference, e.g. a later element naming FIRST-of-group X.price.
  /// Such a predicate's value depends on the attempt's group extents,
  /// not just on the tuple under test — so a restart *inside* a star
  /// group, or after running out of input, can succeed where the
  /// original attempt failed.  The matchers take conservative
  /// tuple-by-tuple restarts on those paths only when this is set; for
  /// purely relative (tuple-local) patterns the replayed trajectory is
  /// provably identical and the aggressive jumps stay sound.
  bool anchored_refs = false;

  /// Human-readable compilation report (matrices + shift/next arrays).
  std::string ToString() const;
};

/// Compiles the pattern part of an analyzed query: derives θ/φ from the
/// per-element predicates via GSW + intervals, then shift/next via the
/// S-matrix (star-free) or the implication graph (star).
StatusOr<PatternPlan> CompilePattern(const CompiledQuery& query,
                                     const CompileOptions& options = {});

/// Lower-level entry for tests and benchmarks: build the plan directly
/// from predicate analyses and star flags (0-based inputs).
PatternPlan CompileFromAnalyses(std::vector<PredicateAnalysis> preds,
                                const std::vector<bool>& star0,
                                const CompileOptions& options = {});

}  // namespace sqlts

#endif  // SQLTS_PATTERN_COMPILE_H_
