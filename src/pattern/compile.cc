#include "pattern/compile.h"

#include <sstream>

namespace sqlts {
namespace {

/// Applies the enable_next ablation: keep shift, degrade next to the
/// always-sound 0/1 form.
void DegradeNext(SearchTables* tables) {
  for (size_t j = 1; j < tables->next.size(); ++j) {
    tables->next[j] =
        tables->shift[j] == static_cast<int>(j) ? 0 : 1;
    tables->presatisfied[j] = false;
  }
}

PatternPlan Finish(std::vector<PredicateAnalysis> preds,
                   std::vector<bool> star1, std::vector<ExprPtr> predicates1,
                   const CompileOptions& options) {
  PatternPlan plan;
  plan.m = static_cast<int>(preds.size());
  plan.star = std::move(star1);
  plan.predicates = std::move(predicates1);
  plan.has_star = false;
  for (int j = 1; j <= plan.m; ++j) plan.has_star |= plan.star[j];

  ImplicationOracle oracle(options.oracle);
  plan.matrices = BuildThetaPhi(preds, oracle);
  plan.analyses = std::move(preds);

  if (plan.has_star) {
    plan.tables = BuildStarTables(plan.matrices, plan.star);
  } else {
    plan.tables = BuildStarFreeTables(plan.matrices);
  }
  if (!options.enable_next) DegradeNext(&plan.tables);
  return plan;
}

}  // namespace

StatusOr<PatternPlan> CompilePattern(const CompiledQuery& query,
                                     const CompileOptions& options) {
  const int m = query.pattern_length();
  if (m == 0) return Status::InvalidArgument("empty pattern");
  VariableCatalog catalog;
  std::vector<PredicateAnalysis> preds;
  std::vector<bool> star(m + 1, false);
  std::vector<ExprPtr> predicates(m + 1);
  // The GSW positive-domain mode (Sec 6: ratio atoms via the log
  // transform, plus x > 0 edges in the linear graph) assumes every
  // variable ranges over the strictly positive reals.  That holds only
  // when each column any predicate touches is declared POSITIVE, so the
  // gate is computed over all pattern predicates and applied to the
  // whole compile.  Conservative per-pattern granularity: one
  // non-positive column (grp = 0 is a satisfiable predicate!) disables
  // the mode for every element.
  bool all_positive = true;
  bool anchored = false;
  for (int i = 0; i < m; ++i) {
    const PatternElement& el = query.elements[i];
    star[i + 1] = el.star;
    predicates[i + 1] = el.predicate;
    if (el.predicate != nullptr) {
      VisitColumnRefs(el.predicate, [&](const ColumnRef& r) {
        if (r.column_index < 0 ||
            !query.input_schema.column(r.column_index).positive) {
          all_positive = false;
        }
        if (!r.relative) anchored = true;
      });
    }
    preds.push_back(
        AnalyzePredicate(el.predicate, query.input_schema, &catalog));
  }
  CompileOptions gated = options;
  gated.oracle.gsw.positive_domain &= all_positive;
  auto plan = Finish(std::move(preds), std::move(star),
                     std::move(predicates), gated);
  plan.anchored_refs = anchored;
  return plan;
}

PatternPlan CompileFromAnalyses(std::vector<PredicateAnalysis> preds,
                                const std::vector<bool>& star0,
                                const CompileOptions& options) {
  const int m = static_cast<int>(preds.size());
  std::vector<bool> star(m + 1, false);
  for (int i = 0; i < m; ++i) star[i + 1] = star0[i];
  std::vector<ExprPtr> predicates(m + 1);  // no runtime exprs in this mode
  return Finish(std::move(preds), std::move(star), std::move(predicates),
                options);
}

std::string PatternPlan::ToString() const {
  std::ostringstream os;
  os << "pattern length m = " << m << (has_star ? " (with star)" : "")
     << "\n";
  os << "theta =\n" << matrices.theta.ToString();
  os << "phi =\n" << matrices.phi.ToString();
  if (!tables.s_matrix.empty()) {
    os << "S =\n" << tables.s_matrix.ToString(/*include_diagonal=*/false);
  }
  os << "j      :";
  for (int j = 1; j <= m; ++j) os << " " << j;
  os << "\nstar   :";
  for (int j = 1; j <= m; ++j) os << " " << (star[j] ? "*" : ".");
  os << "\nshift  :";
  for (int j = 1; j <= m; ++j) os << " " << tables.shift[j];
  os << "\nnext   :";
  for (int j = 1; j <= m; ++j) os << " " << tables.next[j];
  os << "\npresat :";
  for (int j = 1; j <= m; ++j) os << " " << (tables.presatisfied[j] ? "y" : ".");
  os << "\n";
  return os.str();
}

}  // namespace sqlts
