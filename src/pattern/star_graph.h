#ifndef SQLTS_PATTERN_STAR_GRAPH_H_
#define SQLTS_PATTERN_STAR_GRAPH_H_

#include <utility>
#include <vector>

#include "pattern/shift_next.h"
#include "pattern/theta_phi.h"

namespace sqlts {

/// The paper's Implication Graph for a failure at pattern element
/// `jfail` (G_P^jfail, Sec 5.1): nodes are the strictly-lower-triangle
/// positions (j, k), k < j ≤ jfail, valued by θ except row jfail which
/// takes its values from φ.  Node (j, k) means "the original pattern is
/// processing element j while the pattern shifted to start at element
/// k's alignment processes the same input tuple".  Arcs encode the joint
/// transitions allowed by the star structure; arcs to or from 0-valued
/// nodes are dropped.
class ImplicationGraph {
 public:
  /// `star` is 1-based (star[j] for pattern element j; index 0 unused).
  ImplicationGraph(const ThetaPhi& matrices, const std::vector<bool>& star,
                   int jfail);

  int jfail() const { return jfail_; }

  /// Value of node (j, k); θ for j < jfail, φ for j == jfail.
  Tribool value(int j, int k) const;

  /// Valid outgoing arcs of (j, k): targets inside the triangle with
  /// row ≤ jfail and non-zero value.  (j, k) itself must be non-zero.
  std::vector<std::pair<int, int>> OutArcs(int j, int k) const;

  /// shift(jfail) per Definition 1: min { s : a path exists from node
  /// (s+1, 1) to some node in row jfail }, else jfail.
  int ComputeShift() const;

  /// next(jfail) via the deterministic-node walk from (shift+1, 1).
  /// `presatisfied` is set when the walk ends on a 1-valued node of the
  /// last row (the failing input element is already known to satisfy the
  /// resumption element's predicate).
  ///
  /// Conservative refinement (documented in DESIGN.md): the walk only
  /// advances across *diagonal* deterministic steps, because the
  /// runtime's count-rebasing formula (Sec 5) assumes the shifted
  /// pattern's groups map one-to-one onto the original's.  Stopping
  /// earlier is always sound.
  void ComputeNext(int shift, int* next, bool* presatisfied) const;

 private:
  const ThetaPhi& matrices_;
  const std::vector<bool>& star_;
  int jfail_;
};

/// Builds the search tables for a pattern with star elements by running
/// the implication-graph construction for every failure position.
SearchTables BuildStarTables(const ThetaPhi& matrices,
                             const std::vector<bool>& star);

}  // namespace sqlts

#endif  // SQLTS_PATTERN_STAR_GRAPH_H_
