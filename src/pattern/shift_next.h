#ifndef SQLTS_PATTERN_SHIFT_NEXT_H_
#define SQLTS_PATTERN_SHIFT_NEXT_H_

#include <vector>

#include "pattern/theta_phi.h"

namespace sqlts {

/// Compile-time search tables: how far to advance the pattern over the
/// input after a mismatch at element j (`shift[j]`), and from which
/// pattern element to resume checking (`next[j]`); `presatisfied[j]`
/// marks resumptions whose first element is already known to satisfy its
/// predicate (φ = 1 on the failing element), so the runtime skips that
/// test.  All arrays are 1-based; index 0 is unused.
struct SearchTables {
  std::vector<int> shift;
  std::vector<int> next;
  std::vector<bool> presatisfied;
  /// The S matrix (star-free construction only; empty otherwise),
  /// exposed for tests and EXPLAIN output.  S_jk defined for j > k.
  LogicMatrix s_matrix;

  int pattern_length() const {
    return static_cast<int>(shift.size()) - 1;
  }

  /// Average shift/next values — the paper's Sec 8 heuristic for
  /// choosing the search direction (larger is better, shift weighs
  /// more).
  double AverageShift() const;
  double AverageNext() const;
};

/// Computes S, shift and next for a star-free pattern (paper Sec 4.2):
///   S_jk = θ_{k+1,1} ∧ θ_{k+2,2} ∧ … ∧ θ_{j-1,j-k-1} ∧ φ_{j,j-k}
///   shift(j) = j if all S_jk = 0, else min{k : S_jk ≠ 0}
///   next(j) = 0                         if shift(j) = j
///           = j - shift(j) + 1          if S_{j,shift(j)} = 1
///           = min({t : θ_{shift+t,t} = U} ∪ {j-shift : φ_{j,j-shift} = U})
SearchTables BuildStarFreeTables(const ThetaPhi& matrices);

/// Classic KMP failure function for an equality pattern (paper Sec 3.1),
/// 1-based: next[1..m] with next[j] ∈ [0, j-1].  Exposed for the text
/// benchmark and as a cross-check: for equality-with-constant patterns
/// OPS must reduce to KMP.
std::vector<int> BuildKmpNext(const std::string& pattern);

}  // namespace sqlts

#endif  // SQLTS_PATTERN_SHIFT_NEXT_H_
