#include "pattern/shift_next.h"

#include <string>

#include "common/logging.h"

namespace sqlts {

double SearchTables::AverageShift() const {
  const int m = pattern_length();
  if (m == 0) return 0;
  double sum = 0;
  for (int j = 1; j <= m; ++j) sum += shift[j];
  return sum / m;
}

double SearchTables::AverageNext() const {
  const int m = pattern_length();
  if (m == 0) return 0;
  double sum = 0;
  for (int j = 1; j <= m; ++j) sum += next[j];
  return sum / m;
}

SearchTables BuildStarFreeTables(const ThetaPhi& matrices) {
  const int m = matrices.theta.size();
  SearchTables out;
  out.shift.assign(m + 1, 0);
  out.next.assign(m + 1, 0);
  out.presatisfied.assign(m + 1, false);
  out.s_matrix = LogicMatrix(m);

  // S_jk for j > k (Sec 4.2): the shifted pattern's positions
  // 1..j-k-1 must be compatible with the satisfied prefix (θ terms) and
  // its position j-k with the failed element (φ term).
  for (int j = 2; j <= m; ++j) {
    for (int k = 1; k < j; ++k) {
      Tribool v = matrices.phi.At(j, j - k);
      for (int t = 1; t <= j - k - 1; ++t) {
        v = v && matrices.theta.At(k + t, t);
      }
      out.s_matrix.Set(j, k, v);
    }
  }

  for (int j = 1; j <= m; ++j) {
    // shift(j): leftmost non-zero entry of row j of S, or j if none.
    int shift = j;
    for (int k = 1; k < j; ++k) {
      if (out.s_matrix.At(j, k).IsPossible()) {
        shift = k;
        break;
      }
    }
    out.shift[j] = shift;

    // next(j): the three cases of Sec 4.2.
    if (shift == j) {
      out.next[j] = 0;
      continue;
    }
    if (out.s_matrix.At(j, shift).IsTrue()) {
      // Everything up to and including the failed element is known to
      // hold for the shifted pattern.  The paper states this case as
      // next = j - shift + 1 (resume one past the failing element); our
      // unified counter-based runtime instead needs the failing element
      // to be consumed *by* position j - shift, so we encode the same
      // semantics as next = j - shift with the presatisfied flag (the
      // test is skipped, the tuple is consumed, and the cursor then
      // moves on — identical behaviour and identical test counts).
      out.next[j] = j - shift;
      out.presatisfied[j] = true;
      continue;
    }
    int next = -1;
    for (int t = 1; t < j - shift; ++t) {
      if (matrices.theta.At(shift + t, t).IsUnknown()) {
        next = t;
        break;
      }
    }
    if (next < 0 && matrices.phi.At(j, j - shift).IsUnknown()) {
      next = j - shift;
    }
    // S_{j,shift} being U guarantees at least one U component.
    SQLTS_CHECK(next > 0) << "inconsistent S/θ/φ at j=" << j;
    out.next[j] = next;
  }
  return out;
}

std::vector<int> BuildKmpNext(const std::string& pattern) {
  const int m = static_cast<int>(pattern.size());
  std::vector<int> next(m + 1, 0);
  if (m == 0) return next;
  // Knuth–Morris–Pratt optimized failure function, 1-based.  `t` plays
  // the role of the candidate border length.
  next[1] = 0;
  int t = 0;
  int j = 1;
  while (j < m) {
    while (t > 0 && pattern[j - 1] != pattern[t - 1]) t = next[t];
    ++t;
    ++j;
    if (pattern[j - 1] == pattern[t - 1]) {
      next[j] = next[t];
    } else {
      next[j] = t;
    }
  }
  return next;
}

}  // namespace sqlts
