#ifndef SQLTS_PATTERN_LOGIC_MATRIX_H_
#define SQLTS_PATTERN_LOGIC_MATRIX_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "tribool/tribool.h"

namespace sqlts {

/// A square matrix of 3-valued logic entries with the paper's 1-based
/// indexing (θ, φ and S are lower-triangular; entries outside the stored
/// triangle are a checked error).
class LogicMatrix {
 public:
  LogicMatrix() : m_(0) {}
  explicit LogicMatrix(int m)
      : m_(m), data_(static_cast<size_t>(m) * m, Tribool::Unknown()) {}

  int size() const { return m_; }
  bool empty() const { return m_ == 0; }

  /// Entry (j, k), 1-based, j and k in [1, m].
  Tribool At(int j, int k) const {
    SQLTS_DCHECK(j >= 1 && j <= m_ && k >= 1 && k <= m_)
        << "LogicMatrix::At(" << j << ", " << k << ") size " << m_;
    return data_[(j - 1) * m_ + (k - 1)];
  }
  void Set(int j, int k, Tribool v) {
    SQLTS_DCHECK(j >= 1 && j <= m_ && k >= 1 && k <= m_);
    data_[(j - 1) * m_ + (k - 1)] = v;
  }

  /// Renders the lower triangle like the paper's figures, e.g.
  ///   "1\nU 1\n0 U 1".
  std::string ToString(bool include_diagonal = true) const {
    std::string out;
    for (int j = 1; j <= m_; ++j) {
      int kmax = include_diagonal ? j : j - 1;
      if (!include_diagonal && j == 1) continue;
      for (int k = 1; k <= kmax; ++k) {
        if (k > 1) out += " ";
        out += At(j, k).ToString();
      }
      out += "\n";
    }
    return out;
  }

 private:
  int m_;
  std::vector<Tribool> data_;
};

}  // namespace sqlts

#endif  // SQLTS_PATTERN_LOGIC_MATRIX_H_
