#include "pattern/star_graph.h"

#include <deque>

#include "common/logging.h"

namespace sqlts {

ImplicationGraph::ImplicationGraph(const ThetaPhi& matrices,
                                   const std::vector<bool>& star, int jfail)
    : matrices_(matrices), star_(star), jfail_(jfail) {
  SQLTS_CHECK(jfail >= 1 && jfail <= matrices.theta.size());
  SQLTS_CHECK(static_cast<int>(star.size()) == matrices.theta.size() + 1);
}

Tribool ImplicationGraph::value(int j, int k) const {
  SQLTS_DCHECK(k >= 1 && k < j && j <= jfail_);
  if (j == jfail_) return matrices_.phi.At(j, k);
  return matrices_.theta.At(j, k);
}

std::vector<std::pair<int, int>> ImplicationGraph::OutArcs(int j,
                                                           int k) const {
  std::vector<std::pair<int, int>> out;
  if (j >= jfail_) return out;  // last row has no successors we need
  const bool sj = star_[j];
  const bool sk = star_[k];
  auto add = [&](int jj, int kk) {
    if (kk >= jj) return;        // stays strictly below the diagonal
    if (jj > jfail_) return;     // outside this failure's graph
    if (value(jj, kk).IsFalse()) return;  // arcs to 0 nodes are dropped
    out.emplace_back(jj, kk);
  };
  if (sj && sk) {
    if (value(j, k).IsTrue()) {
      // Case 2: an element satisfying p_j must satisfy p_k, so the
      // shifted pattern can never leave k while the original stays at j.
      add(j + 1, k);
      add(j + 1, k + 1);
    } else {
      // Case 1.
      add(j, k + 1);
      add(j + 1, k);
      add(j + 1, k + 1);
    }
  } else if (sj && !sk) {
    // Case 4.
    add(j, k + 1);
    add(j + 1, k + 1);
  } else if (!sj && sk) {
    // Case 5.
    add(j + 1, k);
    add(j + 1, k + 1);
  } else {
    // Case 3.
    add(j + 1, k + 1);
  }
  return out;
}

int ImplicationGraph::ComputeShift() const {
  if (jfail_ == 1) return 1;
  // Reverse reachability from the non-zero nodes of the last row, per
  // the paper's inverse-graph traversal (complexity O(m²) per failure
  // position).
  auto index = [&](int j, int k) { return (j - 2) * jfail_ + (k - 1); };
  std::vector<char> reach(static_cast<size_t>(jfail_ - 1) * jfail_, 0);
  std::deque<std::pair<int, int>> queue;
  for (int k = 1; k < jfail_; ++k) {
    if (!value(jfail_, k).IsFalse()) {
      reach[index(jfail_, k)] = 1;
      queue.emplace_back(jfail_, k);
    }
  }
  // The graphs are tiny; scanning all nodes' out-arcs to walk edges
  // backwards keeps the code simple.
  // Build forward adjacency once, then propagate backwards via BFS.
  std::vector<std::vector<std::pair<int, int>>> preds(reach.size());
  for (int j = 2; j <= jfail_; ++j) {
    for (int k = 1; k < j; ++k) {
      if (value(j, k).IsFalse()) continue;
      for (auto [jj, kk] : OutArcs(j, k)) {
        preds[index(jj, kk)].emplace_back(j, k);
      }
    }
  }
  while (!queue.empty()) {
    auto [j, k] = queue.front();
    queue.pop_front();
    for (auto [pj, pk] : preds[index(j, k)]) {
      char& r = reach[index(pj, pk)];
      if (!r) {
        r = 1;
        queue.emplace_back(pj, pk);
      }
    }
  }
  // σ(jfail) = { s : node (s+1, 1) can reach the last row }.
  for (int s = 1; s <= jfail_ - 1; ++s) {
    if (reach[index(s + 1, 1)]) return s;
  }
  return jfail_;
}

void ImplicationGraph::ComputeNext(int shift, int* next,
                                   bool* presatisfied) const {
  *presatisfied = false;
  if (shift >= jfail_) {
    *next = 0;
    return;
  }
  int j = shift + 1;
  int b = 1;
  while (true) {
    if (j == jfail_) {
      // Reached the last row: nothing before column b needs re-testing;
      // a 1-valued node additionally certifies the failing element.
      *next = b;
      *presatisfied = value(j, b).IsTrue();
      return;
    }
    if (!value(j, b).IsTrue()) {
      *next = b;
      return;
    }
    // The walk may only cross a node when the *group mapping* of the
    // shifted attempt is provably forced to be one-to-one (original
    // group j ↦ shifted group b wholesale), because the runtime's
    // count-rebasing formula assumes exactly that:
    //  * both non-star (case 3): one tuple each — forced;
    //  * shifted star, original non-star (case 5): forced iff the next
    //    original element provably closes the shifted group
    //    (value(j+1, b) = 0);
    //  * both star with θ = 1 (case 2): same condition;
    //  * original star, shifted non-star (case 4): a star group with
    //    more than one tuple cannot map onto a single-tuple element —
    //    never forced (this was a subtle unsoundness: the dropped
    //    "shifted advances while the original stays" transition makes
    //    the node non-deterministic even when it leads nowhere).
    bool forced;
    if (!star_[j]) {
      forced = !star_[b] || value(j + 1, b).IsFalse();
    } else {
      forced = star_[b] && value(j + 1, b).IsFalse();
    }
    if (!forced || value(j + 1, b + 1).IsFalse()) {
      *next = b;
      return;
    }
    ++j;
    ++b;
  }
}

SearchTables BuildStarTables(const ThetaPhi& matrices,
                             const std::vector<bool>& star) {
  const int m = matrices.theta.size();
  SearchTables out;
  out.shift.assign(m + 1, 0);
  out.next.assign(m + 1, 0);
  out.presatisfied.assign(m + 1, false);
  for (int j = 1; j <= m; ++j) {
    ImplicationGraph g(matrices, star, j);
    int shift = g.ComputeShift();
    int next = 0;
    bool presat = false;
    g.ComputeNext(shift, &next, &presat);
    out.shift[j] = shift;
    out.next[j] = next;
    out.presatisfied[j] = presat;
  }
  return out;
}

}  // namespace sqlts
