#include "pattern/theta_phi.h"

#include <algorithm>
#include <iterator>

namespace sqlts {
namespace {

/// True when both analyses carry interval views over the same variable.
bool SameVarIntervals(const PredicateAnalysis& p,
                      const PredicateAnalysis& q) {
  return p.has_interval && q.has_interval && p.interval_var == q.interval_var;
}

// --- 3-valued-logic soundness gating -------------------------------------
//
// The GSW solver reasons in two-valued logic over the reals, but SQL
// predicates follow 3-valued logic: a comparison touching a NULL
// attribute is unknown, which the matcher treats as unsatisfied.  A
// deduction is therefore only sound when every variable whose
// non-NULLness it silently assumes is either over a non-nullable column
// or pinned non-NULL by a conjunct the premise *satisfied*.  The
// helpers below implement that gating; deductions that cannot be
// justified degrade the matrix entry to Unknown, never to a wrong
// truth value.

/// No possibly-NULL variable appears anywhere in `p` — two-valued
/// reasoning about both p and ¬p is exact.
bool NullFree(const PredicateAnalysis& p) {
  return p.nullable_vars.empty() && !p.nullable_residue;
}

/// All variables referenced by `s`'s atoms, sorted and deduplicated.
std::vector<VarId> SystemVars(const ConstraintSystem& s) {
  std::vector<VarId> vars;
  for (const LinearAtom& a : s.linear()) {
    vars.push_back(a.x);
    if (a.y != kNoVar) vars.push_back(a.y);
  }
  for (const RatioAtom& a : s.ratio()) {
    vars.push_back(a.x);
    vars.push_back(a.y);
  }
  for (const StringAtom& a : s.strings()) vars.push_back(a.x);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

/// needles ⊆ hay; both sorted ascending.
bool SubsetOf(const std::vector<VarId>& needles,
              const std::vector<VarId>& hay) {
  return std::includes(hay.begin(), hay.end(), needles.begin(),
                       needles.end());
}

/// True when a premise that guarantees non-NULL real values exactly for
/// `guaranteed_vars` supports concluding `q` from a two-valued proof:
/// every possibly-NULL variable of q must be guaranteed, else q could
/// evaluate to unknown even though the real-arithmetic implication
/// holds.
bool ConclusionNullSafe(const PredicateAnalysis& q,
                        const std::vector<VarId>& guaranteed_vars) {
  return !q.nullable_residue && SubsetOf(q.nullable_vars, guaranteed_vars);
}

/// ¬(d₁ ∨ … ∨ dₙ) as a single conjunction, possible when every disjunct
/// is one atom.
std::optional<ConstraintSystem> NegateOrGroup(
    const PredicateAnalysis::OrGroup& group) {
  if (!group.single_atom_disjuncts) return std::nullopt;
  ConstraintSystem out;
  for (const ConstraintSystem& d : group.disjuncts) {
    for (const LinearAtom& a : d.linear()) out.AddLinear(a.Negated());
    for (const RatioAtom& a : d.ratio()) out.AddRatio(a.Negated());
    for (const StringAtom& a : d.strings()) out.AddString(a.Negated());
  }
  return out;
}

}  // namespace

ImplicationOracle::ImplicationOracle(OracleOptions options)
    : options_(options), solver_(options.gsw) {}

bool ImplicationOracle::Unsat(const PredicateAnalysis& p) const {
  if (options_.use_intervals && p.has_interval && p.interval.IsEmpty()) {
    return true;
  }
  // An incomplete system is still a *weakening* of p, so its
  // unsatisfiability implies p's.
  if (options_.use_gsw && solver_.ProvablyUnsat(p.system)) return true;
  if (options_.use_gsw) {
    // Case split on one captured OR conjunct: if every disjunct
    // contradicts the base, p has no model.
    for (const auto& group : p.or_groups) {
      bool all_dead = true;
      for (const ConstraintSystem& d : group.disjuncts) {
        if (!solver_.ProvablyUnsat(ConstraintSystem::Conjoin(p.system, d))) {
          all_dead = false;
          break;
        }
      }
      if (all_dead) return true;
    }
  }
  return p.system.trivially_false();
}

bool ImplicationOracle::Valid(const PredicateAnalysis& p) const {
  // Any possibly-NULL reference defeats validity outright: even a
  // real-arithmetic tautology such as vol = vol evaluates to unknown
  // (unsatisfied) on a NULL, so p is not TRUE on every tuple.
  if (!NullFree(p)) return false;
  if (options_.use_intervals && p.has_interval && p.interval.IsAll()) {
    return true;
  }
  // A predicate with OR conjuncts is only provably valid through its
  // interval view (handled above).
  if (options_.use_gsw && p.complete && p.or_groups.empty() &&
      !p.system.trivially_false() && solver_.ProvablyValid(p.system)) {
    return true;
  }
  // The empty predicate (no WHERE conjuncts for this element) is TRUE.
  return p.complete && p.system.num_atoms() == 0 && p.or_groups.empty() &&
         !p.system.trivially_false();
}

bool ImplicationOracle::Exclusive(const PredicateAnalysis& p,
                                  const PredicateAnalysis& q) const {
  if (options_.use_intervals && SameVarIntervals(p, q) &&
      p.interval.Intersect(q.interval).IsEmpty()) {
    return true;
  }
  if (!options_.use_gsw) return false;
  ConstraintSystem conj = ConstraintSystem::Conjoin(p.system, q.system);
  if (solver_.ProvablyUnsat(conj)) return true;
  // Case split on one OR conjunct of either side.
  auto group_kills = [&](const PredicateAnalysis::OrGroup& group) {
    for (const ConstraintSystem& d : group.disjuncts) {
      if (!solver_.ProvablyUnsat(ConstraintSystem::Conjoin(conj, d))) {
        return false;
      }
    }
    return true;
  };
  for (const auto& g : p.or_groups) {
    if (group_kills(g)) return true;
  }
  for (const auto& g : q.or_groups) {
    if (group_kills(g)) return true;
  }
  return false;
}

bool ImplicationOracle::Implies(const PredicateAnalysis& p,
                                const PredicateAnalysis& q) const {
  if (options_.use_intervals && SameVarIntervals(p, q) &&
      p.interval.SubsetOf(q.interval)) {
    return true;
  }
  // The conclusion must be fully captured; the premise may be weakened
  // only if we are proving FROM it — here the premise's captured part is
  // implied by the real p, so proving captured_p ⇒ q gives p ⇒ q.
  if (!options_.use_gsw || !q.complete) return false;

  // 3VL: p holding guarantees real (non-NULL) values for the variables
  // of conjuncts it satisfied — its base atoms, plus any variable common
  // to *every* disjunct of an OR conjunct (whichever disjunct held, the
  // variable was evaluated non-NULL).  q's possibly-NULL variables must
  // all be covered, else q may be unknown despite the real-arithmetic
  // implication.
  std::vector<VarId> guaranteed = SystemVars(p.system);
  for (const auto& group : p.or_groups) {
    std::vector<VarId> common;
    for (size_t di = 0; di < group.disjuncts.size(); ++di) {
      std::vector<VarId> dv = SystemVars(group.disjuncts[di]);
      if (di == 0) {
        common = std::move(dv);
      } else {
        std::vector<VarId> kept;
        std::set_intersection(common.begin(), common.end(), dv.begin(),
                              dv.end(), std::back_inserter(kept));
        common = std::move(kept);
      }
    }
    for (VarId v : common) guaranteed.push_back(v);
  }
  std::sort(guaranteed.begin(), guaranteed.end());
  if (!ConclusionNullSafe(q, guaranteed)) return false;

  // Premise strengthening: p entails `target` if its base system does,
  // or if every disjunct of one of its OR conjuncts does (case split).
  auto premise_implies = [&](const ConstraintSystem& target) {
    if (solver_.ProvablyImplies(p.system, target)) return true;
    for (const auto& group : p.or_groups) {
      bool all = true;
      for (const ConstraintSystem& d : group.disjuncts) {
        if (!solver_.ProvablyImplies(ConstraintSystem::Conjoin(p.system, d),
                                     target)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  };

  if (!premise_implies(q.system)) return false;
  // Each OR conjunct of q must be entailed.  Sufficient condition with
  // disjunct pairing: either the base premise entails one disjunct, or
  // there is a case split of p under which every case entails *some*
  // disjunct of q's group.
  for (const auto& qg : q.or_groups) {
    auto entails_one_of = [&](const ConstraintSystem& premise) {
      for (const ConstraintSystem& dq : qg.disjuncts) {
        if (solver_.ProvablyImplies(premise, dq)) return true;
      }
      return false;
    };
    bool entailed = entails_one_of(p.system);
    if (!entailed) {
      for (const auto& pg : p.or_groups) {
        bool all_cases = true;
        for (const ConstraintSystem& dp : pg.disjuncts) {
          if (!entails_one_of(ConstraintSystem::Conjoin(p.system, dp))) {
            all_cases = false;
            break;
          }
        }
        if (all_cases) {
          entailed = true;
          break;
        }
      }
    }
    if (!entailed) return false;
  }
  return true;
}

bool ImplicationOracle::ForEachNegatedConjunct(
    const PredicateAnalysis& p,
    const std::function<bool(const ConstraintSystem&)>& fn) const {
  // ¬(c₁ ∧ … ∧ cₙ) = ¬c₁ ∨ … ∨ ¬cₙ; enumerable only when every conjunct
  // was captured as an atom.
  if (!p.complete) return false;
  if (p.system.trivially_false()) {
    // One conjunct is FALSE, so ¬p contains the disjunct TRUE.
    if (!fn(ConstraintSystem())) return false;
  }
  for (const LinearAtom& a : p.system.linear()) {
    ConstraintSystem s;
    s.AddLinear(a.Negated());
    if (!fn(s)) return false;
  }
  for (const RatioAtom& a : p.system.ratio()) {
    ConstraintSystem s;
    s.AddRatio(a.Negated());
    if (!fn(s)) return false;
  }
  for (const StringAtom& a : p.system.strings()) {
    ConstraintSystem s;
    s.AddString(a.Negated());
    if (!fn(s)) return false;
  }
  for (const auto& group : p.or_groups) {
    // ¬(d₁ ∨ … ∨ dₙ) contributes one conjunctive disjunct to ¬p, but
    // only when it is expressible as a single system.
    std::optional<ConstraintSystem> neg = NegateOrGroup(group);
    if (!neg.has_value()) return false;
    if (!fn(*neg)) return false;
  }
  return true;
}

bool ImplicationOracle::EntailsWhole(const ConstraintSystem& premise,
                                     const PredicateAnalysis& q) const {
  // premise ⇒ q means entailing q's base system *and* every OR conjunct
  // (for the latter it suffices to entail one disjunct).
  if (!solver_.ProvablyImplies(premise, q.system)) return false;
  for (const auto& qg : q.or_groups) {
    bool any = false;
    for (const ConstraintSystem& dq : qg.disjuncts) {
      if (solver_.ProvablyImplies(premise, dq)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

bool ImplicationOracle::RefutesWhole(const ConstraintSystem& premise,
                                     const PredicateAnalysis& q) const {
  // premise ∧ q unsatisfiable: directly, or by case split on one of
  // q's OR conjuncts.
  ConstraintSystem conj = ConstraintSystem::Conjoin(premise, q.system);
  if (solver_.ProvablyUnsat(conj)) return true;
  for (const auto& qg : q.or_groups) {
    bool all_dead = true;
    for (const ConstraintSystem& dq : qg.disjuncts) {
      if (!solver_.ProvablyUnsat(ConstraintSystem::Conjoin(conj, dq))) {
        all_dead = false;
        break;
      }
    }
    if (all_dead) return true;
  }
  return false;
}

bool ImplicationOracle::NegImplies(const PredicateAnalysis& p,
                                   const PredicateAnalysis& q) const {
  // 3VL: "p failed" only means "some conjunct is really false" when no
  // variable of p can be NULL (a NULL makes the conjunct unknown, whose
  // negation does not hold either).  This also covers the interval path:
  // its shared variable must be non-nullable.
  if (!NullFree(p)) return false;
  if (options_.use_intervals && SameVarIntervals(p, q) &&
      p.interval.Complement().SubsetOf(q.interval)) {
    return true;
  }
  if (!options_.use_gsw) return false;
  if (!q.complete) return false;
  // The entailed q must hold on the actual tuple, where q's
  // possibly-NULL variables are unconstrained by ¬p's single-conjunct
  // premise — so q must be NULL-free too.
  if (!NullFree(q)) return false;
  // Every disjunct of ¬p must imply the whole of q.
  return ForEachNegatedConjunct(p, [&](const ConstraintSystem& d) {
    return EntailsWhole(d, q);
  });
}

bool ImplicationOracle::NegExcludes(const PredicateAnalysis& p,
                                    const PredicateAnalysis& q) const {
  if (options_.use_intervals && SameVarIntervals(p, q) &&
      p.interval.Complement().Intersect(q.interval).IsEmpty()) {
    return true;
  }
  if (!options_.use_gsw) return false;
  // 3VL: p can also fail because a possibly-NULL variable made one of
  // its conjuncts unknown.  The conclusion "q fails too" survives that
  // case only when every such variable is pinned by one of q's own base
  // atoms (the NULL then makes q unknown — unsatisfied — as well).  The
  // real-false case is handled by the per-conjunct refutations below,
  // which remain sound for any q: a real refutation rules out q
  // evaluating to true.
  if (p.nullable_residue ||
      !SubsetOf(p.nullable_vars, SystemVars(q.system))) {
    return false;
  }
  // Every disjunct of ¬p must contradict q.
  return ForEachNegatedConjunct(p, [&](const ConstraintSystem& d) {
    return RefutesWhole(d, q);
  });
}

ThetaPhi BuildThetaPhi(const std::vector<PredicateAnalysis>& preds,
                       const ImplicationOracle& oracle) {
  const int m = static_cast<int>(preds.size());
  ThetaPhi out{LogicMatrix(m), LogicMatrix(m)};
  for (int j = 1; j <= m; ++j) {
    const PredicateAnalysis& pj = preds[j - 1];
    const bool pj_unsat = oracle.Unsat(pj);
    const bool pj_valid = oracle.Valid(pj);
    for (int k = 1; k <= j; ++k) {
      const PredicateAnalysis& pk = preds[k - 1];
      // θ_jk:
      Tribool theta = Tribool::Unknown();
      if (oracle.Exclusive(pj, pk)) {
        theta = Tribool::False();  // p_j ⇒ ¬p_k
      } else if (!pj_unsat && oracle.Implies(pj, pk)) {
        theta = Tribool::True();  // p_j ⇒ p_k, p_j ≢ F
      }
      out.theta.Set(j, k, theta);
      // φ_jk:
      Tribool phi = Tribool::Unknown();
      if (oracle.NegImplies(pj, pk)) {
        phi = Tribool::True();  // ¬p_j ⇒ p_k
      } else if (!pj_valid && oracle.NegExcludes(pj, pk)) {
        phi = Tribool::False();  // ¬p_j ⇒ ¬p_k, p_j ≢ T
      }
      out.phi.Set(j, k, phi);
    }
  }
  return out;
}

}  // namespace sqlts
