#include "storage/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace sqlts {
namespace {

/// One record split into fields.  `quoted[i]` records whether field i
/// used quotes — quoted content is literal (never a NULL marker, never
/// whitespace-trimmed), which is what makes empty and whitespace-only
/// strings round-trippable.
struct CsvRecord {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
};

/// Splits one CSV record honoring quotes.  Returns ParseError on an
/// unterminated quote.
StatusOr<CsvRecord> SplitCsvLine(std::string_view line) {
  CsvRecord rec;
  std::string cur;
  bool in_quotes = false;
  bool saw_quote = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      saw_quote = true;
    } else if (c == ',') {
      rec.fields.push_back(std::move(cur));
      rec.quoted.push_back(saw_quote);
      cur.clear();
      saw_quote = false;
    } else {
      cur += c;
    }
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV line");
  rec.fields.push_back(std::move(cur));
  rec.quoted.push_back(saw_quote);
  return rec;
}

/// Governance poll period, in records.  Cheap enough to keep
/// cancellation latency low on wide files, rare enough to stay off the
/// parse hot path.
constexpr int64_t kCsvGovernancePollPeriod = 4096;

/// Read-buffer size for streaming file loads.
constexpr size_t kCsvChunkBytes = 64 * 1024;

/// Consumes one parsed record at a time (header first) and accumulates
/// the table, so callers can hand it records from an in-memory string
/// or from a bounded streaming read without materializing the file.
class CsvLoader {
 public:
  CsvLoader(const Schema& schema, const CsvReadOptions& options,
            CsvReadStats* stats)
      : schema_(schema), options_(options), stats_(stats), table_(schema) {}

  /// Processes the next complete record.  `offset` is the record's
  /// byte offset in the input, used to name the bad region of a large
  /// file in errors.
  Status OnRecord(std::string_view text, size_t offset) {
    ++record_index_;
    if (options_.governance != nullptr &&
        record_index_ % kCsvGovernancePollPeriod == 0) {
      SQLTS_RETURN_IF_ERROR(options_.governance->Check());
    }
    if (record_index_ == 1) return LoadHeader(text);
    if (StripWhitespace(text).empty()) return Status::OK();
    // A malformed record either fails the load (naming its byte
    // offset, so the bad region of a large file can be located) or —
    // under kSkipAndCount — is dropped and counted, preserving every
    // well-formed row around it.
    Status bad = Status::OK();
    auto rec_or = SplitCsvLine(text);
    if (!rec_or.ok()) {
      bad = Status::ParseError(
          "CSV line " + std::to_string(record_index_) + " (byte offset " +
          std::to_string(offset) + "): " + rec_or.status().message());
    }
    Row row(schema_.num_columns(), Value::Null());
    if (bad.ok()) {
      const std::vector<std::string>& fields = rec_or->fields;
      if (fields.size() != schema_col_.size()) {
        bad = Status::ParseError(
            "CSV line " + std::to_string(record_index_) + " (byte offset " +
            std::to_string(offset) + ") has " +
            std::to_string(fields.size()) + " fields, expected " +
            std::to_string(schema_col_.size()));
      }
      for (size_t c = 0; bad.ok() && c < fields.size(); ++c) {
        int sc = schema_col_[c];
        // An unquoted blank cell is NULL; a quoted one is literal
        // content.
        if (!rec_or->quoted[c] && StripWhitespace(fields[c]).empty()) {
          continue;
        }
        if (schema_.column(sc).type == TypeKind::kString &&
            rec_or->quoted[c]) {
          // Quoted strings bypass ParseAs so surrounding whitespace
          // (and emptiness) survive the round trip.
          row[sc] = Value::String(fields[c]);
          continue;
        }
        auto v = Value::ParseAs(schema_.column(sc).type, fields[c]);
        if (!v.ok()) {
          bad = Status::ParseError(
              "CSV line " + std::to_string(record_index_) +
              " (byte offset " + std::to_string(offset) + "), column '" +
              schema_.column(sc).name + "': " + v.status().message());
          break;
        }
        row[sc] = std::move(*v);
      }
    }
    if (!bad.ok()) {
      if (options_.bad_input != BadInputPolicy::kSkipAndCount) return bad;
      ++stats_->rows_skipped;
      return Status::OK();
    }
    SQLTS_RETURN_IF_ERROR(table_.AppendRow(std::move(row)));
    ++stats_->rows_loaded;
    return Status::OK();
  }

  /// End of input inside a quoted field: a partially written or
  /// truncated file.  The records before it are intact either way.
  Status OnTruncated(size_t offset) {
    if (options_.bad_input != BadInputPolicy::kSkipAndCount) {
      return Status::ParseError(
          "unterminated quote in CSV input: final record (starting at "
          "byte offset " +
          std::to_string(offset) + ") is truncated");
    }
    ++stats_->rows_skipped;
    return Status::OK();
  }

  StatusOr<Table> Finish() {
    if (record_index_ == 0) return Status::ParseError("empty CSV input");
    return std::move(table_);
  }

 private:
  Status LoadHeader(std::string_view text) {
    SQLTS_ASSIGN_OR_RETURN(CsvRecord header, SplitCsvLine(text));
    schema_col_.assign(header.fields.size(), -1);
    for (size_t c = 0; c < header.fields.size(); ++c) {
      auto idx = schema_.FindColumn(StripWhitespace(header.fields[c]));
      if (!idx.ok()) {
        return Status::ParseError("CSV column '" + header.fields[c] +
                                  "' not in schema (" + schema_.ToString() +
                                  ")");
      }
      schema_col_[c] = *idx;
    }
    return Status::OK();
  }

  const Schema& schema_;
  const CsvReadOptions& options_;
  CsvReadStats* stats_;
  Table table_;
  std::vector<int> schema_col_;  // file column -> schema column
  int64_t record_index_ = 0;     // 1-based; record 1 is the header
};

/// Incremental quote-aware record-boundary scanner.  Feed() accepts
/// arbitrary chunks (boundaries may fall anywhere, including inside
/// quoted fields); each complete record goes to the loader, and a
/// partial record at a chunk's end is carried into the next Feed().
/// Record separators are '\n' (or "\r\n") *outside quotes*; newlines
/// inside quoted fields are field content.
class CsvRecordScanner {
 public:
  explicit CsvRecordScanner(CsvLoader* loader) : loader_(loader) {}

  Status Feed(std::string_view chunk) {
    size_t start = 0;
    for (size_t i = 0; i < chunk.size(); ++i) {
      const char c = chunk[i];
      if (c == '"') {
        // An escaped quote ("") toggles twice — net unchanged — and
        // can never enclose a separator, so plain toggling is
        // sufficient for record splitting.
        in_quotes_ = !in_quotes_;
      } else if (c == '\n' && !in_quotes_) {
        std::string_view body;
        if (carry_.empty()) {
          body = chunk.substr(start, i - start);
        } else {
          carry_.append(chunk.data() + start, i - start);
          body = carry_;
        }
        if (!body.empty() && body.back() == '\r') body.remove_suffix(1);
        SQLTS_RETURN_IF_ERROR(loader_->OnRecord(body, record_offset_));
        carry_.clear();
        start = i + 1;
        record_offset_ = base_offset_ + start;
      }
    }
    carry_.append(chunk.data() + start, chunk.size() - start);
    base_offset_ += chunk.size();
    return Status::OK();
  }

  Status Finish() {
    if (in_quotes_) return loader_->OnTruncated(record_offset_);
    if (carry_.empty()) return Status::OK();
    std::string_view body = carry_;
    if (body.back() == '\r') body.remove_suffix(1);
    return loader_->OnRecord(body, record_offset_);
  }

  /// Bytes currently carried for an incomplete record — the only part
  /// of the scanner's footprint that scales with input shape (one
  /// oversized record) rather than being O(1).
  size_t carry_size() const { return carry_.size(); }

 private:
  CsvLoader* loader_;
  std::string carry_;        // partial record spanning chunk boundaries
  bool in_quotes_ = false;
  size_t base_offset_ = 0;    // input offset of the next byte to feed
  size_t record_offset_ = 0;  // input offset of the current record
};

std::string EscapeCsvField(const std::string& raw, bool force_quote = false) {
  if (!force_quote && raw.find_first_of(",\"\n\r") == std::string::npos) {
    return raw;
  }
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// True when an unquoted rendering of this string would not read back
/// as itself: the empty string and whitespace-only strings load as
/// NULL, and other leading/trailing whitespace is trimmed by parsing.
bool StringNeedsQuotes(const std::string& s) {
  if (s.empty()) return true;
  return StripWhitespace(s).size() != s.size();
}

/// Raw (unquoted) cell text for CSV output, without Value::ToString's
/// display quoting.  Doubles use shortest round-trip formatting rather
/// than ToString's 6-significant-digit display precision, so reading
/// the CSV back reproduces the exact bit pattern.
std::string CellText(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return "";
    case TypeKind::kString:
      return v.string_value();
    case TypeKind::kDouble: {
      char buf[32];
      auto [end, ec] =
          std::to_chars(buf, buf + sizeof(buf), v.double_value());
      SQLTS_CHECK(ec == std::errc());
      return std::string(buf, end);
    }
    default:
      return v.ToString();
  }
}

}  // namespace

StatusOr<Table> ReadCsvString(std::string_view text, const Schema& schema,
                              const CsvReadOptions& options,
                              CsvReadStats* stats) {
  CsvReadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = CsvReadStats{};
  CsvLoader loader(schema, options, stats);
  CsvRecordScanner scanner(&loader);
  SQLTS_RETURN_IF_ERROR(scanner.Feed(text));
  SQLTS_RETURN_IF_ERROR(scanner.Finish());
  return loader.Finish();
}

StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                            const CsvReadOptions& options,
                            CsvReadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  CsvReadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = CsvReadStats{};
  CsvLoader loader(schema, options, stats);
  CsvRecordScanner scanner(&loader);
  const int64_t budget = options.governance != nullptr
                             ? options.governance->max_buffered_bytes
                             : 0;
  std::string chunk(kCsvChunkBytes, '\0');
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    if (options.governance != nullptr) {
      SQLTS_RETURN_IF_ERROR(options.governance->Check());
    }
    SQLTS_RETURN_IF_ERROR(
        scanner.Feed(std::string_view(chunk.data(),
                                      static_cast<size_t>(got))));
    if (budget > 0 &&
        static_cast<int64_t>(scanner.carry_size()) > budget) {
      return Status::ResourceExhausted(
          "CSV record in '" + path + "' spans " +
          std::to_string(scanner.carry_size()) +
          " bytes, exceeding the max_buffered_bytes budget (" +
          std::to_string(budget) + ")");
    }
  }
  if (in.bad()) return Status::IoError("read failed for '" + path + "'");
  SQLTS_RETURN_IF_ERROR(scanner.Finish());
  return loader.Finish();
}

std::string WriteCsvString(const Table& table) {
  std::ostringstream os;
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    os << (c ? "," : "") << EscapeCsvField(schema.column(c).name);
  }
  os << "\n";
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      const Value& v = table.at(r, c);
      std::string text = CellText(v);
      bool force_quote =
          v.kind() == TypeKind::kString && StringNeedsQuotes(text);
      os << (c ? "," : "") << EscapeCsvField(text, force_quote);
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << WriteCsvString(table);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace sqlts
