#include "storage/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace sqlts {
namespace {

/// One record split into fields.  `quoted[i]` records whether field i
/// used quotes — quoted content is literal (never a NULL marker, never
/// whitespace-trimmed), which is what makes empty and whitespace-only
/// strings round-trippable.
struct CsvRecord {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
};

/// Splits one CSV record honoring quotes.  Returns ParseError on an
/// unterminated quote.
StatusOr<CsvRecord> SplitCsvLine(std::string_view line) {
  CsvRecord rec;
  std::string cur;
  bool in_quotes = false;
  bool saw_quote = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      saw_quote = true;
    } else if (c == ',') {
      rec.fields.push_back(std::move(cur));
      rec.quoted.push_back(saw_quote);
      cur.clear();
      saw_quote = false;
    } else {
      cur += c;
    }
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV line");
  rec.fields.push_back(std::move(cur));
  rec.quoted.push_back(saw_quote);
  return rec;
}

/// One raw record plus where it starts in the input, so parse errors
/// can name a byte offset (useful when resuming a partial download or
/// locating corruption in a large file).
struct CsvRawRecord {
  std::string_view text;
  size_t offset = 0;
};

/// Record split outcome.  `truncated` reports a final record cut off
/// inside a quoted field (e.g. a partially written file); the caller
/// decides whether that fails the load or drops the record.
struct CsvSplit {
  std::vector<CsvRawRecord> records;
  bool truncated = false;
  size_t truncated_offset = 0;  // where the truncated record starts
};

/// Splits CSV text into records.  Record separators are '\n' (or
/// "\r\n") *outside quotes*; newlines inside quoted fields are field
/// content, so splitting must be quote-aware.
CsvSplit SplitCsvRecords(std::string_view text) {
  CsvSplit split;
  size_t start = 0;
  bool in_quotes = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') {
      // An escaped quote ("") toggles twice — net unchanged — and can
      // never enclose a separator, so plain toggling is sufficient for
      // record splitting.
      in_quotes = !in_quotes;
    } else if (c == '\n' && !in_quotes) {
      size_t end = i;
      if (end > start && text[end - 1] == '\r') --end;  // CRLF
      split.records.push_back({text.substr(start, end - start), start});
      start = i + 1;
    }
  }
  if (in_quotes) {
    // End of input inside a quoted field: the last record is truncated.
    split.truncated = true;
    split.truncated_offset = start;
    return split;
  }
  if (start < text.size()) {
    std::string_view rec = text.substr(start);
    if (!rec.empty() && rec.back() == '\r') rec.remove_suffix(1);
    split.records.push_back({rec, start});
  }
  return split;
}

std::string EscapeCsvField(const std::string& raw, bool force_quote = false) {
  if (!force_quote && raw.find_first_of(",\"\n\r") == std::string::npos) {
    return raw;
  }
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// True when an unquoted rendering of this string would not read back
/// as itself: the empty string and whitespace-only strings load as
/// NULL, and other leading/trailing whitespace is trimmed by parsing.
bool StringNeedsQuotes(const std::string& s) {
  if (s.empty()) return true;
  return StripWhitespace(s).size() != s.size();
}

/// Raw (unquoted) cell text for CSV output, without Value::ToString's
/// display quoting.  Doubles use shortest round-trip formatting rather
/// than ToString's 6-significant-digit display precision, so reading
/// the CSV back reproduces the exact bit pattern.
std::string CellText(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return "";
    case TypeKind::kString:
      return v.string_value();
    case TypeKind::kDouble: {
      char buf[32];
      auto [end, ec] =
          std::to_chars(buf, buf + sizeof(buf), v.double_value());
      SQLTS_CHECK(ec == std::errc());
      return std::string(buf, end);
    }
    default:
      return v.ToString();
  }
}

}  // namespace

StatusOr<Table> ReadCsvString(std::string_view text, const Schema& schema,
                              const CsvReadOptions& options,
                              CsvReadStats* stats) {
  const bool skip_bad = options.bad_input == BadInputPolicy::kSkipAndCount;
  CsvReadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = CsvReadStats{};

  CsvSplit split = SplitCsvRecords(text);
  if (split.truncated) {
    // A quote left open at end of input: a partially written or
    // truncated file.  The records before it are intact either way.
    if (!skip_bad) {
      return Status::ParseError(
          "unterminated quote in CSV input: final record (starting at "
          "byte offset " +
          std::to_string(split.truncated_offset) + ") is truncated");
    }
    ++stats->rows_skipped;
  }
  const std::vector<CsvRawRecord>& lines = split.records;
  if (lines.empty()) return Status::ParseError("empty CSV input");

  SQLTS_ASSIGN_OR_RETURN(CsvRecord header, SplitCsvLine(lines[0].text));
  // Map file columns -> schema columns.
  std::vector<int> schema_col(header.fields.size(), -1);
  for (size_t c = 0; c < header.fields.size(); ++c) {
    auto idx = schema.FindColumn(StripWhitespace(header.fields[c]));
    if (!idx.ok()) {
      return Status::ParseError("CSV column '" + header.fields[c] +
                                "' not in schema (" + schema.ToString() +
                                ")");
    }
    schema_col[c] = *idx;
  }

  Table table(schema);
  for (size_t ln = 1; ln < lines.size(); ++ln) {
    std::string_view line = lines[ln].text;
    const size_t offset = lines[ln].offset;
    if (StripWhitespace(line).empty()) continue;
    // A malformed record either fails the load (naming its byte
    // offset, so the bad region of a large file can be located) or —
    // under kSkipAndCount — is dropped and counted, preserving every
    // well-formed row around it.
    Status bad = Status::OK();
    auto rec_or = SplitCsvLine(line);
    if (!rec_or.ok()) {
      bad = Status::ParseError(
          "CSV line " + std::to_string(ln + 1) + " (byte offset " +
          std::to_string(offset) + "): " + rec_or.status().message());
    }
    Row row(schema.num_columns(), Value::Null());
    if (bad.ok()) {
      const std::vector<std::string>& fields = rec_or->fields;
      if (fields.size() != header.fields.size()) {
        bad = Status::ParseError(
            "CSV line " + std::to_string(ln + 1) + " (byte offset " +
            std::to_string(offset) + ") has " +
            std::to_string(fields.size()) + " fields, expected " +
            std::to_string(header.fields.size()));
      }
      for (size_t c = 0; bad.ok() && c < fields.size(); ++c) {
        int sc = schema_col[c];
        // An unquoted blank cell is NULL; a quoted one is literal
        // content.
        if (!rec_or->quoted[c] && StripWhitespace(fields[c]).empty()) {
          continue;
        }
        if (schema.column(sc).type == TypeKind::kString &&
            rec_or->quoted[c]) {
          // Quoted strings bypass ParseAs so surrounding whitespace
          // (and emptiness) survive the round trip.
          row[sc] = Value::String(fields[c]);
          continue;
        }
        auto v = Value::ParseAs(schema.column(sc).type, fields[c]);
        if (!v.ok()) {
          bad = Status::ParseError(
              "CSV line " + std::to_string(ln + 1) + " (byte offset " +
              std::to_string(offset) + "), column '" +
              schema.column(sc).name + "': " + v.status().message());
          break;
        }
        row[sc] = std::move(*v);
      }
    }
    if (!bad.ok()) {
      if (!skip_bad) return bad;
      ++stats->rows_skipped;
      continue;
    }
    SQLTS_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
    ++stats->rows_loaded;
  }
  return table;
}

StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                            const CsvReadOptions& options,
                            CsvReadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), schema, options, stats);
}

std::string WriteCsvString(const Table& table) {
  std::ostringstream os;
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    os << (c ? "," : "") << EscapeCsvField(schema.column(c).name);
  }
  os << "\n";
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      const Value& v = table.at(r, c);
      std::string text = CellText(v);
      bool force_quote =
          v.kind() == TypeKind::kString && StringNeedsQuotes(text);
      os << (c ? "," : "") << EscapeCsvField(text, force_quote);
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << WriteCsvString(table);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace sqlts
