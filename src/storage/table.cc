#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace sqlts {

Status Table::AppendRow(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (!row[c].is_null() && row[c].kind() != schema_.column(c).type) {
      // Allow int literals to fill double columns (SQL numeric coercion).
      if (schema_.column(c).type == TypeKind::kDouble &&
          row[c].kind() == TypeKind::kInt64) {
        row[c] = Value::Double(static_cast<double>(row[c].int64_value()));
        continue;
      }
      return Status::TypeError(
          "column '" + schema_.column(c).name + "' expects " +
          std::string(TypeKindToString(schema_.column(c).type)) + ", got " +
          std::string(TypeKindToString(row[c].kind())));
    }
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  return Status::OK();
}

StatusOr<Table> Table::FromColumns(Schema schema,
                                   std::vector<std::vector<Value>> columns) {
  Table table(std::move(schema));
  if (static_cast<int>(columns.size()) != table.schema_.num_columns()) {
    return Status::InvalidArgument(
        "column count " + std::to_string(columns.size()) +
        " != schema arity " + std::to_string(table.schema_.num_columns()));
  }
  for (int c = 0; c < table.schema_.num_columns(); ++c) {
    if (columns[c].size() != columns[0].size()) {
      return Status::InvalidArgument("ragged columns: '" +
                                     table.schema_.column(c).name + "'");
    }
    const TypeKind want = table.schema_.column(c).type;
    for (Value& v : columns[c]) {
      if (v.is_null() || v.kind() == want) continue;
      if (want == TypeKind::kDouble && v.kind() == TypeKind::kInt64) {
        v = Value::Double(static_cast<double>(v.int64_value()));
        continue;
      }
      return Status::TypeError(
          "column '" + table.schema_.column(c).name + "' expects " +
          std::string(TypeKindToString(want)) + ", got " +
          std::string(TypeKindToString(v.kind())));
    }
  }
  table.columns_ = std::move(columns);
  return table;
}

const Value& Table::at(int64_t row, int col) const {
  SQLTS_CHECK(col >= 0 && col < schema_.num_columns()) << "col " << col;
  SQLTS_CHECK(row >= 0 && row < num_rows()) << "row " << row;
  return columns_[col][row];
}

Row Table::GetRow(int64_t row) const {
  Row out;
  out.reserve(schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) out.push_back(at(row, c));
  return out;
}

std::string Table::ToString(int64_t max_rows) const {
  const int ncols = schema_.num_columns();
  std::vector<size_t> width(ncols);
  std::vector<std::vector<std::string>> cells;
  int64_t shown = std::min<int64_t>(num_rows(), max_rows);
  for (int c = 0; c < ncols; ++c) width[c] = schema_.column(c).name.size();
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> rowcells;
    for (int c = 0; c < ncols; ++c) {
      rowcells.push_back(at(r, c).ToString());
      width[c] = std::max(width[c], rowcells.back().size());
    }
    cells.push_back(std::move(rowcells));
  }
  std::ostringstream os;
  for (int c = 0; c < ncols; ++c) {
    os << (c ? " | " : "");
    os << schema_.column(c).name
       << std::string(width[c] - schema_.column(c).name.size(), ' ');
  }
  os << "\n";
  for (int c = 0; c < ncols; ++c) {
    os << (c ? "-+-" : "") << std::string(width[c], '-');
  }
  os << "\n";
  for (auto& rowcells : cells) {
    for (int c = 0; c < ncols; ++c) {
      os << (c ? " | " : "") << rowcells[c]
         << std::string(width[c] - rowcells[c].size(), ' ');
    }
    os << "\n";
  }
  if (shown < num_rows()) {
    os << "... (" << num_rows() - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace sqlts
