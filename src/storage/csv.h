#ifndef SQLTS_STORAGE_CSV_H_
#define SQLTS_STORAGE_CSV_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "storage/table.h"

namespace sqlts {

/// Reads a CSV file whose first line is a header.  Column types are
/// taken from `schema` (which must name every header column).  Quoting:
/// double quotes with "" escapes; quoted fields may contain separators,
/// quotes, and newlines (record splitting is quote-aware).  CRLF record
/// terminators are accepted.  NULL semantics: an *unquoted* blank field
/// loads as NULL; a quoted field is always literal content, so empty
/// and whitespace-only strings survive a write/read round trip.
StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema);

/// Like ReadCsvFile but parses in-memory text (useful for tests).
StatusOr<Table> ReadCsvString(std::string_view text, const Schema& schema);

/// Writes `table` as CSV (header + rows).  Strings are quoted when they
/// contain separators, quotes, or CR/LF characters, and also when an
/// unquoted rendering would not read back as itself (empty string or
/// leading/trailing whitespace).  Doubles use shortest round-trip
/// formatting, so Write -> Read reproduces values exactly.
Status WriteCsvFile(const Table& table, const std::string& path);

/// Serializes `table` to CSV text.
std::string WriteCsvString(const Table& table);

}  // namespace sqlts

#endif  // SQLTS_STORAGE_CSV_H_
