#ifndef SQLTS_STORAGE_CSV_H_
#define SQLTS_STORAGE_CSV_H_

#include <string>
#include <string_view>

#include "common/governance.h"
#include "common/statusor.h"
#include "storage/table.h"

namespace sqlts {

/// Malformed-input handling for the CSV reader.
struct CsvReadOptions {
  /// kFailFast (default): any malformed record — wrong arity,
  /// unparseable value, a final record truncated inside a quoted field
  /// — fails the whole load with a ParseError naming the record's byte
  /// offset.  kSkipAndCount: the record is dropped and counted (see
  /// CsvReadStats); header problems always fail.
  BadInputPolicy bad_input = BadInputPolicy::kFailFast;
  /// Optional resource governance (not owned; may outlive the call on
  /// the caller's side).  The loader polls cancellation/deadline while
  /// parsing, and `max_buffered_bytes` bounds the loader's *working
  /// buffer*: file loading streams through a fixed-size chunk, so only
  /// a single record carried across a chunk boundary can grow it — a
  /// record larger than the budget fails with kResourceExhausted, while
  /// a file of any size whose records fit loads fine.  (The loaded
  /// Table itself is the caller's to account for.)
  const ExecGovernance* governance = nullptr;
};

/// Load accounting, filled when a `stats` out-param is supplied.
struct CsvReadStats {
  int64_t rows_loaded = 0;   ///< data rows appended to the table
  int64_t rows_skipped = 0;  ///< malformed rows dropped (kSkipAndCount)
};

/// Reads a CSV file whose first line is a header.  Column types are
/// taken from `schema` (which must name every header column).  Quoting:
/// double quotes with "" escapes; quoted fields may contain separators,
/// quotes, and newlines (record splitting is quote-aware).  CRLF record
/// terminators are accepted.  NULL semantics: an *unquoted* blank field
/// loads as NULL; a quoted field is always literal content, so empty
/// and whitespace-only strings survive a write/read round trip.
///
/// Files are parsed *streamingly* through a fixed-size read buffer —
/// peak memory is the growing Table plus O(chunk + longest record), not
/// file size + Table (the old slurp-then-parse shape doubled peak
/// memory on large inputs).  Record boundaries are found with the same
/// quote-aware scan as the in-memory parser, so chunk boundaries can
/// fall anywhere, including inside quoted fields.
StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                            const CsvReadOptions& options = {},
                            CsvReadStats* stats = nullptr);

/// Like ReadCsvFile but parses in-memory text (useful for tests).
StatusOr<Table> ReadCsvString(std::string_view text, const Schema& schema,
                              const CsvReadOptions& options = {},
                              CsvReadStats* stats = nullptr);

/// Writes `table` as CSV (header + rows).  Strings are quoted when they
/// contain separators, quotes, or CR/LF characters, and also when an
/// unquoted rendering would not read back as itself (empty string or
/// leading/trailing whitespace).  Doubles use shortest round-trip
/// formatting, so Write -> Read reproduces values exactly.
Status WriteCsvFile(const Table& table, const std::string& path);

/// Serializes `table` to CSV text.
std::string WriteCsvString(const Table& table);

}  // namespace sqlts

#endif  // SQLTS_STORAGE_CSV_H_
