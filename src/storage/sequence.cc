#include "storage/sequence.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace sqlts {
namespace {

/// Total order over rows of cluster-key values for map grouping.  NULLs
/// sort first; cross-type falls back to kind ordering (keys are expected
/// to be homogeneous per column anyway).
struct KeyLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      const Value& x = a[i];
      const Value& y = b[i];
      if (x.is_null() != y.is_null()) return x.is_null();
      if (x.is_null()) continue;
      auto cmp = x.Compare(y);
      if (!cmp.ok()) {
        if (x.kind() != y.kind()) return x.kind() < y.kind();
        continue;
      }
      if (*cmp != 0) return *cmp < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

StatusOr<ClusteredSequence> ClusteredSequence::Build(
    const Table* table, const std::vector<std::string>& cluster_by,
    const std::vector<std::string>& sequence_by) {
  SQLTS_CHECK(table != nullptr);
  std::vector<int> cluster_cols;
  for (const std::string& name : cluster_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, table->schema().FindColumn(name));
    cluster_cols.push_back(idx);
  }
  std::vector<int> seq_cols;
  for (const std::string& name : sequence_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, table->schema().FindColumn(name));
    seq_cols.push_back(idx);
  }

  // Group rows by cluster key, remembering first-appearance order.
  std::map<Row, int, KeyLess> key_to_slot;
  std::vector<Row> keys;
  std::vector<std::vector<int64_t>> groups;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    Row key;
    key.reserve(cluster_cols.size());
    for (int c : cluster_cols) key.push_back(table->at(r, c));
    auto it = key_to_slot.find(key);
    if (it == key_to_slot.end()) {
      it = key_to_slot.emplace(key, static_cast<int>(groups.size())).first;
      keys.push_back(key);
      groups.emplace_back();
    }
    groups[it->second].push_back(r);
  }

  // Sort each group by the sequence key (stable, ascending, NULLs first).
  Status sort_error = Status::OK();
  for (auto& group : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [&](int64_t a, int64_t b) {
                       for (int c : seq_cols) {
                         const Value& x = table->at(a, c);
                         const Value& y = table->at(b, c);
                         if (x.is_null() != y.is_null()) return x.is_null();
                         if (x.is_null()) continue;
                         auto cmp = x.Compare(y);
                         if (!cmp.ok()) {
                           if (sort_error.ok()) sort_error = cmp.status();
                           return false;
                         }
                         if (*cmp != 0) return *cmp < 0;
                       }
                       return false;
                     });
  }
  SQLTS_RETURN_IF_ERROR(sort_error);

  ClusteredSequence out;
  out.keys_ = std::move(keys);
  for (auto& group : groups) {
    out.clusters_.emplace_back(table, std::move(group));
  }
  return out;
}

}  // namespace sqlts
