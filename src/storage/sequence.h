#ifndef SQLTS_STORAGE_SEQUENCE_H_
#define SQLTS_STORAGE_SEQUENCE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "storage/table.h"

namespace sqlts {

/// One cluster of a table: an ordered run of row indices, all sharing the
/// same CLUSTER BY key, sorted by the SEQUENCE BY key.  This is the input
/// stream the pattern matchers traverse (paper Fig. 1).
class SequenceView {
 public:
  /// Owning form: the view keeps its own row-index vector.
  SequenceView(const Table* table, std::vector<int64_t> rows)
      : table_(table), owned_rows_(std::move(rows)), rows_(&owned_rows_) {}

  /// Borrowing form: `rows` must outlive the view (used by the
  /// streaming matcher, whose index grows with every push).
  SequenceView(const Table* table, const std::vector<int64_t>* rows)
      : table_(table), rows_(rows) {}

  SequenceView(const SequenceView& o)
      : table_(o.table_), owned_rows_(o.owned_rows_) {
    rows_ = o.rows_ == &o.owned_rows_ ? &owned_rows_ : o.rows_;
  }
  SequenceView(SequenceView&& o) noexcept
      : table_(o.table_), owned_rows_(std::move(o.owned_rows_)) {
    rows_ = o.rows_ == &o.owned_rows_ ? &owned_rows_ : o.rows_;
  }
  SequenceView& operator=(const SequenceView&) = delete;
  SequenceView& operator=(SequenceView&&) = delete;

  /// Number of tuples in this cluster's sequence.
  int64_t size() const { return static_cast<int64_t>(rows_->size()); }

  /// Value of column `col` of the tuple at sequence position `pos`
  /// (0-based).  Out-of-range positions are checked invariants; use
  /// `InRange` first for previous/next navigation.
  const Value& at(int64_t pos, int col) const {
    return table_->at((*rows_)[pos], col);
  }

  bool InRange(int64_t pos) const { return pos >= 0 && pos < size(); }

  /// Underlying table row index of sequence position `pos`.
  int64_t row_index(int64_t pos) const { return (*rows_)[pos]; }

  /// Raw row-index array (size() entries; the vectorized kernels hoist
  /// this once per block instead of indexing through at() per cell).
  const int64_t* row_data() const { return rows_->data(); }

  const Table& table() const { return *table_; }

 private:
  const Table* table_;  // not owned
  std::vector<int64_t> owned_rows_;
  const std::vector<int64_t>* rows_;
};

/// Result of applying CLUSTER BY + SEQUENCE BY to a table: one
/// SequenceView per distinct cluster key, clusters ordered by first
/// appearance, tuples within a cluster stably sorted by the sequence key.
class ClusteredSequence {
 public:
  /// Partitions `table` by `cluster_by` columns (may be empty: a single
  /// cluster) and sorts each partition by `sequence_by` columns
  /// ascending.  Errors if any named column is missing or a sort key has
  /// incomparable values.
  static StatusOr<ClusteredSequence> Build(
      const Table* table, const std::vector<std::string>& cluster_by,
      const std::vector<std::string>& sequence_by);

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const SequenceView& cluster(int i) const { return clusters_[i]; }
  /// The cluster key values (one per CLUSTER BY column) of cluster `i`.
  const Row& cluster_key(int i) const { return keys_[i]; }

 private:
  std::vector<SequenceView> clusters_;
  std::vector<Row> keys_;
};

}  // namespace sqlts

#endif  // SQLTS_STORAGE_SEQUENCE_H_
