#ifndef SQLTS_STORAGE_TABLE_H_
#define SQLTS_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "types/schema.h"
#include "types/value.h"

namespace sqlts {

/// An in-memory relation stored column-wise.  This is the substrate the
/// SQL-TS engine queries; rows are addressed by a dense 0-based index.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)), columns_(schema_.num_columns()) {}

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const {
    return columns_.empty() ? 0
                            : static_cast<int64_t>(columns_[0].size());
  }

  /// Appends `row`; InvalidArgument if arity or types mismatch the
  /// schema (NULLs are allowed in any column).
  Status AppendRow(Row row);

  /// Builds a table by adopting whole column vectors (the columnar
  /// reader's bulk path: no per-row re-boxing).  Columns must match the
  /// schema arity, share one length, and type-check cell-wise exactly
  /// like AppendRow (int64 cells coerce into double columns).
  static StatusOr<Table> FromColumns(Schema schema,
                                     std::vector<std::vector<Value>> columns);

  /// Value at (row, col); bounds are checked invariants.
  const Value& at(int64_t row, int col) const;

  /// Raw storage of one column (the vectorized kernels hoist this once
  /// per block instead of paying at()'s checks per cell).  `col` bounds
  /// are a checked invariant.
  const std::vector<Value>& column_data(int col) const {
    SQLTS_CHECK(col >= 0 && col < schema_.num_columns()) << "col " << col;
    return columns_[col];
  }

  /// Whole row materialized (mostly for tests and display).
  Row GetRow(int64_t row) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
};

}  // namespace sqlts

#endif  // SQLTS_STORAGE_TABLE_H_
