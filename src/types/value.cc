#include "types/value.h"

#include <charconv>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "types/numeric_ops.h"

namespace sqlts {

std::string_view TypeKindToString(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return "BOOL";
    case TypeKind::kInt64:
      return "INT64";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kDate:
      return "DATE";
  }
  return "?";
}

StatusOr<TypeKind> TypeKindFromString(std::string_view name) {
  std::string up = ToUpper(name);
  if (up == "BOOL" || up == "BOOLEAN") return TypeKind::kBool;
  if (up == "INT64" || up == "INT" || up == "INTEGER" || up == "BIGINT") {
    return TypeKind::kInt64;
  }
  if (up == "DOUBLE" || up == "FLOAT" || up == "REAL" || up == "NUMERIC") {
    return TypeKind::kDouble;
  }
  if (up == "STRING" || up == "TEXT" || StartsWith(up, "VARCHAR") ||
      StartsWith(up, "CHAR")) {
    return TypeKind::kString;
  }
  if (up == "DATE") return TypeKind::kDate;
  return Status::InvalidArgument("unknown type name: '" + std::string(name) +
                                 "'");
}

TypeKind Value::kind() const {
  switch (v_.index()) {
    case 0:
      return TypeKind::kNull;
    case 1:
      return TypeKind::kBool;
    case 2:
      return TypeKind::kInt64;
    case 3:
      return TypeKind::kDouble;
    case 4:
      return TypeKind::kString;
    case 5:
      return TypeKind::kDate;
  }
  return TypeKind::kNull;
}

bool Value::bool_value() const {
  SQLTS_CHECK(kind() == TypeKind::kBool) << "not a bool: " << ToString();
  return std::get<bool>(v_);
}

int64_t Value::int64_value() const {
  SQLTS_CHECK(kind() == TypeKind::kInt64) << "not an int64: " << ToString();
  return std::get<int64_t>(v_);
}

double Value::double_value() const {
  SQLTS_CHECK(kind() == TypeKind::kDouble) << "not a double: " << ToString();
  return std::get<double>(v_);
}

const std::string& Value::string_value() const {
  SQLTS_CHECK(kind() == TypeKind::kString) << "not a string: " << ToString();
  return std::get<std::string>(v_);
}

Date Value::date_value() const {
  SQLTS_CHECK(kind() == TypeKind::kDate) << "not a date: " << ToString();
  return std::get<Date>(v_);
}

double Value::AsDouble() const {
  switch (kind()) {
    case TypeKind::kInt64:
      return static_cast<double>(std::get<int64_t>(v_));
    case TypeKind::kDouble:
      return std::get<double>(v_);
    case TypeKind::kDate:
      return static_cast<double>(std::get<Date>(v_).days_since_epoch());
    default:
      SQLTS_CHECK(false) << "AsDouble on non-numeric value: " << ToString();
  }
  return 0.0;
}

StatusOr<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    return Status::InvalidArgument("comparison with NULL");
  }
  TypeKind a = kind(), b = other.kind();
  if (is_numeric() && other.is_numeric()) {
    // Mixed int64/double comparisons are exact for the full int64
    // range (no coercion through double, which is lossy above 2^53),
    // and doubles compare under a NaN-aware total order.  See
    // types/numeric_ops.h — the vectorized kernels use the same
    // helpers, so both evaluation tiers agree by construction.
    if (a == TypeKind::kInt64 && b == TypeKind::kInt64) {
      int64_t x = int64_value(), y = other.int64_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    if (a == TypeKind::kInt64) {
      return num::CompareI64F64(int64_value(), other.double_value());
    }
    if (b == TypeKind::kInt64) {
      return num::CompareF64I64(double_value(), other.int64_value());
    }
    return num::CompareF64(double_value(), other.double_value());
  }
  if (a != b) {
    return Status::TypeError(std::string("cannot compare ") +
                             std::string(TypeKindToString(a)) + " with " +
                             std::string(TypeKindToString(b)));
  }
  switch (a) {
    case TypeKind::kBool: {
      int x = bool_value() ? 1 : 0, y = other.bool_value() ? 1 : 0;
      return x - y;
    }
    case TypeKind::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeKind::kDate: {
      int32_t x = date_value().days_since_epoch(),
              y = other.date_value().days_since_epoch();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default:
      return Status::TypeError("incomparable kinds");
  }
}

bool Value::StructurallyEquals(const Value& other) const {
  if (kind() != other.kind()) {
    // Numeric cross-kind equality still counts as equal if the values
    // agree, so tests can compare Int64(3) with Double(3.0).
    if (is_numeric() && other.is_numeric()) {
      auto cmp = Compare(other);
      return cmp.ok() && *cmp == 0;
    }
    return false;
  }
  if (is_null()) return true;
  auto cmp = Compare(other);
  return cmp.ok() && *cmp == 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case TypeKind::kInt64:
      return std::to_string(int64_value());
    case TypeKind::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case TypeKind::kString:
      return "'" + string_value() + "'";
    case TypeKind::kDate:
      return date_value().ToString();
  }
  return "?";
}

StatusOr<Value> Value::ParseAs(TypeKind kind, std::string_view text) {
  text = StripWhitespace(text);
  switch (kind) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kBool: {
      if (EqualsIgnoreCase(text, "true") || text == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(text, "false") || text == "0") {
        return Value::Bool(false);
      }
      return Status::ParseError("bad bool: '" + std::string(text) + "'");
    }
    case TypeKind::kInt64: {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                     v);
      if (ec != std::errc() || p != text.data() + text.size()) {
        return Status::ParseError("bad int64: '" + std::string(text) + "'");
      }
      return Value::Int64(v);
    }
    case TypeKind::kDouble: {
      // std::from_chars for double is not available everywhere; strtod via
      // a NUL-terminated copy is fine for CSV-sized inputs.
      std::string copy(text);
      char* end = nullptr;
      double v = std::strtod(copy.c_str(), &end);
      if (end != copy.c_str() + copy.size() || copy.empty()) {
        return Status::ParseError("bad double: '" + copy + "'");
      }
      return Value::Double(v);
    }
    case TypeKind::kString:
      return Value::String(std::string(text));
    case TypeKind::kDate: {
      SQLTS_ASSIGN_OR_RETURN(Date d, Date::Parse(text));
      return Value::FromDate(d);
    }
  }
  return Status::InvalidArgument("bad kind");
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace sqlts
