#ifndef SQLTS_TYPES_NUMERIC_OPS_H_
#define SQLTS_TYPES_NUMERIC_OPS_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace sqlts {
namespace num {

/// Scalar numeric semantics shared by the expression interpreter
/// (expr/eval.cc, types/value.cc) and the vectorized predicate kernels
/// (expr/kernel.cc).  Both tiers call these helpers so they agree
/// bit-for-bit by construction:
///
///  - int64 + - * are checked; overflow yields SQL NULL instead of the
///    signed-overflow UB the pre-vectorization interpreter had.
///  - int64 vs double comparisons are exact for the full int64 range
///    (no round-trip through double, which collapses neighbours above
///    2^53).
///  - doubles compare under a total order: -0 == +0, and NaN is equal
///    to itself and greater than every non-NaN (the Postgres
///    convention), so sort comparators stay strict-weak-order safe and
///    NaN never silently equals ordinary numbers.
///  - double -> int64 day-count conversion for date arithmetic is
///    range-checked; NaN/±inf/out-of-range yield "no value" (NULL).

/// Checked int64 arithmetic: returns false (and leaves *out
/// unspecified) on overflow.
inline bool AddI64(int64_t x, int64_t y, int64_t* out) {
  return !__builtin_add_overflow(x, y, out);
}
inline bool SubI64(int64_t x, int64_t y, int64_t* out) {
  return !__builtin_sub_overflow(x, y, out);
}
inline bool MulI64(int64_t x, int64_t y, int64_t* out) {
  return !__builtin_mul_overflow(x, y, out);
}

/// Three-way double comparison under the total order described above.
inline int CompareF64(double x, double y) {
  bool nx = std::isnan(x), ny = std::isnan(y);
  if (nx || ny) {
    if (nx && ny) return 0;
    return nx ? 1 : -1;  // NaN sorts above every non-NaN
  }
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

/// Exact three-way comparison of an int64 against a double.  Never
/// converts x to double (lossy above 2^53); instead classifies y
/// against the int64 range and compares against trunc(y), which is
/// exactly representable whenever |y| < 2^63.
inline int CompareI64F64(int64_t x, double y) {
  if (std::isnan(y)) return -1;  // NaN is greater than any int64
  // 2^63 is exactly representable; every finite double >= it exceeds
  // all int64 values, and every double < -2^63 is below all of them.
  constexpr double kTwo63 = 9223372036854775808.0;
  if (y >= kTwo63) return -1;
  if (y < -kTwo63) return 1;
  // Here trunc(y) fits in int64.  If |y| >= 2^52 then y is already an
  // integer; otherwise trunc(y) is below 2^52 and exact as a double —
  // either way the cast and the fractional test below are exact.
  int64_t yi = static_cast<int64_t>(y);
  if (x < yi) return -1;
  if (x > yi) return 1;
  double frac = y - static_cast<double>(yi);
  if (frac > 0) return -1;
  if (frac < 0) return 1;
  return 0;
}

inline int CompareF64I64(double x, int64_t y) { return -CompareI64F64(y, x); }

/// Converts a double to an int64, failing on NaN and values outside
/// [-2^63, 2^63).  Truncates toward zero like a C cast, but without
/// the UB for unrepresentable inputs.
inline bool F64ToI64(double d, int64_t* out) {
  constexpr double kTwo63 = 9223372036854775808.0;
  if (std::isnan(d) || d >= kTwo63 || d < -kTwo63) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

/// Date day-offset arithmetic: days_since_epoch (int32 domain) plus a
/// signed int64 delta, failing when the result leaves the int32 date
/// domain (instead of the silent truncation + int32 overflow the old
/// interpreter performed).
inline bool AddDateDays(int32_t days, int64_t delta, int32_t* out) {
  int64_t r;
  if (!AddI64(static_cast<int64_t>(days), delta, &r)) return false;
  if (r < std::numeric_limits<int32_t>::min() ||
      r > std::numeric_limits<int32_t>::max()) {
    return false;
  }
  *out = static_cast<int32_t>(r);
  return true;
}

}  // namespace num
}  // namespace sqlts

#endif  // SQLTS_TYPES_NUMERIC_OPS_H_
