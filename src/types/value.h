#ifndef SQLTS_TYPES_VALUE_H_
#define SQLTS_TYPES_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "common/statusor.h"
#include "types/date.h"

namespace sqlts {

/// Physical type of a column or value.
enum class TypeKind : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Human-readable type name ("INT64", "DOUBLE", ...).
std::string_view TypeKindToString(TypeKind kind);

/// Parses a type name (case-insensitive, accepts SQL aliases such as
/// INTEGER and VARCHAR).
StatusOr<TypeKind> TypeKindFromString(std::string_view name);

/// A dynamically typed SQL value.  NULL is a distinct value; comparisons
/// involving NULL yield "unknown" which callers treat as not-satisfied.
class Value {
 public:
  /// Constructs NULL.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Int64(int64_t i) { return Value(Payload(i)); }
  static Value Double(double d) { return Value(Payload(d)); }
  static Value String(std::string s) { return Value(Payload(std::move(s))); }
  static Value FromDate(Date d) { return Value(Payload(d)); }

  TypeKind kind() const;

  bool is_null() const { return kind() == TypeKind::kNull; }
  bool is_numeric() const {
    TypeKind k = kind();
    return k == TypeKind::kInt64 || k == TypeKind::kDouble;
  }

  /// Typed accessors; it is a checked error to call the wrong one.
  bool bool_value() const;
  int64_t int64_value() const;
  double double_value() const;
  const std::string& string_value() const;
  Date date_value() const;

  /// Numeric view: int64 and double both convert; dates convert to their
  /// day number (so dates can participate in arithmetic like the paper's
  /// SEQUENCE BY ordering).  Checked error for other kinds.
  double AsDouble() const;

  /// Three-way comparison following SQL semantics within a type family;
  /// numerics compare cross-type.  Returns TypeError for incomparable
  /// kinds and InvalidArgument when either side is NULL.
  StatusOr<int> Compare(const Value& other) const;

  /// Structural equality (NULL == NULL here, unlike SQL `=`); suitable
  /// for tests and container use.
  bool StructurallyEquals(const Value& other) const;

  /// Inline variant peeks for batch code (the vectorized kernels read
  /// two cells per lane; the checked accessors above are out-of-line
  /// and verify the kind twice).  Non-null iff the payload holds
  /// exactly that alternative; a mismatch is the caller's decision,
  /// not an error.
  const bool* bool_if() const { return std::get_if<bool>(&v_); }
  const int64_t* int64_if() const { return std::get_if<int64_t>(&v_); }
  const double* double_if() const { return std::get_if<double>(&v_); }
  const Date* date_if() const { return std::get_if<Date>(&v_); }
  bool holds_null() const { return std::holds_alternative<std::monostate>(v_); }

  /// Renders the value for display ("NULL", 42, 3.5, 'abc', 1999-01-25).
  std::string ToString() const;

  /// Parses `text` as a value of `kind`.
  static StatusOr<Value> ParseAs(TypeKind kind, std::string_view text);

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date>;
  explicit Value(Payload v) : v_(std::move(v)) {}

  Payload v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace sqlts

#endif  // SQLTS_TYPES_VALUE_H_
