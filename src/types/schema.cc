#include "types/schema.h"

#include "common/string_util.h"

namespace sqlts {

StatusOr<int> Schema::FindColumn(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

Status Schema::AddColumn(std::string_view name, TypeKind type,
                         bool nullable, bool positive) {
  if (FindColumn(name).ok()) {
    return Status::AlreadyExists("duplicate column '" + std::string(name) +
                                 "'");
  }
  columns_.push_back(ColumnDef{std::string(name), type, nullable, positive});
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeKindToString(columns_[i].type);
    if (columns_[i].positive) out += " POSITIVE";
    if (columns_[i].nullable) out += " NULL";
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (num_columns() != other.num_columns()) return false;
  for (int i = 0; i < num_columns(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace sqlts
