#ifndef SQLTS_TYPES_DATE_H_
#define SQLTS_TYPES_DATE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace sqlts {

/// A calendar date stored as days since 1970-01-01 (proleptic Gregorian).
/// Supports the formats used in the paper's examples ("1/25/99") as well
/// as ISO "1999-01-25".
class Date {
 public:
  constexpr Date() : days_(0) {}
  constexpr explicit Date(int32_t days_since_epoch)
      : days_(days_since_epoch) {}

  /// Builds a Date from civil fields.  Returns InvalidArgument for
  /// out-of-range fields (month 1-12, day 1-31 with month/leap checks).
  static StatusOr<Date> FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD" or "M/D/YYYY" (two-digit years are interpreted
  /// in 1970..2069).
  static StatusOr<Date> Parse(std::string_view text);

  constexpr int32_t days_since_epoch() const { return days_; }

  /// Civil fields of this date.
  void ToYmd(int* year, int* month, int* day) const;

  /// ISO 8601 "YYYY-MM-DD".
  std::string ToString() const;

  Date AddDays(int32_t n) const { return Date(days_ + n); }

  constexpr bool operator==(const Date& o) const { return days_ == o.days_; }
  constexpr bool operator!=(const Date& o) const { return days_ != o.days_; }
  constexpr bool operator<(const Date& o) const { return days_ < o.days_; }
  constexpr bool operator<=(const Date& o) const { return days_ <= o.days_; }
  constexpr bool operator>(const Date& o) const { return days_ > o.days_; }
  constexpr bool operator>=(const Date& o) const { return days_ >= o.days_; }

 private:
  int32_t days_;
};

std::ostream& operator<<(std::ostream& os, const Date& d);

}  // namespace sqlts

#endif  // SQLTS_TYPES_DATE_H_
