#include "types/date.h"

#include <array>
#include <cstdio>

#include "common/string_util.h"

namespace sqlts {
namespace {

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

// Howard Hinnant's civil-to-days algorithm (public domain).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                          // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                       // [0, 146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;                     // [0, 11]
  const int64_t dd = doy - (153 * mp + 2) / 5 + 1;            // [1, 31]
  const int64_t mm = mp + (mp < 10 ? 3 : -9);                 // [1, 12]
  *y = static_cast<int>(yy + (mm <= 2));
  *m = static_cast<int>(mm);
  *d = static_cast<int>(dd);
}

bool ParseInt(std::string_view s, int* out) {
  if (s.empty()) return false;
  int v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1000000) return false;
  }
  *out = v;
  return true;
}

}  // namespace

StatusOr<Date> Date::FromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range");
  }
  return Date(static_cast<int32_t>(DaysFromCivil(year, month, day)));
}

StatusOr<Date> Date::Parse(std::string_view text) {
  text = StripWhitespace(text);
  int y = 0, m = 0, d = 0;
  if (text.find('-') != std::string_view::npos) {
    auto parts = SplitString(text, '-');
    if (parts.size() != 3 || !ParseInt(parts[0], &y) ||
        !ParseInt(parts[1], &m) || !ParseInt(parts[2], &d)) {
      return Status::ParseError("bad ISO date: '" + std::string(text) + "'");
    }
    return FromYmd(y, m, d);
  }
  if (text.find('/') != std::string_view::npos) {
    auto parts = SplitString(text, '/');
    if (parts.size() != 3 || !ParseInt(parts[0], &m) ||
        !ParseInt(parts[1], &d) || !ParseInt(parts[2], &y)) {
      return Status::ParseError("bad M/D/Y date: '" + std::string(text) +
                                "'");
    }
    if (y < 100) y += (y < 70) ? 2000 : 1900;
    return FromYmd(y, m, d);
  }
  return Status::ParseError("unrecognized date: '" + std::string(text) + "'");
}

void Date::ToYmd(int* year, int* month, int* day) const {
  CivilFromDays(days_, year, month, day);
}

std::string Date::ToString() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const Date& d) {
  return os << d.ToString();
}

}  // namespace sqlts
