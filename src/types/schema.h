#ifndef SQLTS_TYPES_SCHEMA_H_
#define SQLTS_TYPES_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "types/value.h"

namespace sqlts {

/// A named, typed column.
struct ColumnDef {
  std::string name;
  TypeKind type;
};

/// Ordered list of columns describing a Table's rows.  Column names are
/// case-insensitive (SQL convention).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name` (case-insensitive), or NotFound.
  StatusOr<int> FindColumn(std::string_view name) const;

  /// Appends a column; AlreadyExists if a same-named column is present.
  Status AddColumn(std::string_view name, TypeKind type);

  /// "name STRING, price DOUBLE, date DATE".
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
};

/// A row is just a vector of values positionally matching a Schema.
using Row = std::vector<Value>;

}  // namespace sqlts

#endif  // SQLTS_TYPES_SCHEMA_H_
