#ifndef SQLTS_TYPES_SCHEMA_H_
#define SQLTS_TYPES_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "types/value.h"

namespace sqlts {

/// A named, typed column.  `nullable` declares whether the column may
/// contain NULL.  The default is false — the paper's model assumes
/// non-null sequence attributes, and the compile-time θ/φ reasoning is
/// only complete under that assumption; declaring a column nullable
/// makes the optimizer degrade any deduction that would be unsound
/// under 3-valued logic (see pattern/theta_phi).  Storage does not
/// enforce the flag.
struct ColumnDef {
  std::string name;
  TypeKind type;
  bool nullable = false;
  /// Declares every (non-NULL) value of the column strictly positive.
  /// The paper's Sec 6 ratio reasoning runs the GSW procedure in the
  /// log domain, which is only sound on positive reals; the compiler
  /// enables that mode for a pattern only when every referenced column
  /// carries this declaration.  Storage does not enforce the flag.
  bool positive = false;
};

/// Ordered list of columns describing a Table's rows.  Column names are
/// case-insensitive (SQL convention).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name` (case-insensitive), or NotFound.
  StatusOr<int> FindColumn(std::string_view name) const;

  /// Appends a column; AlreadyExists if a same-named column is present.
  Status AddColumn(std::string_view name, TypeKind type,
                   bool nullable = false, bool positive = false);

  /// "name STRING, price DOUBLE, date DATE" (positive columns carry a
  /// trailing " POSITIVE", nullable columns a trailing " NULL").
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
};

/// A row is just a vector of values positionally matching a Schema.
using Row = std::vector<Value>;

}  // namespace sqlts

#endif  // SQLTS_TYPES_SCHEMA_H_
