#include "expr/kernel.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/logging.h"
#include "expr/eval.h"
#include "types/numeric_ops.h"

namespace sqlts {

void TriMask::Resize(int64_t n) {
  size = n;
  int64_t words = (n + 63) / 64;
  true_bits.assign(words, 0);
  null_bits.assign(words, 0);
}

kernel_internal::LaneBuf* KernelScratch::Prepare(int num_bufs) {
  if (static_cast<int>(bufs_.size()) < num_bufs) bufs_.resize(num_bufs);
  return bufs_.data();
}

namespace kernel_internal {
namespace {

/// Static lane type of a node's output.  kNull marks a statically-NULL
/// subtree (type mismatches the interpreter resolves to NULL at every
/// tuple resolve to NULL at compile time here).
enum class VType : uint8_t { kNull, kI64, kF64, kDate, kBool };

bool IsNumeric(VType t) { return t == VType::kI64 || t == VType::kF64; }

struct RunCtx {
  const SequenceView* seq;
  int64_t pos0;
  int lane0, lane1;  // active lanes [lane0, lane1)
  int w0, w1;        // words overlapping the active lanes
  LaneBuf* bufs;
  uint64_t escape[kKernelWords];  // lanes deferred to the interpreter
};

inline void SetBit(uint64_t* words, int l) {
  words[l >> 6] |= uint64_t{1} << (l & 63);
}

inline void ZeroRange(uint64_t* words, const RunCtx& ctx) {
  for (int w = ctx.w0; w < ctx.w1; ++w) words[w] = 0;
}

inline void FillRange(uint64_t* words, const RunCtx& ctx) {
  for (int w = ctx.w0; w < ctx.w1; ++w) words[w] = ~uint64_t{0};
}

/// Canonical boolean masks: a lane's true bit is only meaningful (and
/// only set) when its null bit is clear — every bool-producing node
/// re-establishes this, so word-parallel Kleene algebra stays exact.
inline void Canonicalize(LaneBuf* b, const RunCtx& ctx) {
  for (int w = ctx.w0; w < ctx.w1; ++w) b->true_bits[w] &= ~b->null_bits[w];
}

inline bool CmpHolds(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

/// Numeric lane read mirroring Value::AsDouble's int64 widening.
inline double LaneF64(const LaneBuf& b, VType t, int l) {
  return t == VType::kF64 ? b.f64[l] : static_cast<double>(b.i64[l]);
}

enum class CellSt : uint8_t { kOk, kNull, kEscape };

/// Hoisted raw access to one column of the view's table: the pointer
/// chases and bounds checks behind SequenceView::at cost more than the
/// comparison itself when paid per cell, so each node hoists a cursor
/// once per block and lanes pay one range check + two loads.
///
/// Load semantics match the interpreter exactly: out-of-range
/// positions are NULL (navigation off the sequence), NULL cells are
/// NULL, and a cell whose runtime kind does not match the declared
/// column type (Table enforces this, so only a hypothetical future
/// ingest path could produce one) escapes the lane to the interpreter
/// rather than guessing.
struct ColCursor {
  const Value* data;
  const int64_t* rows;
  int64_t n;

  ColCursor(const SequenceView& seq, int col)
      : data(seq.table().column_data(col).data()),
        rows(seq.row_data()),
        n(seq.size()) {}

  CellSt Load(int64_t p, VType t, int64_t* i64v, double* f64v) const {
    if (p < 0 || p >= n) return CellSt::kNull;
    const Value& v = data[rows[p]];
    switch (t) {
      case VType::kI64:
        if (const int64_t* x = v.int64_if()) {
          *i64v = *x;
          return CellSt::kOk;
        }
        break;
      case VType::kF64:
        if (const double* x = v.double_if()) {
          *f64v = *x;
          return CellSt::kOk;
        }
        break;
      case VType::kDate:
        if (const Date* x = v.date_if()) {
          *i64v = x->days_since_epoch();
          return CellSt::kOk;
        }
        break;
      case VType::kBool:
        if (const bool* x = v.bool_if()) {
          *i64v = *x ? 1 : 0;
          return CellSt::kOk;
        }
        break;
      default:
        return CellSt::kEscape;
    }
    return v.holds_null() ? CellSt::kNull : CellSt::kEscape;
  }
};

}  // namespace

struct Node {
  VType type = VType::kNull;
  int out = -1;  // this node's LaneBuf index

  virtual ~Node() = default;
  virtual void Run(RunCtx* ctx) const = 0;
  /// Non-null for compile-time-constant nodes (enables folding).
  virtual const Value* AsConst() const { return nullptr; }
};

namespace {

struct NullNode : Node {
  Value null_value;  // NULL

  NullNode() { type = VType::kNull; }
  void Run(RunCtx* ctx) const override {
    LaneBuf& o = ctx->bufs[out];
    FillRange(o.null_bits, *ctx);
    ZeroRange(o.true_bits, *ctx);
  }
  const Value* AsConst() const override { return &null_value; }
};

struct ConstNode : Node {
  Value value;

  explicit ConstNode(Value v) : value(std::move(v)) {
    switch (value.kind()) {
      case TypeKind::kBool:
        type = VType::kBool;
        break;
      case TypeKind::kInt64:
        type = VType::kI64;
        break;
      case TypeKind::kDouble:
        type = VType::kF64;
        break;
      case TypeKind::kDate:
        type = VType::kDate;
        break;
      default:
        type = VType::kNull;
        break;
    }
  }
  void Run(RunCtx* ctx) const override {
    LaneBuf& o = ctx->bufs[out];
    ZeroRange(o.null_bits, *ctx);
    switch (type) {
      case VType::kBool:
        if (value.bool_value()) {
          FillRange(o.true_bits, *ctx);
        } else {
          ZeroRange(o.true_bits, *ctx);
        }
        break;
      case VType::kI64:
        for (int l = ctx->lane0; l < ctx->lane1; ++l) {
          o.i64[l] = value.int64_value();
        }
        break;
      case VType::kF64:
        for (int l = ctx->lane0; l < ctx->lane1; ++l) {
          o.f64[l] = value.double_value();
        }
        break;
      case VType::kDate:
        for (int l = ctx->lane0; l < ctx->lane1; ++l) {
          o.i64[l] = value.date_value().days_since_epoch();
        }
        break;
      case VType::kNull:
        FillRange(o.null_bits, *ctx);
        ZeroRange(o.true_bits, *ctx);
        break;
    }
  }
  const Value* AsConst() const override { return &value; }
};

/// Columnar extraction: gathers one (column, relative offset) stream
/// into raw lanes.  Shared (memoized) across every use site in the
/// predicate, so each cell is unboxed once per block.
struct LoadNode : Node {
  int col;
  int off;

  LoadNode(int c, int o, VType t) : col(c), off(o) { type = t; }
  void Run(RunCtx* ctx) const override {
    LaneBuf& o = ctx->bufs[out];
    ZeroRange(o.null_bits, *ctx);
    if (type == VType::kBool) ZeroRange(o.true_bits, *ctx);
    const ColCursor cur(*ctx->seq, col);
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      int64_t iv;
      double fv;
      CellSt st = cur.Load(ctx->pos0 + l + off, type, &iv, &fv);
      if (st == CellSt::kOk) {
        if (type == VType::kF64) {
          o.f64[l] = fv;
        } else if (type == VType::kBool) {
          if (iv != 0) SetBit(o.true_bits, l);
        } else {
          o.i64[l] = iv;
        }
      } else {
        SetBit(o.null_bits, l);
        if (st == CellSt::kEscape) SetBit(ctx->escape, l);
      }
    }
  }
};

/// Checked int64 + - * (division never takes this node: it is always
/// evaluated in the double domain, matching the interpreter).
struct ArithI64Node : Node {
  ArithOp op;
  int a, b;

  ArithI64Node(ArithOp o, int x, int y) : op(o), a(x), b(y) {
    type = VType::kI64;
  }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    const LaneBuf& B = ctx->bufs[b];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      o.null_bits[w] = A.null_bits[w] | B.null_bits[w];
    }
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      int64_t r = 0;
      bool ok;
      switch (op) {
        case ArithOp::kAdd:
          ok = num::AddI64(A.i64[l], B.i64[l], &r);
          break;
        case ArithOp::kSub:
          ok = num::SubI64(A.i64[l], B.i64[l], &r);
          break;
        default:
          ok = num::MulI64(A.i64[l], B.i64[l], &r);
          break;
      }
      o.i64[l] = r;
      if (!ok) SetBit(o.null_bits, l);
    }
  }
};

/// Double-domain arithmetic (any mixed numeric combination, and all
/// division).  x / 0 is NULL, like the interpreter.
struct ArithF64Node : Node {
  ArithOp op;
  int a, b;
  VType ta, tb;

  ArithF64Node(ArithOp o, int x, VType xt, int y, VType yt)
      : op(o), a(x), b(y), ta(xt), tb(yt) {
    type = VType::kF64;
  }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    const LaneBuf& B = ctx->bufs[b];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      o.null_bits[w] = A.null_bits[w] | B.null_bits[w];
    }
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      double x = LaneF64(A, ta, l), y = LaneF64(B, tb, l);
      switch (op) {
        case ArithOp::kAdd:
          o.f64[l] = x + y;
          break;
        case ArithOp::kSub:
          o.f64[l] = x - y;
          break;
        case ArithOp::kMul:
          o.f64[l] = x * y;
          break;
        case ArithOp::kDiv:
          if (y == 0) {
            SetBit(o.null_bits, l);
            o.f64[l] = 0;
          } else {
            o.f64[l] = x / y;
          }
          break;
      }
    }
  }
};

/// DATE - DATE -> day count (int32 day values subtract exactly in
/// int64).
struct DateSubDateNode : Node {
  int a, b;

  DateSubDateNode(int x, int y) : a(x), b(y) { type = VType::kI64; }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    const LaneBuf& B = ctx->bufs[b];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      o.null_bits[w] = A.null_bits[w] | B.null_bits[w];
    }
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      o.i64[l] = A.i64[l] - B.i64[l];
    }
  }
};

/// DATE ± numeric day count -> DATE, with the interpreter's guards:
/// non-finite / out-of-int64 doubles and results outside the int32
/// date domain are NULL.
struct DateShiftNode : Node {
  int date, days;
  VType days_type;
  bool negate;

  DateShiftNode(int d, int n, VType nt, bool neg)
      : date(d), days(n), days_type(nt), negate(neg) {
    type = VType::kDate;
  }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& D = ctx->bufs[date];
    const LaneBuf& N = ctx->bufs[days];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      o.null_bits[w] = D.null_bits[w] | N.null_bits[w];
    }
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      int64_t delta;
      if (days_type == VType::kI64) {
        delta = N.i64[l];
      } else if (!num::F64ToI64(N.f64[l], &delta)) {
        SetBit(o.null_bits, l);
        continue;
      }
      if (negate) {
        if (delta == std::numeric_limits<int64_t>::min()) {
          SetBit(o.null_bits, l);
          continue;
        }
        delta = -delta;
      }
      int32_t d;
      if (!num::AddDateDays(static_cast<int32_t>(D.i64[l]), delta, &d)) {
        SetBit(o.null_bits, l);
        continue;
      }
      o.i64[l] = d;
    }
  }
};

/// Generic comparison over numeric / date lanes, exact across the
/// int64/double boundary (types/numeric_ops.h).
struct CmpNode : Node {
  CmpOp op;
  int a, b;
  VType ta, tb;

  CmpNode(CmpOp o, int x, VType xt, int y, VType yt)
      : op(o), a(x), b(y), ta(xt), tb(yt) {
    type = VType::kBool;
  }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    const LaneBuf& B = ctx->bufs[b];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      o.null_bits[w] = A.null_bits[w] | B.null_bits[w];
    }
    ZeroRange(o.true_bits, *ctx);
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      int c;
      if (ta == VType::kF64) {
        c = tb == VType::kF64 ? num::CompareF64(A.f64[l], B.f64[l])
                              : num::CompareF64I64(A.f64[l], B.i64[l]);
      } else if (tb == VType::kF64) {
        c = num::CompareI64F64(A.i64[l], B.f64[l]);
      } else {
        // int64 vs int64, or date vs date (day numbers).
        c = A.i64[l] < B.i64[l] ? -1 : (A.i64[l] > B.i64[l] ? 1 : 0);
      }
      if (CmpHolds(op, c)) SetBit(o.true_bits, l);
    }
    Canonicalize(&o, *ctx);
  }
};

/// BOOL vs BOOL comparison, word-parallel (false < true).
struct BoolCmpNode : Node {
  CmpOp op;
  int a, b;

  BoolCmpNode(CmpOp o, int x, int y) : op(o), a(x), b(y) {
    type = VType::kBool;
  }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    const LaneBuf& B = ctx->bufs[b];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      uint64_t ta = A.true_bits[w], tb = B.true_bits[w];
      uint64_t t;
      switch (op) {
        case CmpOp::kEq:
          t = ~(ta ^ tb);
          break;
        case CmpOp::kNe:
          t = ta ^ tb;
          break;
        case CmpOp::kLt:
          t = ~ta & tb;
          break;
        case CmpOp::kLe:
          t = ~ta | tb;
          break;
        case CmpOp::kGt:
          t = ta & ~tb;
          break;
        default:
          t = ta | ~tb;
          break;
      }
      o.null_bits[w] = A.null_bits[w] | B.null_bits[w];
      o.true_bits[w] = t & ~o.null_bits[w];
    }
  }
};

/// Word-parallel Kleene AND / OR / NOT.
struct AndNode : Node {
  int a, b;

  AndNode(int x, int y) : a(x), b(y) { type = VType::kBool; }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    const LaneBuf& B = ctx->bufs[b];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      uint64_t fa = ~A.true_bits[w] & ~A.null_bits[w];
      uint64_t fb = ~B.true_bits[w] & ~B.null_bits[w];
      o.true_bits[w] = A.true_bits[w] & B.true_bits[w];
      o.null_bits[w] = (A.null_bits[w] | B.null_bits[w]) & ~fa & ~fb;
    }
  }
};

struct OrNode : Node {
  int a, b;

  OrNode(int x, int y) : a(x), b(y) { type = VType::kBool; }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    const LaneBuf& B = ctx->bufs[b];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      o.true_bits[w] = A.true_bits[w] | B.true_bits[w];
      o.null_bits[w] =
          (A.null_bits[w] | B.null_bits[w]) & ~o.true_bits[w];
    }
  }
};

struct NotNode : Node {
  int a;

  explicit NotNode(int x) : a(x) { type = VType::kBool; }
  void Run(RunCtx* ctx) const override {
    const LaneBuf& A = ctx->bufs[a];
    LaneBuf& o = ctx->bufs[out];
    for (int w = ctx->w0; w < ctx->w1; ++w) {
      o.true_bits[w] = ~A.true_bits[w] & ~A.null_bits[w];
      o.null_bits[w] = A.null_bits[w];
    }
  }
};

/// Fused fast path: column CMP literal in a single gather+compare
/// loop.  Covers the catalogs' most common conjunct shape
/// (X.price > 100, X.date <= DATE '...').
struct ColCmpLitNode : Node {
  int col, off;
  VType ct;  // column lane type
  CmpOp op;
  Value lit;

  ColCmpLitNode(int c, int o, VType t, CmpOp p, Value v)
      : col(c), off(o), ct(t), op(p), lit(std::move(v)) {
    type = VType::kBool;
  }
  void Run(RunCtx* ctx) const override {
    LaneBuf& o = ctx->bufs[out];
    ZeroRange(o.null_bits, *ctx);
    ZeroRange(o.true_bits, *ctx);
    const ColCursor cur(*ctx->seq, col);
    const bool lit_f64 = lit.kind() == TypeKind::kDouble;
    const double lf = lit_f64 ? lit.double_value() : 0;
    const int64_t li = lit.kind() == TypeKind::kInt64 ? lit.int64_value()
                       : lit.kind() == TypeKind::kDate
                           ? lit.date_value().days_since_epoch()
                       : lit.kind() == TypeKind::kBool
                           ? (lit.bool_value() ? 1 : 0)
                           : 0;
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      int64_t iv;
      double fv;
      CellSt st = cur.Load(ctx->pos0 + l + off, ct, &iv, &fv);
      if (st != CellSt::kOk) {
        SetBit(o.null_bits, l);
        if (st == CellSt::kEscape) SetBit(ctx->escape, l);
        continue;
      }
      int c;
      if (ct == VType::kF64) {
        c = lit_f64 ? num::CompareF64(fv, lf) : num::CompareF64I64(fv, li);
      } else if (lit_f64) {
        c = num::CompareI64F64(iv, lf);
      } else {
        c = iv < li ? -1 : (iv > li ? 1 : 0);
      }
      if (CmpHolds(op, c)) SetBit(o.true_bits, l);
    }
  }
};

/// Fused fast path: column CMP column (possibly at different relative
/// offsets) — the shape of every tuple-vs-previous-tuple trend
/// predicate in the paper's examples.
struct ColCmpColNode : Node {
  int cola, offa;
  VType ta;
  int colb, offb;
  VType tb;
  CmpOp op;

  ColCmpColNode(int ca, int oa, VType xa, int cb, int ob, VType xb, CmpOp p)
      : cola(ca), offa(oa), ta(xa), colb(cb), offb(ob), tb(xb), op(p) {
    type = VType::kBool;
  }
  void Run(RunCtx* ctx) const override {
    LaneBuf& o = ctx->bufs[out];
    ZeroRange(o.null_bits, *ctx);
    ZeroRange(o.true_bits, *ctx);
    const ColCursor cura(*ctx->seq, cola);
    const ColCursor curb(*ctx->seq, colb);
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      int64_t ia, ib;
      double fa, fb;
      CellSt sa = cura.Load(ctx->pos0 + l + offa, ta, &ia, &fa);
      CellSt sb = curb.Load(ctx->pos0 + l + offb, tb, &ib, &fb);
      if (sa != CellSt::kOk || sb != CellSt::kOk) {
        SetBit(o.null_bits, l);
        if (sa == CellSt::kEscape || sb == CellSt::kEscape) {
          SetBit(ctx->escape, l);
        }
        continue;
      }
      int c;
      if (ta == VType::kF64) {
        c = tb == VType::kF64 ? num::CompareF64(fa, fb)
                              : num::CompareF64I64(fa, ib);
      } else if (tb == VType::kF64) {
        c = num::CompareI64F64(ia, fb);
      } else {
        c = ia < ib ? -1 : (ia > ib ? 1 : 0);
      }
      if (CmpHolds(op, c)) SetBit(o.true_bits, l);
    }
  }
};

/// Fused fast path: column CMP literal * column — ratio predicates
/// such as Y.price < 0.98 * X.previous.price.  Mirrors EvalArith's
/// type rules exactly: int64 literal * int64 column is checked int64
/// multiplication (overflow -> NULL); any double operand moves the
/// product to the double domain.
struct ColCmpScaledColNode : Node {
  int cola, offa;
  VType ta;
  Value lit;
  int colb, offb;
  VType tb;
  CmpOp op;

  ColCmpScaledColNode(int ca, int oa, VType xa, Value v, int cb, int ob,
                      VType xb, CmpOp p)
      : cola(ca),
        offa(oa),
        ta(xa),
        lit(std::move(v)),
        colb(cb),
        offb(ob),
        tb(xb),
        op(p) {
    type = VType::kBool;
  }
  void Run(RunCtx* ctx) const override {
    LaneBuf& o = ctx->bufs[out];
    ZeroRange(o.null_bits, *ctx);
    ZeroRange(o.true_bits, *ctx);
    const ColCursor cura(*ctx->seq, cola);
    const ColCursor curb(*ctx->seq, colb);
    const bool int_mul =
        lit.kind() == TypeKind::kInt64 && tb == VType::kI64;
    const double lf = lit.kind() == TypeKind::kDouble
                          ? lit.double_value()
                          : static_cast<double>(lit.int64_value());
    const int64_t li = lit.kind() == TypeKind::kInt64 ? lit.int64_value() : 0;
    for (int l = ctx->lane0; l < ctx->lane1; ++l) {
      int64_t ia, ib;
      double fa, fb;
      CellSt sa = cura.Load(ctx->pos0 + l + offa, ta, &ia, &fa);
      CellSt sb = curb.Load(ctx->pos0 + l + offb, tb, &ib, &fb);
      if (sa != CellSt::kOk || sb != CellSt::kOk) {
        SetBit(o.null_bits, l);
        if (sa == CellSt::kEscape || sb == CellSt::kEscape) {
          SetBit(ctx->escape, l);
        }
        continue;
      }
      int c;
      if (int_mul) {
        int64_t m;
        if (!num::MulI64(li, ib, &m)) {
          SetBit(o.null_bits, l);
          continue;
        }
        c = ta == VType::kI64 ? (ia < m ? -1 : (ia > m ? 1 : 0))
                              : num::CompareF64I64(fa, m);
      } else {
        double m = lf * (tb == VType::kF64 ? fb : static_cast<double>(ib));
        c = ta == VType::kI64 ? num::CompareI64F64(ia, m)
                              : num::CompareF64(fa, m);
      }
      if (CmpHolds(op, c)) SetBit(o.true_bits, l);
    }
  }
};

}  // namespace
}  // namespace kernel_internal

namespace {

using kernel_internal::IsNumeric;
using kernel_internal::LaneBuf;
using kernel_internal::Node;
using kernel_internal::RunCtx;
using VType = kernel_internal::VType;  // NOLINT

}  // namespace

/// Compiles an Expr tree into a post-order node program.  Every helper
/// returns a node index, or -1 when the expression leaves the
/// vectorized subset (the whole compile then fails and callers use the
/// interpreter).  Type mismatches the interpreter would resolve to
/// NULL per tuple become statically-NULL nodes instead — same answers,
/// decided once.
struct KernelBuilder {
  const Schema* schema;
  std::vector<std::unique_ptr<Node>> nodes;
  std::map<std::pair<int, int>, int> load_memo;  // (col, offset) -> node
  int min_off = 0;
  int max_off = 0;

  int Add(std::unique_ptr<Node> n) {
    n->out = static_cast<int>(nodes.size());
    nodes.push_back(std::move(n));
    return nodes.back()->out;
  }

  int MakeNull() { return Add(std::make_unique<kernel_internal::NullNode>()); }

  int MakeConst(Value v) {
    if (v.is_null()) return MakeNull();
    if (v.kind() == TypeKind::kString) return -1;
    return Add(std::make_unique<kernel_internal::ConstNode>(std::move(v)));
  }

  /// Column lane type for a supported relative reference; VType::kNull
  /// on failure (unresolved/anchored refs, string columns).
  bool ColumnInfo(const ColumnRef& r, int* col, int* off, VType* t) const {
    if (!r.relative || r.column_index < 0) return false;
    switch (schema->column(r.column_index).type) {
      case TypeKind::kInt64:
        *t = VType::kI64;
        break;
      case TypeKind::kDouble:
        *t = VType::kF64;
        break;
      case TypeKind::kDate:
        *t = VType::kDate;
        break;
      case TypeKind::kBool:
        *t = VType::kBool;
        break;
      default:
        return false;
    }
    *col = r.column_index;
    *off = r.total_offset;
    return true;
  }

  void NoteOffset(int off) {
    min_off = std::min(min_off, off);
    max_off = std::max(max_off, off);
  }

  int BuildLoad(const ColumnRef& r) {
    int col, off;
    VType t;
    if (!ColumnInfo(r, &col, &off, &t)) return -1;
    NoteOffset(off);
    auto it = load_memo.find({col, off});
    if (it != load_memo.end()) return it->second;
    int idx = Add(std::make_unique<kernel_internal::LoadNode>(col, off, t));
    load_memo[{col, off}] = idx;
    return idx;
  }

  /// Interpreter-folds an operation whose operands are compile-time
  /// constants (synthesizing a literal expression keeps folding and
  /// runtime evaluation on the same code path, so they cannot drift).
  int FoldBinary(const Expr& e, const Value& a, const Value& b) {
    ExprPtr synth;
    switch (e.kind) {
      case ExprKind::kArith:
        synth = MakeArith(e.arith_op, MakeLiteral(a), MakeLiteral(b));
        break;
      case ExprKind::kCompare:
        synth = MakeCompare(e.cmp_op, MakeLiteral(a), MakeLiteral(b));
        break;
      case ExprKind::kAnd:
        synth = MakeAnd(MakeLiteral(a), MakeLiteral(b));
        break;
      case ExprKind::kOr:
        synth = MakeOr(MakeLiteral(a), MakeLiteral(b));
        break;
      default:
        return -1;
    }
    return MakeConst(EvalExpr(*synth, EvalContext{}));
  }

  /// Tries the fused comparison shapes; -2 means "no fusion, build
  /// generically", -1 means compile failure.
  int TryFuseCompare(const Expr& e) {
    const Expr& L = *e.lhs;
    const Expr& R = *e.rhs;
    // Normalize to column-on-the-left via SwapOp.
    if (L.kind != ExprKind::kColumnRef && R.kind == ExprKind::kColumnRef) {
      Expr swapped = e;
      swapped.cmp_op = SwapOp(e.cmp_op);
      swapped.lhs = e.rhs;
      swapped.rhs = e.lhs;
      return TryFuseCompare(swapped);
    }
    if (L.kind != ExprKind::kColumnRef) return -2;
    int col, off;
    VType ct;
    if (!ColumnInfo(L.ref, &col, &off, &ct)) return -2;

    if (R.kind == ExprKind::kLiteral) {
      const Value& v = R.literal;
      bool ok = (IsNumeric(ct) && v.is_numeric()) ||
                (ct == VType::kDate && v.kind() == TypeKind::kDate) ||
                (ct == VType::kBool && v.kind() == TypeKind::kBool);
      if (!ok) return -2;
      NoteOffset(off);
      return Add(std::make_unique<kernel_internal::ColCmpLitNode>(
          col, off, ct, e.cmp_op, v));
    }
    if (R.kind == ExprKind::kColumnRef) {
      int colb, offb;
      VType tb;
      if (!ColumnInfo(R.ref, &colb, &offb, &tb)) return -2;
      bool ok = (IsNumeric(ct) && IsNumeric(tb)) ||
                (ct == VType::kDate && tb == VType::kDate);
      if (!ok) return -2;
      NoteOffset(off);
      NoteOffset(offb);
      return Add(std::make_unique<kernel_internal::ColCmpColNode>(
          col, off, ct, colb, offb, tb, e.cmp_op));
    }
    if (R.kind == ExprKind::kArith && R.arith_op == ArithOp::kMul &&
        IsNumeric(ct)) {
      const Expr* lit = nullptr;
      const Expr* colref = nullptr;
      if (R.lhs->kind == ExprKind::kLiteral &&
          R.rhs->kind == ExprKind::kColumnRef) {
        lit = R.lhs.get();
        colref = R.rhs.get();
      } else if (R.rhs->kind == ExprKind::kLiteral &&
                 R.lhs->kind == ExprKind::kColumnRef) {
        lit = R.rhs.get();
        colref = R.lhs.get();
      } else {
        return -2;
      }
      if (!lit->literal.is_numeric()) return -2;
      int colb, offb;
      VType tb;
      if (!ColumnInfo(colref->ref, &colb, &offb, &tb) || !IsNumeric(tb)) {
        return -2;
      }
      NoteOffset(off);
      NoteOffset(offb);
      return Add(std::make_unique<kernel_internal::ColCmpScaledColNode>(
          col, off, ct, lit->literal, colb, offb, tb, e.cmp_op));
    }
    return -2;
  }

  int BuildArith(const Expr& e) {
    int a = Build(*e.lhs);
    if (a < 0) return -1;
    int b = Build(*e.rhs);
    if (b < 0) return -1;
    const Value* ca = nodes[a]->AsConst();
    const Value* cb = nodes[b]->AsConst();
    if (ca != nullptr && cb != nullptr) return FoldBinary(e, *ca, *cb);
    VType ta = nodes[a]->type, tb = nodes[b]->type;
    if (ta == VType::kNull || tb == VType::kNull) return MakeNull();
    if (ta == VType::kDate) {
      if (tb == VType::kDate && e.arith_op == ArithOp::kSub) {
        return Add(std::make_unique<kernel_internal::DateSubDateNode>(a, b));
      }
      if (IsNumeric(tb) && (e.arith_op == ArithOp::kAdd ||
                            e.arith_op == ArithOp::kSub)) {
        return Add(std::make_unique<kernel_internal::DateShiftNode>(
            a, b, tb, e.arith_op == ArithOp::kSub));
      }
      return MakeNull();
    }
    if (tb == VType::kDate) {
      if (IsNumeric(ta) && e.arith_op == ArithOp::kAdd) {
        return Add(std::make_unique<kernel_internal::DateShiftNode>(
            b, a, ta, /*negate=*/false));
      }
      return MakeNull();
    }
    if (!IsNumeric(ta) || !IsNumeric(tb)) return MakeNull();
    if (ta == VType::kI64 && tb == VType::kI64 &&
        e.arith_op != ArithOp::kDiv) {
      return Add(
          std::make_unique<kernel_internal::ArithI64Node>(e.arith_op, a, b));
    }
    return Add(std::make_unique<kernel_internal::ArithF64Node>(e.arith_op, a,
                                                               ta, b, tb));
  }

  int BuildCompare(const Expr& e) {
    int fused = TryFuseCompare(e);
    if (fused != -2) return fused;
    int a = Build(*e.lhs);
    if (a < 0) return -1;
    int b = Build(*e.rhs);
    if (b < 0) return -1;
    const Value* ca = nodes[a]->AsConst();
    const Value* cb = nodes[b]->AsConst();
    if (ca != nullptr && cb != nullptr) return FoldBinary(e, *ca, *cb);
    VType ta = nodes[a]->type, tb = nodes[b]->type;
    if (ta == VType::kNull || tb == VType::kNull) return MakeNull();
    if (IsNumeric(ta) && IsNumeric(tb)) {
      return Add(std::make_unique<kernel_internal::CmpNode>(e.cmp_op, a, ta,
                                                            b, tb));
    }
    if (ta == VType::kDate && tb == VType::kDate) {
      return Add(std::make_unique<kernel_internal::CmpNode>(e.cmp_op, a, ta,
                                                            b, tb));
    }
    if (ta == VType::kBool && tb == VType::kBool) {
      return Add(
          std::make_unique<kernel_internal::BoolCmpNode>(e.cmp_op, a, b));
    }
    // Mixed type families: the interpreter's TypeError -> NULL.
    return MakeNull();
  }

  /// Coerces a node to a boolean operand for AND/OR/NOT: the
  /// interpreter treats any non-bool, non-NULL operand value as NULL.
  int AsBoolOperand(int idx) {
    VType t = nodes[idx]->type;
    if (t == VType::kBool || t == VType::kNull) return idx;
    return MakeNull();
  }

  int BuildLogic(const Expr& e) {
    int a = Build(*e.lhs);
    if (a < 0) return -1;
    if (e.kind == ExprKind::kNot) {
      a = AsBoolOperand(a);
      const Value* ca = nodes[a]->AsConst();
      if (ca != nullptr) {
        return MakeConst(EvalExpr(*MakeNot(MakeLiteral(*ca)), EvalContext{}));
      }
      return Add(std::make_unique<kernel_internal::NotNode>(a));
    }
    int b = Build(*e.rhs);
    if (b < 0) return -1;
    a = AsBoolOperand(a);
    b = AsBoolOperand(b);
    const Value* ca = nodes[a]->AsConst();
    const Value* cb = nodes[b]->AsConst();
    if (ca != nullptr && cb != nullptr) return FoldBinary(e, *ca, *cb);
    // Kleene absorption/identity against a constant side: FALSE
    // dominates AND, TRUE dominates OR, and the neutral element
    // reduces to the other operand.
    auto const_bool = [](const Value* v, bool which) {
      return v != nullptr && v->kind() == TypeKind::kBool &&
             v->bool_value() == which;
    };
    if (e.kind == ExprKind::kAnd) {
      if (const_bool(ca, false) || const_bool(cb, false)) {
        return MakeConst(Value::Bool(false));
      }
      if (const_bool(ca, true)) return b;
      if (const_bool(cb, true)) return a;
      return Add(std::make_unique<kernel_internal::AndNode>(a, b));
    }
    if (const_bool(ca, true) || const_bool(cb, true)) {
      return MakeConst(Value::Bool(true));
    }
    if (const_bool(ca, false)) return b;
    if (const_bool(cb, false)) return a;
    return Add(std::make_unique<kernel_internal::OrNode>(a, b));
  }

  int Build(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return MakeConst(e.literal);
      case ExprKind::kColumnRef:
        return BuildLoad(e.ref);
      case ExprKind::kAggregate:
        return -1;
      case ExprKind::kArith:
        return BuildArith(e);
      case ExprKind::kCompare:
        return BuildCompare(e);
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kNot:
        return BuildLogic(e);
    }
    return -1;
  }
};

PredicateKernel::~PredicateKernel() = default;

std::unique_ptr<PredicateKernel> PredicateKernel::Compile(
    const ExprPtr& expr, const Schema& schema) {
  if (expr == nullptr) return nullptr;
  KernelBuilder builder;
  builder.schema = &schema;
  int root = builder.Build(*expr);
  if (root < 0) return nullptr;
  VType rt = builder.nodes[root]->type;
  // Only boolean-valued (or statically NULL) roots make sense as
  // predicates; a numeric root is never TRUE, but it is exotic enough
  // to leave to the interpreter.
  if (rt != VType::kBool && rt != VType::kNull) return nullptr;
  auto kernel = std::unique_ptr<PredicateKernel>(new PredicateKernel());
  kernel->nodes_ = std::move(builder.nodes);
  kernel->expr_ = expr;
  kernel->root_ = root;
  kernel->min_offset_ = builder.min_off;
  kernel->max_offset_ = builder.max_off;
  return kernel;
}

void PredicateKernel::EvalBlock(const SequenceView& seq, int64_t pos0,
                                int lane0, int lane1, KernelScratch* scratch,
                                BlockVerdict* out) const {
  SQLTS_CHECK(lane0 >= 0 && lane0 <= lane1 && lane1 <= kKernelBlock);
  RunCtx ctx;
  ctx.seq = &seq;
  ctx.pos0 = pos0;
  ctx.lane0 = lane0;
  ctx.lane1 = lane1;
  ctx.w0 = lane0 >> 6;
  ctx.w1 = (lane1 + 63) >> 6;
  ctx.bufs = scratch->Prepare(static_cast<int>(nodes_.size()));
  for (int w = 0; w < kKernelWords; ++w) {
    ctx.escape[w] = 0;
    out->true_bits[w] = 0;
    out->null_bits[w] = 0;
  }
  if (lane0 >= lane1) return;
  for (const auto& node : nodes_) node->Run(&ctx);

  uint64_t range[kKernelWords] = {0, 0, 0, 0};
  for (int l = lane0; l < lane1; ++l) kernel_internal::SetBit(range, l);
  const LaneBuf& r = ctx.bufs[root_];
  bool escaped = false;
  for (int w = ctx.w0; w < ctx.w1; ++w) {
    uint64_t live = range[w] & ~ctx.escape[w];
    out->null_bits[w] = r.null_bits[w] & live;
    out->true_bits[w] = r.true_bits[w] & ~r.null_bits[w] & live;
    if ((ctx.escape[w] & range[w]) != 0) escaped = true;
  }
  if (!escaped) return;
  // Lanes whose cells had unexpected runtime kinds: defer to the
  // interpreter (always-correct path) lane by lane.
  for (int l = lane0; l < lane1; ++l) {
    if (((ctx.escape[l >> 6] >> (l & 63)) & 1) == 0) continue;
    EvalContext ectx;
    ectx.seq = &seq;
    ectx.pos = pos0 + l;
    Value v = EvalExpr(*expr_, ectx);
    if (v.kind() == TypeKind::kBool) {
      if (v.bool_value()) kernel_internal::SetBit(out->true_bits, l);
    } else {
      kernel_internal::SetBit(out->null_bits, l);
    }
  }
}

void PredicateKernel::Eval(const SequenceView& seq, int64_t start, int64_t n,
                           KernelScratch* scratch, TriMask* out) const {
  out->Resize(n);
  BlockVerdict bv;
  for (int64_t done = 0; done < n; done += kKernelBlock) {
    int lanes = static_cast<int>(std::min<int64_t>(kKernelBlock, n - done));
    EvalBlock(seq, start + done, 0, lanes, scratch, &bv);
    int64_t word0 = done / 64;  // done is a multiple of 256
    for (int w = 0; w < kKernelWords && word0 + w < static_cast<int64_t>(
                                                        out->true_bits.size());
         ++w) {
      out->true_bits[word0 + w] = bv.true_bits[w];
      out->null_bits[word0 + w] = bv.null_bits[w];
    }
  }
}

}  // namespace sqlts
