#ifndef SQLTS_EXPR_EVAL_H_
#define SQLTS_EXPR_EVAL_H_

#include <cstdint>
#include <vector>

#include "expr/expr.h"
#include "storage/sequence.h"

namespace sqlts {

/// Input span matched by one pattern element (inclusive sequence
/// positions); `first == -1` means not (yet) matched.
struct GroupSpan {
  int64_t first = -1;
  int64_t last = -1;
  bool valid() const { return first >= 0; }
};

/// Everything an expression needs at evaluation time: the input
/// sequence, the position of the tuple under test (for relative
/// references), and the spans matched so far (for anchored references
/// and for SELECT-list evaluation over a completed match).
struct EvalContext {
  const SequenceView* seq = nullptr;
  int64_t pos = 0;
  const std::vector<GroupSpan>* spans = nullptr;
};

/// Evaluates `e` under SQL semantics: any reference outside the
/// sequence, navigation off a missing group, NULL operand, or type
/// mismatch yields NULL, which propagates.
Value EvalExpr(const Expr& e, const EvalContext& ctx);

/// Evaluates a boolean predicate and collapses 3-valued logic: returns
/// true iff the result is TRUE (NULL and FALSE both reject, as in SQL
/// WHERE).
bool EvalPredicate(const Expr& e, const EvalContext& ctx);

}  // namespace sqlts

#endif  // SQLTS_EXPR_EVAL_H_
