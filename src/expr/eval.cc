#include "expr/eval.h"

#include <limits>

#include "common/logging.h"
#include "types/numeric_ops.h"

namespace sqlts {
namespace {

/// Resolves a column reference to a sequence position, or -1 when the
/// reference navigates outside the sequence / into an unmatched group.
int64_t ResolvePosition(const ColumnRef& r, const EvalContext& ctx) {
  int64_t base = -1;
  if (r.relative) {
    base = ctx.pos + r.total_offset;
  } else {
    if (ctx.spans == nullptr || r.element < 0 ||
        r.element >= static_cast<int>(ctx.spans->size())) {
      return -1;
    }
    const GroupSpan& span = (*ctx.spans)[r.element];
    if (!span.valid()) return -1;
    switch (r.accessor) {
      case GroupAccessor::kFirst:
        base = span.first;
        break;
      case GroupAccessor::kLast:
        base = span.last;
        break;
      case GroupAccessor::kCurrent:
        // Anchored "current" reference: for a single-tuple group this is
        // the tuple itself; for a star group we use its first tuple
        // (navigation like X.next then steps off the group edge, which
        // is what the paper's X.NEXT means for non-star X).
        base = span.first;
        break;
    }
    // Navigation from the group edge: .previous steps before the first
    // tuple, .next steps after the last tuple.
    if (r.nav_offset > 0 && r.accessor != GroupAccessor::kFirst) {
      base = span.last;
    }
  }
  // Relative refs fold all navigation into total_offset already.
  int64_t p = r.relative ? base : base + r.nav_offset;
  if (ctx.seq == nullptr || !ctx.seq->InRange(p)) return -1;
  return p;
}

Value EvalColumnRef(const ColumnRef& r, const EvalContext& ctx) {
  int64_t p = ResolvePosition(r, ctx);
  if (p < 0) return Value::Null();
  SQLTS_CHECK(r.column_index >= 0)
      << "unresolved column reference '" << r.column << "'";
  return ctx.seq->at(p, r.column_index);
}

/// Extracts a day-count operand for date arithmetic.  Int64 operands
/// are used directly; doubles truncate toward zero like the old code
/// but NaN/±inf/out-of-int64-range inputs fail instead of invoking UB.
bool DayCount(const Value& v, int64_t* out) {
  if (v.kind() == TypeKind::kInt64) {
    *out = v.int64_value();
    return true;
  }
  return num::F64ToI64(v.double_value(), out);
}

Value DatePlusDays(Date d, int64_t days, bool negate) {
  if (negate) {
    // -INT64_MIN does not exist; it cannot land in the date range
    // anyway, so treat it as the same out-of-range NULL.
    if (days == std::numeric_limits<int64_t>::min()) return Value::Null();
    days = -days;
  }
  int32_t out_days;
  if (!num::AddDateDays(d.days_since_epoch(), days, &out_days)) {
    return Value::Null();
  }
  return Value::FromDate(Date(out_days));
}

Value EvalArith(ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  // Calendar arithmetic: DATE ± days → DATE, DATE − DATE → days.
  // Results that leave the int32 date domain are NULL (out of range),
  // as are non-finite day counts — the old casts were UB on both.
  if (a.kind() == TypeKind::kDate) {
    if (b.kind() == TypeKind::kDate && op == ArithOp::kSub) {
      return Value::Int64(static_cast<int64_t>(a.date_value()
                                                   .days_since_epoch()) -
                          b.date_value().days_since_epoch());
    }
    if (b.is_numeric() && (op == ArithOp::kAdd || op == ArithOp::kSub)) {
      int64_t days;
      if (!DayCount(b, &days)) return Value::Null();
      return DatePlusDays(a.date_value(), days, op == ArithOp::kSub);
    }
    return Value::Null();
  }
  if (b.kind() == TypeKind::kDate) {
    // days + DATE → DATE.
    if (a.is_numeric() && op == ArithOp::kAdd) {
      int64_t days;
      if (!DayCount(a, &days)) return Value::Null();
      return DatePlusDays(b.date_value(), days, /*negate=*/false);
    }
    return Value::Null();
  }
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  if (a.kind() == TypeKind::kInt64 && b.kind() == TypeKind::kInt64 &&
      op != ArithOp::kDiv) {
    // Checked integer arithmetic: overflow is NULL, not UB.  Division
    // stays in the double domain below (so 7 / 2 = 3.5, and x / 0 is
    // NULL rather than a trap).
    int64_t x = a.int64_value(), y = b.int64_value(), r;
    bool ok = false;
    switch (op) {
      case ArithOp::kAdd:
        ok = num::AddI64(x, y, &r);
        break;
      case ArithOp::kSub:
        ok = num::SubI64(x, y, &r);
        break;
      case ArithOp::kMul:
        ok = num::MulI64(x, y, &r);
        break;
      default:
        break;
    }
    return ok ? Value::Int64(r) : Value::Null();
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(x + y);
    case ArithOp::kSub:
      return Value::Double(x - y);
    case ArithOp::kMul:
      return Value::Double(x * y);
    case ArithOp::kDiv:
      if (y == 0) return Value::Null();
      return Value::Double(x / y);
  }
  return Value::Null();
}

Value EvalCompare(CmpOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  auto cmp = a.Compare(b);
  if (!cmp.ok()) return Value::Null();
  int c = *cmp;
  switch (op) {
    case CmpOp::kEq:
      return Value::Bool(c == 0);
    case CmpOp::kNe:
      return Value::Bool(c != 0);
    case CmpOp::kLt:
      return Value::Bool(c < 0);
    case CmpOp::kLe:
      return Value::Bool(c <= 0);
    case CmpOp::kGt:
      return Value::Bool(c > 0);
    case CmpOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Value::Null();
}

}  // namespace

namespace {

/// Aggregates over the span matched by e.ref's pattern element.  NULL
/// cells are ignored (SQL semantics); an all-NULL or unmatched group
/// yields NULL except for COUNT.
Value EvalAggregate(const Expr& e, const EvalContext& ctx) {
  if (ctx.spans == nullptr || e.ref.element < 0 ||
      e.ref.element >= static_cast<int>(ctx.spans->size())) {
    return Value::Null();
  }
  const GroupSpan& span = (*ctx.spans)[e.ref.element];
  if (!span.valid()) {
    return e.agg_op == AggOp::kCount ? Value::Int64(0) : Value::Null();
  }
  if (e.agg_op == AggOp::kCount) {
    return Value::Int64(span.last - span.first + 1);
  }
  SQLTS_CHECK(e.ref.column_index >= 0) << "unresolved aggregate column";
  double sum = 0;
  int64_t n = 0;
  Value best = Value::Null();
  for (int64_t p = span.first; p <= span.last; ++p) {
    if (ctx.seq == nullptr || !ctx.seq->InRange(p)) continue;
    const Value& v = ctx.seq->at(p, e.ref.column_index);
    if (v.is_null()) continue;
    switch (e.agg_op) {
      case AggOp::kSum:
      case AggOp::kAvg:
        if (!v.is_numeric()) return Value::Null();
        sum += v.AsDouble();
        ++n;
        break;
      case AggOp::kMin:
      case AggOp::kMax: {
        if (best.is_null()) {
          best = v;
        } else {
          auto cmp = v.Compare(best);
          if (!cmp.ok()) return Value::Null();
          if ((e.agg_op == AggOp::kMin && *cmp < 0) ||
              (e.agg_op == AggOp::kMax && *cmp > 0)) {
            best = v;
          }
        }
        break;
      }
      default:
        break;
    }
  }
  switch (e.agg_op) {
    case AggOp::kSum:
      return n == 0 ? Value::Null() : Value::Double(sum);
    case AggOp::kAvg:
      return n == 0 ? Value::Null() : Value::Double(sum / n);
    case AggOp::kMin:
    case AggOp::kMax:
      return best;
    default:
      return Value::Null();
  }
}

}  // namespace

Value EvalExpr(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      return EvalColumnRef(e.ref, ctx);
    case ExprKind::kAggregate:
      return EvalAggregate(e, ctx);
    case ExprKind::kArith:
      return EvalArith(e.arith_op, EvalExpr(*e.lhs, ctx),
                       EvalExpr(*e.rhs, ctx));
    case ExprKind::kCompare:
      return EvalCompare(e.cmp_op, EvalExpr(*e.lhs, ctx),
                         EvalExpr(*e.rhs, ctx));
    case ExprKind::kAnd: {
      // Kleene AND with short-circuit on FALSE.
      Value a = EvalExpr(*e.lhs, ctx);
      if (!a.is_null() && a.kind() == TypeKind::kBool && !a.bool_value()) {
        return Value::Bool(false);
      }
      Value b = EvalExpr(*e.rhs, ctx);
      if (!b.is_null() && b.kind() == TypeKind::kBool && !b.bool_value()) {
        return Value::Bool(false);
      }
      if (a.is_null() || b.is_null()) return Value::Null();
      if (a.kind() != TypeKind::kBool || b.kind() != TypeKind::kBool) {
        return Value::Null();
      }
      return Value::Bool(a.bool_value() && b.bool_value());
    }
    case ExprKind::kOr: {
      Value a = EvalExpr(*e.lhs, ctx);
      if (!a.is_null() && a.kind() == TypeKind::kBool && a.bool_value()) {
        return Value::Bool(true);
      }
      Value b = EvalExpr(*e.rhs, ctx);
      if (!b.is_null() && b.kind() == TypeKind::kBool && b.bool_value()) {
        return Value::Bool(true);
      }
      if (a.is_null() || b.is_null()) return Value::Null();
      if (a.kind() != TypeKind::kBool || b.kind() != TypeKind::kBool) {
        return Value::Null();
      }
      return Value::Bool(a.bool_value() || b.bool_value());
    }
    case ExprKind::kNot: {
      Value a = EvalExpr(*e.lhs, ctx);
      if (a.is_null() || a.kind() != TypeKind::kBool) return Value::Null();
      return Value::Bool(!a.bool_value());
    }
  }
  return Value::Null();
}

bool EvalPredicate(const Expr& e, const EvalContext& ctx) {
  Value v = EvalExpr(e, ctx);
  return !v.is_null() && v.kind() == TypeKind::kBool && v.bool_value();
}

}  // namespace sqlts
