#ifndef SQLTS_EXPR_EXPR_H_
#define SQLTS_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "constraints/atom.h"
#include "types/value.h"

namespace sqlts {

/// How a column reference addresses the tuples matched by a pattern
/// variable (paper Sec 2 and Example 8's FIRST()/LAST()).
enum class GroupAccessor : uint8_t {
  kCurrent,  ///< the tuple under test (WHERE) / the group itself (SELECT)
  kFirst,    ///< FIRST(X) — first tuple matched by X
  kLast,     ///< LAST(X) — last tuple matched by X
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Half-open byte range [begin, end) into the query text an expression
/// was parsed from; invalid (begin < 0) for synthesized expressions.
/// Spans survive the analyzer's reference-resolution rewrites, so
/// static-analysis diagnostics can point at the offending conjunct.
struct SourceSpan {
  int begin = -1;
  int end = -1;

  bool valid() const { return begin >= 0 && end >= begin; }
  /// Smallest span covering both (an invalid side is ignored).
  static SourceSpan Union(const SourceSpan& a, const SourceSpan& b);
};

/// Expression node kinds.
enum class ExprKind : uint8_t {
  kLiteral,    ///< constant Value
  kColumnRef,  ///< X.previous.price, FIRST(X).date, ...
  kArith,      ///< + - * / (binary), unary minus encoded as 0 - x
  kCompare,    ///< = <> < <= > >=
  kAnd,
  kOr,
  kNot,
  kAggregate,  ///< COUNT(Y) / SUM(Y.price) / AVG / MIN / MAX over a group
};

/// Aggregate function over the tuples matched by one pattern element
/// (SELECT-list only; a library extension in the spirit of the paper's
/// FIRST()/LAST() accessors).
enum class AggOp : uint8_t { kCount, kSum, kAvg, kMin, kMax };

/// Arithmetic operator for kArith nodes.
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

/// A (possibly navigated) reference to a column of a pattern variable.
///
/// Unresolved form (as parsed): `var`, `accessor`, `nav_offset`
/// (accumulated .previous/.next steps, previous = -1) and `column`.
/// The semantic analyzer fills the resolved fields.
struct ColumnRef {
  std::string var;     ///< pattern variable name as written; "" in schema-less contexts
  GroupAccessor accessor = GroupAccessor::kCurrent;
  int nav_offset = 0;  ///< net .previous (-1 each) / .next (+1 each) steps
  std::string column;  ///< attribute name

  // ----- filled by semantic analysis -----
  int element = -1;       ///< pattern element index of `var`
  int column_index = -1;  ///< column position in the table schema
  /// True when the reference is evaluated relative to the tuple under
  /// test (offset addressing); false when anchored to a (completed)
  /// group's span (cross-element or FIRST/LAST reference).
  bool relative = true;
  /// For relative refs: total offset from the tuple under test.
  int total_offset = 0;
};

/// Immutable expression tree node.  Construct via the factory helpers.
struct Expr {
  ExprKind kind;
  // kLiteral
  Value literal;
  // kColumnRef
  ColumnRef ref;
  // kArith / kCompare / kAnd / kOr (binary); kNot uses lhs only.
  ArithOp arith_op = ArithOp::kAdd;
  CmpOp cmp_op = CmpOp::kEq;
  // kAggregate: function applied to `ref` (whose var names the group;
  // ref.column is empty for COUNT(X)).
  AggOp agg_op = AggOp::kCount;
  ExprPtr lhs;
  ExprPtr rhs;

  /// Where the expression came from in the query text (for
  /// diagnostics); invalid for synthesized nodes.
  SourceSpan span;

  /// Renders the expression (for messages and EXPLAIN output).
  std::string ToString() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(ColumnRef ref);
ExprPtr MakeAggregate(AggOp op, ColumnRef ref);
ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeCompare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr operand);

/// Returns a copy of `e` carrying `span` (expression nodes are
/// immutable, so the parser attaches positions by copy).
ExprPtr WithSpan(ExprPtr e, SourceSpan span);

/// Splits a conjunction into its top-level conjuncts (flattens kAnd).
void FlattenConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Calls `fn` on every ColumnRef in the tree.
void VisitColumnRefs(const ExprPtr& e,
                     const std::function<void(const ColumnRef&)>& fn);

/// Deep-copies the tree applying `fn` to every ColumnRef (returns the
/// rewritten tree; used by semantic analysis to resolve references).
ExprPtr RewriteColumnRefs(const ExprPtr& e,
                          const std::function<ColumnRef(const ColumnRef&)>& fn);

}  // namespace sqlts

#endif  // SQLTS_EXPR_EXPR_H_
