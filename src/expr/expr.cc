#include "expr/expr.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace sqlts {
namespace {

std::string ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

std::string RefToString(const ColumnRef& r) {
  std::string out;
  switch (r.accessor) {
    case GroupAccessor::kFirst:
      out = "FIRST(" + r.var + ")";
      break;
    case GroupAccessor::kLast:
      out = "LAST(" + r.var + ")";
      break;
    case GroupAccessor::kCurrent:
      out = r.var;
      break;
  }
  for (int i = 0; i < -r.nav_offset; ++i) out += ".previous";
  for (int i = 0; i < r.nav_offset; ++i) out += ".next";
  if (!out.empty()) out += ".";
  out += r.column;
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return RefToString(ref);
    case ExprKind::kAggregate: {
      const char* name = "COUNT";
      switch (agg_op) {
        case AggOp::kCount:
          name = "COUNT";
          break;
        case AggOp::kSum:
          name = "SUM";
          break;
        case AggOp::kAvg:
          name = "AVG";
          break;
        case AggOp::kMin:
          name = "MIN";
          break;
        case AggOp::kMax:
          name = "MAX";
          break;
      }
      std::string inner = ref.var;
      if (!ref.column.empty()) inner += "." + ref.column;
      return std::string(name) + "(" + inner + ")";
    }
    case ExprKind::kArith:
      return "(" + lhs->ToString() + " " + ArithOpToString(arith_op) + " " +
             rhs->ToString() + ")";
    case ExprKind::kCompare:
      return lhs->ToString() + " " + CmpOpToString(cmp_op) + " " +
             rhs->ToString();
    case ExprKind::kAnd:
      return "(" + lhs->ToString() + " AND " + rhs->ToString() + ")";
    case ExprKind::kOr:
      return "(" + lhs->ToString() + " OR " + rhs->ToString() + ")";
    case ExprKind::kNot:
      return "NOT (" + lhs->ToString() + ")";
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(ColumnRef ref) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->ref = std::move(ref);
  return e;
}

ExprPtr MakeAggregate(AggOp op, ColumnRef ref) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_op = op;
  e->ref = std::move(ref);
  return e;
}

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kArith;
  e->arith_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeCompare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCompare;
  e->cmp_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAnd;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kOr;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeNot(ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->lhs = std::move(operand);
  return e;
}

SourceSpan SourceSpan::Union(const SourceSpan& a, const SourceSpan& b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  return SourceSpan{std::min(a.begin, b.begin), std::max(a.end, b.end)};
}

ExprPtr WithSpan(ExprPtr e, SourceSpan span) {
  if (e == nullptr) return e;
  auto copy = std::make_shared<Expr>(*e);
  copy->span = span;
  return copy;
}

void FlattenConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  SQLTS_CHECK(e != nullptr);
  if (e->kind == ExprKind::kAnd) {
    FlattenConjuncts(e->lhs, out);
    FlattenConjuncts(e->rhs, out);
  } else {
    out->push_back(e);
  }
}

void VisitColumnRefs(const ExprPtr& e,
                     const std::function<void(const ColumnRef&)>& fn) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef || e->kind == ExprKind::kAggregate) {
    fn(e->ref);
  }
  VisitColumnRefs(e->lhs, fn);
  VisitColumnRefs(e->rhs, fn);
}

ExprPtr RewriteColumnRefs(
    const ExprPtr& e,
    const std::function<ColumnRef(const ColumnRef&)>& fn) {
  if (e == nullptr) return nullptr;
  auto out = std::make_shared<Expr>(*e);
  if (e->kind == ExprKind::kColumnRef || e->kind == ExprKind::kAggregate) {
    out->ref = fn(e->ref);
  }
  out->lhs = RewriteColumnRefs(e->lhs, fn);
  out->rhs = RewriteColumnRefs(e->rhs, fn);
  return out;
}

}  // namespace sqlts
