#ifndef SQLTS_EXPR_NORMALIZE_H_
#define SQLTS_EXPR_NORMALIZE_H_

#include <optional>

#include "constraints/catalog.h"
#include "constraints/system.h"
#include "expr/expr.h"
#include "intervals/interval_set.h"
#include "types/schema.h"

namespace sqlts {

/// Result of compiling a pattern-element predicate into the constraint
/// language the GSW procedure reasons about.
///
/// `system` holds the captured atoms, one per captured conjunct, so the
/// per-conjunct negations needed for the φ matrix are exactly the
/// per-atom negations.  `complete` records whether *every* conjunct was
/// captured; implications whose conclusion (or whose negated premise)
/// involves uncaptured residue are not claimed (paper-safe: entries
/// degrade to U).
///
/// When the whole predicate is a (possibly disjunctive) condition on a
/// single variable, `interval` holds its exact solution set — the
/// extension-[13] oracle that also covers OR / NOT.
struct PredicateAnalysis {
  ConstraintSystem system;
  bool complete = true;

  /// One captured disjunctive conjunct (extension [13]): the conjunct is
  /// the OR of `disjuncts`, each fully captured as a constraint system.
  struct OrGroup {
    std::vector<ConstraintSystem> disjuncts;
    /// True when every disjunct is a single atom, which makes the
    /// group's negation expressible as one conjunction (needed for the
    /// φ-matrix enumeration).
    bool single_atom_disjuncts = true;
  };
  /// Captured OR conjuncts; the full predicate is
  /// `system ∧ ⋀ or_groups` (∧ residue when !complete).
  std::vector<OrGroup> or_groups;

  bool has_interval = false;
  VarId interval_var = kNoVar;
  IntervalSet interval;

  /// Variables over declared-NULLABLE columns referenced anywhere in the
  /// predicate — including conjuncts that folded away as real-arithmetic
  /// tautologies (vol = vol is *not* a tautology when vol may be NULL:
  /// it evaluates to unknown, which is unsatisfied).  The GSW solver
  /// reasons in two-valued logic over the reals, so the implication
  /// oracle must degrade any deduction whose soundness would rely on one
  /// of these variables being non-NULL.  Sorted, deduplicated.
  std::vector<VarId> nullable_vars;
  /// A nullable column was referenced in a form not attributable to a
  /// constraint variable; blocks every nullability-gated deduction.
  bool nullable_residue = false;
};

/// Compiles a resolved predicate (relative column references only; the
/// semantic analyzer guarantees this for pattern-element predicates) to
/// its constraint-form analysis.  Never fails: anything unrecognized
/// just leaves `complete == false`.
PredicateAnalysis AnalyzePredicate(const ExprPtr& pred, const Schema& schema,
                                   VariableCatalog* catalog);

/// Interns the variable naming convention used by the analyzer:
/// "<column-name>@<offset>", e.g. "price@0", "price@-1".
VarId InternPatternVar(VariableCatalog* catalog, const std::string& column,
                       int offset);

}  // namespace sqlts

#endif  // SQLTS_EXPR_NORMALIZE_H_
