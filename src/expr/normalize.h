#ifndef SQLTS_EXPR_NORMALIZE_H_
#define SQLTS_EXPR_NORMALIZE_H_

#include <optional>

#include "constraints/catalog.h"
#include "constraints/system.h"
#include "expr/expr.h"
#include "intervals/interval_set.h"
#include "types/schema.h"

namespace sqlts {

/// Result of compiling a pattern-element predicate into the constraint
/// language the GSW procedure reasons about.
///
/// `system` holds the captured atoms, one per captured conjunct, so the
/// per-conjunct negations needed for the φ matrix are exactly the
/// per-atom negations.  `complete` records whether *every* conjunct was
/// captured; implications whose conclusion (or whose negated premise)
/// involves uncaptured residue are not claimed (paper-safe: entries
/// degrade to U).
///
/// When the whole predicate is a (possibly disjunctive) condition on a
/// single variable, `interval` holds its exact solution set — the
/// extension-[13] oracle that also covers OR / NOT.
struct PredicateAnalysis {
  ConstraintSystem system;
  bool complete = true;

  /// One captured disjunctive conjunct (extension [13]): the conjunct is
  /// the OR of `disjuncts`, each fully captured as a constraint system.
  struct OrGroup {
    std::vector<ConstraintSystem> disjuncts;
    /// True when every disjunct is a single atom, which makes the
    /// group's negation expressible as one conjunction (needed for the
    /// φ-matrix enumeration).
    bool single_atom_disjuncts = true;
  };
  /// Captured OR conjuncts; the full predicate is
  /// `system ∧ ⋀ or_groups` (∧ residue when !complete).
  std::vector<OrGroup> or_groups;

  bool has_interval = false;
  VarId interval_var = kNoVar;
  IntervalSet interval;
};

/// Compiles a resolved predicate (relative column references only; the
/// semantic analyzer guarantees this for pattern-element predicates) to
/// its constraint-form analysis.  Never fails: anything unrecognized
/// just leaves `complete == false`.
PredicateAnalysis AnalyzePredicate(const ExprPtr& pred, const Schema& schema,
                                   VariableCatalog* catalog);

/// Interns the variable naming convention used by the analyzer:
/// "<column-name>@<offset>", e.g. "price@0", "price@-1".
VarId InternPatternVar(VariableCatalog* catalog, const std::string& column,
                       int offset);

}  // namespace sqlts

#endif  // SQLTS_EXPR_NORMALIZE_H_
