#include "expr/normalize.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace sqlts {
namespace {

/// A linear combination Σ coef·var + constant, or invalid.
struct LinForm {
  std::map<VarId, double> coef;
  double constant = 0;
  bool valid = true;

  void Prune() {
    for (auto it = coef.begin(); it != coef.end();) {
      if (it->second == 0) {
        it = coef.erase(it);
      } else {
        ++it;
      }
    }
  }
};

/// True when `ref` can participate in numeric constraint reasoning: a
/// relative reference to a numeric or date column.
bool IsNumericRelativeRef(const ColumnRef& ref, const Schema& schema) {
  if (!ref.relative || ref.column_index < 0) return false;
  TypeKind t = schema.column(ref.column_index).type;
  return t == TypeKind::kInt64 || t == TypeKind::kDouble ||
         t == TypeKind::kDate;
}

/// Numeric value of a literal usable as a constraint constant.
std::optional<double> LiteralConstant(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kInt64:
    case TypeKind::kDouble:
    case TypeKind::kDate:
      return v.AsDouble();
    default:
      return std::nullopt;
  }
}

LinForm Invalid() {
  LinForm f;
  f.valid = false;
  return f;
}

LinForm ExtractLinForm(const Expr& e, const Schema& schema,
                       VariableCatalog* catalog) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      auto c = LiteralConstant(e.literal);
      if (!c) return Invalid();
      LinForm f;
      f.constant = *c;
      return f;
    }
    case ExprKind::kColumnRef: {
      if (!IsNumericRelativeRef(e.ref, schema)) return Invalid();
      LinForm f;
      VarId v = InternPatternVar(catalog,
                                 schema.column(e.ref.column_index).name,
                                 e.ref.total_offset);
      f.coef[v] += 1.0;
      return f;
    }
    case ExprKind::kArith: {
      LinForm a = ExtractLinForm(*e.lhs, schema, catalog);
      LinForm b = ExtractLinForm(*e.rhs, schema, catalog);
      if (!a.valid || !b.valid) return Invalid();
      switch (e.arith_op) {
        case ArithOp::kAdd:
        case ArithOp::kSub: {
          double sign = e.arith_op == ArithOp::kAdd ? 1.0 : -1.0;
          for (auto& [v, c] : b.coef) a.coef[v] += sign * c;
          a.constant += sign * b.constant;
          a.Prune();
          return a;
        }
        case ArithOp::kMul: {
          // One side must be a pure constant.
          const LinForm* scalar = b.coef.empty() ? &b : nullptr;
          LinForm* form = b.coef.empty() ? &a : nullptr;
          if (scalar == nullptr && a.coef.empty()) {
            scalar = &a;
            form = &b;
          }
          if (scalar == nullptr) return Invalid();
          for (auto& [v, c] : form->coef) c *= scalar->constant;
          form->constant *= scalar->constant;
          form->Prune();
          return *form;
        }
        case ArithOp::kDiv: {
          if (!b.coef.empty() || b.constant == 0) return Invalid();
          for (auto& [v, c] : a.coef) c /= b.constant;
          a.constant /= b.constant;
          a.Prune();
          return a;
        }
      }
      return Invalid();
    }
    default:
      return Invalid();
  }
}

/// The single relative-var operand of a pure var/var division, if `e`
/// has that shape.
std::optional<VarId> PureVarRef(const Expr& e, const Schema& schema,
                                VariableCatalog* catalog) {
  if (e.kind != ExprKind::kColumnRef) return std::nullopt;
  if (!IsNumericRelativeRef(e.ref, schema)) return std::nullopt;
  return InternPatternVar(catalog, schema.column(e.ref.column_index).name,
                          e.ref.total_offset);
}

/// Tries to capture one comparison conjunct as a constraint atom.
/// Returns false when the conjunct is residue.
bool CaptureComparison(const Expr& e, const Schema& schema,
                       VariableCatalog* catalog, ConstraintSystem* out) {
  SQLTS_CHECK(e.kind == ExprKind::kCompare);

  // String equality:  X.name = 'IBM' (either side order).
  auto string_side = [&](const Expr& ref_side,
                         const Expr& lit_side) -> bool {
    if (ref_side.kind != ExprKind::kColumnRef ||
        lit_side.kind != ExprKind::kLiteral) {
      return false;
    }
    if (lit_side.literal.kind() != TypeKind::kString) return false;
    const ColumnRef& r = ref_side.ref;
    if (!r.relative || r.column_index < 0) return false;
    if (e.cmp_op != CmpOp::kEq && e.cmp_op != CmpOp::kNe) return false;
    VarId v = InternPatternVar(catalog, schema.column(r.column_index).name,
                               r.total_offset);
    out->AddString({v, e.cmp_op == CmpOp::kEq, lit_side.literal.string_value()});
    return true;
  };
  if (string_side(*e.lhs, *e.rhs) || string_side(*e.rhs, *e.lhs)) {
    return true;
  }

  // Ratio shape:  (x / y) op c   or   c op (x / y).
  auto ratio_side = [&](const Expr& div_side, const Expr& const_side,
                        CmpOp op) -> bool {
    if (div_side.kind != ExprKind::kArith ||
        div_side.arith_op != ArithOp::kDiv) {
      return false;
    }
    auto x = PureVarRef(*div_side.lhs, schema, catalog);
    auto y = PureVarRef(*div_side.rhs, schema, catalog);
    if (!x || !y) return false;
    LinForm c = ExtractLinForm(const_side, schema, catalog);
    if (!c.valid || !c.coef.empty()) return false;
    // x / y op c  ≡  x op c·y for positive y (the solver only uses ratio
    // atoms under its positive-domain option, so this is safe).
    out->AddXopCtimesY(*x, op, c.constant, *y);
    return true;
  };
  if (ratio_side(*e.lhs, *e.rhs, e.cmp_op)) return true;
  if (ratio_side(*e.rhs, *e.lhs, SwapOp(e.cmp_op))) return true;

  // General linear difference L - R.
  LinForm l = ExtractLinForm(*e.lhs, schema, catalog);
  LinForm r = ExtractLinForm(*e.rhs, schema, catalog);
  if (!l.valid || !r.valid) return false;
  LinForm d = l;
  for (auto& [v, c] : r.coef) d.coef[v] -= c;
  d.constant -= r.constant;
  d.Prune();

  CmpOp op = e.cmp_op;
  if (d.coef.empty()) {
    // Constant comparison: fold.
    if (EvalCmp(d.constant, op, 0.0)) {
      // Tautology: drop the conjunct (correct for both sat and the
      // per-conjunct φ enumeration: ¬TRUE = FALSE implies anything).
      return true;
    }
    out->SetTriviallyFalse();
    return true;
  }
  if (d.coef.size() == 1) {
    VarId v = d.coef.begin()->first;
    double a = d.coef.begin()->second;
    // a·x + k op 0  →  x op' (-k/a).
    if (a < 0) op = SwapOp(op);
    out->AddXopC(v, op, -d.constant / a);
    return true;
  }
  if (d.coef.size() == 2) {
    auto it = d.coef.begin();
    VarId vx = it->first;
    double a = it->second;
    ++it;
    VarId vy = it->first;
    double b = it->second;
    // Normalize so the x coefficient is positive.
    if (a < 0) {
      std::swap(vx, vy);
      std::swap(a, b);
      if (a < 0) {
        // Both negative: negate everything (flips the comparison).
        a = -a;
        b = -b;
        d.constant = -d.constant;
        op = SwapOp(op);
      }
    }
    if (b < 0) {
      if (a == -b) {
        // a(x - y) + k op 0  →  x op' y + (-k/a).
        out->AddXopYplusC(vx, op, vy, -d.constant / a);
        return true;
      }
      if (d.constant == 0) {
        // a·x - |b|·y op 0  →  x op (|b|/a)·y.
        out->AddXopCtimesY(vx, op, -b / a, vy);
        return true;
      }
    }
    // Same-sign coefficients (x + y op c) or mixed affine-ratio shapes:
    // outside the GSW language.
    return false;
  }
  return false;
}

/// Builds the exact IntervalSet view of `e` when it is a boolean
/// combination of comparisons of a single variable against constants.
std::optional<std::pair<VarId, IntervalSet>> BuildIntervalView(
    const Expr& e, const Schema& schema, VariableCatalog* catalog) {
  switch (e.kind) {
    case ExprKind::kCompare: {
      LinForm l = ExtractLinForm(*e.lhs, schema, catalog);
      LinForm r = ExtractLinForm(*e.rhs, schema, catalog);
      if (!l.valid || !r.valid) return std::nullopt;
      LinForm d = l;
      for (auto& [v, c] : r.coef) d.coef[v] -= c;
      d.constant -= r.constant;
      d.Prune();
      if (d.coef.size() != 1) return std::nullopt;
      auto [v, a] = *d.coef.begin();
      CmpOp op = e.cmp_op;
      if (a < 0) op = SwapOp(op);
      return std::make_pair(v, IntervalSet::FromCmp(op, -d.constant / a));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      auto a = BuildIntervalView(*e.lhs, schema, catalog);
      auto b = BuildIntervalView(*e.rhs, schema, catalog);
      if (!a || !b || a->first != b->first) return std::nullopt;
      IntervalSet s = e.kind == ExprKind::kAnd
                          ? a->second.Intersect(b->second)
                          : a->second.Union(b->second);
      return std::make_pair(a->first, std::move(s));
    }
    case ExprKind::kNot: {
      auto a = BuildIntervalView(*e.lhs, schema, catalog);
      if (!a) return std::nullopt;
      return std::make_pair(a->first, a->second.Complement());
    }
    default:
      return std::nullopt;
  }
}

/// Converts a boolean combination of capturable comparisons to DNF
/// (a list of conjunction systems), or nullopt when any leaf is residue
/// or the disjunct count exceeds the cap.  NOT is only supported
/// directly above a comparison.
std::optional<std::vector<ConstraintSystem>> BuildDnf(
    const Expr& e, const Schema& schema, VariableCatalog* catalog) {
  constexpr size_t kMaxDisjuncts = 16;
  switch (e.kind) {
    case ExprKind::kCompare: {
      ConstraintSystem s;
      if (!CaptureComparison(e, schema, catalog, &s)) return std::nullopt;
      return std::vector<ConstraintSystem>{std::move(s)};
    }
    case ExprKind::kNot: {
      if (e.lhs->kind != ExprKind::kCompare) return std::nullopt;
      Expr flipped = *e.lhs;
      flipped.cmp_op = NegateOp(flipped.cmp_op);
      return BuildDnf(flipped, schema, catalog);
    }
    case ExprKind::kOr: {
      auto a = BuildDnf(*e.lhs, schema, catalog);
      auto b = BuildDnf(*e.rhs, schema, catalog);
      if (!a || !b || a->size() + b->size() > kMaxDisjuncts) {
        return std::nullopt;
      }
      for (auto& s : *b) a->push_back(std::move(s));
      return a;
    }
    case ExprKind::kAnd: {
      auto a = BuildDnf(*e.lhs, schema, catalog);
      auto b = BuildDnf(*e.rhs, schema, catalog);
      if (!a || !b || a->size() * b->size() > kMaxDisjuncts) {
        return std::nullopt;
      }
      std::vector<ConstraintSystem> out;
      for (const auto& x : *a) {
        for (const auto& y : *b) {
          out.push_back(ConstraintSystem::Conjoin(x, y));
        }
      }
      return out;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

VarId InternPatternVar(VariableCatalog* catalog, const std::string& column,
                       int offset) {
  return catalog->Intern(column + "@" + std::to_string(offset));
}

PredicateAnalysis AnalyzePredicate(const ExprPtr& pred, const Schema& schema,
                                   VariableCatalog* catalog) {
  PredicateAnalysis out;
  if (pred == nullptr) return out;  // empty predicate: TRUE, complete

  // Record every reference to a declared-nullable column, independently
  // of whether the conjunct is captured, folded, or residue: 3VL
  // soundness gating needs them all (a folded `vol = vol` still fails
  // at runtime when vol is NULL).
  VisitColumnRefs(pred, [&](const ColumnRef& r) {
    if (r.column_index < 0 || !schema.column(r.column_index).nullable) {
      return;
    }
    if (!r.relative) {
      out.nullable_residue = true;
      return;
    }
    out.nullable_vars.push_back(InternPatternVar(
        catalog, schema.column(r.column_index).name, r.total_offset));
  });
  std::sort(out.nullable_vars.begin(), out.nullable_vars.end());
  out.nullable_vars.erase(
      std::unique(out.nullable_vars.begin(), out.nullable_vars.end()),
      out.nullable_vars.end());

  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kLiteral &&
        c->literal.kind() == TypeKind::kBool) {
      if (c->literal.bool_value()) continue;
      out.system.SetTriviallyFalse();
      continue;
    }
    if (c->kind == ExprKind::kCompare &&
        CaptureComparison(*c, schema, catalog, &out.system)) {
      continue;
    }
    if (c->kind == ExprKind::kOr || c->kind == ExprKind::kNot) {
      // Disjunctive conjunct (extension [13]): capture as a DNF group.
      if (auto dnf = BuildDnf(*c, schema, catalog)) {
        PredicateAnalysis::OrGroup group;
        for (ConstraintSystem& d : *dnf) {
          group.single_atom_disjuncts &=
              (d.num_atoms() == 1 && !d.trivially_false());
          group.disjuncts.push_back(std::move(d));
        }
        out.or_groups.push_back(std::move(group));
        continue;
      }
    }
    out.complete = false;
  }

  if (auto iv = BuildIntervalView(*pred, schema, catalog)) {
    out.has_interval = true;
    out.interval_var = iv->first;
    out.interval = std::move(iv->second);
  }
  return out;
}

}  // namespace sqlts
