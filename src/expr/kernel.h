#ifndef SQLTS_EXPR_KERNEL_H_
#define SQLTS_EXPR_KERNEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "expr/expr.h"
#include "storage/sequence.h"
#include "types/schema.h"

namespace sqlts {

/// ---------------------------------------------------------------------
/// Vectorized predicate kernels (ROADMAP item 1).
///
/// The interpreter in expr/eval.cc walks a shared_ptr expression tree
/// and boxes every intermediate in a Value variant — per tuple, per
/// test.  A PredicateKernel compiles one tuple-local conjunct once,
/// into a tree of type-specialized batch nodes that evaluate a whole
/// block of kKernelBlock consecutive sequence positions in tight
/// per-column loops over raw int64/double arrays, producing a 3VL
/// (Kleene) verdict bitmask.
///
/// The kernel tier is answer-preserving: for every position p,
/// EvalBlock's verdict is exactly the 3VL truth value EvalExpr would
/// produce (TRUE / FALSE / NULL; non-boolean results count as NULL,
/// which is indistinguishable at the predicate level — see
/// docs/VECTORIZED.md).  Both tiers share the scalar semantics in
/// types/numeric_ops.h (checked int64 arithmetic, exact int64↔double
/// comparison, NaN total order), so they agree by construction; the
/// differential fuzzer enforces it.
///
/// Compile() returns nullptr for expression shapes the vectorized tier
/// does not handle — anchored (span-dependent) references, aggregates,
/// strings — and callers fall back to the interpreter.  Compiled
/// kernels only ever see *relative* column references, so a verdict at
/// position p depends solely on the cells at p + offset for the
/// kernel's offsets — never on match state.
/// ---------------------------------------------------------------------

/// Lanes evaluated per block, and the words of a block bitmask.
inline constexpr int kKernelBlock = 256;
inline constexpr int kKernelWords = kKernelBlock / 64;

/// 3VL verdict bitmask for one block.  For each lane l in the
/// evaluated range: true_bits set => TRUE; null_bits set => NULL (or a
/// non-boolean value, equally "not satisfied"); neither => FALSE.  The
/// two are mutually exclusive; bits outside the evaluated lane range
/// are zero.
struct BlockVerdict {
  uint64_t true_bits[kKernelWords];
  uint64_t null_bits[kKernelWords];

  bool True(int lane) const {
    return (true_bits[lane >> 6] >> (lane & 63)) & 1;
  }
  bool Null(int lane) const {
    return (null_bits[lane >> 6] >> (lane & 63)) & 1;
  }
};

/// 3VL verdict mask for an arbitrary-length run of positions (test and
/// bench convenience; the engine hot path uses BlockVerdict directly).
struct TriMask {
  int64_t size = 0;
  std::vector<uint64_t> true_bits;
  std::vector<uint64_t> null_bits;

  void Resize(int64_t n);
  bool True(int64_t i) const {
    return (true_bits[i >> 6] >> (i & 63)) & 1;
  }
  bool Null(int64_t i) const {
    return (null_bits[i >> 6] >> (i & 63)) & 1;
  }
};

namespace kernel_internal {
struct Node;

/// Per-node lane buffers: numeric nodes fill i64/f64 lanes with a
/// validity mask; boolean nodes fill true/null masks only.
struct LaneBuf {
  int64_t i64[kKernelBlock];
  double f64[kKernelBlock];
  uint64_t null_bits[kKernelWords];
  uint64_t true_bits[kKernelWords];
};
}  // namespace kernel_internal

/// Reusable per-caller scratch (lane buffers for every node of a
/// kernel).  Kernels themselves are immutable and safe to share across
/// threads; each concurrent caller brings its own scratch.
class KernelScratch {
 public:
  kernel_internal::LaneBuf* Prepare(int num_bufs);

 private:
  std::vector<kernel_internal::LaneBuf> bufs_;
};

class PredicateKernel {
 public:
  /// Compiles `expr` (a tuple-local predicate over `schema`) into a
  /// vectorized kernel.  Constant subtrees are folded at compile time
  /// (via the interpreter, so folding cannot diverge), and
  /// column-vs-literal / column-vs-column / column-vs-scaled-column
  /// comparisons use fused single-loop fast paths.  Returns nullptr
  /// when any part of the expression is outside the vectorized subset.
  static std::unique_ptr<PredicateKernel> Compile(const ExprPtr& expr,
                                                  const Schema& schema);

  ~PredicateKernel();
  PredicateKernel(const PredicateKernel&) = delete;
  PredicateKernel& operator=(const PredicateKernel&) = delete;

  /// Evaluates the predicate at sequence positions pos0 + l for every
  /// lane l in [lane0, lane1), writing verdict bits l of `out` (all
  /// other bits zero).  lane1 <= kKernelBlock.  Positions whose
  /// referenced cells fall outside the view read as NULL, exactly like
  /// the interpreter's out-of-range navigation.
  void EvalBlock(const SequenceView& seq, int64_t pos0, int lane0, int lane1,
                 KernelScratch* scratch, BlockVerdict* out) const;

  /// Convenience: evaluates positions [start, start + n) into `out`
  /// (resized), looping blocks internally.
  void Eval(const SequenceView& seq, int64_t start, int64_t n,
            KernelScratch* scratch, TriMask* out) const;

  /// Most negative / most positive relative cell offset the predicate
  /// reads (0 when it reads none, e.g. a folded constant).
  int min_offset() const { return min_offset_; }
  int max_offset() const { return max_offset_; }

 private:
  PredicateKernel() = default;

  std::vector<std::unique_ptr<kernel_internal::Node>> nodes_;  // post-order
  ExprPtr expr_;  // interpreter fallback for escaped lanes
  int root_ = -1;
  int min_offset_ = 0;
  int max_offset_ = 0;

  friend struct KernelBuilder;
};

}  // namespace sqlts

#endif  // SQLTS_EXPR_KERNEL_H_
