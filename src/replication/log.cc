#include "replication/log.h"

#include <algorithm>

#include "engine/checkpoint.h"

namespace sqlts {
namespace replication {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// (term, index) lexical order: the acceptance rule for deliveries.
bool Newer(const LogEntry& e, uint64_t term, uint64_t index) {
  return e.term > term || (e.term == term && e.index > index);
}

}  // namespace

std::string EncodeLogEntry(const LogEntry& entry) {
  CheckpointWriter w;
  w.WriteU64(entry.term);
  w.WriteU64(entry.index);
  w.WriteI64(entry.covered_offset);
  w.WriteU32(static_cast<uint32_t>(entry.watermarks.size()));
  for (int64_t wm : entry.watermarks) w.WriteI64(wm);
  w.WriteString(entry.checkpoint);
  return w.Finalize();
}

StatusOr<LogEntry> DecodeLogEntry(std::string_view bytes) {
  SQLTS_ASSIGN_OR_RETURN(std::string_view payload, OpenCheckpoint(bytes));
  CheckpointReader r(payload);
  LogEntry e;
  SQLTS_ASSIGN_OR_RETURN(e.term, r.ReadU64());
  SQLTS_ASSIGN_OR_RETURN(e.index, r.ReadU64());
  SQLTS_ASSIGN_OR_RETURN(e.covered_offset, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(uint32_t channels, r.ReadU32());
  // Each watermark occupies eight payload bytes; reject an adversarial
  // count before reserving for it.
  if (static_cast<uint64_t>(channels) * 8 > r.remaining()) {
    return Status::IoError("log entry watermark count " +
                           std::to_string(channels) +
                           " exceeds the remaining payload");
  }
  e.watermarks.reserve(channels);
  for (uint32_t c = 0; c < channels; ++c) {
    SQLTS_ASSIGN_OR_RETURN(int64_t wm, r.ReadI64());
    e.watermarks.push_back(wm);
  }
  SQLTS_ASSIGN_OR_RETURN(e.checkpoint, r.ReadString());
  if (r.remaining() != 0) {
    return Status::IoError("log entry has " + std::to_string(r.remaining()) +
                           " trailing bytes");
  }
  return e;
}

StatusOr<bool> StandbyNode::Deliver(const std::string& encoded) {
  SQLTS_ASSIGN_OR_RETURN(LogEntry e, DecodeLogEntry(encoded));
  if (latest_.has_value() &&
      !Newer(e, latest_->term, latest_->index)) {
    ++stale_ignored_;
    return false;
  }
  latest_ = std::move(e);
  return true;
}

void StandbyNode::DeliverHeartbeat(uint64_t term, int64_t tick) {
  (void)term;  // a live delivery refreshes the lease regardless of term
  last_heartbeat_tick_ = std::max(last_heartbeat_tick_, tick);
}

ReplicationLog::ReplicationLog(uint64_t seed, TransportOptions transport,
                               std::vector<StandbyNode*> standbys,
                               int quorum_acks)
    : transport_(transport),
      standbys_(std::move(standbys)),
      quorum_acks_(quorum_acks),
      state_(seed ^ 0x5eed109f5eed109fULL) {}

double ReplicationLog::NextUniform() {
  return static_cast<double>(SplitMix64(&state_) >> 11) * 0x1.0p-53;
}

StandbyNode* ReplicationLog::Find(int id) {
  for (StandbyNode* s : standbys_) {
    if (s->id() == id) return s;
  }
  return nullptr;
}

void ReplicationLog::RemoveStandby(int id) {
  standbys_.erase(std::remove_if(standbys_.begin(), standbys_.end(),
                                 [&](StandbyNode* s) { return s->id() == id; }),
                  standbys_.end());
  delayed_.erase(std::remove_if(delayed_.begin(), delayed_.end(),
                                [&](const Delayed& d) {
                                  return d.standby_id == id;
                                }),
                 delayed_.end());
  quorum_acks_ = std::min<int>(quorum_acks_,
                               static_cast<int>(standbys_.size()));
}

Status ReplicationLog::Append(const LogEntry& entry) {
  ++counters_.entries_appended;
  const std::string frame = EncodeLogEntry(entry);
  std::vector<bool> acked(standbys_.size(), false);
  int acks = 0;
  // First pass: every standby's delivery independently runs the chaos
  // gauntlet.  A dropped frame simply never arrives; a delayed one is
  // parked until its due tick (and may arrive after newer entries —
  // the standby's (term, index) acceptance rule discards it then).
  for (size_t s = 0; s < standbys_.size(); ++s) {
    const double draw = NextUniform();
    if (transport_.drop_prob > 0.0 && draw < transport_.drop_prob) {
      ++counters_.drops;
      continue;
    }
    if (transport_.delay_prob > 0.0 &&
        draw < transport_.drop_prob + transport_.delay_prob) {
      const int64_t d =
          1 + static_cast<int64_t>(SplitMix64(&state_) %
                                   static_cast<uint64_t>(std::max<int64_t>(
                                       1, transport_.max_delay_ticks)));
      delayed_.push_back(Delayed{now_ + d, standbys_[s]->id(), frame});
      ++counters_.delays;
      continue;
    }
    SQLTS_ASSIGN_OR_RETURN(bool accepted, standbys_[s]->Deliver(frame));
    if (accepted) {
      acked[s] = true;
      ++acks;
      ++counters_.acks;
    }
  }
  // Retransmit (in node-id order, chaos-exempt — the sender keeps
  // resending on a real link too) until the ack quorum holds.
  for (size_t s = 0; s < standbys_.size() && acks < quorum_acks_; ++s) {
    if (acked[s]) continue;
    ++counters_.retransmits;
    SQLTS_ASSIGN_OR_RETURN(bool accepted, standbys_[s]->Deliver(frame));
    if (accepted) {
      acked[s] = true;
      ++acks;
      ++counters_.acks;
    }
  }
  if (acks < quorum_acks_) {
    return Status::Internal(
        "replication quorum unreachable: " + std::to_string(acks) + "/" +
        std::to_string(quorum_acks_) + " acks for entry " +
        std::to_string(entry.index));
  }
  committed_index_ = std::max(committed_index_, entry.index);
  RefreshStale();
  return Status::OK();
}

void ReplicationLog::Heartbeat(uint64_t term, int64_t tick) {
  ++counters_.heartbeats;
  for (StandbyNode* s : standbys_) {
    if (transport_.drop_prob > 0.0 && NextUniform() < transport_.drop_prob) {
      continue;  // lost heartbeat; the lease absorbs bounded loss
    }
    s->DeliverHeartbeat(term, tick);
  }
}

void ReplicationLog::Tick(int64_t now) {
  now_ = now;
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->due_tick > now) {
      ++it;
      continue;
    }
    StandbyNode* s = Find(it->standby_id);
    if (s != nullptr) {
      // Late arrival: the standby's acceptance rule keeps state
      // monotone, so a frame overtaken by newer entries is counted as
      // stale, not applied.
      StatusOr<bool> accepted = s->Deliver(it->frame);
      if (accepted.ok() && *accepted) ++counters_.acks;
    }
    it = delayed_.erase(it);
  }
  RefreshStale();
}

void ReplicationLog::RefreshStale() {
  counters_.stale_ignored = 0;
  for (StandbyNode* s : standbys_) {
    counters_.stale_ignored += s->stale_ignored();
  }
}

}  // namespace replication
}  // namespace sqlts
