#include "replication/cluster.h"

#include <algorithm>
#include <utility>

#include "engine/stream_executor.h"
#include "multiquery/multi_stream.h"

namespace sqlts {
namespace replication {
namespace {

/// Canonical SearchStats rendering shared by both adapters.
std::string StatsString(const SearchStats& s) {
  return "evals=" + std::to_string(s.evaluations) +
         ";presat=" + std::to_string(s.presat_skips) +
         ";jumps=" + std::to_string(s.jumps) +
         ";matches=" + std::to_string(s.matches);
}

/// Adapter over one StreamingQueryExecutor (one output channel).  The
/// executor is created at construction (StreamingQueryExecutor::Create
/// registers the query), so InitFresh is a no-op and Restore applies
/// directly — both are "a freshly created executor" per its contract.
class SingleQueryEngine : public ReplicatedEngine {
 public:
  explicit SingleQueryEngine(std::unique_ptr<StreamingQueryExecutor> exec)
      : exec_(std::move(exec)) {}

  Status InitFresh() override { return Status::OK(); }
  Status Push(const Row& row) override { return exec_->Push(row); }
  Status Finish() override { return exec_->Finish(); }
  Status Checkpoint(std::string* out) override {
    return exec_->Checkpoint(out);
  }
  Status Restore(std::string_view bytes) override {
    return exec_->Restore(bytes);
  }
  int64_t rows_consumed() const override { return exec_->rows_consumed(); }
  std::vector<int64_t> watermarks() const override {
    return {exec_->rows_emitted()};
  }
  std::string StatsFingerprint() const override {
    return StatsString(exec_->stats()) +
           ";emitted=" + std::to_string(exec_->rows_emitted());
  }

 private:
  std::unique_ptr<StreamingQueryExecutor> exec_;
};

/// Adapter over a MultiStreamExecutor query set (channel i = query i).
/// Construction creates the empty executor; InitFresh registers the
/// query set, Restore reinstates a replicated checkpoint instead (the
/// MultiStreamExecutor::Restore contract requires a fresh instance with
/// no queries registered).
class MultiQueryEngine : public ReplicatedEngine {
 public:
  MultiQueryEngine(std::unique_ptr<MultiStreamExecutor> exec,
                   std::vector<std::string> queries, EngineSinks sinks)
      : exec_(std::move(exec)),
        queries_(std::move(queries)),
        sinks_(std::move(sinks)) {}

  Status InitFresh() override {
    for (size_t i = 0; i < queries_.size(); ++i) {
      SQLTS_ASSIGN_OR_RETURN(int id, exec_->AddQuery(queries_[i], sinks_[i]));
      if (id != static_cast<int>(i)) {
        return Status::Internal("multi-query registration id " +
                                std::to_string(id) + " != channel " +
                                std::to_string(i));
      }
    }
    return Status::OK();
  }
  Status Push(const Row& row) override { return exec_->Push(row); }
  Status Finish() override { return exec_->Finish(); }
  Status Checkpoint(std::string* out) override {
    return exec_->Checkpoint(out);
  }
  Status Restore(std::string_view bytes) override {
    return exec_->Restore(bytes, [this](int index, const std::string&) {
      return sinks_[index];
    });
  }
  int64_t rows_consumed() const override { return exec_->rows_consumed(); }
  std::vector<int64_t> watermarks() const override {
    std::vector<int64_t> wm(queries_.size(), 0);
    for (size_t i = 0; i < queries_.size(); ++i) {
      StatusOr<int64_t> emitted = exec_->rows_emitted(static_cast<int>(i));
      wm[i] = emitted.ok() ? *emitted : 0;
    }
    return wm;
  }
  std::string StatsFingerprint() const override {
    // Per-query matcher stats only: deterministic at every thread count
    // and persisted across Checkpoint/Restore, unlike the shared-cache
    // hit counters (which legitimately differ when a replayed suffix
    // re-populates the memo caches).
    std::string fp;
    for (size_t i = 0; i < queries_.size(); ++i) {
      const StreamingQueryExecutor* q = exec_->query(static_cast<int>(i));
      if (!fp.empty()) fp += "|";
      fp += q != nullptr ? StatsString(q->stats()) : "removed";
    }
    return fp;
  }

 private:
  std::unique_ptr<MultiStreamExecutor> exec_;
  std::vector<std::string> queries_;
  EngineSinks sinks_;
};

}  // namespace

EngineFactory MakeSingleQueryEngineFactory(std::string query_text,
                                           Schema schema,
                                           ExecOptions options) {
  return [query_text = std::move(query_text), schema = std::move(schema),
          options](const EngineSinks& sinks)
             -> StatusOr<std::unique_ptr<ReplicatedEngine>> {
    if (sinks.size() != 1) {
      return Status::InvalidArgument(
          "single-query engine factory needs exactly one sink, got " +
          std::to_string(sinks.size()));
    }
    SQLTS_ASSIGN_OR_RETURN(
        std::unique_ptr<StreamingQueryExecutor> exec,
        StreamingQueryExecutor::Create(query_text, schema, sinks[0], options));
    return std::unique_ptr<ReplicatedEngine>(
        new SingleQueryEngine(std::move(exec)));
  };
}

EngineFactory MakeMultiQueryEngineFactory(std::vector<std::string> queries,
                                          Schema schema, ExecOptions options) {
  return [queries = std::move(queries), schema = std::move(schema),
          options](const EngineSinks& sinks)
             -> StatusOr<std::unique_ptr<ReplicatedEngine>> {
    if (sinks.size() != queries.size()) {
      return Status::InvalidArgument(
          "multi-query engine factory needs " +
          std::to_string(queries.size()) + " sinks, got " +
          std::to_string(sinks.size()));
    }
    SQLTS_ASSIGN_OR_RETURN(std::unique_ptr<MultiStreamExecutor> exec,
                           MultiStreamExecutor::Create(schema, options));
    return std::unique_ptr<ReplicatedEngine>(
        new MultiQueryEngine(std::move(exec), queries, sinks));
  };
}

std::string FingerprintRow(const Row& row) {
  std::string fp = std::to_string(row.size());
  for (const Value& v : row) {
    fp += '\x1f';
    fp += v.ToString();
  }
  return fp;
}

Status DedupSink::Accept(int64_t seq, const Row& row) {
  const int64_t next = next_expected();
  if (seq < next) {
    // Replayed output below the watermark: exactly-once requires it to
    // be bit-identical to what was originally delivered at this seq.
    if (FingerprintRow(row) != fingerprints_[seq]) {
      return Status::Internal(
          "replayed row at seq " + std::to_string(seq) +
          " differs from the originally delivered row");
    }
    ++dups_;
    return Status::OK();
  }
  if (seq > next) {
    return Status::Internal("output gap: received seq " +
                            std::to_string(seq) + " while expecting " +
                            std::to_string(next) + " (rows lost)");
  }
  fingerprints_.push_back(FingerprintRow(row));
  delivered_.push_back(row);
  return Status::OK();
}

ReplicatedCluster::ReplicatedCluster(EngineFactory factory, int num_channels,
                                     const std::vector<Row>* source,
                                     ClusterOptions options,
                                     ReplicationMetrics* metrics)
    : factory_(std::move(factory)),
      num_channels_(num_channels),
      source_(source),
      options_(options),
      metrics_(metrics),
      sinks_(num_channels) {}

ReplicatedCluster::~ReplicatedCluster() = default;

StatusOr<std::unique_ptr<ReplicatedEngine>> ReplicatedCluster::MakeEngine() {
  EngineSinks sinks;
  sinks.reserve(num_channels_);
  for (int c = 0; c < num_channels_; ++c) {
    sinks.push_back([this, c](const Row& row) { OnEmit(c, row); });
  }
  return factory_(sinks);
}

void ReplicatedCluster::OnEmit(int channel, const Row& row) {
  const int64_t seq =
      primary_->seq_base[channel] + primary_->seq_count[channel]++;
  Status s = sinks_[channel].Accept(seq, row);
  if (!s.ok() && sink_error_.ok()) sink_error_ = s;
}

Status ReplicatedCluster::Start() {
  if (started_) {
    return Status::InvalidArgument("cluster already started");
  }
  started_ = true;
  for (int i = 0; i < options_.num_standbys; ++i) {
    standbys_.push_back(std::make_unique<StandbyNode>(i));
  }
  std::vector<StandbyNode*> ptrs;
  for (auto& s : standbys_) ptrs.push_back(s.get());
  // Majority of the full cluster (primary + standbys), expressed as
  // standby acks: the smallest quorum under which any majority of
  // survivors contains a node holding every committed entry.
  int quorum = options_.quorum_acks >= 0 ? options_.quorum_acks
                                         : (options_.num_standbys + 1) / 2;
  quorum = std::min(quorum, options_.num_standbys);
  log_ = std::make_unique<ReplicationLog>(options_.seed, options_.transport,
                                          std::move(ptrs), quorum);
  term_ = 1;
  primary_ = std::make_unique<PrimaryState>();
  primary_->seq_base.assign(num_channels_, 0);
  primary_->seq_count.assign(num_channels_, 0);
  SQLTS_ASSIGN_OR_RETURN(primary_->engine, MakeEngine());
  SQLTS_RETURN_IF_ERROR(primary_->engine->InitFresh());
  FoldMetrics();
  return Status::OK();
}

Status ReplicatedCluster::Step() {
  if (!started_ || finished_) {
    return Status::InvalidArgument("cluster not running");
  }
  if (primary_ == nullptr) {
    return Status::InvalidArgument("no primary alive (promote a standby)");
  }
  if (position_ >= source_size()) {
    return Status::InvalidArgument("source exhausted");
  }
  if (options_.heartbeat_interval > 0 &&
      tick_ % options_.heartbeat_interval == 0) {
    log_->Heartbeat(term_, tick_);
  }
  SQLTS_RETURN_IF_ERROR(primary_->engine->Push((*source_)[position_]));
  ++position_;
  ++tick_;
  log_->Tick(tick_);
  SQLTS_RETURN_IF_ERROR(sink_error_);
  if (options_.checkpoint_interval > 0 &&
      primary_->engine->rows_consumed() % options_.checkpoint_interval == 0) {
    SQLTS_RETURN_IF_ERROR(ReplicateCheckpoint());
  }
  FoldMetrics();
  return Status::OK();
}

Status ReplicatedCluster::ReplicateCheckpoint() {
  LogEntry entry;
  entry.term = term_;
  entry.index = next_index_++;
  // Checkpoint() flushes buffered output rows first (they are "before"
  // the checkpoint), so the watermarks read afterwards cover exactly
  // the rows a restored engine will not re-emit.
  SQLTS_RETURN_IF_ERROR(primary_->engine->Checkpoint(&entry.checkpoint));
  SQLTS_RETURN_IF_ERROR(sink_error_);
  entry.covered_offset = primary_->engine->rows_consumed();
  entry.watermarks = primary_->engine->watermarks();
  return log_->Append(entry);
}

Status ReplicatedCluster::KillPrimary() {
  if (primary_ == nullptr) {
    return Status::InvalidArgument("no primary to kill");
  }
  // Process death: the engine and every in-memory structure vanish.
  // Only the replicated log entries on the standbys survive.
  primary_.reset();
  FoldMetrics();
  return Status::OK();
}

StatusOr<int> ReplicatedCluster::Promote(uint64_t draw, bool allow_lagging) {
  if (primary_ != nullptr) {
    return Status::InvalidArgument("primary still alive");
  }
  if (standbys_.empty()) {
    return Status::Internal("no standby left to promote");
  }
  // Failure detection: advance time (no heartbeats are flowing) until
  // every surviving standby's lease has expired and all in-flight
  // transport deliveries from the dead term have landed.
  auto all_expired = [&] {
    for (const auto& s : standbys_) {
      if (!s->LeaseExpired(tick_, options_.lease_ticks)) return false;
    }
    return true;
  };
  while (!all_expired()) {
    ++tick_;
    log_->Tick(tick_);
  }
  for (int64_t i = 0; i < options_.transport.max_delay_ticks + 1; ++i) {
    ++tick_;
    log_->Tick(tick_);
  }

  // Eligibility: by default only the most-caught-up standbys (maximal
  // (term, index)); with allow_lagging any standby, to prove the
  // watermark protocol keeps even a stale promotion exactly-once.
  uint64_t best_term = 0, best_index = 0;
  for (const auto& s : standbys_) {
    if (s->latest_term() > best_term ||
        (s->latest_term() == best_term && s->latest_index() > best_index)) {
      best_term = s->latest_term();
      best_index = s->latest_index();
    }
  }
  std::vector<size_t> eligible;
  for (size_t i = 0; i < standbys_.size(); ++i) {
    if (allow_lagging || (standbys_[i]->latest_term() == best_term &&
                          standbys_[i]->latest_index() == best_index)) {
      eligible.push_back(i);
    }
  }
  const size_t pick = eligible[draw % eligible.size()];
  std::unique_ptr<StandbyNode> node = std::move(standbys_[pick]);
  standbys_.erase(standbys_.begin() + pick);
  log_->RemoveStandby(node->id());
  if (node->latest_term() != best_term || node->latest_index() != best_index) {
    ++lagging_promotions_;
  }

  term_ = std::max(term_, best_term) + 1;
  ++failovers_;
  SQLTS_RETURN_IF_ERROR(RestoreAndReplay(node.get()));
  FoldMetrics();
  return node->id();
}

Status ReplicatedCluster::RestoreAndReplay(const StandbyNode* node) {
  primary_ = std::make_unique<PrimaryState>();
  primary_->seq_base.assign(num_channels_, 0);
  primary_->seq_count.assign(num_channels_, 0);
  SQLTS_ASSIGN_OR_RETURN(primary_->engine, MakeEngine());

  int64_t from = 0;
  if (node->latest() != nullptr) {
    const LogEntry& entry = *node->latest();
    SQLTS_RETURN_IF_ERROR(primary_->engine->Restore(entry.checkpoint));
    from = entry.covered_offset;
    // Cross-check: the engine's restored watermarks must equal the ones
    // the entry was replicated with — the exactly-once invariant that
    // checkpoint bytes and coverage metadata never drift apart.
    const std::vector<int64_t> restored = primary_->engine->watermarks();
    if (restored != entry.watermarks) {
      return Status::Internal(
          "restored watermarks disagree with replicated entry " +
          std::to_string(entry.index));
    }
  } else {
    // A standby that never received an entry restarts from scratch
    // (only reachable with allow_lagging); the full stream is replayed
    // and the dedup watermark suppresses everything already delivered.
    SQLTS_RETURN_IF_ERROR(primary_->engine->InitFresh());
  }
  primary_->seq_base = primary_->engine->watermarks();
  primary_->seq_count.assign(num_channels_, 0);

  // Replay the uncovered source suffix.  Normal checkpoint cadence
  // applies — the new primary replicates to the surviving standbys as
  // it catches up, so a second failover mid-replay stays covered.
  for (int64_t i = from; i < position_; ++i) {
    SQLTS_RETURN_IF_ERROR(primary_->engine->Push((*source_)[i]));
    ++rows_replayed_;
    SQLTS_RETURN_IF_ERROR(sink_error_);
    if (options_.checkpoint_interval > 0 &&
        primary_->engine->rows_consumed() % options_.checkpoint_interval ==
            0) {
      SQLTS_RETURN_IF_ERROR(ReplicateCheckpoint());
    }
  }
  return sink_error_;
}

Status ReplicatedCluster::Finish() {
  if (!started_ || finished_) {
    return Status::InvalidArgument("cluster not running");
  }
  if (primary_ == nullptr) {
    return Status::InvalidArgument("no primary alive (promote a standby)");
  }
  finished_ = true;
  SQLTS_RETURN_IF_ERROR(primary_->engine->Finish());
  SQLTS_RETURN_IF_ERROR(sink_error_);
  FoldMetrics();
  return Status::OK();
}

int64_t ReplicatedCluster::duplicates_dropped() const {
  int64_t total = 0;
  for (const DedupSink& s : sinks_) total += s.duplicates_dropped();
  return total;
}

std::string ReplicatedCluster::StatsFingerprint() const {
  return primary_ != nullptr ? primary_->engine->StatsFingerprint()
                             : std::string();
}

void ReplicatedCluster::FoldMetrics() {
  if (metrics_ == nullptr) return;
  const ReplicationCounters& c = log_->counters();
  metrics_->entries_appended.store(c.entries_appended);
  metrics_->entries_committed.store(
      static_cast<int64_t>(log_->committed_index()));
  metrics_->entries_dropped.store(c.drops);
  metrics_->entries_delayed.store(c.delays);
  metrics_->entries_retransmitted.store(c.retransmits);
  metrics_->stale_entries_ignored.store(c.stale_ignored);
  metrics_->heartbeats_sent.store(c.heartbeats);
  metrics_->failovers.store(failovers_);
  metrics_->lagging_promotions.store(lagging_promotions_);
  metrics_->rows_replayed.store(rows_replayed_);
  metrics_->rows_deduplicated.store(duplicates_dropped());
  metrics_->standbys_active.store(log_->num_standbys());
  metrics_->committed_index.store(static_cast<int64_t>(log_->committed_index()));
  int64_t watermark = 0;
  for (const DedupSink& s : sinks_) watermark += s.next_expected();
  metrics_->output_watermark.store(watermark);
}

}  // namespace replication
}  // namespace sqlts
