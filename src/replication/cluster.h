#ifndef SQLTS_REPLICATION_CLUSTER_H_
#define SQLTS_REPLICATION_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "engine/executor.h"
#include "replication/log.h"
#include "server/metrics.h"
#include "storage/table.h"

namespace sqlts {
namespace replication {

// Concurrency contract (docs/STATIC_ANALYSIS.md): this layer is
// single-threaded by design.  The multi-node cluster runs in one
// process under a deterministic driver — one thread owns every node,
// the transport, and the sinks — so these classes deliberately carry
// no capabilities (no ts::Mutex, no GUARDED_BY): an unannotated class
// here documents "not safe to share across threads", and the only
// cross-thread-visible state is ReplicationMetrics, whose counters are
// atomics folded in by FoldMetrics().  Engines *inside* a node (the
// sharded streaming executors) keep their own annotated locking.

/// The streaming-engine surface the cluster replicates.  Two adapters
/// exist: a single StreamingQueryExecutor and a whole MultiStreamExecutor
/// query set — the failover machinery is identical, only the number of
/// output channels differs.  An engine instance is single-use: a node
/// creates one fresh, then either InitFresh() (empty start) or
/// Restore() (from a replicated checkpoint), and pushes from there.
class ReplicatedEngine {
 public:
  virtual ~ReplicatedEngine() = default;
  /// Registers the workload on an empty engine (no-op for adapters that
  /// register at construction).
  virtual Status InitFresh() = 0;
  virtual Status Push(const Row& row) = 0;
  virtual Status Finish() = 0;
  virtual Status Checkpoint(std::string* out) = 0;
  virtual Status Restore(std::string_view bytes) = 0;
  /// Source position the engine has consumed (checkpoint coverage).
  virtual int64_t rows_consumed() const = 0;
  /// Rows emitted per output channel so far (the dedup watermarks).
  virtual std::vector<int64_t> watermarks() const = 0;
  /// Canonical rendering of the post-Finish matcher statistics; the
  /// failover contract requires it bit-identical to an uninterrupted
  /// run's (replays re-earn exactly the evaluations the checkpoint did
  /// not persist, so totals line up).
  virtual std::string StatsFingerprint() const = 0;
};

/// Per-engine-instance output callbacks, one per channel; the cluster
/// wires these to its watermark-stamping dedup path.
using EngineSinks = std::vector<std::function<void(const Row&)>>;

/// Builds a fresh engine whose channel c delivers to sinks[c].
using EngineFactory =
    std::function<StatusOr<std::unique_ptr<ReplicatedEngine>>(
        const EngineSinks& sinks)>;

/// Factory over one streaming query (one output channel).
EngineFactory MakeSingleQueryEngineFactory(std::string query_text,
                                           Schema schema,
                                           ExecOptions options);

/// Factory over a query set on one MultiStreamExecutor (channel i =
/// queries[i]).  All queries must be streaming-eligible.
EngineFactory MakeMultiQueryEngineFactory(std::vector<std::string> queries,
                                          Schema schema, ExecOptions options);

/// The consumer's half of exactly-once: rows arrive stamped with their
/// global emission sequence; a row below the cursor is a replay — it is
/// verified bit-identical against what was originally delivered, then
/// dropped — and a row above the cursor means output was lost, which
/// Accept reports as a hard error.  Single-threaded (the harness driver
/// owns it).
class DedupSink {
 public:
  /// Delivers, drops-and-verifies, or rejects one stamped row.
  Status Accept(int64_t seq, const Row& row);

  const std::vector<Row>& delivered() const { return delivered_; }
  int64_t duplicates_dropped() const { return dups_; }
  int64_t next_expected() const {
    return static_cast<int64_t>(delivered_.size());
  }

 private:
  std::vector<Row> delivered_;
  std::vector<std::string> fingerprints_;  // of delivered_, by seq
  int64_t dups_ = 0;
};

/// Canonical row rendering used for duplicate verification.
std::string FingerprintRow(const Row& row);

struct ClusterOptions {
  int num_standbys = 2;
  /// Standby acks required per entry; -1 = majority of the full
  /// (primary + standbys) cluster, the smallest quorum that guarantees
  /// a most-caught-up survivor holds every committed entry.
  int quorum_acks = -1;
  /// Tuples between replicated checkpoint entries.
  int64_t checkpoint_interval = 16;
  /// Ticks between heartbeats (one tick per consumed tuple).
  int64_t heartbeat_interval = 4;
  /// A standby suspects the primary after this many heartbeat-free ticks.
  int64_t lease_ticks = 12;
  TransportOptions transport;
  /// Engine execution options (thread count etc.) for every node.
  ExecOptions exec;
  uint64_t seed = 0;
};

/// In-process primary/standby harness for replicated streaming with
/// exactly-once failover (docs/REPLICATION.md).  The driver owns the
/// source (a replayable tuple vector — the durable upstream any
/// replicated consumer needs) and single-steps the cluster:
///
///   Step()          consume one source tuple on the primary, heartbeat
///                   and replicate checkpoints on their cadences
///   KillPrimary()   process death: all primary in-memory state is gone
///   Promote(draw)   advance ticks until every surviving standby's
///                   lease has expired, deterministically pick the
///                   promotion target (most-caught-up set by default,
///                   any standby when allow_lagging — the watermark
///                   makes even that exact), restore it from its newest
///                   replicated entry, and replay the uncovered source
///                   suffix
///   Finish()        end-of-stream on the current primary
///
/// Output goes through per-channel DedupSinks; after Finish, sink(c)
/// holds exactly the rows an uninterrupted run would have delivered —
/// zero lost, zero duplicated — for any kill/promotion schedule.
class ReplicatedCluster {
 public:
  ReplicatedCluster(EngineFactory factory, int num_channels,
                    const std::vector<Row>* source, ClusterOptions options,
                    ReplicationMetrics* metrics = nullptr);
  ~ReplicatedCluster();

  /// Creates the standby set and the initial primary (term 1, offset 0).
  Status Start();

  /// Consumes source[position()] on the primary.  InvalidArgument when
  /// no primary is alive or the source is exhausted.
  Status Step();

  /// Kills the primary process (its engine and all in-memory state).
  Status KillPrimary();

  /// Lease-expiry failure detection followed by deterministic
  /// promotion; `draw` selects uniformly within the eligible set.
  /// Returns the promoted node id.
  StatusOr<int> Promote(uint64_t draw, bool allow_lagging = false);

  /// End-of-stream on the primary (emits trailing matches).
  Status Finish();

  bool primary_alive() const { return primary_ != nullptr; }
  /// Next source offset the cluster will consume.
  int64_t position() const { return position_; }
  int64_t source_size() const {
    return static_cast<int64_t>(source_->size());
  }
  const DedupSink& sink(int channel) const { return sinks_[channel]; }
  int64_t duplicates_dropped() const;
  int failovers() const { return failovers_; }
  const ReplicationCounters& counters() const { return log_->counters(); }
  uint64_t committed_index() const { return log_->committed_index(); }
  int num_standbys_alive() const { return log_->num_standbys(); }
  /// Post-Finish stats of the current primary's engine.
  std::string StatsFingerprint() const;

 private:
  /// One node's engine plus its watermark bases (seq stamping state).
  struct PrimaryState {
    std::unique_ptr<ReplicatedEngine> engine;
    std::vector<int64_t> seq_base;
    std::vector<int64_t> seq_count;
  };

  void OnEmit(int channel, const Row& row);
  Status ReplicateCheckpoint();
  /// Builds a fresh engine wired to this cluster's emission path.
  StatusOr<std::unique_ptr<ReplicatedEngine>> MakeEngine();
  /// Installs `node`'s replicated state into a fresh engine and replays
  /// the uncovered source suffix.
  Status RestoreAndReplay(const StandbyNode* node);
  /// Publishes log counters and cluster gauges into metrics_ (if any).
  void FoldMetrics();

  EngineFactory factory_;
  int num_channels_;
  const std::vector<Row>* source_;
  ClusterOptions options_;
  ReplicationMetrics* metrics_;  // may be null

  std::vector<std::unique_ptr<StandbyNode>> standbys_;
  std::unique_ptr<ReplicationLog> log_;
  std::unique_ptr<PrimaryState> primary_;
  std::vector<DedupSink> sinks_;
  Status sink_error_;  // first dedup violation (lost/mismatched row)

  uint64_t term_ = 0;
  uint64_t next_index_ = 1;
  int64_t position_ = 0;  // source offset consumed by the cluster
  int64_t tick_ = 0;
  int failovers_ = 0;
  int lagging_promotions_ = 0;
  int64_t rows_replayed_ = 0;
  bool finished_ = false;
  bool started_ = false;
};

}  // namespace replication
}  // namespace sqlts

#endif  // SQLTS_REPLICATION_CLUSTER_H_
