#ifndef SQLTS_REPLICATION_LOG_H_
#define SQLTS_REPLICATION_LOG_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace sqlts {
namespace replication {

// Concurrency contract (docs/STATIC_ANALYSIS.md): everything in this
// header is single-threaded by design — owned and driven by the
// deterministic cluster harness (cluster.h), never shared across
// threads — so no capability annotations appear here on purpose.

/// One sequenced replication record: the primary's engine checkpoint
/// plus the coverage metadata that makes failover exactly-once —
/// `covered_offset` is the source position the checkpoint accounts for
/// (a promoted standby replays the suffix from here) and `watermarks`
/// are the per-output-channel rows-emitted counts at checkpoint time
/// (the consumer's dedup cursor; replayed rows below the watermark are
/// dropped, bit-identically verified).  `(term, index)` order entries
/// across primaries: a standby accepts an entry iff it is lexically
/// newer than what it holds, so delayed or reordered deliveries from a
/// dead term can never regress a node.
struct LogEntry {
  uint64_t term = 0;   // primary incarnation that appended the entry
  uint64_t index = 0;  // 1-based position within the replicated log
  int64_t covered_offset = 0;
  std::vector<int64_t> watermarks;
  std::string checkpoint;  // engine checkpoint container (may be large)
};

/// Serializes `entry` into a self-contained checksummed frame (the
/// engine/checkpoint.h container, so corruption detection and
/// bounds-checked decoding come for free).
std::string EncodeLogEntry(const LogEntry& entry);

/// Decodes a frame produced by EncodeLogEntry.  Typed IoError on any
/// corruption (bad magic/checksum, truncation, oversized prefixes) —
/// never throws or over-reads.
StatusOr<LogEntry> DecodeLogEntry(std::string_view bytes);

/// Seeded chaos the in-process transport may apply to each delivery,
/// mirroring what a real network does to a replication stream: drop the
/// frame, or delay it a bounded number of ticks (delays reorder frames
/// naturally; the quorum append path retransmits around both).
struct TransportOptions {
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  int64_t max_delay_ticks = 4;  // the allowed reorder window
};

/// What the log layer observed (folded into ReplicationMetrics by the
/// cluster when one is attached).
struct ReplicationCounters {
  int64_t entries_appended = 0;
  int64_t acks = 0;
  int64_t drops = 0;
  int64_t delays = 0;
  int64_t retransmits = 0;
  int64_t stale_ignored = 0;
  int64_t heartbeats = 0;
};

/// One standby: holds the newest (term, index) entry it has received
/// plus the heartbeat lease state.  Single-threaded by design — the
/// whole multi-node harness runs in one process under a deterministic
/// driver (see cluster.h).
class StandbyNode {
 public:
  explicit StandbyNode(int id) : id_(id) {}

  /// Decodes and installs one frame.  Returns true if the entry was
  /// accepted (lexically newer than the held one), false if stale;
  /// typed IoError on corrupt bytes.
  StatusOr<bool> Deliver(const std::string& encoded);

  void DeliverHeartbeat(uint64_t term, int64_t tick);

  int id() const { return id_; }
  uint64_t latest_term() const { return latest_ ? latest_->term : 0; }
  uint64_t latest_index() const { return latest_ ? latest_->index : 0; }
  /// Newest installed entry, or null if none arrived yet.
  const LogEntry* latest() const {
    return latest_.has_value() ? &*latest_ : nullptr;
  }
  int64_t last_heartbeat_tick() const { return last_heartbeat_tick_; }
  /// True once `now` is more than `lease_ticks` past the last heartbeat
  /// (or no heartbeat ever arrived) — the node suspects the primary.
  bool LeaseExpired(int64_t now, int64_t lease_ticks) const {
    return now - last_heartbeat_tick_ > lease_ticks;
  }
  int64_t stale_ignored() const { return stale_ignored_; }

 private:
  int id_;
  std::optional<LogEntry> latest_;
  int64_t last_heartbeat_tick_ = 0;
  int64_t stale_ignored_ = 0;
};

/// Fans appended entries out to the standby set through the chaotic
/// transport and enforces the ack quorum: Append() returns only once at
/// least `quorum_acks` standbys have durably installed the entry —
/// first-pass deliveries that the chaos dropped or delayed are
/// retransmitted in node-id order until the quorum holds, exactly like
/// a real log replicator nursing a flaky link.  Delayed copies still
/// arrive later (via Tick) and are deduplicated by (term, index).
class ReplicationLog {
 public:
  ReplicationLog(uint64_t seed, TransportOptions transport,
                 std::vector<StandbyNode*> standbys, int quorum_acks);

  /// Removes `node` from the fan-out set (promoted or dead) and drops
  /// its in-flight deliveries; the quorum is clamped to the survivors.
  void RemoveStandby(int id);

  /// Quorum-appends `entry`; advances committed_index on success.
  Status Append(const LogEntry& entry);

  /// Delivers a heartbeat (term + current tick) to every standby; each
  /// delivery is independently subject to the drop probability.
  void Heartbeat(uint64_t term, int64_t tick);

  /// Advances transport time: flushes deliveries whose delay is due.
  void Tick(int64_t now);

  uint64_t committed_index() const { return committed_index_; }
  const ReplicationCounters& counters() const { return counters_; }
  int num_standbys() const { return static_cast<int>(standbys_.size()); }
  int quorum_acks() const { return quorum_acks_; }

 private:
  struct Delayed {
    int64_t due_tick;
    int standby_id;
    std::string frame;
  };

  double NextUniform();
  StandbyNode* Find(int id);
  /// Re-aggregates the per-standby stale counters into counters_.
  void RefreshStale();

  TransportOptions transport_;
  std::vector<StandbyNode*> standbys_;
  int quorum_acks_;
  uint64_t state_;  // splitmix64
  uint64_t committed_index_ = 0;
  int64_t now_ = 0;
  std::deque<Delayed> delayed_;
  ReplicationCounters counters_;
};

}  // namespace replication
}  // namespace sqlts

#endif  // SQLTS_REPLICATION_LOG_H_
