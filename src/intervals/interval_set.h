#ifndef SQLTS_INTERVALS_INTERVAL_SET_H_
#define SQLTS_INTERVALS_INTERVAL_SET_H_

#include <limits>
#include <string>
#include <vector>

#include "constraints/atom.h"

namespace sqlts {

/// One endpoint of an interval: a value plus open/closed-ness, with
/// ±infinity encoded by `infinite`.
struct Endpoint {
  double value = 0;
  bool open = false;
  bool infinite = false;

  static Endpoint NegInf() { return {0, true, true}; }
  static Endpoint PosInf() { return {0, true, true}; }
  static Endpoint Closed(double v) { return {v, false, false}; }
  static Endpoint Open(double v) { return {v, true, false}; }
};

/// A (possibly unbounded, possibly degenerate) real interval.
struct Interval {
  Endpoint lo = Endpoint::NegInf();  // lo.infinite ⇒ -∞
  Endpoint hi = Endpoint::PosInf();  // hi.infinite ⇒ +∞

  /// Whole real line.
  static Interval All();
  /// [v, v].
  static Interval Point(double v);
  /// Interval satisfying `x op c`.
  static Interval FromCmp(CmpOp op, double c);
  /// Constructs with explicit endpoints; empty intervals are allowed.
  static Interval Make(Endpoint lo, Endpoint hi);

  bool IsEmpty() const;
  bool Contains(double v) const;
  std::string ToString() const;
};

/// A normalized finite union of disjoint, non-adjacent intervals — the
/// domain of the paper's extension [13]: implication and satisfiability
/// for (possibly disjunctive) single-variable predicates become set
/// inclusion tests here.
class IntervalSet {
 public:
  /// Empty set.
  IntervalSet() = default;
  /// Singleton union.
  explicit IntervalSet(Interval iv);

  static IntervalSet All() { return IntervalSet(Interval::All()); }
  static IntervalSet Empty() { return IntervalSet(); }
  /// The set {x : x op c}.  Note kNe yields two rays.
  static IntervalSet FromCmp(CmpOp op, double c);

  bool IsEmpty() const { return parts_.empty(); }
  bool IsAll() const;
  bool Contains(double v) const;

  IntervalSet Union(const IntervalSet& o) const;
  IntervalSet Intersect(const IntervalSet& o) const;
  IntervalSet Complement() const;

  /// Subset test — the implication primitive: (x ∈ this) ⇒ (x ∈ o).
  bool SubsetOf(const IntervalSet& o) const;

  const std::vector<Interval>& parts() const { return parts_; }

  std::string ToString() const;

 private:
  void Normalize();

  std::vector<Interval> parts_;
};

}  // namespace sqlts

#endif  // SQLTS_INTERVALS_INTERVAL_SET_H_
