#include "intervals/interval_set.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace sqlts {
namespace {

/// Orders lower endpoints: -∞ first; at equal value, closed before open.
bool LoLess(const Endpoint& a, const Endpoint& b) {
  if (a.infinite != b.infinite) return a.infinite;
  if (a.infinite) return false;
  if (a.value != b.value) return a.value < b.value;
  return !a.open && b.open;
}

/// True when interval ending at `hi` touches-or-overlaps one starting at
/// `lo` (so their union is a single interval).
bool MergeableAcross(const Endpoint& hi, const Endpoint& lo) {
  if (hi.infinite || lo.infinite) return true;
  if (lo.value < hi.value) return true;
  if (lo.value > hi.value) return false;
  return !(hi.open && lo.open);  // (a,v)∪(v,b) has a hole at v
}

/// Max of two upper endpoints.
Endpoint HiMax(const Endpoint& a, const Endpoint& b) {
  if (a.infinite) return a;
  if (b.infinite) return b;
  if (a.value != b.value) return a.value > b.value ? a : b;
  return a.open ? b : a;  // closed dominates at equal value
}

}  // namespace

Interval Interval::All() {
  Interval iv;
  iv.lo = Endpoint::NegInf();
  iv.hi = Endpoint::PosInf();
  return iv;
}

Interval Interval::Point(double v) {
  return Make(Endpoint::Closed(v), Endpoint::Closed(v));
}

Interval Interval::Make(Endpoint lo, Endpoint hi) {
  Interval iv;
  iv.lo = lo;
  iv.hi = hi;
  return iv;
}

Interval Interval::FromCmp(CmpOp op, double c) {
  switch (op) {
    case CmpOp::kEq:
      return Point(c);
    case CmpOp::kLt:
      return Make(Endpoint::NegInf(), Endpoint::Open(c));
    case CmpOp::kLe:
      return Make(Endpoint::NegInf(), Endpoint::Closed(c));
    case CmpOp::kGt:
      return Make(Endpoint::Open(c), Endpoint::PosInf());
    case CmpOp::kGe:
      return Make(Endpoint::Closed(c), Endpoint::PosInf());
    case CmpOp::kNe:
      SQLTS_CHECK(false) << "kNe is not a single interval; use "
                            "IntervalSet::FromCmp";
  }
  return All();
}

bool Interval::IsEmpty() const {
  if (lo.infinite || hi.infinite) return false;
  if (lo.value > hi.value) return true;
  if (lo.value < hi.value) return false;
  return lo.open || hi.open;
}

bool Interval::Contains(double v) const {
  if (!lo.infinite) {
    if (v < lo.value || (v == lo.value && lo.open)) return false;
  }
  if (!hi.infinite) {
    if (v > hi.value || (v == hi.value && hi.open)) return false;
  }
  return true;
}

std::string Interval::ToString() const {
  std::ostringstream os;
  os << (lo.infinite ? "(-inf" : (lo.open ? "(" : "[") + std::string());
  if (!lo.infinite) os << lo.value;
  os << ", ";
  if (hi.infinite) {
    os << "+inf)";
  } else {
    os << hi.value << (hi.open ? ")" : "]");
  }
  return os.str();
}

IntervalSet::IntervalSet(Interval iv) {
  if (!iv.IsEmpty()) parts_.push_back(iv);
}

IntervalSet IntervalSet::FromCmp(CmpOp op, double c) {
  if (op == CmpOp::kNe) {
    IntervalSet out;
    out.parts_.push_back(
        Interval::Make(Endpoint::NegInf(), Endpoint::Open(c)));
    out.parts_.push_back(
        Interval::Make(Endpoint::Open(c), Endpoint::PosInf()));
    return out;
  }
  return IntervalSet(Interval::FromCmp(op, c));
}

bool IntervalSet::IsAll() const {
  return parts_.size() == 1 && parts_[0].lo.infinite &&
         parts_[0].hi.infinite;
}

bool IntervalSet::Contains(double v) const {
  for (const Interval& iv : parts_) {
    if (iv.Contains(v)) return true;
  }
  return false;
}

void IntervalSet::Normalize() {
  std::vector<Interval> in;
  in.reserve(parts_.size());
  for (const Interval& iv : parts_) {
    if (!iv.IsEmpty()) in.push_back(iv);
  }
  std::sort(in.begin(), in.end(), [](const Interval& a, const Interval& b) {
    return LoLess(a.lo, b.lo);
  });
  parts_.clear();
  for (const Interval& iv : in) {
    if (!parts_.empty() && MergeableAcross(parts_.back().hi, iv.lo)) {
      parts_.back().hi = HiMax(parts_.back().hi, iv.hi);
    } else {
      parts_.push_back(iv);
    }
  }
}

IntervalSet IntervalSet::Union(const IntervalSet& o) const {
  IntervalSet out;
  out.parts_ = parts_;
  out.parts_.insert(out.parts_.end(), o.parts_.begin(), o.parts_.end());
  out.Normalize();
  return out;
}

IntervalSet IntervalSet::Complement() const {
  IntervalSet out;
  Endpoint cursor = Endpoint::NegInf();
  bool cursor_at_start = true;
  for (const Interval& iv : parts_) {
    // Gap between cursor and iv.lo.
    if (iv.lo.infinite) {
      // This part starts at -∞: no gap before it.
    } else {
      Endpoint gap_hi{iv.lo.value, !iv.lo.open, false};
      Interval gap;
      gap.lo = cursor_at_start ? Endpoint::NegInf()
                               : Endpoint{cursor.value, !cursor.open, false};
      gap.hi = gap_hi;
      if (!gap.IsEmpty() || cursor_at_start) {
        if (cursor_at_start) {
          gap.lo = Endpoint::NegInf();
          out.parts_.push_back(gap);
        } else if (!gap.IsEmpty()) {
          out.parts_.push_back(gap);
        }
      }
    }
    if (iv.hi.infinite) {
      // Covers to +∞: nothing after.
      return out;
    }
    cursor = iv.hi;
    cursor_at_start = false;
  }
  Interval tail;
  tail.lo = cursor_at_start ? Endpoint::NegInf()
                            : Endpoint{cursor.value, !cursor.open, false};
  tail.hi = Endpoint::PosInf();
  out.parts_.push_back(tail);
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& o) const {
  // De Morgan: A ∩ B = (Aᶜ ∪ Bᶜ)ᶜ.  Set sizes here are tiny.
  return Complement().Union(o.Complement()).Complement();
}

bool IntervalSet::SubsetOf(const IntervalSet& o) const {
  return Intersect(o.Complement()).IsEmpty();
}

std::string IntervalSet::ToString() const {
  if (parts_.empty()) return "{}";
  std::string out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i) out += " U ";
    out += parts_[i].ToString();
  }
  return out;
}

}  // namespace sqlts
