#ifndef SQLTS_WORKLOAD_PATTERNS_H_
#define SQLTS_WORKLOAD_PATTERNS_H_

#include <string>
#include <vector>

namespace sqlts {

/// A named technical-analysis query over the quote/djia schema, in the
/// paper's "relaxed" style: moves within ±band are treated as flat
/// (Sec 7).
struct NamedPattern {
  std::string name;
  std::string query;
};

/// The paper's relaxed double bottom (Example 10), parameterized by the
/// flat band (paper: 0.02).
std::string RelaxedDoubleBottomQuery(double band = 0.02);

/// Mirror image: a relaxed double top (two local maxima around a local
/// minimum).
std::string RelaxedDoubleTopQuery(double band = 0.02);

/// A one-day crash (> crash_size drop) followed by a strong rebound run
/// that stays below the pre-crash price.
std::string VReboundQuery(double crash_size = 0.05, double band = 0.02);

/// A tight consolidation (every move within ±band) broken by a single
/// strong up day.
std::string BreakoutQuery(double band = 0.01, double breakout = 0.03);

/// Three consecutive >band drops (a cascade).
std::string CascadeCrashQuery(double band = 0.02);

/// The whole library (for sweeps over every pattern).
std::vector<NamedPattern> TechnicalPatternLibrary();

/// Builds a series containing exactly `count` relaxed double *tops*
/// (the mirror of SeriesWithPlantedDoubleBottoms).
std::vector<double> SeriesWithPlantedDoubleTops(int count,
                                                uint64_t noise_seed = 7);

}  // namespace sqlts

#endif  // SQLTS_WORKLOAD_PATTERNS_H_
