#ifndef SQLTS_WORKLOAD_GENERATORS_H_
#define SQLTS_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace sqlts {

/// The standard quote schema used throughout the paper:
///   quote(name STRING, date DATE, price DOUBLE).
Schema QuoteSchema();

/// Builds a quote table for a single instrument from a price series,
/// one row per trading day (weekends skipped) starting at `start`.
Table PricesToQuoteTable(const std::string& name, Date start,
                         const std::vector<double>& prices);

/// Appends another instrument's rows to an existing quote table (for
/// CLUSTER BY workloads with many stocks).
Status AppendInstrument(Table* table, const std::string& name, Date start,
                        const std::vector<double>& prices);

/// Options for the geometric random walk generator.
struct RandomWalkOptions {
  int64_t n = 1000;
  double start_price = 100.0;
  double daily_drift = 0.0002;   ///< mean of daily log-return
  double daily_vol = 0.01;       ///< stddev of daily log-return
  uint64_t seed = 42;
};

/// A seeded geometric random walk (log-normal daily returns).
std::vector<double> GeometricRandomWalk(const RandomWalkOptions& options);

/// Synthetic stand-in for 25 years of DJIA daily closes (~6300 trading
/// days): a geometric walk with regime-switching volatility calibrated
/// to index-like behaviour.  Deterministic given `seed`.
std::vector<double> SynthesizeDjia(int64_t n = 6300, uint64_t seed = 1987);

/// Builds a series that contains exactly `count` relaxed double-bottom
/// occurrences (Example 10 / Figure 6) separated by quiet stretches, so
/// the headline experiment has a known ground truth.  `noise_seed`
/// drives small (<2%, i.e. "flat") jitter everywhere.
std::vector<double> SeriesWithPlantedDoubleBottoms(int count,
                                                   uint64_t noise_seed = 7);

/// Options for the trending-series generator.
struct TrendOptions {
  int64_t n = 6300;
  /// Mean length of a monotone run (geometric); long runs are what make
  /// backtracking search quadratic on star-led patterns.
  double mean_run = 50;
  double step = 0.005;        ///< per-day move magnitude within a run
  double crash_prob = 0.002;  ///< chance a down-run starts with a crash
  double crash_size = 0.12;   ///< crash magnitude (fractional drop)
  uint64_t seed = 3;
};

/// A series of long alternating monotone runs with occasional one-day
/// crashes — the regime where a naive scan re-reads each run from every
/// start position while OPS's star-group shifts skip it whole.
std::vector<double> TrendingSeries(const TrendOptions& options);

/// The 15-value price sequence of Sec 4.2.1 used for the Figure-5 path
/// curves: 55 50 45 57 54 50 47 49 45 42 55 57 59 60 57.
std::vector<double> PaperFigure5Sequence();

/// The 11-value sequence of Sec 5's count example:
/// 20 21 23 24 22 20 18 15 14 18 21.
std::vector<double> PaperSection5Sequence();

/// The SQL-TS text of the paper's numbered example queries (1, 2, 3, 4,
/// 8, 9, 10), for tests, examples and benchmarks.
std::string PaperExampleQuery(int number);

}  // namespace sqlts

#endif  // SQLTS_WORKLOAD_GENERATORS_H_
