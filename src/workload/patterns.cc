#include "workload/patterns.h"

#include <random>

#include "common/logging.h"

namespace sqlts {
namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// "0.98 * V.previous.price < V.price AND V.price < 1.02 * ..." — the
/// relaxed "flat" condition for variable `v`.
std::string Flat(const std::string& v, double band) {
  return Num(1 - band) + " * " + v + ".previous.price < " + v +
         ".price AND " + v + ".price < " + Num(1 + band) + " * " + v +
         ".previous.price";
}
std::string Up(const std::string& v, double band) {
  return v + ".price > " + Num(1 + band) + " * " + v + ".previous.price";
}
std::string Down(const std::string& v, double band) {
  return v + ".price < " + Num(1 - band) + " * " + v + ".previous.price";
}

}  // namespace

std::string RelaxedDoubleBottomQuery(double band) {
  return "SELECT X.NEXT.date AS start_date, S.previous.date AS end_date "
         "FROM djia SEQUENCE BY date "
         "AS (X, *Y, *Z, *T, *U, *V, *W, *R, S) WHERE "
         "X.price >= " + Num(1 - band) + " * X.previous.price AND " +
         Down("Y", band) + " AND " + Flat("Z", band) + " AND " +
         Up("T", band) + " AND " + Flat("U", band) + " AND " +
         Down("V", band) + " AND " + Flat("W", band) + " AND " +
         Up("R", band) + " AND S.price <= " + Num(1 + band) +
         " * S.previous.price";
}

std::string RelaxedDoubleTopQuery(double band) {
  return "SELECT X.NEXT.date AS start_date, S.previous.date AS end_date "
         "FROM djia SEQUENCE BY date "
         "AS (X, *Y, *Z, *T, *U, *V, *W, *R, S) WHERE "
         "X.price <= " + Num(1 + band) + " * X.previous.price AND " +
         Up("Y", band) + " AND " + Flat("Z", band) + " AND " +
         Down("T", band) + " AND " + Flat("U", band) + " AND " +
         Up("V", band) + " AND " + Flat("W", band) + " AND " +
         Down("R", band) + " AND S.price >= " + Num(1 - band) +
         " * S.previous.price";
}

std::string VReboundQuery(double crash_size, double band) {
  return "SELECT X.date AS crash_date, LAST(R).date AS rebound_date "
         "FROM djia SEQUENCE BY date AS (X, *R, S) WHERE "
         "X.price < " + Num(1 - crash_size) + " * X.previous.price AND " +
         Up("R", band) + " AND S.price <= " + Num(1 + band) +
         " * S.previous.price AND S.previous.price < X.previous.price";
}

std::string BreakoutQuery(double band, double breakout) {
  return "SELECT FIRST(F).date AS base_start, B.date AS breakout_date, "
         "B.price FROM djia SEQUENCE BY date AS (*F, B) WHERE " +
         Flat("F", band) + " AND B.price > " + Num(1 + breakout) +
         " * B.previous.price";
}

std::string CascadeCrashQuery(double band) {
  return "SELECT D1.date, D3.price FROM djia SEQUENCE BY date "
         "AS (D1, D2, D3) WHERE " +
         Down("D1", band) + " AND " + Down("D2", band) + " AND " +
         Down("D3", band);
}

std::vector<NamedPattern> TechnicalPatternLibrary() {
  return {
      {"double_bottom", RelaxedDoubleBottomQuery()},
      {"double_top", RelaxedDoubleTopQuery()},
      {"v_rebound", VReboundQuery()},
      {"breakout", BreakoutQuery()},
      {"cascade_crash", CascadeCrashQuery()},
  };
}

std::vector<double> SeriesWithPlantedDoubleTops(int count,
                                                uint64_t noise_seed) {
  std::mt19937_64 rng(noise_seed);
  std::uniform_real_distribution<double> flat(0.994, 1.006);
  std::vector<double> out;
  double p = 100.0;
  auto push_ratio = [&](double r) {
    p *= r;
    out.push_back(p);
  };
  auto quiet = [&](int steps) {
    for (int i = 0; i < steps; ++i) push_ratio(flat(rng));
  };
  out.push_back(p);
  quiet(15);
  for (int c = 0; c < count; ++c) {
    push_ratio(0.996);  // X: a non-surge step
    push_ratio(1.045);  // *Y: first leg up
    push_ratio(1.04);
    push_ratio(0.995);  // *Z: flat top
    push_ratio(1.003);
    push_ratio(0.955);  // *T: dip between the tops
    push_ratio(0.96);
    push_ratio(1.004);  // *U: flat floor
    push_ratio(0.996);
    push_ratio(1.05);   // *V: second leg up
    push_ratio(1.035);
    push_ratio(0.994);  // *W: flat top
    push_ratio(1.005);
    push_ratio(0.95);   // *R: decline
    push_ratio(0.955);
    push_ratio(0.999);  // S: a non-crash step closes the pattern
    quiet(18);
  }
  return out;
}

}  // namespace sqlts
