#include "workload/generators.h"

#include <cmath>
#include <random>

#include "common/logging.h"

namespace sqlts {
namespace {

/// Advances `d` to the next weekday (Mon-Fri).  Day 0 (1970-01-01) was a
/// Thursday.
Date NextTradingDay(Date d) {
  Date next = d.AddDays(1);
  while (true) {
    int dow = ((next.days_since_epoch() % 7) + 7) % 7;  // 0 = Thursday
    // Saturday = 2, Sunday = 3 in this numbering.
    if (dow != 2 && dow != 3) return next;
    next = next.AddDays(1);
  }
}

}  // namespace

Schema QuoteSchema() {
  Schema s;
  SQLTS_CHECK_OK(s.AddColumn("name", TypeKind::kString));
  SQLTS_CHECK_OK(s.AddColumn("date", TypeKind::kDate));
  // Quotes are strictly positive, and declaring so is what licenses the
  // paper's log-domain ratio reasoning (Sec 6) for queries over them.
  SQLTS_CHECK_OK(s.AddColumn("price", TypeKind::kDouble,
                             /*nullable=*/false, /*positive=*/true));
  return s;
}

Status AppendInstrument(Table* table, const std::string& name, Date start,
                        const std::vector<double>& prices) {
  Date d = start;
  for (double p : prices) {
    SQLTS_RETURN_IF_ERROR(table->AppendRow(
        {Value::String(name), Value::FromDate(d), Value::Double(p)}));
    d = NextTradingDay(d);
  }
  return Status::OK();
}

Table PricesToQuoteTable(const std::string& name, Date start,
                         const std::vector<double>& prices) {
  Table t(QuoteSchema());
  SQLTS_CHECK_OK(AppendInstrument(&t, name, start, prices));
  return t;
}

std::vector<double> GeometricRandomWalk(const RandomWalkOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> ret(options.daily_drift,
                                       options.daily_vol);
  std::vector<double> out;
  out.reserve(options.n);
  double p = options.start_price;
  for (int64_t i = 0; i < options.n; ++i) {
    out.push_back(p);
    p *= std::exp(ret(rng));
  }
  return out;
}

std::vector<double> SynthesizeDjia(int64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::vector<double> out;
  out.reserve(n);
  double p = 850.0;               // mid-1970s DJIA level
  double vol = 0.007;             // calm regime: ±2% days are rare,
                                  // giving the long "flat" runs (in the
                                  // Example-10 sense) the real index has
  const double drift = 0.00035;   // long-run index drift
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(p);
    // Regime switching: long calm decades, shorter turbulent bursts.
    if (vol < 0.012) {
      if (u01(rng) < 0.004) vol = 0.022;
    } else {
      if (u01(rng) < 0.03) vol = 0.007;
    }
    p *= std::exp(drift + vol * unit(rng));
  }
  return out;
}

std::vector<double> SeriesWithPlantedDoubleBottoms(int count,
                                                   uint64_t noise_seed) {
  std::mt19937_64 rng(noise_seed);
  // "Flat" jitter: strictly within the ±2% band of Example 10.
  std::uniform_real_distribution<double> flat(0.994, 1.006);
  std::vector<double> out;
  double p = 100.0;
  auto push_ratio = [&](double r) {
    p *= r;
    out.push_back(p);
  };
  auto quiet = [&](int steps) {
    for (int i = 0; i < steps; ++i) push_ratio(flat(rng));
  };

  out.push_back(p);
  quiet(15);
  for (int c = 0; c < count; ++c) {
    // X: a non-drop step (p ≥ 0.98·prev).
    push_ratio(1.004);
    // *Y: first leg down (>2% daily drops).
    push_ratio(0.955);
    push_ratio(0.96);
    // *Z: flat floor.
    push_ratio(1.005);
    push_ratio(0.997);
    // *T: rally between the bottoms (>2% daily rises).
    push_ratio(1.045);
    push_ratio(1.04);
    // *U: flat top.
    push_ratio(0.996);
    push_ratio(1.004);
    // *V: second leg down.
    push_ratio(0.95);
    push_ratio(0.965);
    // *W: flat floor.
    push_ratio(1.006);
    push_ratio(0.995);
    // *R: recovery (>2% daily rises).
    push_ratio(1.05);
    push_ratio(1.045);
    // S: a non-surge step closes the pattern (p ≤ 1.02·prev).
    push_ratio(1.001);
    quiet(18);
  }
  return out;
}

std::vector<double> TrendingSeries(const TrendOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::geometric_distribution<int64_t> run_len(1.0 / options.mean_run);
  std::vector<double> out;
  out.reserve(options.n);
  double p = 100.0;
  bool up = true;
  while (static_cast<int64_t>(out.size()) < options.n) {
    int64_t len = 1 + run_len(rng);
    for (int64_t i = 0; i < len &&
                        static_cast<int64_t>(out.size()) < options.n;
         ++i) {
      p *= up ? (1.0 + options.step) : (1.0 - options.step);
      out.push_back(p);
    }
    if (!up && u01(rng) < options.crash_prob * options.mean_run &&
        static_cast<int64_t>(out.size()) < options.n) {
      // Finish the down-run with a capitulation crash day.
      p *= 1.0 - options.crash_size;
      out.push_back(p);
    }
    up = !up;
  }
  return out;
}

std::vector<double> PaperFigure5Sequence() {
  return {55, 50, 45, 57, 54, 50, 47, 49, 45, 42, 55, 57, 59, 60, 57};
}

std::vector<double> PaperSection5Sequence() {
  return {20, 21, 23, 24, 22, 20, 18, 15, 14, 18, 21};
}

std::string PaperExampleQuery(int number) {
  switch (number) {
    case 1:
      return R"sql(
        SELECT X.name
        FROM quote CLUSTER BY name SEQUENCE BY date
        AS (X, Y, Z)
        WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
      )sql";
    case 2:
      return R"sql(
        SELECT X.name, X.date AS start_date, Z.previous.date AS end_date
        FROM quote CLUSTER BY name SEQUENCE BY date
        AS (X, *Y, Z)
        WHERE Y.price < Y.previous.price
          AND Z.previous.price < 0.5 * X.price
      )sql";
    case 3:
      return R"sql(
        SELECT X.name
        FROM quote CLUSTER BY name SEQUENCE BY date
        AS (X, Y, Z)
        WHERE X.price = 10 AND Y.price = 11 AND Z.price = 15
      )sql";
    case 4:
      return R"sql(
        SELECT X.date AS start_date, X.price,
               U.date AS end_date, U.price
        FROM quote CLUSTER BY name SEQUENCE BY date
        AS (X, Y, Z, T, U)
        WHERE X.name = 'IBM'
          AND Y.price < X.price
          AND Z.price < Y.price
          AND Z.price > 40 AND Z.price < 50
          AND T.price > Z.price
          AND T.price < 52
          AND U.price > T.price
      )sql";
    case 8:
      return R"sql(
        SELECT X.name, FIRST(X).date AS sdate, LAST(Z).date AS edate
        FROM quote CLUSTER BY name SEQUENCE BY date
        AS (*X, *Y, *Z)
        WHERE X.price > X.previous.price
          AND Y.price < Y.previous.price
          AND Z.price > Z.previous.price
      )sql";
    case 9:
      return R"sql(
        SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price
        FROM quote CLUSTER BY name, SEQUENCE BY date
        AS (*X, Y, *Z, *T, U, *V, S)
        WHERE X.name = 'IBM'
          AND X.price > X.previous.price
          AND 30 < Y.price AND Y.price < 40
          AND Z.price < Z.previous.price
          AND T.price > T.previous.price
          AND 35 < U.price AND U.price < 40
          AND V.price < V.previous.price
          AND S.price < 30
      )sql";
    case 10:
      return R"sql(
        SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price
        FROM djia SEQUENCE BY date
        AS (X, *Y, *Z, *T, *U, *V, *W, *R, S)
        WHERE X.price >= 0.98 * X.previous.price
          AND Y.price < 0.98 * Y.previous.price
          AND 0.98 * Z.previous.price < Z.price
          AND Z.price < 1.02 * Z.previous.price
          AND T.price > 1.02 * T.previous.price
          AND 0.98 * U.previous.price < U.price
          AND U.price < 1.02 * U.previous.price
          AND V.price < 0.98 * V.previous.price
          AND 0.98 * W.previous.price < W.price
          AND W.price < 1.02 * W.previous.price
          AND R.price > 1.02 * R.previous.price
          AND S.price <= 1.02 * S.previous.price
      )sql";
    default:
      SQLTS_CHECK(false) << "no example query #" << number;
  }
  return "";
}

}  // namespace sqlts
