#ifndef SQLTS_TRIBOOL_TRIBOOL_H_
#define SQLTS_TRIBOOL_TRIBOOL_H_

#include <cstdint>
#include <ostream>
#include <string_view>

namespace sqlts {

/// Kleene three-valued logic value: False (0), Unknown (U), True (1).
///
/// This is the algebra the paper uses for the precondition matrices θ and
/// φ and the shift matrix S (Sec 4.2): ¬U = U, U ∧ 1 = U, U ∧ 0 = 0,
/// U ∨ 0 = U, U ∨ 1 = 1.
class Tribool {
 public:
  enum Value : uint8_t { kFalse = 0, kUnknown = 1, kTrue = 2 };

  constexpr Tribool() : v_(kUnknown) {}
  constexpr Tribool(Value v) : v_(v) {}  // NOLINT: intended implicit
  constexpr explicit Tribool(bool b) : v_(b ? kTrue : kFalse) {}

  static constexpr Tribool True() { return Tribool(kTrue); }
  static constexpr Tribool False() { return Tribool(kFalse); }
  static constexpr Tribool Unknown() { return Tribool(kUnknown); }

  constexpr bool IsTrue() const { return v_ == kTrue; }
  constexpr bool IsFalse() const { return v_ == kFalse; }
  constexpr bool IsUnknown() const { return v_ == kUnknown; }
  /// True or Unknown — i.e. "not provably false"; this is the paper's
  /// `S_{jk} ≠ 0` test used when computing shift(j).
  constexpr bool IsPossible() const { return v_ != kFalse; }

  constexpr Value value() const { return v_; }

  constexpr bool operator==(const Tribool& o) const { return v_ == o.v_; }
  constexpr bool operator!=(const Tribool& o) const { return v_ != o.v_; }

  /// Kleene conjunction.
  friend constexpr Tribool operator&&(Tribool a, Tribool b) {
    if (a.v_ == kFalse || b.v_ == kFalse) return False();
    if (a.v_ == kTrue && b.v_ == kTrue) return True();
    return Unknown();
  }
  /// Kleene disjunction.
  friend constexpr Tribool operator||(Tribool a, Tribool b) {
    if (a.v_ == kTrue || b.v_ == kTrue) return True();
    if (a.v_ == kFalse && b.v_ == kFalse) return False();
    return Unknown();
  }
  /// Kleene negation (¬U = U).
  friend constexpr Tribool operator!(Tribool a) {
    if (a.v_ == kTrue) return False();
    if (a.v_ == kFalse) return True();
    return Unknown();
  }

  /// "0", "U" or "1" — matches the paper's matrix notation.
  std::string_view ToString() const;

 private:
  Value v_;
};

std::ostream& operator<<(std::ostream& os, Tribool t);

/// Kleene implication a → b ≡ ¬a ∨ b.
constexpr Tribool Implies(Tribool a, Tribool b) { return !a || b; }

}  // namespace sqlts

#endif  // SQLTS_TRIBOOL_TRIBOOL_H_
