#include "tribool/tribool.h"

namespace sqlts {

std::string_view Tribool::ToString() const {
  switch (v_) {
    case kFalse:
      return "0";
    case kUnknown:
      return "U";
    case kTrue:
      return "1";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Tribool t) {
  return os << t.ToString();
}

}  // namespace sqlts
