#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace sqlts {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool IsTransientNetworkError(const Status& status) {
  // Every socket-layer failure in server/net.cc is a kIoError; typed
  // engine/protocol failures carry their own codes and must not be
  // retried blindly.
  return status.code() == StatusCode::kIoError;
}

int64_t RetryBackoffMs(int attempt, const RetryOptions& options,
                       uint64_t* rng_state) {
  int64_t delay = std::max<int64_t>(1, options.backoff_ms);
  const int64_t cap = std::max<int64_t>(delay, options.max_backoff_ms);
  for (int i = 0; i < attempt && delay < cap; ++i) {
    delay = std::min(cap, delay * 2);
  }
  // Uniform jitter in [delay/2, delay] (decorrelates reconnect storms).
  const int64_t half = delay / 2;
  const int64_t span = delay - half + 1;
  return half + static_cast<int64_t>(SplitMix64(rng_state) %
                                     static_cast<uint64_t>(span));
}

StatusOr<SqltsClient> SqltsClient::Connect(const std::string& host,
                                           uint16_t port) {
  SQLTS_ASSIGN_OR_RETURN(TcpSocket sock, TcpSocket::Connect(host, port));
  return SqltsClient(std::move(sock));
}

void SleepForBackoff(int attempt, const RetryOptions& options,
                     uint64_t* rng_state) {
  std::this_thread::sleep_for(
      std::chrono::milliseconds(RetryBackoffMs(attempt, options, rng_state)));
}

StatusOr<SqltsClient> SqltsClient::ConnectWithRetry(
    const std::string& host, uint16_t port, const RetryOptions& options) {
  uint64_t rng = options.jitter_seed ^ 0xc11e47b3ULL;
  for (int attempt = 0;; ++attempt) {
    StatusOr<SqltsClient> client = Connect(host, port);
    if (client.ok() || attempt >= options.retries ||
        !IsTransientNetworkError(client.status())) {
      return client;
    }
    SleepForBackoff(attempt, options, &rng);
  }
}

Status SqltsClient::Send(const Json& message) {
  return sock_.WriteAll(EncodeFrame(message.Dump()));
}

StatusOr<Json> SqltsClient::Read() {
  std::string payload;
  while (true) {
    SQLTS_ASSIGN_OR_RETURN(bool ready, decoder_.Next(&payload));
    if (ready) return ParseMessage(payload);
    std::string chunk;
    SQLTS_ASSIGN_OR_RETURN(size_t n, sock_.ReadSome(&chunk));
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    decoder_.Feed(chunk);
  }
}

StatusOr<Json> SqltsClient::Hello(const std::string& client_name) {
  Json hello = Json::Obj();
  hello.Set("type", Json::Str("HELLO"));
  hello.Set("client", Json::Str(client_name));
  SQLTS_RETURN_IF_ERROR(Send(hello));
  SQLTS_ASSIGN_OR_RETURN(Json reply, Read());
  if (reply.GetString("type", "") != "WELCOME") {
    if (reply.GetString("type", "") == "ERROR") {
      return StatusFromErrorMessage(reply);
    }
    return Status::Internal("expected WELCOME, got " + reply.Dump());
  }
  return reply;
}

StatusOr<Json> SqltsClient::Query(int64_t id, const std::string& dataset,
                                  const std::string& query_text,
                                  const Json::Object& extra) {
  Json msg = Json::Obj();
  msg.Set("type", Json::Str("QUERY"));
  msg.Set("id", Json::Int(id));
  msg.Set("dataset", Json::Str(dataset));
  msg.Set("query", Json::Str(query_text));
  for (const auto& [key, value] : extra) msg.Set(key, value);
  SQLTS_RETURN_IF_ERROR(Send(msg));
  while (true) {
    SQLTS_ASSIGN_OR_RETURN(Json reply, Read());
    if (reply.GetInt("id", -1) != id) continue;  // unrelated traffic
    const std::string type = reply.GetString("type", "");
    if (type == "RESULT" || type == "CANCELLED") return reply;
    if (type == "ERROR") return StatusFromErrorMessage(reply);
  }
}

StatusOr<std::vector<Row>> SqltsClient::DecodeRows(const Json& rows_array) {
  if (rows_array.kind() != Json::Kind::kArray) {
    return Status::InvalidArgument("rows must be a JSON array");
  }
  std::vector<Row> rows;
  rows.reserve(rows_array.array().size());
  for (const Json& r : rows_array.array()) {
    SQLTS_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status SqltsClient::Close() {
  Json close = Json::Obj();
  close.Set("type", Json::Str("CLOSE"));
  SQLTS_RETURN_IF_ERROR(Send(close));
  // Drain until BYE (or the server hangs up first — also fine).
  while (true) {
    StatusOr<Json> reply = Read();
    if (!reply.ok()) return Status::OK();
    if (reply->GetString("type", "") == "BYE") return Status::OK();
  }
}

}  // namespace sqlts
