#include "server/client.h"

#include <utility>

namespace sqlts {

StatusOr<SqltsClient> SqltsClient::Connect(const std::string& host,
                                           uint16_t port) {
  SQLTS_ASSIGN_OR_RETURN(TcpSocket sock, TcpSocket::Connect(host, port));
  return SqltsClient(std::move(sock));
}

Status SqltsClient::Send(const Json& message) {
  return sock_.WriteAll(EncodeFrame(message.Dump()));
}

StatusOr<Json> SqltsClient::Read() {
  std::string payload;
  while (true) {
    SQLTS_ASSIGN_OR_RETURN(bool ready, decoder_.Next(&payload));
    if (ready) return ParseMessage(payload);
    std::string chunk;
    SQLTS_ASSIGN_OR_RETURN(size_t n, sock_.ReadSome(&chunk));
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    decoder_.Feed(chunk);
  }
}

StatusOr<Json> SqltsClient::Hello(const std::string& client_name) {
  Json hello = Json::Obj();
  hello.Set("type", Json::Str("HELLO"));
  hello.Set("client", Json::Str(client_name));
  SQLTS_RETURN_IF_ERROR(Send(hello));
  SQLTS_ASSIGN_OR_RETURN(Json reply, Read());
  if (reply.GetString("type", "") != "WELCOME") {
    if (reply.GetString("type", "") == "ERROR") {
      return StatusFromErrorMessage(reply);
    }
    return Status::Internal("expected WELCOME, got " + reply.Dump());
  }
  return reply;
}

StatusOr<Json> SqltsClient::Query(int64_t id, const std::string& dataset,
                                  const std::string& query_text,
                                  const Json::Object& extra) {
  Json msg = Json::Obj();
  msg.Set("type", Json::Str("QUERY"));
  msg.Set("id", Json::Int(id));
  msg.Set("dataset", Json::Str(dataset));
  msg.Set("query", Json::Str(query_text));
  for (const auto& [key, value] : extra) msg.Set(key, value);
  SQLTS_RETURN_IF_ERROR(Send(msg));
  while (true) {
    SQLTS_ASSIGN_OR_RETURN(Json reply, Read());
    if (reply.GetInt("id", -1) != id) continue;  // unrelated traffic
    const std::string type = reply.GetString("type", "");
    if (type == "RESULT" || type == "CANCELLED") return reply;
    if (type == "ERROR") return StatusFromErrorMessage(reply);
  }
}

StatusOr<std::vector<Row>> SqltsClient::DecodeRows(const Json& rows_array) {
  if (rows_array.kind() != Json::Kind::kArray) {
    return Status::InvalidArgument("rows must be a JSON array");
  }
  std::vector<Row> rows;
  rows.reserve(rows_array.array().size());
  for (const Json& r : rows_array.array()) {
    SQLTS_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status SqltsClient::Close() {
  Json close = Json::Obj();
  close.Set("type", Json::Str("CLOSE"));
  SQLTS_RETURN_IF_ERROR(Send(close));
  // Drain until BYE (or the server hangs up first — also fine).
  while (true) {
    StatusOr<Json> reply = Read();
    if (!reply.ok()) return Status::OK();
    if (reply->GetString("type", "") == "BYE") return Status::OK();
  }
}

}  // namespace sqlts
