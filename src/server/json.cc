#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace sqlts {
namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  Status Err(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at byte " +
                              std::to_string(pos));
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (AtEnd()) return Err("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        SQLTS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        SQLTS_RETURN_IF_ERROR(Expect("true"));
        return Json::Bool(true);
      case 'f':
        SQLTS_RETURN_IF_ERROR(Expect("false"));
        return Json::Bool(false);
      case 'n':
        SQLTS_RETURN_IF_ERROR(Expect("null"));
        return Json::Null();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Err(std::string("unexpected character '") + c + "'");
    }
  }

  Status Expect(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return Err("expected '" + std::string(word) + "'");
    }
    pos += word.size();
    return Status::OK();
  }

  StatusOr<Json> ParseNumber() {
    const size_t start = pos;
    if (!AtEnd() && Peek() == '-') ++pos;
    bool integral = true;
    while (!AtEnd()) {
      char c = Peek();
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos;
      } else {
        break;
      }
    }
    std::string token(text.substr(start, pos - start));
    if (token.empty() || token == "-") return Err("malformed number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json::Int(static_cast<int64_t>(v));
      }
      // Fall through: out of int64 range, keep it as a double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    if (!std::isfinite(d)) return Err("number out of range");
    return Json::Double(d);
  }

  StatusOr<std::string> ParseString() {
    ++pos;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Err("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Err("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SQLTS_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair → one code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (text.substr(pos, 2) != "\\u") return Err("lone surrogate");
            pos += 2;
            SQLTS_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) return Err("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("lone surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Err("invalid escape");
      }
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos + 4 > text.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Err("bad hex digit in \\u escape");
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<Json> ParseArray(int depth) {
    ++pos;  // '['
    Json out = Json::Arr();
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      return out;
    }
    while (true) {
      SQLTS_ASSIGN_OR_RETURN(Json v, ParseValue(depth + 1));
      out.mutable_array()->push_back(std::move(v));
      SkipWs();
      if (AtEnd()) return Err("unterminated array");
      char c = text[pos++];
      if (c == ']') return out;
      if (c != ',') return Err("expected ',' or ']'");
    }
  }

  StatusOr<Json> ParseObject(int depth) {
    ++pos;  // '{'
    Json out = Json::Obj();
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos;
      return out;
    }
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Err("expected member name");
      SQLTS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (AtEnd() || text[pos++] != ':') return Err("expected ':'");
      SQLTS_ASSIGN_OR_RETURN(Json v, ParseValue(depth + 1));
      out.Set(std::move(key), std::move(v));
      SkipWs();
      if (AtEnd()) return Err("unterminated object");
      char c = text[pos++];
      if (c == '}') return out;
      if (c != ',') return Err("expected ',' or '}'");
    }
  }
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpInto(const Json& v, std::string* out);

void DumpArray(const Json::Array& a, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < a.size(); ++i) {
    if (i > 0) out->push_back(',');
    DumpInto(a[i], out);
  }
  out->push_back(']');
}

void DumpObject(const Json::Object& o, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : o) {
    if (!first) out->push_back(',');
    first = false;
    EscapeInto(k, out);
    out->push_back(':');
    DumpInto(v, out);
  }
  out->push_back('}');
}

void DumpInto(const Json& v, std::string* out) {
  switch (v.kind()) {
    case Json::Kind::kNull: *out += "null"; break;
    case Json::Kind::kBool: *out += v.bool_value() ? "true" : "false"; break;
    case Json::Kind::kInt: *out += std::to_string(v.int_value()); break;
    case Json::Kind::kDouble: {
      double d = v.double_value();
      SQLTS_CHECK(std::isfinite(d)) << "non-finite double in JSON";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      break;
    }
    case Json::Kind::kString: EscapeInto(v.string_value(), out); break;
    case Json::Kind::kArray: DumpArray(v.array(), out); break;
    case Json::Kind::kObject: DumpObject(v.object(), out); break;
  }
}

}  // namespace

Json Json::Bool(bool b) {
  Json v;
  v.kind_ = Kind::kBool;
  v.b_ = b;
  return v;
}

Json Json::Int(int64_t i) {
  Json v;
  v.kind_ = Kind::kInt;
  v.i_ = i;
  return v;
}

Json Json::Double(double d) {
  Json v;
  v.kind_ = Kind::kDouble;
  v.d_ = d;
  return v;
}

Json Json::Str(std::string s) {
  Json v;
  v.kind_ = Kind::kString;
  v.s_ = std::move(s);
  return v;
}

Json Json::Arr(Array a) {
  Json v;
  v.kind_ = Kind::kArray;
  v.a_ = std::move(a);
  return v;
}

Json Json::Obj(Object o) {
  Json v;
  v.kind_ = Kind::kObject;
  v.o_ = std::move(o);
  return v;
}

bool Json::bool_value() const {
  SQLTS_CHECK(kind_ == Kind::kBool) << "not a bool";
  return b_;
}

int64_t Json::int_value() const {
  SQLTS_CHECK(kind_ == Kind::kInt) << "not an int";
  return i_;
}

double Json::double_value() const {
  SQLTS_CHECK(kind_ == Kind::kInt || kind_ == Kind::kDouble)
      << "not a number";
  return kind_ == Kind::kInt ? static_cast<double>(i_) : d_;
}

const std::string& Json::string_value() const {
  SQLTS_CHECK(kind_ == Kind::kString) << "not a string";
  return s_;
}

const Json::Array& Json::array() const {
  SQLTS_CHECK(kind_ == Kind::kArray) << "not an array";
  return a_;
}

const Json::Object& Json::object() const {
  SQLTS_CHECK(kind_ == Kind::kObject) << "not an object";
  return o_;
}

Json::Array* Json::mutable_array() {
  SQLTS_CHECK(kind_ == Kind::kArray) << "not an array";
  return &a_;
}

Json::Object* Json::mutable_object() {
  SQLTS_CHECK(kind_ == Kind::kObject) << "not an object";
  return &o_;
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = o_.find(std::string(key));
  return it == o_.end() ? nullptr : &it->second;
}

int64_t Json::GetInt(std::string_view key, int64_t dflt) const {
  const Json* v = Find(key);
  return v != nullptr && v->kind() == Kind::kInt ? v->int_value() : dflt;
}

std::string Json::GetString(std::string_view key,
                            std::string_view dflt) const {
  const Json* v = Find(key);
  return v != nullptr && v->kind() == Kind::kString ? v->string_value()
                                                    : std::string(dflt);
}

bool Json::GetBool(std::string_view key, bool dflt) const {
  const Json* v = Find(key);
  return v != nullptr && v->kind() == Kind::kBool ? v->bool_value() : dflt;
}

void Json::Set(std::string key, Json value) {
  SQLTS_CHECK(kind_ == Kind::kObject) << "not an object";
  o_[std::move(key)] = std::move(value);
}

std::string Json::Dump() const {
  std::string out;
  DumpInto(*this, &out);
  return out;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  Parser p{text};
  SQLTS_ASSIGN_OR_RETURN(Json v, p.ParseValue(0));
  p.SkipWs();
  if (!p.AtEnd()) return p.Err("trailing garbage after document");
  return v;
}

}  // namespace sqlts
