#include "server/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace sqlts {
namespace {

Status Errno(const std::string& what) {
  // Not strerror(): its process-global buffer races between the accept
  // thread and session reader/writer threads (concurrency-mt-unsafe).
  return Status::IoError(what + ": " +
                         std::generic_category().message(errno));
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<TcpSocket> TcpSocket::Connect(const std::string& host,
                                       uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  TcpSocket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect to " + host + ":" + std::to_string(port));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status TcpSocket::WriteAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (n == 0) return Status::IoError("send: connection closed");
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<size_t> TcpSocket::ReadSome(std::string* out, size_t cap) {
  out->resize(cap);
  while (true) {
    ssize_t n = ::recv(fd_, out->data(), cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      out->clear();
      return Errno("recv");
    }
    out->resize(static_cast<size_t>(n));
    return static_cast<size_t>(n);
  }
}

Status TcpSocket::SetSendTimeout(int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

Status TcpSocket::SetRecvTimeout(int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

void TcpSocket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpSocket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpListener::Listen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Errno("getsockname");
  }
  fd_.store(fd);
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

StatusOr<TcpSocket> TcpListener::Accept() {
  while (true) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return Status::IoError("listener closed");
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpSocket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first so a concurrent Accept() wakes with an error
    // instead of staying parked on a closed descriptor.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace sqlts
