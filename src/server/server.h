#ifndef SQLTS_SERVER_SERVER_H_
#define SQLTS_SERVER_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/governance.h"
#include "common/thread_annotations.h"
#include "common/statusor.h"
#include "server/metrics.h"
#include "server/net.h"
#include "server/registry.h"
#include "storage/table.h"

namespace sqlts {

class Session;

/// sqlts_server: a TCP service over the SQL-TS engine (docs/SERVER.md).
/// Each accepted connection is a session speaking the length-prefixed
/// JSON protocol (server/protocol.h).  Sessions submit batch QUERYs and
/// live STREAMs against named datasets; requests from concurrent
/// sessions targeting one dataset flow into shared executors — a
/// BatchCoalescer (MultiQueryExecutor sweeps) and a StreamHub
/// (MultiStreamExecutor generations) per dataset — so overlapping
/// predicates across clients are evaluated once.
///
/// Admission control is two-level and fair: at most
/// Options::max_sessions sessions run concurrently, further arrivals
/// wait in a bounded FIFO (admitted strictly in arrival order as
/// sessions end), and beyond the backlog connections are rejected with
/// a typed ERROR.  A global cap bounds queries in flight.  Per-query
/// governance (budgets, deadlines, cancellation) flows through
/// ExecGovernance into the engine and surfaces as typed ERROR replies
/// (ResourceExhausted / DeadlineExceeded / Cancelled).
class Server {
 public:
  struct Options {
    /// TCP port (loopback only); 0 picks an ephemeral port — read the
    /// bound port back from port().
    uint16_t port = 0;
    /// Concurrent session cap; arrivals beyond it wait.
    int max_sessions = 32;
    /// FIFO admission queue bound; arrivals beyond it are rejected.
    int admission_backlog = 64;
    /// Global cap on QUERY/STREAM requests in flight.
    int max_queries_in_flight = 1024;
    /// Worker shards per executor (ExecOptions::num_threads).
    int num_threads = 1;
    /// Per-connection send stall bound (half-open peers).
    int send_timeout_ms = 30000;
    /// Frames buffered per session before the connection counts as a
    /// slow consumer (streams to it are dropped with a typed error).
    size_t outbound_queue_frames = 16384;
    /// Pacing between stream pushes (mostly for tests: widens the
    /// mid-stream join window).
    int stream_delay_us = 0;
    /// Default per-query buffer budgets (0 = unlimited), overridable
    /// per session via HELLO and per request.
    int64_t max_buffered_tuples = 0;
    int64_t max_buffered_bytes = 0;
  };

  explicit Server(Options options);
  ~Server();

  /// Registers a dataset (FailedPrecondition once started).
  Status AddDataset(std::string name, Table table);

  /// Registers a dataset from a file, auto-detecting the format by
  /// magic bytes: a `.sqlc` columnar container decodes with its
  /// embedded schema (`schema` may be null) and its blocks/bytes are
  /// folded into the METRICS storage counters; anything else loads as
  /// CSV, which requires `schema`.
  Status AddDatasetFile(std::string name, const std::string& path,
                        const Schema* schema);

  /// Binds the listener and starts accepting sessions.
  Status Start();

  /// Drains and stops: rejects waiters, unblocks and joins every
  /// session, cancels queued work (each request still gets a terminal
  /// reply), joins the shared executors.  Idempotent.
  void Stop();

  /// Bound port (valid after Start()).
  uint16_t port() const { return listener_.port(); }

  const ServerMetrics& metrics() const { return metrics_; }
  /// Full METRICS snapshot: counters + live hub stats + per-session
  /// detail.
  Json MetricsSnapshot();
  /// Registry invariant probe: live epoch-namespaced stream caches.
  int64_t num_epoch_caches() const;

 private:
  friend class Session;

  struct Dataset {
    Table table;
    std::unique_ptr<BatchCoalescer> coalescer;
    std::unique_ptr<StreamHub> hub;
  };

  struct Slot {
    std::shared_ptr<Session> session;
    std::thread reader;
  };

  void AcceptLoop();
  /// Spawns a session for `sock`.
  void StartSessionLocked(TcpSocket sock) REQUIRES(mu_);
  /// Joins reader threads of sessions that announced completion.  Safe
  /// because a session id enters finished_ only after its thread's
  /// last mu_-taking action.
  void ReapLocked() REQUIRES(mu_);
  /// Called by a session's reader as its very last act: frees the
  /// session's slot for the next FIFO waiter.
  void OnSessionEnd(uint64_t session_id);
  Dataset* FindDataset(const std::string& name);
  /// Visits every dataset's stream hub (datasets_ is immutable once
  /// running, so no lock is needed).
  template <typename Fn>
  void ForEachHub(Fn fn) {
    for (auto& [name, ds] : datasets_) fn(ds->hub.get());
  }

  const Options options_;
  ServerMetrics metrics_;
  TcpListener listener_;

  ts::Mutex mu_;
  /// Acceptor handle, written by Start() under mu_; Stop() swaps it
  /// out under the lock and joins outside (the acceptor takes mu_ per
  /// connection, so joining while holding it would deadlock).
  std::thread accept_thread_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;
  uint64_t next_session_id_ GUARDED_BY(mu_) = 1;
  /// Immutable once running_ (sessions read it unlocked), so not
  /// guarded; mutations happen only before Start() succeeds.
  std::map<std::string, std::unique_ptr<Dataset>> datasets_;
  std::map<uint64_t, Slot> sessions_ GUARDED_BY(mu_);
  std::vector<uint64_t> finished_ GUARDED_BY(mu_);
  /// FIFO admission queue of accepted-but-waiting connections.
  std::deque<TcpSocket> waiting_ GUARDED_BY(mu_);
};

}  // namespace sqlts

#endif  // SQLTS_SERVER_SERVER_H_
