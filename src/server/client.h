#ifndef SQLTS_SERVER_CLIENT_H_
#define SQLTS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "server/net.h"
#include "server/protocol.h"
#include "types/value.h"

namespace sqlts {

/// Reconnect policy for transient network failures (connection refused
/// while the server restarts, ECONNRESET mid-handshake).  Disabled by
/// default — `retries == 0` means a single attempt, exactly the old
/// behavior; the sqlts_client binary enables it with --retries.
struct RetryOptions {
  /// Additional connect attempts after the first (0 = no retry).
  int retries = 0;
  /// Base delay before the first retry; doubles per attempt.
  int64_t backoff_ms = 100;
  /// Ceiling for the exponential growth.
  int64_t max_backoff_ms = 2000;
  /// Seeds the jitter PRNG (deterministic schedules in tests).
  uint64_t jitter_seed = 0;
};

/// True for failures worth retrying: network-level IoErrors (refused /
/// reset / closed connections).  Typed engine and protocol errors —
/// parse errors, admission rejections, deadline overruns — are not
/// transient; retrying them would just repeat the failure.
bool IsTransientNetworkError(const Status& status);

/// Delay before retry `attempt` (0-based): exponential growth from
/// `backoff_ms` capped at `max_backoff_ms`, with uniform jitter in
/// [delay/2, delay] so synchronized clients do not reconnect in
/// lockstep.  `rng_state` is the caller-held jitter PRNG state
/// (initialize from RetryOptions::jitter_seed); pure function of
/// (attempt, options, *rng_state).
int64_t RetryBackoffMs(int attempt, const RetryOptions& options,
                       uint64_t* rng_state);

/// Sleeps RetryBackoffMs(attempt, ...) — the wait ConnectWithRetry uses
/// between attempts, shared with the CLI's reissue loop.
void SleepForBackoff(int attempt, const RetryOptions& options,
                     uint64_t* rng_state);

/// Blocking client for sqlts_server (docs/SERVER.md): one connection,
/// synchronous frame-at-a-time I/O.  Used by the sqlts_client binary
/// and the server test suites.  Not thread-safe; one thread per client.
class SqltsClient {
 public:
  static StatusOr<SqltsClient> Connect(const std::string& host, uint16_t port);

  /// Connect with the retry policy: sleeps the jittered backoff between
  /// attempts, retries only transient failures, and returns the last
  /// error once the budget is spent.
  static StatusOr<SqltsClient> ConnectWithRetry(const std::string& host,
                                                uint16_t port,
                                                const RetryOptions& options);

  /// Sends one message frame.
  Status Send(const Json& message);
  /// Blocks for the next reply message.
  StatusOr<Json> Read();

  /// HELLO handshake; returns the WELCOME reply.
  StatusOr<Json> Hello(const std::string& client_name);

  /// One-shot batch query: sends QUERY and blocks until the terminal
  /// reply for `id` (RESULT / CANCELLED / ERROR) comes back, returning
  /// it verbatim.  ERROR terminals are surfaced as their typed Status.
  /// `extra` members (e.g. "deadline_ms", "solo") are merged into the
  /// request.
  StatusOr<Json> Query(int64_t id, const std::string& dataset,
                       const std::string& query_text,
                       const Json::Object& extra = {});

  /// Decodes a RESULT (or accumulated stream) row array.
  static StatusOr<std::vector<Row>> DecodeRows(const Json& rows_array);

  /// Polite shutdown: CLOSE, drain until BYE or EOF.
  Status Close();

  /// Escape hatch for the fuzz/load suites: raw socket access (abrupt
  /// disconnects, mid-frame writes, half-open shutdowns).
  TcpSocket& socket() { return sock_; }

 private:
  explicit SqltsClient(TcpSocket sock) : sock_(std::move(sock)) {}

  TcpSocket sock_;
  FrameDecoder decoder_;
};

}  // namespace sqlts

#endif  // SQLTS_SERVER_CLIENT_H_
