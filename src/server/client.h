#ifndef SQLTS_SERVER_CLIENT_H_
#define SQLTS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "server/net.h"
#include "server/protocol.h"
#include "types/value.h"

namespace sqlts {

/// Blocking client for sqlts_server (docs/SERVER.md): one connection,
/// synchronous frame-at-a-time I/O.  Used by the sqlts_client binary
/// and the server test suites.  Not thread-safe; one thread per client.
class SqltsClient {
 public:
  static StatusOr<SqltsClient> Connect(const std::string& host, uint16_t port);

  /// Sends one message frame.
  Status Send(const Json& message);
  /// Blocks for the next reply message.
  StatusOr<Json> Read();

  /// HELLO handshake; returns the WELCOME reply.
  StatusOr<Json> Hello(const std::string& client_name);

  /// One-shot batch query: sends QUERY and blocks until the terminal
  /// reply for `id` (RESULT / CANCELLED / ERROR) comes back, returning
  /// it verbatim.  ERROR terminals are surfaced as their typed Status.
  /// `extra` members (e.g. "deadline_ms", "solo") are merged into the
  /// request.
  StatusOr<Json> Query(int64_t id, const std::string& dataset,
                       const std::string& query_text,
                       const Json::Object& extra = {});

  /// Decodes a RESULT (or accumulated stream) row array.
  static StatusOr<std::vector<Row>> DecodeRows(const Json& rows_array);

  /// Polite shutdown: CLOSE, drain until BYE or EOF.
  Status Close();

  /// Escape hatch for the fuzz/load suites: raw socket access (abrupt
  /// disconnects, mid-frame writes, half-open shutdowns).
  TcpSocket& socket() { return sock_; }

 private:
  explicit SqltsClient(TcpSocket sock) : sock_(std::move(sock)) {}

  TcpSocket sock_;
  FrameDecoder decoder_;
};

}  // namespace sqlts

#endif  // SQLTS_SERVER_CLIENT_H_
