#ifndef SQLTS_SERVER_REGISTRY_H_
#define SQLTS_SERVER_REGISTRY_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/governance.h"
#include "common/thread_annotations.h"
#include "engine/executor.h"
#include "multiquery/multi_executor.h"
#include "multiquery/multi_stream.h"
#include "server/json.h"
#include "server/metrics.h"
#include "storage/table.h"

namespace sqlts {

/// Where replies go: one per session.  Implementations enqueue the
/// message on the session's bounded outbound queue — Send() must never
/// block (a slow or dead client would otherwise stall the shared
/// executors) and returns false when the session is gone or its queue
/// overflowed, in which case the caller treats the subscriber as lost.
class ReplySink {
 public:
  virtual ~ReplySink() = default;
  virtual bool Send(const Json& message) = 0;
  /// Per-session row accounting (METRICS per_session detail).
  virtual void NoteRows(int64_t n) = 0;
};

/// One queued QUERY request.  `done` runs exactly once, right after the
/// terminal reply (RESULT / CANCELLED / ERROR) is sent, so the session
/// can retire the request id from its in-flight map.
struct BatchRequest {
  std::shared_ptr<ReplySink> sink;
  int64_t req_id = -1;
  std::string text;
  /// Run alone with this request's own governance instead of joining
  /// the shared set (set for requests with a deadline, a private
  /// buffer budget, or an explicit "solo": true).
  bool solo = false;
  ExecGovernance gov;
  std::function<void()> done;
};

/// Cross-session batch coalescing for one dataset: QUERY requests are
/// queued, and each sweep of the worker thread takes everything pending
/// and runs the shareable ones as a single MultiQueryExecutor set — so
/// concurrent clients asking overlapping questions pay for the overlap
/// once (the server-side realization of the multi-query tier).
/// Requests that carry their own deadline/budget/cancellation run
/// standalone with exactly that governance.
///
/// Every request gets exactly one terminal reply, including on Stop()
/// (drained as CANCELLED) — the queries_in_flight gauge provably
/// returns to zero.
class BatchCoalescer {
 public:
  BatchCoalescer(std::string dataset, const Table* table, ExecOptions base,
                 ServerMetrics* metrics);
  ~BatchCoalescer();

  /// Enqueues `req` (caller already counted it in queries_in_flight).
  void Submit(std::shared_ptr<BatchRequest> req);

  /// Cancels the in-progress shared run, drains the queue with
  /// CANCELLED terminals, and joins the worker.  Idempotent.
  void Stop();

 private:
  void WorkerLoop();
  void Process(std::vector<std::shared_ptr<BatchRequest>> batch);
  void ReplyTerminal(const BatchRequest& req, const Status& st);
  void ReplyResult(const BatchRequest& req, const QueryResult& result);

  const std::string dataset_;
  const Table* table_;
  const ExecOptions base_;
  ServerMetrics* metrics_;

  ts::Mutex mu_;
  ts::CondVar cv_;
  std::deque<std::shared_ptr<BatchRequest>> pending_ GUARDED_BY(mu_);
  /// Set-level cancellation for the currently running shared set;
  /// Stop() trips it so shutdown doesn't wait out a long scan.
  CancelToken run_cancel_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Started in the constructor, joined only by Stop(): the handle
  /// itself is never written concurrently, so not guarded.
  std::thread worker_;
};

/// Cross-session shared streaming for one dataset.  The first
/// subscriber starts a generation: a replay thread drives the dataset
/// through one MultiStreamExecutor, and every later subscriber joins
/// the same stream mid-flight at its registration epoch (reported in
/// STREAM_START; a query's results cover exactly rows [epoch, end)).
/// Per-subscriber governance failures (budget, deadline, cancellation)
/// remove only that subscriber — the generation keeps streaming for the
/// rest.  When the table is exhausted, every survivor gets its
/// end-of-stream matches and a STREAM_END, and the generation tears
/// down (epoch caches freed — see num_epoch_caches()).
class StreamHub {
 public:
  StreamHub(std::string dataset, const Table* table, ExecOptions base,
            ServerMetrics* metrics, int delay_us);
  ~StreamHub();

  /// Registers a subscriber and sends its STREAM_START.  On error the
  /// caller owns the reply.  `done` retires the request id on any
  /// terminal (STREAM_END / CANCELLED / ERROR / session drop).
  Status Subscribe(std::shared_ptr<ReplySink> sink, int64_t req_id,
                   const std::string& text, const ExecGovernance& gov,
                   std::function<void()> done);

  /// Cancels one subscription; sends its CANCELLED terminal.  False
  /// when (sink, req_id) has no live subscription.
  bool Cancel(const ReplySink* sink, int64_t req_id);

  /// Removes every subscription of a vanished session, with no replies.
  void DropSession(const ReplySink* sink);

  /// Ends the current generation (no STREAM_ENDs), joins the replay
  /// thread.  Idempotent.
  void Stop();

  /// Dedup counters of the in-flight generation (zero when idle).
  MultiQueryStats live_stats() const;
  /// Registry invariant probe: live epoch-namespaced caches.
  int64_t num_epoch_caches() const;

 private:
  struct Sub {
    std::shared_ptr<ReplySink> sink;
    int64_t req_id = -1;
    int query_id = -1;
    /// Set by the row callback when the sink rejects a row (overflow or
    /// closed session): the replay loop then drops the subscriber — a
    /// stream that lost a row must die, never silently skip.
    std::shared_ptr<std::atomic<bool>> send_failed;
    std::function<void()> done;
  };

  void ReplayLoop(int64_t generation);
  /// Ends the generation: frees the executor (accumulating its workload
  /// stats), clears subscriptions.
  void TeardownLocked() REQUIRES(mu_);
  /// Removes subs_[i] with terminal status `st` (OK → CANCELLED).
  void DropSubLocked(size_t i, const Status* st) REQUIRES(mu_);

  const std::string dataset_;
  const Table* table_;
  const ExecOptions base_;
  ServerMetrics* metrics_;
  const int delay_us_;

  mutable ts::Mutex mu_;
  ts::CondVar cv_;
  std::unique_ptr<MultiStreamExecutor> exec_ GUARDED_BY(mu_);
  std::vector<Sub> subs_ GUARDED_BY(mu_);
  int64_t generation_ GUARDED_BY(mu_) = 0;
  int64_t next_row_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Generation replay thread.  Written by Subscribe when a generation
  /// starts, so the handle itself is guarded; joiners swap it out under
  /// mu_ and join outside the lock (the thread takes mu_ every sweep).
  std::thread replay_ GUARDED_BY(mu_);
};

}  // namespace sqlts

#endif  // SQLTS_SERVER_REGISTRY_H_
