#include "server/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sqlts {

std::string EncodeFrame(std::string_view payload) {
  SQLTS_CHECK(!payload.empty() && payload.size() <= kMaxFrameBytes)
      << "frame payload size " << payload.size();
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact once the consumed prefix dominates, so long sessions don't
  // grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(bytes);
}

StatusOr<bool> FrameDecoder::Next(std::string* payload) {
  if (!poisoned_.ok()) return poisoned_;
  if (buf_.size() - consumed_ < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data()) + consumed_;
  const uint32_t n = (static_cast<uint32_t>(p[0]) << 24) |
                     (static_cast<uint32_t>(p[1]) << 16) |
                     (static_cast<uint32_t>(p[2]) << 8) |
                     static_cast<uint32_t>(p[3]);
  if (n == 0 || n > kMaxFrameBytes) {
    poisoned_ = Status::InvalidArgument(
        "malformed frame length " + std::to_string(n) + " (limit " +
        std::to_string(kMaxFrameBytes) + ")");
    return poisoned_;
  }
  if (buf_.size() - consumed_ < 4 + static_cast<size_t>(n)) return false;
  payload->assign(buf_, consumed_ + 4, n);
  consumed_ += 4 + static_cast<size_t>(n);
  return true;
}

Json EncodeValue(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return Json::Null();
    case TypeKind::kBool:
      return Json::Bool(v.bool_value());
    case TypeKind::kString:
      return Json::Str(v.string_value());
    case TypeKind::kInt64: {
      Json o = Json::Obj();
      o.Set("i", Json::Str(std::to_string(v.int64_value())));
      return o;
    }
    case TypeKind::kDouble: {
      const double d = v.double_value();
      char buf[32];
      if (std::isnan(d)) {
        std::snprintf(buf, sizeof(buf), "nan");
      } else if (std::isinf(d)) {
        std::snprintf(buf, sizeof(buf), d > 0 ? "inf" : "-inf");
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      Json o = Json::Obj();
      o.Set("d", Json::Str(buf));
      return o;
    }
    case TypeKind::kDate: {
      Json o = Json::Obj();
      o.Set("dt", Json::Str(v.date_value().ToString()));
      return o;
    }
  }
  return Json::Null();  // unreachable; kinds are exhaustive
}

StatusOr<Value> DecodeValue(const Json& j) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      return Value::Null();
    case Json::Kind::kBool:
      return Value::Bool(j.bool_value());
    case Json::Kind::kString:
      return Value::String(j.string_value());
    case Json::Kind::kObject: {
      if (const Json* i = j.Find("i");
          i != nullptr && i->kind() == Json::Kind::kString) {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(i->string_value().c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0' ||
            i->string_value().empty()) {
          return Status::InvalidArgument("bad int64 payload '" +
                                         i->string_value() + "'");
        }
        return Value::Int64(static_cast<int64_t>(v));
      }
      if (const Json* d = j.Find("d");
          d != nullptr && d->kind() == Json::Kind::kString) {
        const std::string& s = d->string_value();
        if (s == "nan") return Value::Double(std::nan(""));
        if (s == "inf") return Value::Double(HUGE_VAL);
        if (s == "-inf") return Value::Double(-HUGE_VAL);
        errno = 0;
        char* end = nullptr;
        double v = std::strtod(s.c_str(), &end);
        if (end == nullptr || *end != '\0' || s.empty()) {
          return Status::InvalidArgument("bad double payload '" + s + "'");
        }
        return Value::Double(v);
      }
      if (const Json* dt = j.Find("dt");
          dt != nullptr && dt->kind() == Json::Kind::kString) {
        return Value::ParseAs(TypeKind::kDate, dt->string_value());
      }
      return Status::InvalidArgument("unknown tagged value object");
    }
    default:
      return Status::InvalidArgument("bad value encoding (bare number?)");
  }
}

Json EncodeRow(const Row& row) {
  Json a = Json::Arr();
  a.mutable_array()->reserve(row.size());
  for (const Value& v : row) a.mutable_array()->push_back(EncodeValue(v));
  return a;
}

StatusOr<Row> DecodeRow(const Json& j) {
  if (j.kind() != Json::Kind::kArray) {
    return Status::InvalidArgument("row must be a JSON array");
  }
  Row row;
  row.reserve(j.array().size());
  for (const Json& cell : j.array()) {
    SQLTS_ASSIGN_OR_RETURN(Value v, DecodeValue(cell));
    row.push_back(std::move(v));
  }
  return row;
}

Json EncodeSchema(const Schema& schema) {
  Json a = Json::Arr();
  for (const ColumnDef& c : schema.columns()) {
    Json col = Json::Obj();
    col.Set("name", Json::Str(c.name));
    col.Set("type", Json::Str(std::string(TypeKindToString(c.type))));
    if (c.nullable) col.Set("nullable", Json::Bool(true));
    if (c.positive) col.Set("positive", Json::Bool(true));
    a.mutable_array()->push_back(std::move(col));
  }
  return a;
}

StatusOr<Schema> DecodeSchema(const Json& j) {
  if (j.kind() != Json::Kind::kArray) {
    return Status::InvalidArgument("schema must be a JSON array");
  }
  Schema schema;
  for (const Json& col : j.array()) {
    if (col.kind() != Json::Kind::kObject) {
      return Status::InvalidArgument("schema column must be an object");
    }
    SQLTS_ASSIGN_OR_RETURN(TypeKind kind,
                           TypeKindFromString(col.GetString("type", "")));
    SQLTS_RETURN_IF_ERROR(schema.AddColumn(col.GetString("name", ""), kind,
                                           col.GetBool("nullable", false),
                                           col.GetBool("positive", false)));
  }
  return schema;
}

Json MakeErrorMessage(int64_t id, const Status& st) {
  Json o = Json::Obj();
  o.Set("type", Json::Str("ERROR"));
  if (id >= 0) o.Set("id", Json::Int(id));
  o.Set("code", Json::Str(std::string(StatusCodeToString(st.code()))));
  o.Set("message", Json::Str(st.message()));
  return o;
}

StatusOr<StatusCode> StatusCodeFromWire(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kUnimplemented,
      StatusCode::kInternal,     StatusCode::kParseError,
      StatusCode::kTypeError,    StatusCode::kIoError,
      StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,
  };
  for (StatusCode c : kAll) {
    if (StatusCodeToString(c) == name) return c;
  }
  return Status::InvalidArgument("unknown status code '" +
                                 std::string(name) + "'");
}

Status StatusFromErrorMessage(const Json& error_msg) {
  const std::string message = error_msg.GetString("message", "");
  StatusOr<StatusCode> code =
      StatusCodeFromWire(error_msg.GetString("code", ""));
  if (!code.ok()) return Status::Internal("unrecognized error: " + message);
  return Status(*code, message);
}

StatusOr<Json> ParseMessage(std::string_view payload) {
  SQLTS_ASSIGN_OR_RETURN(Json doc, Json::Parse(payload));
  if (doc.kind() != Json::Kind::kObject) {
    return Status::InvalidArgument("message must be a JSON object");
  }
  return doc;
}

}  // namespace sqlts
