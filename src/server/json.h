#ifndef SQLTS_SERVER_JSON_H_
#define SQLTS_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace sqlts {

/// Minimal JSON document model for the wire protocol (docs/SERVER.md).
/// Self-contained on purpose: the server must not pull a dependency the
/// engine doesn't have.  Numbers distinguish int64 from double so the
/// protocol can carry small integers (ids, counters) exactly; full
/// int64/double Value payloads travel as tagged strings on top of this
/// (see server/protocol.h), never as bare JSON numbers.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Objects preserve no insertion order; the protocol never relies on
  /// member order.
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t i);
  static Json Double(double d);
  static Json Str(std::string s);
  static Json Arr(Array a = {});
  static Json Obj(Object o = {});

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; checked invariants (call kind() first).
  bool bool_value() const;
  int64_t int_value() const;
  /// Numeric view: kInt and kDouble both convert.
  double double_value() const;
  const std::string& string_value() const;
  const Array& array() const;
  const Object& object() const;
  Array* mutable_array();
  Object* mutable_object();

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;
  /// Convenience typed getters with defaults (absent/mistyped → dflt).
  int64_t GetInt(std::string_view key, int64_t dflt) const;
  std::string GetString(std::string_view key, std::string_view dflt) const;
  bool GetBool(std::string_view key, bool dflt) const;

  /// Sets `key` on an object (checked invariant).
  void Set(std::string key, Json value);

  /// Compact serialization (no whitespace).  Strings are escaped per
  /// RFC 8259; non-finite doubles are a checked invariant (the protocol
  /// encodes them as tagged strings instead).
  std::string Dump() const;

  /// Parses one JSON document.  ParseError on malformed input,
  /// trailing garbage, depth beyond 64, or invalid escapes.
  static StatusOr<Json> Parse(std::string_view text);

 private:
  Kind kind_;
  bool b_ = false;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
  Array a_;
  Object o_;
};

}  // namespace sqlts

#endif  // SQLTS_SERVER_JSON_H_
