#include "server/metrics.h"

namespace sqlts {

Json ReplicationMetrics::Snapshot() const {
  Json o = Json::Obj();
  o.Set("entries_appended", Json::Int(entries_appended.load()));
  o.Set("entries_committed", Json::Int(entries_committed.load()));
  o.Set("entries_dropped", Json::Int(entries_dropped.load()));
  o.Set("entries_delayed", Json::Int(entries_delayed.load()));
  o.Set("entries_retransmitted", Json::Int(entries_retransmitted.load()));
  o.Set("stale_entries_ignored", Json::Int(stale_entries_ignored.load()));
  o.Set("heartbeats_sent", Json::Int(heartbeats_sent.load()));
  o.Set("failovers", Json::Int(failovers.load()));
  o.Set("lagging_promotions", Json::Int(lagging_promotions.load()));
  o.Set("rows_replayed", Json::Int(rows_replayed.load()));
  o.Set("rows_deduplicated", Json::Int(rows_deduplicated.load()));
  o.Set("standbys_active", Json::Int(standbys_active.load()));
  o.Set("committed_index", Json::Int(committed_index.load()));
  o.Set("output_watermark", Json::Int(output_watermark.load()));
  return o;
}

Json ServerMetrics::Snapshot(const MultiQueryStats* live) const {
  Json o = Json::Obj();
  Json sessions = Json::Obj();
  sessions.Set("active", Json::Int(sessions_active.load()));
  sessions.Set("peak", Json::Int(sessions_peak.load()));
  sessions.Set("admitted", Json::Int(sessions_admitted.load()));
  sessions.Set("waiting", Json::Int(sessions_waiting.load()));
  sessions.Set("rejected", Json::Int(sessions_rejected.load()));
  o.Set("sessions", std::move(sessions));

  Json queries = Json::Obj();
  queries.Set("in_flight", Json::Int(queries_in_flight.load()));
  queries.Set("completed", Json::Int(queries_completed.load()));
  queries.Set("cancelled", Json::Int(queries_cancelled.load()));
  queries.Set("rejected", Json::Int(queries_rejected.load()));
  queries.Set("failed", Json::Int(queries_failed.load()));
  o.Set("queries", std::move(queries));

  Json wire = Json::Obj();
  wire.Set("rows_sent", Json::Int(rows_sent.load()));
  wire.Set("frames_received", Json::Int(frames_received.load()));
  wire.Set("protocol_errors", Json::Int(protocol_errors.load()));
  o.Set("wire", std::move(wire));

  Json storage = Json::Obj();
  storage.Set("datasets_columnar", Json::Int(storage_datasets_columnar.load()));
  storage.Set("blocks_total", Json::Int(storage_blocks_total.load()));
  storage.Set("blocks_skipped", Json::Int(storage_blocks_skipped.load()));
  storage.Set("bytes_read", Json::Int(storage_bytes_read.load()));
  o.Set("storage", std::move(storage));

  o.Set("replication", replication.Snapshot());

  MultiQueryStats total;
  int64_t runs;
  Json errors = Json::Obj();
  {
    ts::MutexLock lock(mu_);
    total = workload_;
    runs = coalesced_runs_;
    for (const auto& [code, count] : errors_by_code_) {
      errors.Set(code, Json::Int(count));
    }
  }
  o.Set("errors_by_code", std::move(errors));
  if (live != nullptr) {
    total.shared_lookups += live->shared_lookups;
    total.shared_evals += live->shared_evals;
    total.cache_hits += live->cache_hits;
    total.inferred_hits += live->inferred_hits;
    total.private_evals += live->private_evals;
    total.tuples_scanned += live->tuples_scanned;
  }
  Json workload = Json::Obj();
  workload.Set("coalesced_runs", Json::Int(runs));
  workload.Set("tuples_scanned", Json::Int(total.tuples_scanned));
  workload.Set("shared_lookups", Json::Int(total.shared_lookups));
  workload.Set("shared_evals", Json::Int(total.shared_evals));
  workload.Set("cache_hits", Json::Int(total.cache_hits));
  workload.Set("inferred_hits", Json::Int(total.inferred_hits));
  workload.Set("private_evals", Json::Int(total.private_evals));
  workload.Set("dedup_hit_rate", total.shared_lookups > 0
                                     ? Json::Double(total.dedup_hit_rate())
                                     : Json::Double(0.0));
  o.Set("workload", std::move(workload));
  return o;
}

}  // namespace sqlts
