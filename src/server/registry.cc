#include "server/registry.h"

#include <chrono>
#include <utility>

#include "parser/analyzer.h"
#include "server/protocol.h"

namespace sqlts {
namespace {

Json CancelledMessage(int64_t req_id) {
  Json msg = Json::Obj();
  msg.Set("type", Json::Str("CANCELLED"));
  msg.Set("id", Json::Int(req_id));
  return msg;
}

}  // namespace

// ---------------------------------------------------------------------------
// BatchCoalescer
// ---------------------------------------------------------------------------

BatchCoalescer::BatchCoalescer(std::string dataset, const Table* table,
                               ExecOptions base, ServerMetrics* metrics)
    : dataset_(std::move(dataset)),
      table_(table),
      base_(std::move(base)),
      metrics_(metrics),
      worker_([this] { WorkerLoop(); }) {}

BatchCoalescer::~BatchCoalescer() { Stop(); }

void BatchCoalescer::Submit(std::shared_ptr<BatchRequest> req) {
  {
    ts::MutexLock lock(mu_);
    if (stopping_) {
      // Late submit during shutdown: terminate it right here so the
      // in-flight gauge still drains to zero.
      ReplyTerminal(*req, Status::Cancelled("server shutting down"));
      return;
    }
    pending_.push_back(std::move(req));
  }
  cv_.NotifyOne();
}

void BatchCoalescer::Stop() {
  {
    ts::MutexLock lock(mu_);
    if (stopping_) {
      // Already stopped; worker may have been joined by the first call.
    }
    stopping_ = true;
    run_cancel_.RequestCancel();
  }
  cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

void BatchCoalescer::WorkerLoop() {
  while (true) {
    std::vector<std::shared_ptr<BatchRequest>> batch;
    {
      ts::MutexLock lock(mu_);
      while (!stopping_ && pending_.empty()) cv_.Wait(mu_);
      if (stopping_) {
        // Drain: every queued request still gets its terminal reply.
        while (!pending_.empty()) {
          ReplyTerminal(*pending_.front(),
                        Status::Cancelled("server shutting down"));
          pending_.pop_front();
        }
        return;
      }
      batch.assign(pending_.begin(), pending_.end());
      pending_.clear();
      // Fresh set-level token per sweep; Stop() trips it so shutdown
      // never waits out a long shared scan.
      run_cancel_ = CancelToken::Cancellable();
    }
    Process(std::move(batch));
  }
}

void BatchCoalescer::Process(std::vector<std::shared_ptr<BatchRequest>> batch) {
  std::vector<std::shared_ptr<BatchRequest>> shared;
  std::vector<std::shared_ptr<BatchRequest>> solo;
  for (auto& req : batch) {
    if (req->gov.cancel.cancel_requested()) {
      ReplyTerminal(*req, Status::Cancelled("cancelled before execution"));
      continue;
    }
    // Pre-validate so one client's typo can't fail the whole shared
    // set: compile errors terminate only their own request.
    StatusOr<CompiledQuery> compiled =
        CompileQueryText(req->text, table_->schema());
    if (!compiled.ok()) {
      ReplyTerminal(*req, compiled.status());
      continue;
    }
    const bool needs_own_governance =
        req->solo || req->gov.has_deadline() ||
        req->gov.max_buffered_tuples > 0 || req->gov.max_buffered_bytes > 0;
    (needs_own_governance ? solo : shared).push_back(std::move(req));
  }

  if (shared.size() == 1) {
    // A lone shareable request gains nothing from the multi-query
    // driver; run it on the plain executor.
    solo.push_back(std::move(shared.front()));
    shared.clear();
  }
  if (!shared.empty()) {
    std::vector<std::string> texts;
    texts.reserve(shared.size());
    for (const auto& req : shared) texts.push_back(req->text);
    ExecOptions options = base_;
    {
      ts::MutexLock lock(mu_);
      options.governance.cancel = run_cancel_;
    }
    StatusOr<QuerySetResult> run =
        MultiQueryExecutor::Execute(*table_, texts, options);
    if (!run.ok()) {
      for (const auto& req : shared) ReplyTerminal(*req, run.status());
    } else {
      metrics_->AccumulateWorkload(run->stats);
      for (size_t i = 0; i < shared.size(); ++i) {
        if (shared[i]->gov.cancel.cancel_requested()) {
          // Cancelled while the set ran: the result is discarded.
          ReplyTerminal(*shared[i],
                        Status::Cancelled("cancelled during execution"));
        } else {
          ReplyResult(*shared[i], run->per_query[i]);
        }
      }
    }
  }

  for (const auto& req : solo) {
    if (req->gov.cancel.cancel_requested()) {
      ReplyTerminal(*req, Status::Cancelled("cancelled before execution"));
      continue;
    }
    ExecOptions options = base_;
    options.governance = req->gov;
    StatusOr<QueryResult> result =
        QueryExecutor::Execute(*table_, req->text, options);
    if (!result.ok()) {
      ReplyTerminal(*req, result.status());
    } else {
      ReplyResult(*req, *result);
    }
  }
}

void BatchCoalescer::ReplyTerminal(const BatchRequest& req, const Status& st) {
  if (st.code() == StatusCode::kCancelled) {
    req.sink->Send(CancelledMessage(req.req_id));
    metrics_->queries_cancelled.fetch_add(1, std::memory_order_relaxed);
  } else {
    req.sink->Send(MakeErrorMessage(req.req_id, st));
    metrics_->NoteError(std::string(StatusCodeToString(st.code())));
  }
  metrics_->queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
  if (req.done) req.done();
}

void BatchCoalescer::ReplyResult(const BatchRequest& req,
                                 const QueryResult& result) {
  Json rows = Json::Arr();
  for (int64_t r = 0; r < result.output.num_rows(); ++r) {
    rows.mutable_array()->push_back(EncodeRow(result.output.GetRow(r)));
  }
  Json stats = Json::Obj();
  stats.Set("matches", Json::Int(result.stats.matches));
  stats.Set("evaluations", Json::Int(result.stats.evaluations));
  stats.Set("presat_skips", Json::Int(result.stats.presat_skips));
  stats.Set("jumps", Json::Int(result.stats.jumps));
  stats.Set("blocks_total", Json::Int(result.stats.blocks_total));
  stats.Set("blocks_skipped", Json::Int(result.stats.blocks_skipped));
  stats.Set("bytes_read", Json::Int(result.stats.bytes_read));
  stats.Set("num_clusters", Json::Int(result.num_clusters));
  stats.Set("num_shards",
            Json::Int(static_cast<int64_t>(result.shard_stats.size())));
  Json msg = Json::Obj();
  msg.Set("type", Json::Str("RESULT"));
  msg.Set("id", Json::Int(req.req_id));
  msg.Set("columns", EncodeSchema(result.output.schema()));
  msg.Set("rows_returned", Json::Int(result.output.num_rows()));
  msg.Set("rows", std::move(rows));
  msg.Set("stats", std::move(stats));
  if (msg.Dump().size() + 4 > kMaxFrameBytes) {
    ReplyTerminal(req, Status::ResourceExhausted(
                           "result exceeds the 16 MiB frame limit"));
    return;
  }
  if (req.sink->Send(msg)) {
    req.sink->NoteRows(result.output.num_rows());
    metrics_->rows_sent.fetch_add(result.output.num_rows(),
                                  std::memory_order_relaxed);
  }
  metrics_->queries_completed.fetch_add(1, std::memory_order_relaxed);
  metrics_->queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
  if (req.done) req.done();
}

// ---------------------------------------------------------------------------
// StreamHub
// ---------------------------------------------------------------------------

StreamHub::StreamHub(std::string dataset, const Table* table, ExecOptions base,
                     ServerMetrics* metrics, int delay_us)
    : dataset_(std::move(dataset)),
      table_(table),
      base_(std::move(base)),
      metrics_(metrics),
      delay_us_(delay_us) {}

StreamHub::~StreamHub() { Stop(); }

Status StreamHub::Subscribe(std::shared_ptr<ReplySink> sink, int64_t req_id,
                            const std::string& text, const ExecGovernance& gov,
                            std::function<void()> done) {
  ts::MutexLock lock(mu_);
  if (stopping_) return Status::Cancelled("server shutting down");
  if (exec_ == nullptr) {
    // New generation.  The previous replay thread (if any) has already
    // torn down — it never re-acquires mu_ after that — so the join
    // here is a formality that cannot deadlock.
    if (replay_.joinable()) replay_.join();
    SQLTS_ASSIGN_OR_RETURN(exec_,
                           MultiStreamExecutor::Create(table_->schema(), base_));
    next_row_ = 0;
    ++generation_;
    replay_ = std::thread(&StreamHub::ReplayLoop, this, generation_);
  }
  auto failed = std::make_shared<std::atomic<bool>>(false);
  ServerMetrics* metrics = metrics_;
  MultiStreamExecutor::RowCallback on_row =
      [sink, failed, req_id, metrics](const Row& row) {
        Json msg = Json::Obj();
        msg.Set("type", Json::Str("ROW"));
        msg.Set("id", Json::Int(req_id));
        msg.Set("row", EncodeRow(row));
        if (sink->Send(msg)) {
          sink->NoteRows(1);
          metrics->rows_sent.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Overflow or vanished session: the subscriber lost a row, so
          // the replay loop must drop it (a gap is never acceptable).
          failed->store(true, std::memory_order_relaxed);
        }
      };
  SQLTS_ASSIGN_OR_RETURN(int query_id,
                         exec_->AddQuery(text, std::move(on_row), &gov));
  SQLTS_ASSIGN_OR_RETURN(int64_t epoch, exec_->query_epoch(query_id));
  Sub sub;
  sub.sink = std::move(sink);
  sub.req_id = req_id;
  sub.query_id = query_id;
  sub.send_failed = std::move(failed);
  sub.done = std::move(done);
  Json start = Json::Obj();
  start.Set("type", Json::Str("STREAM_START"));
  start.Set("id", Json::Int(req_id));
  start.Set("epoch", Json::Int(epoch));
  start.Set("generation", Json::Int(generation_));
  start.Set("columns", EncodeSchema(exec_->query(query_id)->output_schema()));
  sub.sink->Send(start);
  subs_.push_back(std::move(sub));
  return Status::OK();
}

bool StreamHub::Cancel(const ReplySink* sink, int64_t req_id) {
  ts::MutexLock lock(mu_);
  for (size_t i = 0; i < subs_.size(); ++i) {
    if (subs_[i].sink.get() == sink && subs_[i].req_id == req_id) {
      DropSubLocked(i, nullptr);
      return true;
    }
  }
  return false;
}

void StreamHub::DropSession(const ReplySink* sink) {
  ts::MutexLock lock(mu_);
  for (size_t i = subs_.size(); i-- > 0;) {
    if (subs_[i].sink.get() != sink) continue;
    if (exec_ != nullptr) (void)exec_->RemoveQuery(subs_[i].query_id);
    metrics_->queries_cancelled.fetch_add(1, std::memory_order_relaxed);
    metrics_->queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (subs_[i].done) subs_[i].done();
    subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
  }
}

void StreamHub::Stop() {
  // The replay handle is guarded (Subscribe writes it when a generation
  // starts): swap it out under the lock, join outside — the replay
  // thread re-acquires mu_ every sweep, so joining while holding it
  // would deadlock, and joining without the lock would race the write.
  std::thread replay;
  {
    ts::MutexLock lock(mu_);
    stopping_ = true;
    replay.swap(replay_);
  }
  if (replay.joinable()) replay.join();
  ts::MutexLock lock(mu_);
  if (exec_ != nullptr || !subs_.empty()) TeardownLocked();
}

MultiQueryStats StreamHub::live_stats() const {
  ts::MutexLock lock(mu_);
  return exec_ != nullptr ? exec_->stats() : MultiQueryStats{};
}

int64_t StreamHub::num_epoch_caches() const {
  ts::MutexLock lock(mu_);
  return exec_ != nullptr ? exec_->num_epoch_caches() : 0;
}

void StreamHub::ReplayLoop(int64_t generation) {
  while (true) {
    {
      ts::MutexLock lock(mu_);
      if (stopping_ || generation_ != generation || exec_ == nullptr) {
        if (generation_ == generation && exec_ != nullptr) TeardownLocked();
        return;
      }
      // Prune subscribers whose sink rejected a row since the last
      // push (queue overflow or a vanished session).
      for (size_t i = subs_.size(); i-- > 0;) {
        if (subs_[i].send_failed->load(std::memory_order_relaxed)) {
          Status st = Status::ResourceExhausted(
              "outbound queue overflowed; stream dropped");
          DropSubLocked(i, &st);
        }
      }
      if (subs_.empty()) {
        TeardownLocked();
        return;
      }
      if (next_row_ >= table_->num_rows()) {
        // End of data: completion matches, then STREAM_END terminals.
        (void)exec_->Finish();
        for (size_t i = subs_.size(); i-- > 0;) {
          if (subs_[i].send_failed->load(std::memory_order_relaxed)) {
            Status st = Status::ResourceExhausted(
                "outbound queue overflowed; stream dropped");
            DropSubLocked(i, &st);
          }
        }
        for (Sub& sub : subs_) {
          const StreamingQueryExecutor* q = exec_->query(sub.query_id);
          Json end = Json::Obj();
          end.Set("type", Json::Str("STREAM_END"));
          end.Set("id", Json::Int(sub.req_id));
          Json stats = Json::Obj();
          stats.Set("matches", Json::Int(q->stats().matches));
          stats.Set("evaluations", Json::Int(q->stats().evaluations));
          end.Set("stats", std::move(stats));
          sub.sink->Send(end);
          metrics_->queries_completed.fetch_add(1, std::memory_order_relaxed);
          metrics_->queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
          if (sub.done) sub.done();
        }
        subs_.clear();
        TeardownLocked();
        return;
      }
      std::vector<MultiStreamExecutor::QueryError> errors;
      Status st = exec_->Push(table_->GetRow(next_row_), &errors);
      ++next_row_;
      if (!st.ok()) {
        // The executor itself is unusable: fail every subscriber.
        for (size_t i = subs_.size(); i-- > 0;) DropSubLocked(i, &st);
        TeardownLocked();
        return;
      }
      for (const auto& err : errors) {
        for (size_t i = 0; i < subs_.size(); ++i) {
          if (subs_[i].query_id == err.id) {
            DropSubLocked(i, &err.status);
            break;
          }
        }
      }
    }
    if (delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    }
  }
}

void StreamHub::TeardownLocked() {
  if (exec_ != nullptr) {
    metrics_->AccumulateWorkload(exec_->stats());
    exec_.reset();
  }
  // Leftover subscribers (shutdown path) still retire their request
  // ids so the in-flight gauge drains.
  for (Sub& sub : subs_) {
    sub.sink->Send(CancelledMessage(sub.req_id));
    metrics_->queries_cancelled.fetch_add(1, std::memory_order_relaxed);
    metrics_->queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (sub.done) sub.done();
  }
  subs_.clear();
  cv_.NotifyAll();
}

void StreamHub::DropSubLocked(size_t i, const Status* st) {
  Sub sub = std::move(subs_[i]);
  subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
  if (exec_ != nullptr) (void)exec_->RemoveQuery(sub.query_id);
  if (st == nullptr || st->code() == StatusCode::kCancelled) {
    sub.sink->Send(CancelledMessage(sub.req_id));
    metrics_->queries_cancelled.fetch_add(1, std::memory_order_relaxed);
  } else {
    sub.sink->Send(MakeErrorMessage(sub.req_id, *st));
    metrics_->NoteError(std::string(StatusCodeToString(st->code())));
  }
  metrics_->queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
  if (sub.done) sub.done();
}

}  // namespace sqlts
