#ifndef SQLTS_SERVER_NET_H_
#define SQLTS_SERVER_NET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace sqlts {

/// Thin POSIX TCP wrappers for the query service (loopback/IPv4).
/// RAII socket ownership; every call converts errno into a typed
/// Status.  SIGPIPE is never raised: writes use MSG_NOSIGNAL, so a
/// peer that vanished surfaces as an IoError, not a process kill.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static StatusOr<TcpSocket> Connect(const std::string& host, uint16_t port);

  /// Writes all of `bytes`, looping over partial writes.  IoError when
  /// the peer is gone or the send timeout (if set) expires.
  Status WriteAll(std::string_view bytes);

  /// Reads up to `cap` bytes into `out` (resized to what was read).
  /// Returns 0 bytes on orderly EOF; IoError on failure or timeout.
  StatusOr<size_t> ReadSome(std::string* out, size_t cap = 64 * 1024);

  /// Bounds how long a blocking write (read) may stall on a slow or
  /// half-open peer; 0 restores "block forever".
  Status SetSendTimeout(int millis);
  Status SetRecvTimeout(int millis);

  /// Half-close: no more writes, reads still drain (tests use this to
  /// fake half-open peers).  `Shutdown` with both directions unblocks a
  /// reader stuck in ReadSome from another thread.
  void ShutdownWrite();
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port;
  /// see port() for the outcome).
  Status Listen(uint16_t port, int backlog = 128);

  /// Blocks for the next connection.  IoError once Close() was called
  /// from another thread (the accept loop's shutdown signal).
  StatusOr<TcpSocket> Accept();

  uint16_t port() const { return port_; }
  bool listening() const { return fd_.load() >= 0; }

  void Close();

 private:
  /// Atomic because Close() is the cross-thread shutdown signal for a
  /// worker blocked in Accept().
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace sqlts

#endif  // SQLTS_SERVER_NET_H_
