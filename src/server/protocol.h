#ifndef SQLTS_SERVER_PROTOCOL_H_
#define SQLTS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "server/json.h"
#include "types/schema.h"

namespace sqlts {

/// Wire protocol of sqlts_server (docs/SERVER.md): every message is one
/// frame — a 4-byte big-endian payload length followed by exactly that
/// many bytes of UTF-8 JSON (one object).  Length 0 and lengths above
/// kMaxFrameBytes are protocol errors; a peer that sends either (or a
/// payload that is not a JSON object) gets a typed ERROR reply and the
/// connection is closed.
///
/// Requests carry `type` (HELLO/QUERY/STREAM/CANCEL/CLOSE/METRICS) and,
/// for query-bearing types, a client-chosen `id` echoed on every reply
/// so a session can multiplex streams.  Replies carry `type` in
/// {WELCOME, RESULT, STREAM_START, ROW, STREAM_END, CANCELLED, METRICS,
/// BYE, ERROR}; ERROR replies carry `code` — the StatusCode name, e.g.
/// "ResourceExhausted", "DeadlineExceeded", "Cancelled" — and
/// `message`.
///
/// Values cross the wire losslessly (bit-identical round trip, the
/// load-test oracle depends on it): NULL → JSON null, BOOL → JSON
/// bool, STRING → JSON string, INT64 → {"i":"<decimal>"} (a string, so
/// magnitudes beyond 2^53 survive), DOUBLE → {"d":"<%.17g>"} with
/// "nan"/"inf"/"-inf" for non-finite, DATE → {"dt":"YYYY-MM-DD"}.
constexpr uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB
constexpr int kProtocolVersion = 1;

/// Encodes `payload` as one frame (length prefix + bytes).
std::string EncodeFrame(std::string_view payload);

/// Incremental frame decoder: feed arbitrary byte chunks, take complete
/// payloads out.  Oversized or zero-length prefixes surface as a typed
/// error from Next() and poison the decoder (a framing error is not
/// recoverable mid-stream).
class FrameDecoder {
 public:
  /// Appends received bytes to the reassembly buffer.
  void Feed(std::string_view bytes);

  /// Extracts the next complete frame payload into `payload`.  Returns
  /// true when one was available, false when more bytes are needed.
  /// A malformed length prefix fails with InvalidArgument (and every
  /// later call fails the same way).
  StatusOr<bool> Next(std::string* payload);

  /// Bytes buffered but not yet consumed (tests; backpressure probes).
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  size_t consumed_ = 0;
  Status poisoned_ = Status::OK();
};

/// Lossless Value ↔ JSON mapping (see the format comment above).
Json EncodeValue(const Value& v);
StatusOr<Value> DecodeValue(const Json& j);
Json EncodeRow(const Row& row);
StatusOr<Row> DecodeRow(const Json& j);

/// Schema → [{"name":...,"type":"INT64","nullable":bool,"positive":bool}].
Json EncodeSchema(const Schema& schema);
StatusOr<Schema> DecodeSchema(const Json& j);

/// Builds the standard ERROR reply for `st`, echoing request `id`
/// (omitted when id < 0).
Json MakeErrorMessage(int64_t id, const Status& st);

/// Maps a wire `code` name back to the StatusCode it names (the inverse
/// of StatusCodeToString); InvalidArgument for unknown names.
StatusOr<StatusCode> StatusCodeFromWire(std::string_view name);

/// Reconstructs the Status carried by an ERROR reply (the client-side
/// inverse of MakeErrorMessage).  Unknown codes map to kInternal so the
/// failure is still surfaced.
Status StatusFromErrorMessage(const Json& error_msg);

/// Parses a frame payload into a JSON object; typed errors for
/// non-JSON payloads and non-object documents.
StatusOr<Json> ParseMessage(std::string_view payload);

}  // namespace sqlts

#endif  // SQLTS_SERVER_PROTOCOL_H_
