#ifndef SQLTS_SERVER_METRICS_H_
#define SQLTS_SERVER_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "multiquery/predicate_catalog.h"
#include "server/json.h"

namespace sqlts {

/// Replication-layer counters and gauges (src/replication/), updated
/// lock-free by the cluster driver and snapshotted into the METRICS
/// reply next to the service counters.  The gauges make failover state
/// observable: `standbys_active` drops when a primary is promoted,
/// `committed_index`/`output_watermark` advance monotonically, and
/// `rows_deduplicated` counts the replayed rows the output watermark
/// suppressed — the externally visible half of the exactly-once
/// argument (docs/REPLICATION.md).
struct ReplicationMetrics {
  // Log traffic.
  std::atomic<int64_t> entries_appended{0};
  std::atomic<int64_t> entries_committed{0};
  std::atomic<int64_t> entries_dropped{0};      // transport chaos
  std::atomic<int64_t> entries_delayed{0};
  std::atomic<int64_t> entries_retransmitted{0};
  std::atomic<int64_t> stale_entries_ignored{0};  // reordered/duplicate
  std::atomic<int64_t> heartbeats_sent{0};
  // Failover lifecycle.
  std::atomic<int64_t> failovers{0};
  std::atomic<int64_t> lagging_promotions{0};
  std::atomic<int64_t> rows_replayed{0};
  std::atomic<int64_t> rows_deduplicated{0};
  // Gauges.
  std::atomic<int64_t> standbys_active{0};
  std::atomic<int64_t> committed_index{0};
  std::atomic<int64_t> output_watermark{0};

  /// One JSON object with every counter above.
  Json Snapshot() const;
};

/// Live service counters, updated lock-free on the hot paths and
/// snapshotted into the METRICS reply (catalog in docs/SERVER.md).
/// Gauges must return to their idle values after a drain — the metrics
/// test asserts queries_in_flight == 0 and sessions_active == 0 once
/// every client is gone, which is what makes leaks observable.
struct ServerMetrics {
  // Session lifecycle.
  std::atomic<int64_t> sessions_active{0};     // gauge
  std::atomic<int64_t> sessions_peak{0};
  std::atomic<int64_t> sessions_admitted{0};
  std::atomic<int64_t> sessions_waiting{0};    // gauge: admission queue
  std::atomic<int64_t> sessions_rejected{0};   // backlog overflow
  // Query lifecycle (batch + streaming).
  std::atomic<int64_t> queries_in_flight{0};   // gauge
  std::atomic<int64_t> queries_completed{0};
  std::atomic<int64_t> queries_cancelled{0};
  std::atomic<int64_t> queries_rejected{0};    // admission (in-flight cap)
  std::atomic<int64_t> queries_failed{0};      // typed ERROR replies
  // Wire accounting.
  std::atomic<int64_t> rows_sent{0};
  std::atomic<int64_t> frames_received{0};
  std::atomic<int64_t> protocol_errors{0};     // malformed frames/messages
  // Columnar storage (src/colstore/): datasets served from `.sqlc`
  // containers and their cumulative block/byte accounting (loads plus
  // any columnar query execution folded in via NoteStorage).
  std::atomic<int64_t> storage_datasets_columnar{0};
  std::atomic<int64_t> storage_blocks_total{0};
  std::atomic<int64_t> storage_blocks_skipped{0};
  std::atomic<int64_t> storage_bytes_read{0};
  // Replicated-stream counters (zero while no cluster runs in-process).
  ReplicationMetrics replication;

  /// Raises sessions_peak to at least `active` (call after increment).
  void NotePeak(int64_t active) {
    int64_t peak = sessions_peak.load(std::memory_order_relaxed);
    while (active > peak &&
           !sessions_peak.compare_exchange_weak(peak, active,
                                                std::memory_order_relaxed)) {
    }
  }

  /// Folds one columnar storage operation (dataset load or columnar
  /// query) into the storage counters.
  void NoteStorage(int64_t blocks_total, int64_t blocks_skipped,
                   int64_t bytes_read) {
    storage_blocks_total.fetch_add(blocks_total, std::memory_order_relaxed);
    storage_blocks_skipped.fetch_add(blocks_skipped,
                                     std::memory_order_relaxed);
    storage_bytes_read.fetch_add(bytes_read, std::memory_order_relaxed);
  }

  /// Counts one typed failure reply by status-code name.
  void NoteError(const std::string& code) {
    queries_failed.fetch_add(1, std::memory_order_relaxed);
    ts::MutexLock lock(mu_);
    ++errors_by_code_[code];
  }

  /// Folds one finished scan group's workload stats into the totals
  /// (batch coalescer after each Execute; stream hub per generation).
  void AccumulateWorkload(const MultiQueryStats& stats) {
    ts::MutexLock lock(mu_);
    workload_.shared_lookups += stats.shared_lookups;
    workload_.shared_evals += stats.shared_evals;
    workload_.cache_hits += stats.cache_hits;
    workload_.inferred_hits += stats.inferred_hits;
    workload_.private_evals += stats.private_evals;
    workload_.tuples_scanned += stats.tuples_scanned;
    coalesced_runs_ += 1;
  }

  /// One JSON object with every counter above plus the accumulated
  /// workload dedup stats; `live` (if non-null) is folded into the
  /// dedup totals as the still-running generations' snapshot.
  Json Snapshot(const MultiQueryStats* live = nullptr) const;

 private:
  mutable ts::Mutex mu_;
  std::map<std::string, int64_t> errors_by_code_ GUARDED_BY(mu_);
  /// Accumulated finished-run totals.  Non-atomic aggregates: writers
  /// (coalescer worker, hub teardown) and the Snapshot reader must all
  /// hold mu_ — GUARDED_BY makes a lock-free gauge read a build error.
  MultiQueryStats workload_ GUARDED_BY(mu_);
  int64_t coalesced_runs_ GUARDED_BY(mu_) = 0;
};

}  // namespace sqlts

#endif  // SQLTS_SERVER_METRICS_H_
