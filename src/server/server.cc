#include "server/server.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "colstore/reader.h"
#include "server/protocol.h"
#include "storage/csv.h"

namespace sqlts {

// ---------------------------------------------------------------------------
// Session: one accepted connection.  A reader thread parses frames and
// dispatches requests; a writer thread drains the bounded outbound
// queue so replies from the shared executors never block on a slow
// socket.  The reader's last act is Server::OnSessionEnd, which frees
// the admission slot for the next FIFO waiter.
// ---------------------------------------------------------------------------

class Session : public ReplySink,
                public std::enable_shared_from_this<Session> {
 public:
  Session(uint64_t id, TcpSocket sock, Server* server)
      : id_(id),
        sock_(std::move(sock)),
        server_(server),
        default_tuples_(server->options_.max_buffered_tuples),
        default_bytes_(server->options_.max_buffered_bytes) {}

  uint64_t id() const { return id_; }

  /// Reader loop; runs on the session's own thread.
  void Run() {
    writer_ = std::thread([this] { WriterLoop(); });
    FrameDecoder decoder;
    std::string chunk;
    bool closing = false;
    while (!closing) {
      StatusOr<size_t> n = sock_.ReadSome(&chunk);
      if (!n.ok() || *n == 0) break;  // EOF, reset, or shutdown
      decoder.Feed(chunk);
      while (!closing) {
        std::string payload;
        StatusOr<bool> has = decoder.Next(&payload);
        if (!has.ok()) {
          // Framing is unrecoverable: typed ERROR, then hang up.
          server_->metrics_.protocol_errors.fetch_add(
              1, std::memory_order_relaxed);
          Send(MakeErrorMessage(-1, has.status()));
          closing = true;
          break;
        }
        if (!*has) break;
        server_->metrics_.frames_received.fetch_add(1,
                                                    std::memory_order_relaxed);
        StatusOr<Json> msg = ParseMessage(payload);
        if (!msg.ok()) {
          server_->metrics_.protocol_errors.fetch_add(
              1, std::memory_order_relaxed);
          Send(MakeErrorMessage(-1, msg.status()));
          closing = true;
          break;
        }
        if (!Dispatch(*msg)) closing = true;
      }
    }
    Cleanup();
  }

  /// Cross-thread unblock for Stop(): both directions shut down, so
  /// the reader's recv and the writer's send return immediately.
  void Shutdown() { sock_.ShutdownBoth(); }

  // ReplySink ------------------------------------------------------------
  bool Send(const Json& message) override {
    std::string payload = message.Dump();
    if (payload.size() + 4 > kMaxFrameBytes) return false;
    std::string frame = EncodeFrame(payload);
    {
      ts::MutexLock lock(out_mu_);
      if (out_closed_ || write_failed_) return false;
      if (outbox_.size() >= server_->options_.outbound_queue_frames) {
        return false;  // slow consumer; callers drop the subscriber
      }
      outbox_.push_back(std::move(frame));
    }
    out_cv_.NotifyOne();
    return true;
  }

  void NoteRows(int64_t n) override {
    rows_sent_.fetch_add(n, std::memory_order_relaxed);
  }

  // METRICS per-session detail (called under Server::mu_).
  Json DetailSnapshot() {
    Json s = Json::Obj();
    s.Set("session", Json::Int(static_cast<int64_t>(id_)));
    {
      ts::MutexLock lock(mu_);
      s.Set("client", Json::Str(client_name_));
    }
    s.Set("queries_started",
          Json::Int(queries_started_.load(std::memory_order_relaxed)));
    s.Set("rows_sent", Json::Int(rows_sent_.load(std::memory_order_relaxed)));
    return s;
  }

 private:
  struct Pending {
    enum Kind { kBatch, kStream } kind = kBatch;
    std::shared_ptr<BatchRequest> batch;
    StreamHub* hub = nullptr;
  };

  void WriterLoop() {
    while (true) {
      std::string frame;
      {
        ts::MutexLock lock(out_mu_);
        while (!out_closed_ && outbox_.empty()) out_cv_.Wait(out_mu_);
        if (outbox_.empty()) return;  // closed and fully drained
        frame = std::move(outbox_.front());
        outbox_.pop_front();
      }
      if (!sock_.WriteAll(frame).ok()) {
        ts::MutexLock lock(out_mu_);
        write_failed_ = true;
        outbox_.clear();
        // Wake the reader too: a connection that can't carry replies
        // is dead in both directions.
        sock_.ShutdownBoth();
        return;
      }
    }
  }

  bool Dispatch(const Json& msg) {
    const std::string type = msg.GetString("type", "");
    if (type == "HELLO") return OnHello(msg);
    if (type == "QUERY") return OnQuery(msg, /*streaming=*/false);
    if (type == "STREAM") return OnQuery(msg, /*streaming=*/true);
    if (type == "CANCEL") return OnCancel(msg);
    if (type == "METRICS") return OnMetrics(msg);
    if (type == "CLOSE") {
      Json bye = Json::Obj();
      bye.Set("type", Json::Str("BYE"));
      Send(bye);
      return false;
    }
    server_->metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    Send(MakeErrorMessage(
        msg.GetInt("id", -1),
        Status::InvalidArgument("unknown message type '" + type + "'")));
    return true;  // tolerated: the frame itself was well-formed
  }

  bool OnHello(const Json& msg) {
    {
      ts::MutexLock lock(mu_);
      client_name_ = msg.GetString("client", "");
      default_deadline_ms_ = msg.GetInt("deadline_ms", 0);
      default_tuples_ =
          msg.GetInt("max_buffered_tuples", default_tuples_);
      default_bytes_ = msg.GetInt("max_buffered_bytes", default_bytes_);
    }
    Json welcome = Json::Obj();
    welcome.Set("type", Json::Str("WELCOME"));
    welcome.Set("protocol", Json::Int(kProtocolVersion));
    welcome.Set("server", Json::Str("sqlts_server"));
    welcome.Set("session", Json::Int(static_cast<int64_t>(id_)));
    Send(welcome);
    return true;
  }

  ExecGovernance BuildGovernance(const Json& msg) {
    ExecGovernance gov;
    int64_t deadline_ms;
    {
      ts::MutexLock lock(mu_);
      gov.max_buffered_tuples =
          msg.GetInt("max_buffered_tuples", default_tuples_);
      gov.max_buffered_bytes = msg.GetInt("max_buffered_bytes", default_bytes_);
      deadline_ms = msg.GetInt("deadline_ms", default_deadline_ms_);
    }
    if (deadline_ms > 0) {
      gov.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadline_ms);
    }
    gov.cancel = CancelToken::Cancellable();
    return gov;
  }

  bool OnQuery(const Json& msg, bool streaming) {
    const int64_t id = msg.GetInt("id", -1);
    if (id < 0) {
      Send(MakeErrorMessage(
          -1, Status::InvalidArgument(
                  "QUERY/STREAM requires a non-negative integer 'id'")));
      return true;
    }
    Server::Dataset* ds =
        server_->FindDataset(msg.GetString("dataset", ""));
    if (ds == nullptr) {
      Send(MakeErrorMessage(
          id, Status::NotFound("unknown dataset '" +
                               msg.GetString("dataset", "") + "'")));
      return true;
    }
    const std::string text = msg.GetString("query", "");
    {
      ts::MutexLock lock(mu_);
      if (pending_.count(id) > 0) {
        Send(MakeErrorMessage(
            id, Status::AlreadyExists("request id " + std::to_string(id) +
                                      " is already in flight")));
        return true;
      }
    }
    // Global in-flight admission.
    ServerMetrics& m = server_->metrics_;
    if (m.queries_in_flight.fetch_add(1, std::memory_order_relaxed) + 1 >
        server_->options_.max_queries_in_flight) {
      m.queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
      m.queries_rejected.fetch_add(1, std::memory_order_relaxed);
      Send(MakeErrorMessage(
          id, Status::ResourceExhausted("server query admission limit (" +
                                        std::to_string(
                                            server_->options_
                                                .max_queries_in_flight) +
                                        " in flight) reached")));
      return true;
    }
    queries_started_.fetch_add(1, std::memory_order_relaxed);
    ExecGovernance gov = BuildGovernance(msg);
    std::weak_ptr<Session> weak = shared_from_this();
    auto done = [weak, id] {
      if (std::shared_ptr<Session> self = weak.lock()) {
        self->ErasePending(id);
      }
    };
    if (!streaming) {
      auto req = std::make_shared<BatchRequest>();
      req->sink = shared_from_this();
      req->req_id = id;
      req->text = text;
      req->solo = msg.GetBool("solo", false);
      req->gov = gov;
      req->done = done;
      {
        ts::MutexLock lock(mu_);
        Pending p;
        p.kind = Pending::kBatch;
        p.batch = req;
        pending_.emplace(id, std::move(p));
      }
      ds->coalescer->Submit(std::move(req));
      return true;
    }
    {
      ts::MutexLock lock(mu_);
      Pending p;
      p.kind = Pending::kStream;
      p.hub = ds->hub.get();
      pending_.emplace(id, std::move(p));
    }
    Status st = ds->hub->Subscribe(shared_from_this(), id, text, gov, done);
    if (!st.ok()) {
      ErasePending(id);
      m.queries_in_flight.fetch_sub(1, std::memory_order_relaxed);
      m.NoteError(std::string(StatusCodeToString(st.code())));
      Send(MakeErrorMessage(id, st));
    }
    return true;
  }

  bool OnCancel(const Json& msg) {
    const int64_t id = msg.GetInt("id", -1);
    Pending target;
    bool found = false;
    {
      ts::MutexLock lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        target = it->second;
        found = true;
      }
    }
    if (!found) {
      Send(MakeErrorMessage(
          id, Status::NotFound("no in-flight request with id " +
                               std::to_string(id))));
      return true;
    }
    if (target.kind == Pending::kBatch) {
      // The coalescer owns the terminal CANCELLED reply (it may be
      // mid-execution; the result is discarded either way).
      target.batch->gov.cancel.RequestCancel();
    } else if (!target.hub->Cancel(this, id)) {
      // Raced with stream completion.
      Send(MakeErrorMessage(
          id, Status::NotFound("no in-flight request with id " +
                               std::to_string(id))));
    }
    return true;
  }

  bool OnMetrics(const Json& msg) {
    Json reply = Json::Obj();
    reply.Set("type", Json::Str("METRICS"));
    const int64_t id = msg.GetInt("id", -1);
    if (id >= 0) reply.Set("id", Json::Int(id));
    reply.Set("metrics", server_->MetricsSnapshot());
    Send(reply);
    return true;
  }

  void ErasePending(int64_t id) {
    ts::MutexLock lock(mu_);
    pending_.erase(id);
  }

  /// Teardown, on the reader thread.  Order matters: detach from the
  /// shared executors first (they hold this sink only through
  /// shared_ptrs, so late Sends degrade to no-ops), then flush and
  /// retire the writer, and only then release the admission slot —
  /// OnSessionEnd must be this thread's last lock-taking act (the
  /// server joins finished readers under its own mutex).
  void Cleanup() {
    std::vector<std::shared_ptr<BatchRequest>> batches;
    {
      ts::MutexLock lock(mu_);
      for (auto& [id, p] : pending_) {
        if (p.kind == Pending::kBatch && p.batch != nullptr) {
          batches.push_back(p.batch);
        }
      }
    }
    for (auto& req : batches) req->gov.cancel.RequestCancel();
    server_->ForEachHub([this](StreamHub* hub) { hub->DropSession(this); });
    {
      ts::MutexLock lock(out_mu_);
      out_closed_ = true;
    }
    out_cv_.NotifyAll();
    writer_.join();
    sock_.ShutdownBoth();
    server_->OnSessionEnd(id_);
  }

  const uint64_t id_;
  TcpSocket sock_;
  Server* const server_;

  // Outbound queue (reader/hub/coalescer threads enqueue, writer
  // drains).
  ts::Mutex out_mu_;
  ts::CondVar out_cv_;
  std::deque<std::string> outbox_ GUARDED_BY(out_mu_);
  bool out_closed_ GUARDED_BY(out_mu_) = false;
  bool write_failed_ GUARDED_BY(out_mu_) = false;
  /// Written at the top of Run() and joined in Cleanup(), both on the
  /// reader thread — never touched concurrently, so not guarded.
  std::thread writer_;

  // Request state.
  ts::Mutex mu_;
  std::map<int64_t, Pending> pending_ GUARDED_BY(mu_);
  std::string client_name_ GUARDED_BY(mu_);
  int64_t default_deadline_ms_ GUARDED_BY(mu_) = 0;
  int64_t default_tuples_ GUARDED_BY(mu_) = 0;
  int64_t default_bytes_ GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> queries_started_{0};
  std::atomic<int64_t> rows_sent_{0};
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(Options options) : options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::AddDatasetFile(std::string name, const std::string& path,
                              const Schema* schema) {
  if (ColumnarReader::SniffFile(path)) {
    SQLTS_ASSIGN_OR_RETURN(std::unique_ptr<ColumnarReader> reader,
                           ColumnarReader::Open(path));
    SQLTS_ASSIGN_OR_RETURN(Table table, reader->ReadTable());
    metrics_.storage_datasets_columnar.fetch_add(1,
                                                 std::memory_order_relaxed);
    metrics_.NoteStorage(
        static_cast<int64_t>(reader->footer().blocks.size()), 0,
        reader->bytes_read());
    return AddDataset(std::move(name), std::move(table));
  }
  if (schema == nullptr) {
    return Status::InvalidArgument("dataset '" + name +
                                   "': CSV input needs a schema");
  }
  SQLTS_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path, *schema));
  return AddDataset(std::move(name), std::move(table));
}

Status Server::AddDataset(std::string name, Table table) {
  ts::MutexLock lock(mu_);
  if (running_ || stopped_) {
    return Status::InvalidArgument(
        "datasets must be registered before Start()");
  }
  if (datasets_.count(name) > 0) {
    return Status::AlreadyExists("dataset '" + name + "' already registered");
  }
  auto ds = std::make_unique<Dataset>();
  ds->table = std::move(table);
  ExecOptions base;
  base.num_threads = options_.num_threads;
  ds->coalescer = std::make_unique<BatchCoalescer>(name, &ds->table, base,
                                                   &metrics_);
  ds->hub = std::make_unique<StreamHub>(name, &ds->table, base, &metrics_,
                                        options_.stream_delay_us);
  datasets_.emplace(std::move(name), std::move(ds));
  return Status::OK();
}

Status Server::Start() {
  ts::MutexLock lock(mu_);
  if (running_ || stopped_) {
    return Status::InvalidArgument("server already started");
  }
  SQLTS_RETURN_IF_ERROR(listener_.Listen(options_.port));
  running_ = true;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::Stop() {
  {
    ts::MutexLock lock(mu_);
    if (stopped_ && !running_) return;
    running_ = false;
    stopped_ = true;
    while (!waiting_.empty()) {
      TcpSocket sock = std::move(waiting_.front());
      waiting_.pop_front();
      metrics_.sessions_waiting.fetch_sub(1, std::memory_order_relaxed);
      metrics_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
      Json err = MakeErrorMessage(-1, Status::Cancelled("server shutting down"));
      (void)sock.WriteAll(EncodeFrame(err.Dump()));
    }
  }
  listener_.Close();
  // The acceptor handle is guarded (Start writes it under mu_): swap
  // it out under the lock, join outside — AcceptLoop takes mu_ per
  // connection, so joining with it held would deadlock.
  std::thread acceptor;
  {
    ts::MutexLock lock(mu_);
    acceptor.swap(accept_thread_);
  }
  if (acceptor.joinable()) acceptor.join();
  {
    ts::MutexLock lock(mu_);
    for (auto& [id, slot] : sessions_) {
      if (slot.session != nullptr) slot.session->Shutdown();
    }
  }
  // Join readers without holding mu_ — their last act takes it.
  std::vector<std::thread> readers;
  {
    ts::MutexLock lock(mu_);
    for (auto& [id, slot] : sessions_) {
      if (slot.reader.joinable()) readers.push_back(std::move(slot.reader));
    }
  }
  for (std::thread& t : readers) t.join();
  {
    ts::MutexLock lock(mu_);
    sessions_.clear();
    finished_.clear();
  }
  for (auto& [name, ds] : datasets_) {
    ds->hub->Stop();
    ds->coalescer->Stop();
  }
}

Json Server::MetricsSnapshot() {
  MultiQueryStats live;
  for (auto& [name, ds] : datasets_) {
    MultiQueryStats h = ds->hub->live_stats();
    live.shared_lookups += h.shared_lookups;
    live.shared_evals += h.shared_evals;
    live.cache_hits += h.cache_hits;
    live.inferred_hits += h.inferred_hits;
    live.private_evals += h.private_evals;
    live.tuples_scanned += h.tuples_scanned;
  }
  Json body = metrics_.Snapshot(&live);
  Json per_session = Json::Arr();
  {
    ts::MutexLock lock(mu_);
    for (auto& [id, slot] : sessions_) {
      if (slot.session != nullptr) {
        per_session.mutable_array()->push_back(
            slot.session->DetailSnapshot());
      }
    }
  }
  body.Set("per_session", std::move(per_session));
  return body;
}

int64_t Server::num_epoch_caches() const {
  int64_t total = 0;
  for (const auto& [name, ds] : datasets_) {
    total += ds->hub->num_epoch_caches();
  }
  return total;
}

void Server::AcceptLoop() {
  while (true) {
    StatusOr<TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed: shutdown
    TcpSocket sock = std::move(*accepted);
    (void)sock.SetSendTimeout(options_.send_timeout_ms);
    ts::MutexLock lock(mu_);
    ReapLocked();
    if (!running_) continue;  // racing with Stop; drop the connection
    if (metrics_.sessions_active.load(std::memory_order_relaxed) <
        options_.max_sessions) {
      StartSessionLocked(std::move(sock));
    } else if (waiting_.size() <
               static_cast<size_t>(options_.admission_backlog)) {
      waiting_.push_back(std::move(sock));
      metrics_.sessions_waiting.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
      Json err = MakeErrorMessage(
          -1, Status::ResourceExhausted(
                  "session admission queue full (" +
                  std::to_string(options_.max_sessions) + " active, " +
                  std::to_string(options_.admission_backlog) + " waiting)"));
      (void)sock.WriteAll(EncodeFrame(err.Dump()));
    }
  }
}

void Server::StartSessionLocked(TcpSocket sock) {
  const uint64_t id = next_session_id_++;
  auto session = std::make_shared<Session>(id, std::move(sock), this);
  metrics_.sessions_admitted.fetch_add(1, std::memory_order_relaxed);
  const int64_t active =
      metrics_.sessions_active.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics_.NotePeak(active);
  Slot slot;
  slot.session = session;
  slot.reader = std::thread([session] { session->Run(); });
  sessions_.emplace(id, std::move(slot));
}

void Server::ReapLocked() {
  for (uint64_t id : finished_) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    if (it->second.reader.joinable()) it->second.reader.join();
    sessions_.erase(it);
  }
  finished_.clear();
}

void Server::OnSessionEnd(uint64_t session_id) {
  ts::MutexLock lock(mu_);
  metrics_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
  finished_.push_back(session_id);
  if (running_ && !waiting_.empty() &&
      metrics_.sessions_active.load(std::memory_order_relaxed) <
          options_.max_sessions) {
    TcpSocket sock = std::move(waiting_.front());
    waiting_.pop_front();
    metrics_.sessions_waiting.fetch_sub(1, std::memory_order_relaxed);
    StartSessionLocked(std::move(sock));
  }
}

Server::Dataset* Server::FindDataset(const std::string& name) {
  // datasets_ is immutable once running_; sessions read it unlocked.
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.get();
}

}  // namespace sqlts
