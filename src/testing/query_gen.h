#ifndef SQLTS_TESTING_QUERY_GEN_H_
#define SQLTS_TESTING_QUERY_GEN_H_

#include <cstdint>
#include <string>

#include "parser/analyzer.h"
#include "parser/ast.h"

namespace sqlts {
namespace fuzz {

/// Options bounding the random query space.
struct QueryGenOptions {
  int max_elements = 5;
  double star_prob = 0.3;
  /// Probability a navigation step is `.next` instead of `.previous`
  /// (lookahead; such queries skip the streaming engine).
  double next_prob = 0.2;
  double limit_prob = 0.1;
  double aggregate_prob = 0.35;
  double or_prob = 0.15;
  double not_prob = 0.05;
};

/// A generated query: the AST, its printed SQL text, and the feature
/// flags the differential driver needs for engine gating.
struct GeneratedQuery {
  ParsedQuery ast;
  std::string sql;
  bool uses_lookahead = false;  ///< any nav_offset > 0 (SELECT or WHERE)
  bool has_limit = false;
  bool has_star = false;
  bool has_aggregate = false;
  bool clustered = false;  ///< CLUSTER BY present
  int num_elements = 0;
};

/// Grammar-directed random SQL-TS query generator over FuzzSchema():
/// CLUSTER BY / SEQUENCE BY variants, star and star-free patterns,
/// previous/next navigation, FIRST/LAST accessors and aggregates in the
/// SELECT list, and GSW-shaped predicate mixes (X op C, X op Y,
/// X op Y + C, X op C*Y, date windows, disjunctions, NOT).  Every query
/// returned by Next() parses, analyzes, and pattern-compiles against
/// FuzzSchema(); rejected drafts (see rejected()) are retried
/// internally.  Deterministic given the seed.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed, QueryGenOptions options = {});

  GeneratedQuery Next();

  /// Drafts discarded because the analyzer/compiler rejected them — a
  /// generator-health signal (should stay a small fraction).
  int64_t rejected() const { return rejected_; }
  int64_t generated() const { return generated_; }

 private:
  uint64_t state_;
  QueryGenOptions options_;
  int64_t rejected_ = 0;
  int64_t generated_ = 0;
};

}  // namespace fuzz
}  // namespace sqlts

#endif  // SQLTS_TESTING_QUERY_GEN_H_
