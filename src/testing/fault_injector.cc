#include "testing/fault_injector.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sqlts {
namespace fuzz {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed, Options options)
    : options_(options), state_(seed ^ 0xfa017ed5eedULL) {}

FaultHook FaultInjector::Hook() {
  return [this](std::string_view site) { return OnSite(site); };
}

double FaultInjector::NextUniform() {
  return static_cast<double>(SplitMix64(&state_) >> 11) * 0x1.0p-53;
}

Status FaultInjector::OnSite(std::string_view site) {
  ts::MutexLock lock(mu_);
  double prob = 0.0;
  Status fault = Status::OK();
  if (site == "stream.push") {
    prob = options_.push_error_prob;
    fault = Status::IoError("injected source error at stream.push");
  } else if (site == "matcher.append") {
    prob = options_.alloc_failure_prob;
    fault = Status::ResourceExhausted(
        "injected allocation failure at matcher.append");
  } else if (site == "shard.enqueue") {
    prob = options_.queue_failure_prob;
    fault = Status::IoError("injected queue failure at shard.enqueue");
  }
  // One draw per site visit keeps the fault schedule a pure function of
  // the seed and the visit sequence.
  const double err_draw = NextUniform();
  const double throw_draw = NextUniform();
  if (prob > 0.0 && err_draw < prob) {
    ++injected_;
    ++per_site_[std::string(site)];
    return fault;
  }
  if (options_.throw_prob > 0.0 && throw_draw < options_.throw_prob) {
    ++injected_;
    ++per_site_[std::string(site)];
    throw std::runtime_error("injected exception at " + std::string(site));
  }
  return Status::OK();
}

int64_t FaultInjector::injected() const {
  ts::MutexLock lock(mu_);
  return injected_;
}

int64_t FaultInjector::injected_at(std::string_view site) const {
  ts::MutexLock lock(mu_);
  auto it = per_site_.find(std::string(site));
  return it == per_site_.end() ? 0 : it->second;
}

FailoverSchedule MakeFailoverSchedule(uint64_t seed, int64_t source_rows) {
  uint64_t state = seed ^ 0xfa110e45c4ed1eULL;
  auto next = [&] { return SplitMix64(&state); };
  FailoverSchedule s;
  s.cluster.seed = next();
  s.cluster.num_standbys = 2 + static_cast<int>(next() % 2);  // 2..3
  s.cluster.checkpoint_interval = 2 + static_cast<int64_t>(next() % 14);
  s.cluster.heartbeat_interval = 1 + static_cast<int64_t>(next() % 4);
  s.cluster.lease_ticks =
      2 * s.cluster.heartbeat_interval + static_cast<int64_t>(next() % 8);
  // Chaotic transport on roughly half the schedules, so clean links stay
  // represented; delays create a natural reorder window.
  if (next() % 2 == 0) {
    s.cluster.transport.drop_prob = 0.05 + 0.3 * (next() % 1000) / 1000.0;
  }
  if (next() % 2 == 0) {
    s.cluster.transport.delay_prob = 0.05 + 0.3 * (next() % 1000) / 1000.0;
    s.cluster.transport.max_delay_ticks = 1 + static_cast<int64_t>(next() % 5);
  }
  // 1..num_standbys kills (each consumes one standby) at distinct
  // offsets strictly inside the stream.
  const int kills =
      1 + static_cast<int>(next() % static_cast<uint64_t>(
                                        s.cluster.num_standbys));
  std::vector<int64_t> offsets;
  const int64_t span = std::max<int64_t>(1, source_rows);
  for (int k = 0; k < kills; ++k) {
    const int64_t off = static_cast<int64_t>(next() % span);
    bool dup = false;
    for (int64_t o : offsets) dup = dup || o == off;
    if (!dup) offsets.push_back(off);
  }
  std::sort(offsets.begin(), offsets.end());
  for (int64_t off : offsets) {
    FailoverEvent e;
    e.kill_offset = off;
    e.promotion_draw = next();
    e.allow_lagging = next() % 4 == 0;
    s.events.push_back(e);
  }
  return s;
}

namespace {

/// Copies out everything a finished (or failed) cluster observed.
FailoverRunResult HarvestResult(Status status,
                                const replication::ReplicatedCluster& cluster,
                                int num_channels) {
  FailoverRunResult r;
  r.status = std::move(status);
  for (int c = 0; c < num_channels; ++c) {
    r.rows.push_back(cluster.sink(c).delivered());
  }
  r.stats_fingerprint = cluster.StatsFingerprint();
  r.failovers = cluster.failovers();
  r.duplicates_dropped = cluster.duplicates_dropped();
  r.counters = cluster.counters();
  return r;
}

}  // namespace

FailoverRunResult RunFailoverSchedule(const replication::EngineFactory& factory,
                                      int num_channels,
                                      const std::vector<Row>& source,
                                      const FailoverSchedule& schedule,
                                      ReplicationMetrics* metrics) {
  replication::ReplicatedCluster cluster(factory, num_channels, &source,
                                         schedule.cluster, metrics);
  Status status = cluster.Start();
  size_t event = 0;
  while (status.ok() && cluster.position() < cluster.source_size()) {
    if (event < schedule.events.size() &&
        cluster.position() >= schedule.events[event].kill_offset) {
      status = cluster.KillPrimary();
      if (status.ok()) {
        status = cluster
                     .Promote(schedule.events[event].promotion_draw,
                              schedule.events[event].allow_lagging)
                     .status();
      }
      ++event;
      continue;
    }
    status = cluster.Step();
  }
  if (status.ok()) status = cluster.Finish();
  return HarvestResult(std::move(status), cluster, num_channels);
}

FailoverRunResult RunUninterrupted(const replication::EngineFactory& factory,
                                   int num_channels,
                                   const std::vector<Row>& source,
                                   const replication::ClusterOptions& options) {
  replication::ClusterOptions oracle = options;
  oracle.num_standbys = 0;
  oracle.quorum_acks = 0;
  oracle.transport = replication::TransportOptions{};
  replication::ReplicatedCluster cluster(factory, num_channels, &source,
                                         oracle, nullptr);
  Status status = cluster.Start();
  while (status.ok() && cluster.position() < cluster.source_size()) {
    status = cluster.Step();
  }
  if (status.ok()) status = cluster.Finish();
  return HarvestResult(std::move(status), cluster, num_channels);
}

}  // namespace fuzz
}  // namespace sqlts
