#include "testing/fault_injector.h"

#include <stdexcept>

namespace sqlts {
namespace fuzz {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed, Options options)
    : options_(options), state_(seed ^ 0xfa017ed5eedULL) {}

FaultHook FaultInjector::Hook() {
  return [this](std::string_view site) { return OnSite(site); };
}

double FaultInjector::NextUniform() {
  return static_cast<double>(SplitMix64(&state_) >> 11) * 0x1.0p-53;
}

Status FaultInjector::OnSite(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  double prob = 0.0;
  Status fault = Status::OK();
  if (site == "stream.push") {
    prob = options_.push_error_prob;
    fault = Status::IoError("injected source error at stream.push");
  } else if (site == "matcher.append") {
    prob = options_.alloc_failure_prob;
    fault = Status::ResourceExhausted(
        "injected allocation failure at matcher.append");
  } else if (site == "shard.enqueue") {
    prob = options_.queue_failure_prob;
    fault = Status::IoError("injected queue failure at shard.enqueue");
  }
  // One draw per site visit keeps the fault schedule a pure function of
  // the seed and the visit sequence.
  const double err_draw = NextUniform();
  const double throw_draw = NextUniform();
  if (prob > 0.0 && err_draw < prob) {
    ++injected_;
    ++per_site_[std::string(site)];
    return fault;
  }
  if (options_.throw_prob > 0.0 && throw_draw < options_.throw_prob) {
    ++injected_;
    ++per_site_[std::string(site)];
    throw std::runtime_error("injected exception at " + std::string(site));
  }
  return Status::OK();
}

int64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

int64_t FaultInjector::injected_at(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_site_.find(std::string(site));
  return it == per_site_.end() ? 0 : it->second;
}

}  // namespace fuzz
}  // namespace sqlts
