#ifndef SQLTS_TESTING_FAULT_INJECTOR_H_
#define SQLTS_TESTING_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/governance.h"

namespace sqlts {
namespace fuzz {

/// Deterministic, seeded fault injection for the streaming path.
///
/// Hook() produces a FaultHook (see common/governance.h) that fires at
/// the engine's named sites — "stream.push", "matcher.append",
/// "shard.enqueue" — and, per site visit, draws from a seeded PRNG to
/// decide whether that visit fails and how:
///  - an injected source/IO error (typed IoError Status),
///  - a simulated allocation failure (kResourceExhausted Status),
///  - a thrown exception (exercises the shard workers' boundary).
///
/// The generator is guarded by a mutex, so concurrent shard workers may
/// share one injector; with a single caller the fault sequence is fully
/// reproducible from the seed.  Counters record what was injected for
/// assertions.
class FaultInjector {
 public:
  struct Options {
    /// Per-visit probability (0..1) of failing "stream.push" with an
    /// injected source error.
    double push_error_prob = 0.0;
    /// Per-visit probability of failing "matcher.append" with a
    /// simulated allocation failure.
    double alloc_failure_prob = 0.0;
    /// Per-visit probability of failing "shard.enqueue".
    double queue_failure_prob = 0.0;
    /// Per-visit probability (any site) of throwing std::runtime_error
    /// instead of returning a Status — only meaningful on sites reached
    /// from shard workers, whose exception boundary it exercises.
    double throw_prob = 0.0;
  };

  FaultInjector(uint64_t seed, Options options);

  /// The hook to install as ExecGovernance::fault_hook.  The injector
  /// must outlive every executor holding the hook.
  FaultHook Hook();

  /// Total faults injected (errors + throws).
  int64_t injected() const;
  /// Faults injected at `site`.
  int64_t injected_at(std::string_view site) const;

 private:
  Status OnSite(std::string_view site);
  /// Next uniform draw in [0, 1).
  double NextUniform();

  Options options_;
  mutable std::mutex mu_;
  uint64_t state_;  // splitmix64 state
  int64_t injected_ = 0;
  std::map<std::string, int64_t> per_site_;
};

}  // namespace fuzz
}  // namespace sqlts

#endif  // SQLTS_TESTING_FAULT_INJECTOR_H_
