#ifndef SQLTS_TESTING_FAULT_INJECTOR_H_
#define SQLTS_TESTING_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/governance.h"
#include "common/thread_annotations.h"
#include "replication/cluster.h"

namespace sqlts {
namespace fuzz {

/// Deterministic, seeded fault injection for the streaming path.
///
/// Hook() produces a FaultHook (see common/governance.h) that fires at
/// the engine's named sites — "stream.push", "matcher.append",
/// "shard.enqueue" — and, per site visit, draws from a seeded PRNG to
/// decide whether that visit fails and how:
///  - an injected source/IO error (typed IoError Status),
///  - a simulated allocation failure (kResourceExhausted Status),
///  - a thrown exception (exercises the shard workers' boundary).
///
/// The generator is guarded by a mutex, so concurrent shard workers may
/// share one injector; with a single caller the fault sequence is fully
/// reproducible from the seed.  Counters record what was injected for
/// assertions.
class FaultInjector {
 public:
  struct Options {
    /// Per-visit probability (0..1) of failing "stream.push" with an
    /// injected source error.
    double push_error_prob = 0.0;
    /// Per-visit probability of failing "matcher.append" with a
    /// simulated allocation failure.
    double alloc_failure_prob = 0.0;
    /// Per-visit probability of failing "shard.enqueue".
    double queue_failure_prob = 0.0;
    /// Per-visit probability (any site) of throwing std::runtime_error
    /// instead of returning a Status — only meaningful on sites reached
    /// from shard workers, whose exception boundary it exercises.
    double throw_prob = 0.0;
  };

  FaultInjector(uint64_t seed, Options options);

  /// The hook to install as ExecGovernance::fault_hook.  The injector
  /// must outlive every executor holding the hook.
  FaultHook Hook();

  /// Total faults injected (errors + throws).
  int64_t injected() const;
  /// Faults injected at `site`.
  int64_t injected_at(std::string_view site) const;

 private:
  Status OnSite(std::string_view site);
  /// Next uniform draw in [0, 1); advances the guarded PRNG state.
  double NextUniform() REQUIRES(mu_);

  Options options_;
  mutable ts::Mutex mu_;
  uint64_t state_ GUARDED_BY(mu_);  // splitmix64 state
  int64_t injected_ GUARDED_BY(mu_) = 0;
  std::map<std::string, int64_t> per_site_ GUARDED_BY(mu_);
};

/// One primary failure within a failover schedule: kill the primary
/// after the cluster has consumed `kill_offset` source tuples, then
/// promote the standby selected by `promotion_draw` (uniform within the
/// eligible set).  With `allow_lagging` any surviving standby is
/// eligible, not just the most caught-up ones — the hardest case for
/// exactly-once, since the promoted node replays a longer suffix.
struct FailoverEvent {
  int64_t kill_offset = 0;
  uint64_t promotion_draw = 0;
  bool allow_lagging = false;
};

/// A complete multi-node chaos schedule: cluster topology and cadences,
/// transport chaos (drop/delay/reorder of replication log entries), and
/// the ordered primary-kill events.  Everything is a pure function of
/// the seed that produced it, so any run reproduces from one integer.
struct FailoverSchedule {
  replication::ClusterOptions cluster;
  std::vector<FailoverEvent> events;  // ordered by kill_offset
};

/// Derives a randomized schedule from `seed` for a stream of
/// `source_rows` tuples: 1..num_standbys kills at distinct offsets,
/// random checkpoint/heartbeat/lease cadences, and transport chaos
/// (each active with probability ~1/2 so clean-transport schedules stay
/// in the mix).
FailoverSchedule MakeFailoverSchedule(uint64_t seed, int64_t source_rows);

/// What one scheduled (or oracle) run produced and observed.
struct FailoverRunResult {
  Status status = Status::OK();
  /// Per-channel delivered rows, exactly-once (post-dedup).
  std::vector<std::vector<Row>> rows;
  /// Deterministic matcher-stats rendering of the final primary.
  std::string stats_fingerprint;
  int failovers = 0;
  int64_t duplicates_dropped = 0;
  replication::ReplicationCounters counters;
};

/// Drives one ReplicatedCluster through `schedule`: steps the stream,
/// kills the primary at each event's offset, promotes per the event's
/// draw, and finishes.  The result must be bit-identical (rows and
/// stats) to RunUninterrupted on the same factory and source.
FailoverRunResult RunFailoverSchedule(const replication::EngineFactory& factory,
                                      int num_channels,
                                      const std::vector<Row>& source,
                                      const FailoverSchedule& schedule,
                                      ReplicationMetrics* metrics = nullptr);

/// The oracle: the same engine on the same stream with no standbys, no
/// chaos, and no kills (checkpoint cadence retained — checkpointing is
/// output-invariant and keeping it exercises the flush path).
FailoverRunResult RunUninterrupted(const replication::EngineFactory& factory,
                                   int num_channels,
                                   const std::vector<Row>& source,
                                   const replication::ClusterOptions& options);

}  // namespace fuzz
}  // namespace sqlts

#endif  // SQLTS_TESTING_FAULT_INJECTOR_H_
