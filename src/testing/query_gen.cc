#include "testing/query_gen.h"

#include <random>
#include <vector>

#include "common/logging.h"
#include "pattern/compile.h"
#include "testing/data_gen.h"

namespace sqlts {
namespace fuzz {
namespace {

/// Column roles in FuzzSchema() (see data_gen.h).
enum class Col { kSym, kGrp, kSeq, kDay, kPrice, kVol };

const char* ColName(Col c) {
  switch (c) {
    case Col::kSym:
      return "sym";
    case Col::kGrp:
      return "grp";
    case Col::kSeq:
      return "seq";
    case Col::kDay:
      return "day";
    case Col::kPrice:
      return "price";
    case Col::kVol:
      return "vol";
  }
  return "?";
}

constexpr const char* kVars[] = {"X", "Y", "Z", "W", "V"};

/// One draft attempt; the caller validates and retries.
class Draft {
 public:
  Draft(std::mt19937_64* rng, const QueryGenOptions& options)
      : rng_(*rng), options_(options) {}

  GeneratedQuery Build() {
    GeneratedQuery out;
    ParsedQuery& q = out.ast;
    q.table = "t";

    m_ = 1 + Pick(options_.max_elements);
    for (int e = 0; e < m_; ++e) {
      PatternVarDecl d;
      d.name = kVars[e];
      d.star = Unit() < options_.star_prob;
      q.pattern.push_back(d);
    }

    // CLUSTER BY: none / sym / sym+grp; SEQUENCE BY: seq (+day rarely;
    // seq is globally unique so the secondary never changes the order,
    // but the multi-column comparison path still runs).
    int cmode = Pick(20);
    if (cmode < 12) {
      q.cluster_by = {"sym"};
    } else if (cmode < 15) {
      q.cluster_by = {"sym", "grp"};
    }
    q.sequence_by = {"seq"};
    if (Pick(5) == 0) q.sequence_by.push_back("day");

    BuildWhere(&q);
    BuildSelect(&out, &q);

    if (Unit() < options_.limit_prob) q.limit = 1 + Pick(5);

    out.sql = q.ToString();
    out.has_limit = q.limit > 0;
    out.clustered = !q.cluster_by.empty();
    out.num_elements = m_;
    for (const PatternVarDecl& d : q.pattern) out.has_star |= d.star;
    auto scan = [&](const ExprPtr& e) {
      VisitColumnRefs(e, [&](const ColumnRef& r) {
        if (r.nav_offset > 0) out.uses_lookahead = true;
      });
    };
    scan(q.where);
    for (const SelectItem& item : q.select) scan(item.expr);
    return out;
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }
  double Unit() { return std::uniform_real_distribution<double>()(rng_); }
  CmpOp AnyCmp() { return static_cast<CmpOp>(Pick(6)); }

  /// A navigation offset: 0 mostly, -1/-2 (previous) or +1 (next).
  int Nav() {
    int r = Pick(10);
    if (r < 6) return 0;
    if (r < 8) return -1;
    if (r == 8) return -2;
    return Unit() < options_.next_prob * 5 ? 1 : -1;
  }

  ExprPtr Ref(int elem, Col c, int nav = 0,
              GroupAccessor acc = GroupAccessor::kCurrent) {
    ColumnRef r;
    r.var = kVars[elem];
    r.accessor = acc;
    r.nav_offset = nav;
    r.column = ColName(c);
    return MakeColumnRef(std::move(r));
  }

  ExprPtr IntLit(int64_t v) { return MakeLiteral(Value::Int64(v)); }
  ExprPtr DoubleLit(double v) { return MakeLiteral(Value::Double(v)); }

  /// A numeric payload column: price (double) or vol (int64).
  Col NumCol() { return Pick(3) == 0 ? Col::kVol : Col::kPrice; }

  ExprPtr NumConst(Col c) {
    static const double kPrice[] = {40, 45, 48, 50, 52, 55, 60};
    static const int64_t kVol[] = {0, 3, 5, 10, 15, 20};
    static const int64_t kSeq[] = {10, 50, 100, 200};
    switch (c) {
      case Col::kPrice:
        return DoubleLit(kPrice[Pick(7)]);
      case Col::kVol:
        return IntLit(kVol[Pick(6)]);
      default:
        return IntLit(kSeq[Pick(4)]);
    }
  }

  /// One atomic comparison owned by element `e` (it may reference any
  /// other element; the analyzer assigns it to the latest one).
  ExprPtr Atom(int e) {
    int other = Pick(m_);
    switch (Pick(12)) {
      case 0:
      case 1: {  // X op C
        Col c = Pick(4) == 0 ? Col::kSeq : NumCol();
        return MakeCompare(AnyCmp(), Ref(e, c, Nav()), NumConst(c));
      }
      case 2:
      case 3: {  // X op X.previous (the paper's rise/fall predicates)
        Col c = NumCol();
        int nav = Pick(3) == 0 ? -2 : -1;
        if (Unit() < options_.next_prob) nav = 1;
        return MakeCompare(AnyCmp(), Ref(e, c, 0), Ref(e, c, nav));
      }
      case 4:
      case 5: {  // X op Y (cross-element, same column family)
        Col c = NumCol();
        return MakeCompare(AnyCmp(), Ref(e, c, 0), Ref(other, c, Nav()));
      }
      case 6:
      case 7: {  // X op Y + C / X op Y - C
        Col c = NumCol();
        ExprPtr rhs = MakeArith(Pick(2) ? ArithOp::kAdd : ArithOp::kSub,
                                Ref(other, c, Nav()), IntLit(1 + Pick(5)));
        return MakeCompare(AnyCmp(), Ref(e, c, 0), std::move(rhs));
      }
      case 8: {  // X op C*Y (ratio; price is the positive domain)
        static const double kRatio[] = {0.9, 0.95, 0.97, 1.02, 1.05, 1.1};
        ExprPtr rhs = MakeArith(ArithOp::kMul, DoubleLit(kRatio[Pick(6)]),
                                Ref(other, Col::kPrice, Nav()));
        return MakeCompare(AnyCmp(), Ref(e, Col::kPrice, 0),
                           std::move(rhs));
      }
      case 9: {  // date window: X.day op Y.day + C
        static const int64_t kDays[] = {1, 2, 3, 7};
        ExprPtr rhs = MakeArith(ArithOp::kAdd, Ref(other, Col::kDay, 0),
                                IntLit(kDays[Pick(4)]));
        return MakeCompare(Pick(2) ? CmpOp::kLt : CmpOp::kLe,
                           Ref(e, Col::kDay, Nav()), std::move(rhs));
      }
      case 10: {  // string equality on the cluster column (hoistable
                  // cluster filter when CLUSTER BY sym is present)
        static const char* kNames[] = {"IBM", "INTC", "A", "B"};
        return MakeCompare(Pick(4) ? CmpOp::kEq : CmpOp::kNe,
                           Ref(e, Col::kSym, 0),
                           MakeLiteral(Value::String(kNames[Pick(4)])));
      }
      default: {  // grp equality (second cluster-key column)
        return MakeCompare(Pick(3) ? CmpOp::kEq : CmpOp::kNe,
                           Ref(e, Col::kGrp, 0), IntLit(Pick(2)));
      }
    }
  }

  /// A conjunct for element `e`: an atom, a disjunction, or a negation.
  ExprPtr Conjunct(int e) {
    ExprPtr a = Atom(e);
    if (Unit() < options_.or_prob) a = MakeOr(std::move(a), Atom(e));
    if (Unit() < options_.not_prob) a = MakeNot(std::move(a));
    return a;
  }

  void BuildWhere(ParsedQuery* q) {
    ExprPtr where;
    for (int e = 0; e < m_; ++e) {
      int n = Pick(3);  // 0..2 conjuncts per element (0 = TRUE element)
      for (int i = 0; i < n; ++i) {
        ExprPtr c = Conjunct(e);
        where = where ? MakeAnd(std::move(where), std::move(c))
                      : std::move(c);
      }
    }
    q->where = std::move(where);  // may stay null: no WHERE clause
  }

  void BuildSelect(GeneratedQuery* out, ParsedQuery* q) {
    int n = 1 + Pick(3);
    for (int i = 0; i < n; ++i) {
      SelectItem item;
      int e = Pick(m_);
      int kind = Pick(10);
      if (kind < 5) {  // plain (possibly navigated) reference
        Col c = static_cast<Col>(Pick(6));
        item.expr = Ref(e, c, Nav());
      } else if (kind < 8) {  // FIRST/LAST accessors
        Col c = static_cast<Col>(Pick(6));
        item.expr = Ref(e, c, 0,
                        Pick(2) ? GroupAccessor::kFirst
                                : GroupAccessor::kLast);
      } else if (Unit() < options_.aggregate_prob * 2) {
        out->has_aggregate = true;
        AggOp op = static_cast<AggOp>(Pick(5));
        ColumnRef r;
        r.var = kVars[e];
        if (op != AggOp::kCount) {
          r.column = ColName(Pick(2) ? Col::kPrice : Col::kVol);
        }
        item.expr = MakeAggregate(op, std::move(r));
      } else {
        item.expr = Ref(e, Col::kPrice, 0);
      }
      // Unique aliases keep the output schema well-formed regardless of
      // what the expressions would have been auto-named.
      item.alias = "c" + std::to_string(i);
      q->select.push_back(std::move(item));
    }
  }

  std::mt19937_64& rng_;
  const QueryGenOptions& options_;
  int m_ = 0;
};

}  // namespace

QueryGenerator::QueryGenerator(uint64_t seed, QueryGenOptions options)
    : state_(seed), options_(options) {}

GeneratedQuery QueryGenerator::Next() {
  std::mt19937_64 rng(state_);
  state_ = rng();  // advance the outer stream
  for (int attempt = 0; attempt < 200; ++attempt) {
    GeneratedQuery g = Draft(&rng, options_).Build();
    // The full front end is the validity oracle: parse the printed SQL,
    // analyze it, and compile the pattern.  Drafts the front end
    // rejects are discarded (counted), never returned.
    auto compiled = CompileQueryText(g.sql, FuzzSchema());
    if (compiled.ok() && CompilePattern(*compiled).ok()) {
      ++generated_;
      return g;
    }
    ++rejected_;
  }
  SQLTS_CHECK(false) << "query generator: 200 consecutive rejects";
  return GeneratedQuery{};
}

}  // namespace fuzz
}  // namespace sqlts
