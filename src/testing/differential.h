#ifndef SQLTS_TESTING_DIFFERENTIAL_H_
#define SQLTS_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"
#include "testing/query_gen.h"

namespace sqlts {
namespace fuzz {

/// Knobs for one differential run.
struct DifferentialOptions {
  /// Sharded batch executions to compare against the sequential OPS run
  /// (each must be bit-identical, rows and stats).
  std::vector<int> thread_counts = {4, 8};
  bool run_streaming = true;
  /// Also run the shift-only ablation (CompileOptions::enable_next =
  /// false), which must not change results either.
  bool run_shift_only = true;
  /// Collect search traces and check backtracking invariants when the
  /// input has at most this many rows (tracing is expensive).
  int64_t trace_rows_limit = 120;
};

/// What one differential execution observed.  On failure, `failure`
/// holds a self-contained report: the divergence description plus the
/// seed, SQL text and CSV data needed to reproduce it.
struct DifferentialOutcome {
  bool ok = true;
  std::string failure;
  /// All engines rejected the query with the same status (consistent
  /// error — counted, not a divergence).
  bool both_errored = false;
  bool streaming_ran = false;
  bool traced = false;
  /// The vectorized tier compiled at least one kernel for this query
  /// (the interpreter-vs-vectorized comparisons were non-vacuous).
  bool vectorized = false;
  int64_t naive_evaluations = 0;
  int64_t ops_evaluations = 0;
  int64_t matches = 0;
};

/// One-line-reproducible failure context: seed, SQL, and the data as
/// CSV (lossless round-trip via storage/csv).
std::string ReproString(uint64_t seed, const std::string& sql,
                        const Table& data);

/// Runs (query, data) through every engine and cross-checks:
///  - naive backtracking (pure interpreter, vectorize off) vs sequential
///    OPS (vectorized tier on): identical rows, in order; OPS never
///    evaluates more predicates than naive (no LIMIT);
///  - interpreted OPS (vectorize off) vs vectorized OPS: bit-identical
///    rows and SearchStats — the direct kernel-parity differential;
///  - sharded OPS at each thread count: bit-identical rows and
///    aggregate SearchStats;
///  - shift-only OPS ablation: bit-identical rows;
///  - streaming (when the query has no lookahead and no LIMIT): same
///    result multiset and match count as batch, and the interpreted
///    stream emits the identical sequence as the vectorized stream;
///  - with traces (small inputs): trace length equals the evaluation
///    count, OPS's total backtracking distance never exceeds naive's,
///    and on star-free patterns the OPS cursor never retreats more than
///    m-1 positions behind the furthest input position reached.
DifferentialOutcome RunDifferential(const Table& data,
                                    const GeneratedQuery& query,
                                    uint64_t seed,
                                    const DifferentialOptions& options = {});

/// Metamorphic: shuffling input row order (the batch engine re-sorts by
/// CLUSTER BY / SEQUENCE BY) must not change the result multiset.
/// Skipped for LIMIT queries, whose row cutoff depends on cluster
/// first-appearance order.
DifferentialOutcome CheckClusterPermutationInvariance(
    const Table& data, const GeneratedQuery& query, uint64_t seed);

/// Metamorphic: conjoining the tautology (V.seq < C OR V.seq >= C) onto
/// WHERE must leave the output bit-identical (seq is never NULL, so the
/// disjunction is true under 3-valued logic).
DifferentialOutcome CheckTautologyRewrite(const Table& data,
                                          const GeneratedQuery& query,
                                          uint64_t seed);

/// Metamorphic: streaming is causal.  For a random stream prefix, the
/// rows streaming emitted by push k are a sub-multiset of the batch
/// result on the first k rows, and re-running streaming on exactly that
/// prefix (with Finish) reproduces the batch result on it.  Requires a
/// streaming-eligible query (no lookahead, no LIMIT).
DifferentialOutcome CheckStreamPrefixConsistency(const Table& data,
                                                 const GeneratedQuery& query,
                                                 uint64_t seed);

/// What the lint soundness check observed across calls (aggregated by
/// the caller so the fuzz test can assert the analyzer actually fires
/// on generated queries, not just that it never lies).
struct LintFuzzStats {
  int64_t queries = 0;
  /// Queries the analyzer proved empty (any E-code).
  int64_t error_queries = 0;
  /// W001/W002 conjuncts individually dropped and re-executed.
  int64_t drops_tested = 0;
  int64_t warnings = 0;
};

/// Closes the loop between the static analyzer (analysis/linter.h) and
/// the execution oracles:
///  - every E-level verdict ("query is provably empty") is cross-checked
///    against the naive backtracking engine — any returned row is a
///    soundness counterexample and fails with a self-contained repro;
///  - every W001/W002 verdict ("conjunct droppable") is validated by
///    erasing exactly that conjunct from the compiled query and
///    requiring the re-execution to be bit-identical.
DifferentialOutcome CheckLintSoundness(const Table& data,
                                       const GeneratedQuery& query,
                                       uint64_t seed,
                                       LintFuzzStats* stats = nullptr);

/// What the multi-query equivalence check observed across calls
/// (aggregated by the caller so the fuzz test can assert the sharing
/// machinery actually fires on generated workloads).
struct MultiQueryFuzzStats {
  int64_t sets = 0;               ///< query sets actually compared
  int64_t queries_compared = 0;   ///< per-query batch comparisons
  int64_t streaming_compared = 0; ///< queries through the shared stream
  int64_t cache_hits = 0;         ///< shared-memo hits (single-threaded)
  int64_t predicate_merges = 0;   ///< structural + semantic merges
  int64_t subsumption_edges = 0;
};

/// Differential: a set of K generated queries through the shared
/// multi-query engine (src/multiquery/) against K independent runs.
///  - batch: MultiQueryExecutor at 1 and 8 threads must return, for
///    every query, rows and match counts bit-identical to running that
///    query alone;
///  - counters: shared_lookups == cache_hits + shared_evals, and
///    inferred hits never exceed cache hits;
///  - streaming: eligible queries (no lookahead, no LIMIT) registered
///    on one MultiStreamExecutor must emit the batch result multiset,
///    and a kill at a random push index + Restore on a fresh instance
///    must reproduce the uninterrupted emissions exactly.
DifferentialOutcome CheckMultiQueryEquivalence(
    const Table& data, const std::vector<GeneratedQuery>& queries,
    uint64_t seed, MultiQueryFuzzStats* stats = nullptr);

/// What the query-set lint soundness check observed across calls
/// (aggregated by the caller so the fuzz test can assert W007/W008
/// actually fire on generated workloads, not just that they never lie).
struct QuerySetLintFuzzStats {
  int64_t sets = 0;        ///< sets linted
  int64_t w007_pairs = 0;  ///< duplicate verdicts verified bit-identical
  int64_t w008_pairs = 0;  ///< subsumption verdicts verified as subsets
};

/// Closes the loop between the cross-query lint
/// (multiquery/queryset_lint.h) and the execution oracle: every W007
/// pair must produce bit-identical rows when each member runs alone,
/// and every W008 pair's flagged query must produce a sub-multiset of
/// its subsumer's rows.  Any violation fails with a self-contained
/// repro.  Members the single-query engine rejects are dropped up
/// front, mirroring CheckMultiQueryEquivalence.
DifferentialOutcome CheckQuerySetLintSoundness(
    const Table& data, const std::vector<GeneratedQuery>& queries,
    uint64_t seed, QuerySetLintFuzzStats* stats = nullptr);

/// What the columnar equivalence check observed across calls
/// (aggregated by the caller so the fuzz test can assert the storage
/// machinery actually fires — blocks skipped, anchors chosen — not
/// just that it never lies).
struct ColumnarFuzzStats {
  int64_t tables_converted = 0;   ///< containers round-tripped
  int64_t queries_compared = 0;   ///< engine-config comparisons
  int64_t skip_runs = 0;          ///< runs with skipping + planner on
  int64_t blocks_skipped = 0;     ///< blocks the skip runs elided
  int64_t anchored_runs = 0;      ///< probe planner picked an anchor
  int64_t streaming_compared = 0;
};

/// Differential: the persistent columnar path (src/colstore/) against
/// the in-memory engine.  The table is converted to a columnar
/// container clustered exactly as the query demands, then:
///  - round trip: the decoded container holds the input row multiset
///    bit-identically;
///  - for every engine config (OPS interpreted/vectorized at 1 and 8
///    threads, plus naive): the columnar fast path with skipping and
///    the planner OFF returns rows and matcher stats bit-identical to
///    the in-memory run — and with both ON, identical rows and match
///    count (stats may legitimately shrink);
///  - force-read-all oracle: the no-skip run decodes every block, so a
///    match inside any skipped block would surface as a row or
///    match-count difference between the two columnar runs;
///  - accounting: a skip run never reads more bytes than the full run;
///  - streaming (interpreted + vectorized, when eligible): pushing the
///    decoded table emits the in-memory batch multiset.
DifferentialOutcome CheckColumnarEquivalence(const Table& data,
                                             const GeneratedQuery& query,
                                             uint64_t seed,
                                             ColumnarFuzzStats* stats = nullptr);

/// Metamorphic: kill-and-restore equivalence.  Splits the stream at a
/// random point k, checkpoints the executor there, destroys it, restores
/// a fresh executor from the bytes and feeds it the remaining tuples.
/// The concatenated output (pre-checkpoint emissions + post-restore
/// emissions) and the final stats must be bit-identical to an
/// uninterrupted run — at num_threads 1 and 4, with the checkpoint
/// bytes themselves identical across thread counts.  Requires a
/// streaming-eligible query (no lookahead, no LIMIT).
DifferentialOutcome CheckCheckpointRestoreEquivalence(
    const Table& data, const GeneratedQuery& query, uint64_t seed);

}  // namespace fuzz
}  // namespace sqlts

#endif  // SQLTS_TESTING_DIFFERENTIAL_H_
