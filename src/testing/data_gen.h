#ifndef SQLTS_TESTING_DATA_GEN_H_
#define SQLTS_TESTING_DATA_GEN_H_

#include <cstdint>

#include "storage/table.h"

namespace sqlts {
namespace fuzz {

/// Options for the adversarial sequence generator.
struct DataGenOptions {
  int min_clusters = 1;
  int max_clusters = 5;
  int min_rows_per_cluster = 0;
  int max_rows_per_cluster = 60;
  /// Probability that a price/vol cell is NULL (3-valued-logic stress).
  double null_prob = 0.03;
};

/// The fixed schema every fuzzed query and table uses:
///   t(sym STRING, grp INT64, seq INT64, day DATE, price DOUBLE, vol INT64)
/// sym/grp are cluster-key candidates, seq (strictly increasing across
/// the whole table) is the SEQUENCE BY key, day/price/vol are payload.
Schema FuzzSchema();

/// A random multi-cluster table in stream-arrival order: clusters are
/// interleaved, `seq` strictly increases globally (so any CLUSTER BY
/// subset — including none — yields unambiguous per-cluster order and
/// rows can be pushed to the streaming engine as-is).  Price series mix
/// adversarial regimes: constant runs, monotone ramps, random walks,
/// and ladder segments that brush the query generator's threshold
/// constants (near-miss prefixes that stress shift/next).  Deterministic
/// given `seed`.
Table RandomFuzzTable(uint64_t seed, const DataGenOptions& options = {});

}  // namespace fuzz
}  // namespace sqlts

#endif  // SQLTS_TESTING_DATA_GEN_H_
