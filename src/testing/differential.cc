#include "testing/differential.h"

#include <algorithm>
#include <random>
#include <sstream>

#include "analysis/linter.h"
#include "colstore/columnar_executor.h"
#include "colstore/probe_planner.h"
#include "colstore/writer.h"
#include "engine/executor.h"
#include "engine/stream_executor.h"
#include "engine/vectorized_eval.h"
#include "multiquery/multi_executor.h"
#include "multiquery/multi_stream.h"
#include "multiquery/queryset_lint.h"
#include "storage/csv.h"

namespace sqlts {
namespace fuzz {
namespace {

/// Rows rendered as strings (column values joined by an unprintable
/// separator) so result sets compare and diff as flat vectors.
std::vector<std::string> RowStrings(const Table& t) {
  std::vector<std::string> out;
  out.reserve(t.num_rows());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string s;
    for (int c = 0; c < t.schema().num_columns(); ++c) {
      if (c) s += '\x1f';
      s += t.at(r, c).ToString();
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string RowString(const Row& row) {
  std::string s;
  for (size_t c = 0; c < row.size(); ++c) {
    if (c) s += '\x1f';
    s += row[c].ToString();
  }
  return s;
}

std::string Printable(const std::string& s) {
  std::string out;
  for (char c : s) out += c == '\x1f' ? '|' : c;
  return out;
}

/// Describes the first difference between two row vectors.
std::string DiffRows(const std::string& name_a,
                     const std::vector<std::string>& a,
                     const std::string& name_b,
                     const std::vector<std::string>& b) {
  std::ostringstream os;
  os << name_a << " returned " << a.size() << " rows, " << name_b
     << " returned " << b.size() << " rows";
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      os << "; first difference at row " << i << ":\n  " << name_a << ": "
         << Printable(a[i]) << "\n  " << name_b << ": " << Printable(b[i]);
      return os.str();
    }
  }
  if (a.size() != b.size()) {
    const auto& longer = a.size() > b.size() ? a : b;
    os << "; first extra row: " << Printable(longer[n]);
  }
  return os.str();
}

/// Total backtracking distance of a search trace (sum over steps where
/// the input cursor moved backwards).
int64_t BacktrackDistance(const SearchTrace& trace) {
  int64_t depth = 0;
  for (size_t t = 1; t < trace.size(); ++t) {
    if (trace[t].i < trace[t - 1].i) depth += trace[t - 1].i - trace[t].i;
  }
  return depth;
}

/// Streaming helper: pushes `data` rows in arrival order, recording
/// each emitted row with the push index that produced it (push count at
/// emission time; rows emitted by Finish get push index = num_rows + 1).
struct StreamCapture {
  Status status = Status::OK();
  bool created = false;
  std::vector<std::pair<int64_t, std::string>> emissions;
  SearchStats stats;
};

StreamCapture RunStream(const Table& data, const std::string& sql,
                        int64_t prefix_rows = -1, bool vectorize = true) {
  StreamCapture cap;
  int64_t push_index = 0;
  ExecOptions stream_opt;
  stream_opt.vectorize = vectorize;
  auto exec = StreamingQueryExecutor::Create(
      sql, data.schema(),
      [&](const Row& row) {
        cap.emissions.emplace_back(push_index, RowString(row));
      },
      stream_opt);
  if (!exec.ok()) {
    cap.status = exec.status();
    return cap;
  }
  cap.created = true;
  int64_t n = prefix_rows >= 0 ? prefix_rows : data.num_rows();
  for (int64_t r = 0; r < n; ++r) {
    ++push_index;
    Status s = (*exec)->Push(data.GetRow(r));
    if (!s.ok()) {
      cap.status = s;
      (*exec)->Finish();
      return cap;
    }
  }
  ++push_index;  // Finish emissions sort after every push
  cap.status = (*exec)->Finish();
  cap.stats = (*exec)->stats();
  return cap;
}

std::vector<std::string> EmissionRows(const StreamCapture& cap) {
  std::vector<std::string> out;
  out.reserve(cap.emissions.size());
  for (const auto& [push, row] : cap.emissions) out.push_back(row);
  return out;
}

/// True when `sub` is a sub-multiset of `super` (both get sorted).
bool IsSubMultiset(std::vector<std::string> sub,
                   std::vector<std::string> super) {
  std::sort(sub.begin(), sub.end());
  std::sort(super.begin(), super.end());
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

/// Builds the failure outcome: description + self-contained repro.
DifferentialOutcome Fail(const std::string& what, uint64_t seed,
                         const std::string& sql, const Table& data) {
  DifferentialOutcome out;
  out.ok = false;
  out.failure = what + "\n" + ReproString(seed, sql, data);
  return out;
}

}  // namespace

std::string ReproString(uint64_t seed, const std::string& sql,
                        const Table& data) {
  std::ostringstream os;
  os << "=== sqlts fuzz repro (seed=" << seed << ") ===\n"
     << "--- query.sql\n"
     << sql << "\n"
     << "--- data.csv (" << data.num_rows() << " rows)\n"
     << WriteCsvString(data) << "=== end repro ===";
  return os.str();
}

DifferentialOutcome RunDifferential(const Table& data,
                                    const GeneratedQuery& query,
                                    uint64_t seed,
                                    const DifferentialOptions& options) {
  const std::string& sql = query.sql;
  auto compiled = CompileQueryText(sql, data.schema());
  if (!compiled.ok()) {
    return Fail("front end rejected a generated query: " +
                    compiled.status().ToString(),
                seed, sql, data);
  }

  // The naive oracle runs the pure interpreter (vectorize off); the OPS
  // run keeps the default vectorized tier on, so every naive-vs-OPS
  // comparison below is also an interpreter-vs-kernel differential.
  ExecOptions naive_opt;
  naive_opt.algorithm = SearchAlgorithm::kNaive;
  naive_opt.vectorize = false;
  auto naive = QueryExecutor::ExecuteCompiled(data, *compiled, naive_opt);
  auto ops = QueryExecutor::ExecuteCompiled(data, *compiled, ExecOptions{});

  if (!naive.ok() || !ops.ok()) {
    if (naive.status().code() == ops.status().code() && !naive.ok() &&
        !ops.ok()) {
      DifferentialOutcome out;  // consistent rejection on both engines
      out.both_errored = true;
      return out;
    }
    return Fail("engine error divergence: naive=" +
                    naive.status().ToString() +
                    " ops=" + ops.status().ToString(),
                seed, sql, data);
  }

  DifferentialOutcome out;
  out.naive_evaluations = naive->stats.evaluations;
  out.ops_evaluations = ops->stats.evaluations;
  out.matches = ops->stats.matches;
  out.vectorized =
      VectorizedPlanEval::Create(ops->plan, data.schema()) != nullptr;

  std::vector<std::string> naive_rows = RowStrings(naive->output);
  std::vector<std::string> ops_rows = RowStrings(ops->output);
  if (naive_rows != ops_rows) {
    return Fail("naive vs OPS divergence: " +
                    DiffRows("naive", naive_rows, "ops", ops_rows),
                seed, sql, data);
  }
  if (naive->stats.matches != ops->stats.matches) {
    return Fail("match-count divergence: naive=" +
                    std::to_string(naive->stats.matches) +
                    " ops=" + std::to_string(ops->stats.matches),
                seed, sql, data);
  }
  // The paper's core cost claim (Sec 7 metric): OPS never tests more
  // (tuple, element) pairs than naive.  LIMIT runs terminate early on
  // both sides but not after identical work, so skip the comparison.
  if (query.ast.limit == 0 &&
      ops->stats.evaluations > naive->stats.evaluations) {
    return Fail("cost regression: OPS ran " +
                    std::to_string(ops->stats.evaluations) +
                    " evaluations, naive only " +
                    std::to_string(naive->stats.evaluations),
                seed, sql, data);
  }

  // Interpreter-vs-vectorized on the same algorithm: sequential OPS
  // with kernels disabled must be bit-identical to the vectorized run —
  // rows, evaluation counts, and matches (the evaluator seam counts
  // tests before delegating, so even SearchStats must agree exactly).
  {
    ExecOptions interp_opt;
    interp_opt.vectorize = false;
    auto interp = QueryExecutor::ExecuteCompiled(data, *compiled, interp_opt);
    if (!interp.ok()) {
      return Fail("interpreted OPS errored: " + interp.status().ToString(),
                  seed, sql, data);
    }
    std::vector<std::string> rows = RowStrings(interp->output);
    if (rows != ops_rows) {
      return Fail("vectorized vs interpreted OPS divergence: " +
                      DiffRows("interpreted", rows, "vectorized", ops_rows),
                  seed, sql, data);
    }
    if (interp->stats.evaluations != ops->stats.evaluations ||
        interp->stats.matches != ops->stats.matches) {
      return Fail(
          "vectorized vs interpreted OPS stats diverged: evaluations " +
              std::to_string(interp->stats.evaluations) + " vs " +
              std::to_string(ops->stats.evaluations) + ", matches " +
              std::to_string(interp->stats.matches) + " vs " +
              std::to_string(ops->stats.matches),
          seed, sql, data);
    }
  }

  for (int threads : options.thread_counts) {
    ExecOptions opt;
    opt.num_threads = threads;
    auto sharded = QueryExecutor::ExecuteCompiled(data, *compiled, opt);
    std::string name = "sharded(" + std::to_string(threads) + ")";
    if (!sharded.ok()) {
      return Fail(name + " errored: " + sharded.status().ToString(), seed,
                  sql, data);
    }
    std::vector<std::string> rows = RowStrings(sharded->output);
    if (rows != ops_rows) {
      return Fail(name + " vs sequential OPS divergence: " +
                      DiffRows(name, rows, "ops", ops_rows),
                  seed, sql, data);
    }
    if (sharded->stats.evaluations != ops->stats.evaluations ||
        sharded->stats.matches != ops->stats.matches) {
      return Fail(name + " stats diverged: evaluations " +
                      std::to_string(sharded->stats.evaluations) + " vs " +
                      std::to_string(ops->stats.evaluations) + ", matches " +
                      std::to_string(sharded->stats.matches) + " vs " +
                      std::to_string(ops->stats.matches),
                  seed, sql, data);
    }
  }

  if (options.run_shift_only) {
    ExecOptions opt;
    opt.compile.enable_next = false;
    auto shift_only = QueryExecutor::ExecuteCompiled(data, *compiled, opt);
    if (!shift_only.ok()) {
      return Fail("shift-only errored: " + shift_only.status().ToString(),
                  seed, sql, data);
    }
    std::vector<std::string> rows = RowStrings(shift_only->output);
    if (rows != ops_rows) {
      return Fail("shift-only ablation divergence: " +
                      DiffRows("shift-only", rows, "ops", ops_rows),
                  seed, sql, data);
    }
  }

  if (options.run_streaming && !query.uses_lookahead && !query.has_limit) {
    StreamCapture cap = RunStream(data, sql);
    if (!cap.status.ok()) {
      return Fail("streaming errored: " + cap.status.ToString(), seed, sql,
                  data);
    }
    out.streaming_ran = true;
    std::vector<std::string> stream_rows = EmissionRows(cap);
    std::vector<std::string> ops_sorted = ops_rows;
    std::sort(stream_rows.begin(), stream_rows.end());
    std::sort(ops_sorted.begin(), ops_sorted.end());
    if (stream_rows != ops_sorted) {
      return Fail("streaming vs batch divergence: " +
                      DiffRows("stream(sorted)", stream_rows, "ops(sorted)",
                               ops_sorted),
                  seed, sql, data);
    }
    if (cap.stats.matches != ops->stats.matches) {
      return Fail("streaming match-count divergence: stream=" +
                      std::to_string(cap.stats.matches) +
                      " batch=" + std::to_string(ops->stats.matches),
                  seed, sql, data);
    }
    // Interpreter-vs-vectorized under incremental views: the interpreted
    // stream must emit the identical sequence (same rows, at the same
    // push indices) as the vectorized stream above.
    StreamCapture interp_cap =
        RunStream(data, sql, /*prefix_rows=*/-1, /*vectorize=*/false);
    if (!interp_cap.status.ok()) {
      return Fail("interpreted streaming errored: " +
                      interp_cap.status.ToString(),
                  seed, sql, data);
    }
    if (interp_cap.emissions != cap.emissions ||
        interp_cap.stats.evaluations != cap.stats.evaluations) {
      return Fail("vectorized vs interpreted streaming divergence: " +
                      DiffRows("interpreted", EmissionRows(interp_cap),
                               "vectorized", EmissionRows(cap)) +
                      "; evaluations " +
                      std::to_string(interp_cap.stats.evaluations) + " vs " +
                      std::to_string(cap.stats.evaluations),
                  seed, sql, data);
    }
  }

  if (data.num_rows() <= options.trace_rows_limit &&
      query.ast.limit == 0) {
    ExecOptions topt;
    topt.collect_trace = true;
    auto ops_t = QueryExecutor::ExecuteCompiled(data, *compiled, topt);
    topt.algorithm = SearchAlgorithm::kNaive;
    auto naive_t = QueryExecutor::ExecuteCompiled(data, *compiled, topt);
    if (!ops_t.ok() || !naive_t.ok()) {
      return Fail("trace run errored", seed, sql, data);
    }
    out.traced = true;
    if (static_cast<int64_t>(ops_t->trace.size()) !=
            ops_t->stats.evaluations ||
        static_cast<int64_t>(naive_t->trace.size()) !=
            naive_t->stats.evaluations) {
      return Fail("trace length != evaluation count", seed, sql, data);
    }
    // Figure-5 invariant: OPS's total backtracking distance never
    // exceeds naive's.  (Traces interleave clusters identically on both
    // engines, so cross-cluster cursor resets cancel out.)
    int64_t ops_bt = BacktrackDistance(ops_t->trace);
    int64_t naive_bt = BacktrackDistance(naive_t->trace);
    if (ops_bt > naive_bt) {
      return Fail("OPS backtracked further than naive: " +
                      std::to_string(ops_bt) + " vs " +
                      std::to_string(naive_bt),
                  seed, sql, data);
    }
    // Proven-prefix bound (star-free, single cluster — the trace's
    // input positions reset at cluster boundaries, so the bound is only
    // checkable when one cluster produced the whole trace): a star-free
    // candidate window is at most m wide and its start never moves
    // backwards, so the OPS cursor can never retreat more than m-1
    // positions behind the furthest position it has reached.
    if (!ops_t->plan.has_star && ops_t->num_clusters == 1) {
      int64_t hi = -1;
      for (const TracePoint& p : ops_t->trace) {
        if (p.i < hi - (ops_t->plan.m - 1)) {
          return Fail("OPS cursor retreated past the proven bound: "
                      "tested position " +
                          std::to_string(p.i) + " after reaching " +
                          std::to_string(hi) + " with m=" +
                          std::to_string(ops_t->plan.m),
                      seed, sql, data);
        }
        hi = std::max(hi, p.i);
      }
    }
  }

  return out;
}

DifferentialOutcome CheckClusterPermutationInvariance(
    const Table& data, const GeneratedQuery& query, uint64_t seed) {
  if (query.has_limit) return DifferentialOutcome{};  // order-dependent
  auto base = QueryExecutor::Execute(data, query.sql);
  if (!base.ok()) return DifferentialOutcome{};  // covered elsewhere

  std::vector<int64_t> order(data.num_rows());
  for (int64_t i = 0; i < data.num_rows(); ++i) order[i] = i;
  std::mt19937_64 rng(seed ^ 0xabcdef12345ULL);
  std::shuffle(order.begin(), order.end(), rng);
  Table shuffled(data.schema());
  for (int64_t r : order) {
    SQLTS_CHECK_OK(shuffled.AppendRow(data.GetRow(r)));
  }

  auto permuted = QueryExecutor::Execute(shuffled, query.sql);
  if (!permuted.ok()) {
    return Fail("permuted input errored: " + permuted.status().ToString(),
                seed, query.sql, shuffled);
  }
  std::vector<std::string> a = RowStrings(base->output);
  std::vector<std::string> b = RowStrings(permuted->output);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  if (a != b) {
    return Fail("row-permutation changed the result multiset: " +
                    DiffRows("original(sorted)", a, "permuted(sorted)", b),
                seed, query.sql, shuffled);
  }
  return DifferentialOutcome{};
}

DifferentialOutcome CheckTautologyRewrite(const Table& data,
                                          const GeneratedQuery& query,
                                          uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x7a7a7a7aULL);
  // (V.seq < C OR V.seq >= C) on a random element; seq is non-NULL by
  // construction, so the disjunction is a genuine tautology even under
  // 3-valued logic.
  int elem = static_cast<int>(rng() % query.ast.pattern.size());
  int64_t c = static_cast<int64_t>(rng() % 200);
  ColumnRef ref;
  ref.var = query.ast.pattern[elem].name;
  ref.column = "seq";
  ExprPtr taut =
      MakeOr(MakeCompare(CmpOp::kLt, MakeColumnRef(ref),
                         MakeLiteral(Value::Int64(c))),
             MakeCompare(CmpOp::kGe, MakeColumnRef(ref),
                         MakeLiteral(Value::Int64(c))));
  ParsedQuery rewritten = query.ast;
  rewritten.where = rewritten.where
                        ? MakeAnd(rewritten.where, std::move(taut))
                        : std::move(taut);
  std::string sql2 = rewritten.ToString();

  auto base = QueryExecutor::Execute(data, query.sql);
  auto with_taut = QueryExecutor::Execute(data, sql2);
  if (!base.ok() || !with_taut.ok()) {
    if (base.status().code() == with_taut.status().code()) {
      DifferentialOutcome out;
      out.both_errored = true;
      return out;
    }
    return Fail("tautology rewrite changed the error: base=" +
                    base.status().ToString() +
                    " rewritten=" + with_taut.status().ToString(),
                seed, sql2, data);
  }
  std::vector<std::string> a = RowStrings(base->output);
  std::vector<std::string> b = RowStrings(with_taut->output);
  if (a != b) {
    return Fail("tautology conjunct changed the result: " +
                    DiffRows("original", a, "rewritten", b) +
                    "\noriginal query:\n" + query.sql,
                seed, sql2, data);
  }
  return DifferentialOutcome{};
}

DifferentialOutcome CheckStreamPrefixConsistency(
    const Table& data, const GeneratedQuery& query, uint64_t seed) {
  if (query.uses_lookahead || query.has_limit) {
    return DifferentialOutcome{};
  }
  std::mt19937_64 rng(seed ^ 0x5eed5eedULL);
  int64_t k = data.num_rows() == 0
                  ? 0
                  : static_cast<int64_t>(rng() % (data.num_rows() + 1));

  Table prefix(data.schema());
  for (int64_t r = 0; r < k; ++r) {
    SQLTS_CHECK_OK(prefix.AppendRow(data.GetRow(r)));
  }
  auto batch = QueryExecutor::Execute(prefix, query.sql);
  if (!batch.ok()) return DifferentialOutcome{};  // covered elsewhere
  std::vector<std::string> batch_rows = RowStrings(batch->output);

  // Re-running streaming on exactly the prefix must reproduce the batch
  // result on the prefix.
  StreamCapture on_prefix = RunStream(data, query.sql, k);
  if (!on_prefix.status.ok()) {
    return Fail("stream-on-prefix errored: " + on_prefix.status.ToString(),
                seed, query.sql, prefix);
  }
  std::vector<std::string> prefix_rows = EmissionRows(on_prefix);
  std::vector<std::string> batch_sorted = batch_rows;
  std::sort(prefix_rows.begin(), prefix_rows.end());
  std::sort(batch_sorted.begin(), batch_sorted.end());
  if (prefix_rows != batch_sorted) {
    return Fail(
        "stream on prefix (k=" + std::to_string(k) +
            ") disagrees with batch on prefix: " +
            DiffRows("stream(sorted)", prefix_rows, "batch(sorted)",
                     batch_sorted),
        seed, query.sql, prefix);
  }

  // Causality: everything the full stream emitted within the first k
  // pushes depends only on those k tuples, so it must be contained in
  // the batch result over them.
  StreamCapture full = RunStream(data, query.sql);
  if (!full.status.ok()) {
    return Fail("full stream errored: " + full.status.ToString(), seed,
                query.sql, data);
  }
  std::vector<std::string> early;
  for (const auto& [push, row] : full.emissions) {
    if (push <= k) early.push_back(row);
  }
  if (!IsSubMultiset(early, batch_rows)) {
    return Fail("stream emitted a row within the first " +
                    std::to_string(k) +
                    " pushes that batch-on-prefix does not contain",
                seed, query.sql, data);
  }
  return DifferentialOutcome{};
}

DifferentialOutcome CheckCheckpointRestoreEquivalence(
    const Table& data, const GeneratedQuery& query, uint64_t seed) {
  if (query.uses_lookahead || query.has_limit) {
    return DifferentialOutcome{};
  }
  // Oracle: one uninterrupted single-threaded run.
  StreamCapture oracle = RunStream(data, query.sql);
  if (!oracle.created || !oracle.status.ok()) {
    return DifferentialOutcome{};  // rejection/error covered elsewhere
  }
  std::vector<std::string> oracle_rows = EmissionRows(oracle);

  std::mt19937_64 rng(seed ^ 0xc4ec9017ULL);
  const int64_t k = data.num_rows() == 0
                        ? 0
                        : static_cast<int64_t>(rng() % (data.num_rows() + 1));

  std::string bytes_at_one_thread;
  for (int threads : {1, 4}) {
    ExecOptions opt;
    opt.num_threads = threads;
    const std::string name =
        "checkpoint(k=" + std::to_string(k) +
        ", threads=" + std::to_string(threads) + ")";

    // First half: push k tuples, checkpoint, kill the executor.
    std::vector<std::string> combined;
    std::string bytes;
    {
      auto exec = StreamingQueryExecutor::Create(
          query.sql, data.schema(),
          [&](const Row& row) { combined.push_back(RowString(row)); }, opt);
      if (!exec.ok()) {
        return Fail(name + " creation failed: " + exec.status().ToString(),
                    seed, query.sql, data);
      }
      for (int64_t r = 0; r < k; ++r) {
        Status s = (*exec)->Push(data.GetRow(r));
        if (!s.ok()) {
          return Fail(name + " push failed: " + s.ToString(), seed,
                      query.sql, data);
        }
      }
      Status cs = (*exec)->Checkpoint(&bytes);
      if (!cs.ok()) {
        return Fail(name + " failed: " + cs.ToString(), seed, query.sql,
                    data);
      }
    }  // the executor dies here, mid-stream, without Finish

    if (threads == 1) {
      bytes_at_one_thread = bytes;
    } else if (bytes != bytes_at_one_thread) {
      return Fail(name + " bytes differ from the single-threaded "
                         "checkpoint at the same split point",
                  seed, query.sql, data);
    }

    // Second half: a fresh executor restored from the bytes consumes
    // the remaining tuples.
    auto restored = StreamingQueryExecutor::Create(
        query.sql, data.schema(),
        [&](const Row& row) { combined.push_back(RowString(row)); }, opt);
    if (!restored.ok()) {
      return Fail(name + " re-creation failed: " +
                      restored.status().ToString(),
                  seed, query.sql, data);
    }
    Status rs = (*restored)->Restore(bytes);
    if (!rs.ok()) {
      return Fail(name + " restore failed: " + rs.ToString(), seed,
                  query.sql, data);
    }
    if ((*restored)->rows_consumed() != k) {
      return Fail(name + " restored rows_consumed()=" +
                      std::to_string((*restored)->rows_consumed()) +
                      ", expected " + std::to_string(k),
                  seed, query.sql, data);
    }
    for (int64_t r = k; r < data.num_rows(); ++r) {
      Status s = (*restored)->Push(data.GetRow(r));
      if (!s.ok()) {
        return Fail(name + " post-restore push failed: " + s.ToString(),
                    seed, query.sql, data);
      }
    }
    Status fs = (*restored)->Finish();
    if (!fs.ok()) {
      return Fail(name + " post-restore finish failed: " + fs.ToString(),
                  seed, query.sql, data);
    }

    if (combined != oracle_rows) {
      return Fail(name + " output differs from the uninterrupted run: " +
                      DiffRows("kill+restore", combined, "oracle",
                               oracle_rows),
                  seed, query.sql, data);
    }
    SearchStats st = (*restored)->stats();
    if (st.evaluations != oracle.stats.evaluations ||
        st.presat_skips != oracle.stats.presat_skips ||
        st.jumps != oracle.stats.jumps ||
        st.matches != oracle.stats.matches) {
      return Fail(name + " stats differ from the uninterrupted run: "
                         "evaluations " +
                      std::to_string(st.evaluations) + " vs " +
                      std::to_string(oracle.stats.evaluations) +
                      ", matches " + std::to_string(st.matches) + " vs " +
                      std::to_string(oracle.stats.matches),
                  seed, query.sql, data);
    }
  }
  DifferentialOutcome out;
  out.streaming_ran = true;
  out.matches = oracle.stats.matches;
  return out;
}

DifferentialOutcome CheckMultiQueryEquivalence(
    const Table& data, const std::vector<GeneratedQuery>& queries,
    uint64_t seed, MultiQueryFuzzStats* stats) {
  // Oracle: each query alone with default options.  Queries the
  // single-query engine rejects are dropped up front — the set engine
  // fails the whole set on any bad member, so fuzzing compares the
  // accepted subset.
  std::vector<std::string> sqls;
  std::vector<std::vector<std::string>> solo_rows;
  std::vector<int64_t> solo_matches;
  std::vector<bool> stream_eligible;
  for (const GeneratedQuery& q : queries) {
    auto solo = QueryExecutor::Execute(data, q.sql);
    if (!solo.ok()) continue;
    sqls.push_back(q.sql);
    solo_rows.push_back(RowStrings(solo->output));
    solo_matches.push_back(solo->stats.matches);
    stream_eligible.push_back(!q.uses_lookahead && !q.has_limit);
  }
  if (sqls.size() < 2) {
    DifferentialOutcome out;
    out.both_errored = true;  // no set to share; counted, not compared
    return out;
  }
  std::string joined;
  for (const std::string& s : sqls) {
    joined += s;
    joined += ";\n";
  }

  DifferentialOutcome out;
  for (int threads : {1, 8}) {
    ExecOptions opt;
    opt.num_threads = threads;
    const std::string name =
        "multiquery(threads=" + std::to_string(threads) + ")";
    auto set = MultiQueryExecutor::Execute(data, sqls, opt);
    if (!set.ok()) {
      return Fail(name + " rejected a set of individually accepted "
                         "queries: " +
                      set.status().ToString(),
                  seed, joined, data);
    }
    if (set->per_query.size() != sqls.size()) {
      return Fail(name + " returned " +
                      std::to_string(set->per_query.size()) +
                      " results for " + std::to_string(sqls.size()) +
                      " queries",
                  seed, joined, data);
    }
    for (size_t i = 0; i < sqls.size(); ++i) {
      std::vector<std::string> rows = RowStrings(set->per_query[i].output);
      if (rows != solo_rows[i]) {
        return Fail(name + " query #" + std::to_string(i) +
                        " diverged from its independent run: " +
                        DiffRows("shared", rows, "independent",
                                 solo_rows[i]) +
                        "\nquery:\n" + sqls[i],
                    seed, joined, data);
      }
      if (set->per_query[i].stats.matches != solo_matches[i]) {
        return Fail(name + " query #" + std::to_string(i) +
                        " match count " +
                        std::to_string(set->per_query[i].stats.matches) +
                        " != independent " +
                        std::to_string(solo_matches[i]),
                    seed, joined, data);
      }
    }
    const MultiQueryStats& ms = set->stats;
    if (ms.shared_lookups != ms.cache_hits + ms.shared_evals) {
      return Fail(name + " counter identity broken: lookups=" +
                      std::to_string(ms.shared_lookups) + " hits=" +
                      std::to_string(ms.cache_hits) + " evals=" +
                      std::to_string(ms.shared_evals),
                  seed, joined, data);
    }
    if (ms.inferred_hits > ms.cache_hits) {
      return Fail(name + " inferred hits exceed cache hits: " +
                      std::to_string(ms.inferred_hits) + " > " +
                      std::to_string(ms.cache_hits),
                  seed, joined, data);
    }
    if (threads == 1) {
      for (int64_t m : solo_matches) out.matches += m;
      if (stats != nullptr) {
        ++stats->sets;
        stats->queries_compared += static_cast<int64_t>(sqls.size());
        stats->cache_hits += ms.cache_hits;
        stats->predicate_merges +=
            ms.catalog.structural_merges + ms.catalog.semantic_merges;
        stats->subsumption_edges += ms.catalog.subsumption_edges;
      }
    }
  }

  // Streaming: the eligible subset registered on one shared executor.
  std::vector<int> eligible;
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (stream_eligible[i]) eligible.push_back(static_cast<int>(i));
  }
  if (eligible.empty()) return out;

  std::vector<std::vector<std::string>> uninterrupted(eligible.size());
  {
    auto exec = MultiStreamExecutor::Create(data.schema());
    if (!exec.ok()) {
      return Fail("shared stream creation failed: " +
                      exec.status().ToString(),
                  seed, joined, data);
    }
    for (size_t e = 0; e < eligible.size(); ++e) {
      auto id = (*exec)->AddQuery(
          sqls[eligible[e]], [&uninterrupted, e](const Row& row) {
            uninterrupted[e].push_back(RowString(row));
          });
      if (!id.ok()) {
        return Fail("shared stream rejected an eligible query: " +
                        id.status().ToString() + "\nquery:\n" +
                        sqls[eligible[e]],
                    seed, joined, data);
      }
    }
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      Status s = (*exec)->Push(data.GetRow(r));
      if (!s.ok()) {
        return Fail("shared stream push failed: " + s.ToString(), seed,
                    joined, data);
      }
    }
    Status f = (*exec)->Finish();
    if (!f.ok()) {
      return Fail("shared stream finish failed: " + f.ToString(), seed,
                  joined, data);
    }
  }
  for (size_t e = 0; e < eligible.size(); ++e) {
    std::vector<std::string> got = uninterrupted[e];
    std::vector<std::string> want = solo_rows[eligible[e]];
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      return Fail("shared stream query #" +
                      std::to_string(eligible[e]) +
                      " diverged from batch (sorted): " +
                      DiffRows("stream", got, "batch", want) +
                      "\nquery:\n" + sqls[eligible[e]],
                  seed, joined, data);
    }
  }
  out.streaming_ran = true;
  if (stats != nullptr) {
    stats->streaming_compared += static_cast<int64_t>(eligible.size());
  }

  // Kill the whole registered set at a random push index; a fresh
  // instance restored from the bytes must reproduce the uninterrupted
  // emissions exactly.
  std::mt19937_64 rng(seed ^ 0x3317ab5dULL);
  const int64_t k = data.num_rows() == 0
                        ? 0
                        : static_cast<int64_t>(rng() % (data.num_rows() + 1));
  const std::string name = "multistream checkpoint(k=" + std::to_string(k) + ")";
  std::vector<std::vector<std::string>> combined(eligible.size());
  std::string bytes;
  {
    auto exec = MultiStreamExecutor::Create(data.schema());
    if (!exec.ok()) {
      return Fail(name + " creation failed: " + exec.status().ToString(),
                  seed, joined, data);
    }
    for (size_t e = 0; e < eligible.size(); ++e) {
      auto id = (*exec)->AddQuery(sqls[eligible[e]],
                                  [&combined, e](const Row& row) {
                                    combined[e].push_back(RowString(row));
                                  });
      if (!id.ok()) {
        return Fail(name + " registration failed: " + id.status().ToString(),
                    seed, joined, data);
      }
    }
    for (int64_t r = 0; r < k; ++r) {
      Status s = (*exec)->Push(data.GetRow(r));
      if (!s.ok()) {
        return Fail(name + " push failed: " + s.ToString(), seed, joined,
                    data);
      }
    }
    Status cs = (*exec)->Checkpoint(&bytes);
    if (!cs.ok()) {
      return Fail(name + " failed: " + cs.ToString(), seed, joined, data);
    }
  }  // the executor dies here, mid-stream, without Finish

  auto restored = MultiStreamExecutor::Create(data.schema());
  if (!restored.ok()) {
    return Fail(name + " re-creation failed: " + restored.status().ToString(),
                seed, joined, data);
  }
  Status rs = (*restored)
                  ->Restore(bytes, [&combined](int index, const std::string&) {
                    return [&combined, index](const Row& row) {
                      combined[index].push_back(RowString(row));
                    };
                  });
  if (!rs.ok()) {
    return Fail(name + " restore failed: " + rs.ToString(), seed, joined,
                data);
  }
  if ((*restored)->rows_consumed() != k) {
    return Fail(name + " restored rows_consumed()=" +
                    std::to_string((*restored)->rows_consumed()) +
                    ", expected " + std::to_string(k),
                seed, joined, data);
  }
  for (int64_t r = k; r < data.num_rows(); ++r) {
    Status s = (*restored)->Push(data.GetRow(r));
    if (!s.ok()) {
      return Fail(name + " post-restore push failed: " + s.ToString(), seed,
                  joined, data);
    }
  }
  Status fs = (*restored)->Finish();
  if (!fs.ok()) {
    return Fail(name + " post-restore finish failed: " + fs.ToString(), seed,
                joined, data);
  }
  for (size_t e = 0; e < eligible.size(); ++e) {
    if (combined[e] != uninterrupted[e]) {
      return Fail(name + " query #" + std::to_string(eligible[e]) +
                      " differs from the uninterrupted shared run: " +
                      DiffRows("kill+restore", combined[e], "uninterrupted",
                               uninterrupted[e]),
                  seed, joined, data);
    }
  }
  return out;
}

DifferentialOutcome CheckLintSoundness(const Table& data,
                                       const GeneratedQuery& query,
                                       uint64_t seed,
                                       LintFuzzStats* stats) {
  auto compiled = CompileQueryText(query.sql, data.schema());
  if (!compiled.ok()) return DifferentialOutcome{};  // covered elsewhere
  LintResult lint = LintQuery(*compiled);
  if (stats != nullptr) {
    ++stats->queries;
    if (lint.has_errors()) ++stats->error_queries;
    if (lint.has_warnings()) ++stats->warnings;
  }

  // E-level soundness: "provably empty" must mean the naive oracle
  // returns zero rows.  A single row is a counterexample to a theorem
  // the GSW reasoning claimed — the worst bug class this subsystem can
  // have, hence the self-contained repro.
  if (lint.has_errors()) {
    ExecOptions naive_opt;
    naive_opt.algorithm = SearchAlgorithm::kNaive;
    auto naive = QueryExecutor::ExecuteCompiled(data, *compiled, naive_opt);
    if (naive.ok() && naive->output.num_rows() > 0) {
      return Fail("lint soundness counterexample: analyzer proved the "
                      "query empty but naive returned " +
                      std::to_string(naive->output.num_rows()) +
                      " row(s); diagnostics:\n" +
                      RenderDiagnostics(lint.diagnostics, query.sql),
                  seed, query.sql, data);
    }
  }

  // W-level drop test: a conjunct flagged W001 (implied by siblings) or
  // W002 (always true) is erased — one at a time, against the original
  // query — and the re-execution must be bit-identical.
  auto base = QueryExecutor::ExecuteCompiled(data, *compiled, ExecOptions{});
  for (const Diagnostic& d : lint.diagnostics) {
    if (d.code != "W001" && d.code != "W002") continue;
    if (d.element < 1 || d.conjunct < 0) continue;
    CompiledQuery modified = *compiled;
    PatternElement& el = modified.elements[d.element - 1];
    if (d.conjunct >= static_cast<int>(el.conjuncts.size())) continue;
    el.conjuncts.erase(el.conjuncts.begin() + d.conjunct);
    el.predicate = nullptr;
    for (const ExprPtr& c : el.conjuncts) {
      el.predicate = el.predicate ? MakeAnd(el.predicate, c) : c;
    }
    auto dropped =
        QueryExecutor::ExecuteCompiled(data, modified, ExecOptions{});
    if (base.ok() != dropped.ok()) {
      return Fail("dropping a " + d.code +
                      " conjunct changed the error: base=" +
                      base.status().ToString() +
                      " dropped=" + dropped.status().ToString() +
                      "\ndiagnostic: " + d.message,
                  seed, query.sql, data);
    }
    if (!base.ok()) continue;
    std::vector<std::string> a = RowStrings(base->output);
    std::vector<std::string> b = RowStrings(dropped->output);
    if (a != b) {
      return Fail("dropping a " + d.code +
                      " conjunct changed the result: " +
                      DiffRows("original", a, "dropped", b) +
                      "\ndiagnostic: " + d.message,
                  seed, query.sql, data);
    }
    if (stats != nullptr) ++stats->drops_tested;
  }
  return DifferentialOutcome{};
}

DifferentialOutcome CheckQuerySetLintSoundness(
    const Table& data, const std::vector<GeneratedQuery>& queries,
    uint64_t seed, QuerySetLintFuzzStats* stats) {
  // Oracle: each query alone.  Members the engine rejects are dropped
  // up front, mirroring CheckMultiQueryEquivalence — a W007/W008
  // verdict is a claim about executable queries.
  std::vector<std::string> sqls;
  std::vector<std::vector<std::string>> solo_rows;
  for (const GeneratedQuery& q : queries) {
    auto solo = QueryExecutor::Execute(data, q.sql);
    if (!solo.ok()) continue;
    sqls.push_back(q.sql);
    solo_rows.push_back(RowStrings(solo->output));
  }
  if (sqls.size() < 2) {
    DifferentialOutcome out;
    out.both_errored = true;  // nothing to cross-lint; counted, not checked
    return out;
  }
  std::string joined;
  for (const std::string& s : sqls) {
    joined += s;
    joined += ";\n";
  }

  auto lint = LintQuerySet(data.schema(), sqls);
  if (!lint.ok()) {
    return Fail("queryset lint rejected a set of individually accepted "
                    "queries: " +
                    lint.status().ToString(),
                seed, joined, data);
  }
  if (stats != nullptr) ++stats->sets;

  for (const QuerySetDiagnostic& d : lint->diagnostics) {
    if (d.query < 1 || d.query > static_cast<int>(sqls.size()) ||
        d.other < 1 || d.other > static_cast<int>(sqls.size())) {
      return Fail("queryset lint emitted out-of-range indexes: " + d.code +
                      " query=" + std::to_string(d.query) +
                      " other=" + std::to_string(d.other),
                  seed, joined, data);
    }
    const std::vector<std::string>& flagged = solo_rows[d.query - 1];
    const std::vector<std::string>& sibling = solo_rows[d.other - 1];
    if (d.code == "W007") {
      // Duplicate claim: bit-identical rows, in order.
      if (flagged != sibling) {
        return Fail("W007 soundness counterexample: query #" +
                        std::to_string(d.query) + " and query #" +
                        std::to_string(d.other) +
                        " were called duplicates but differ: " +
                        DiffRows("flagged", flagged, "sibling", sibling),
                    seed, joined, data);
      }
      if (stats != nullptr) ++stats->w007_pairs;
    } else if (d.code == "W008") {
      // Subsumption claim: the flagged query's rows are a sub-multiset
      // of the sibling's.
      std::vector<std::string> a = flagged;
      std::vector<std::string> b = sibling;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (!std::includes(b.begin(), b.end(), a.begin(), a.end())) {
        return Fail("W008 soundness counterexample: query #" +
                        std::to_string(d.query) +
                        " was called subsumed by query #" +
                        std::to_string(d.other) +
                        " but emits rows the sibling lacks: " +
                        DiffRows("flagged (sorted)", a, "sibling (sorted)",
                                 b),
                    seed, joined, data);
      }
      if (stats != nullptr) ++stats->w008_pairs;
    } else {
      return Fail("queryset lint emitted unknown code " + d.code, seed,
                  joined, data);
    }
  }
  return DifferentialOutcome{};
}

DifferentialOutcome CheckColumnarEquivalence(const Table& data,
                                             const GeneratedQuery& query,
                                             uint64_t seed,
                                             ColumnarFuzzStats* stats) {
  ColumnarFuzzStats local;
  if (stats == nullptr) stats = &local;
  const std::string& sql = query.sql;
  auto compiled = CompileQueryText(sql, data.schema());
  if (!compiled.ok()) {
    DifferentialOutcome out;
    out.both_errored = true;
    return out;
  }

  // Convert, clustered exactly as the query demands so the fast path
  // engages; blooms on (the default).
  ColumnarWriterOptions wopt;
  wopt.cluster_by = compiled->cluster_by;
  wopt.sequence_by = compiled->sequence_by;
  auto bytes = ColumnarWriter::WriteBytes(data, wopt);
  if (!bytes.ok()) {
    return Fail("columnar conversion failed: " + bytes.status().ToString(),
                seed, sql, data);
  }
  auto reader = ColumnarReader::OpenBytes(std::move(*bytes));
  if (!reader.ok()) {
    return Fail("columnar reopen failed: " + reader.status().ToString(),
                seed, sql, data);
  }
  ++stats->tables_converted;

  // Round trip: the container holds exactly the input rows.  The
  // writer re-orders cluster-major, so compare as multisets.
  auto decoded = (*reader)->ReadTable();
  if (!decoded.ok()) {
    return Fail("columnar decode failed: " + decoded.status().ToString(),
                seed, sql, data);
  }
  {
    std::vector<std::string> a = RowStrings(data);
    std::vector<std::string> b = RowStrings(*decoded);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) {
      return Fail("columnar round trip changed the row multiset: " +
                      DiffRows("input (sorted)", a, "decoded (sorted)", b),
                  seed, sql, data);
    }
  }
  if (ProbePlanner::Plan(*compiled, (*reader)->footer()).anchor_element >=
      0) {
    ++stats->anchored_runs;
  }

  struct Config {
    const char* name;
    int threads;
    bool vectorize;
    SearchAlgorithm alg;
  };
  const Config kConfigs[] = {
      {"ops-vectorized-1t", 1, true, SearchAlgorithm::kOps},
      {"ops-interpreted-1t", 1, false, SearchAlgorithm::kOps},
      {"ops-vectorized-8t", 8, true, SearchAlgorithm::kOps},
      {"ops-interpreted-8t", 8, false, SearchAlgorithm::kOps},
      {"naive-interpreted-1t", 1, false, SearchAlgorithm::kNaive},
  };
  bool compared_any = false;
  for (const Config& cfg : kConfigs) {
    ExecOptions opt;
    opt.algorithm = cfg.alg;
    opt.num_threads = cfg.threads;
    opt.vectorize = cfg.vectorize;
    auto ref = QueryExecutor::ExecuteCompiled(data, *compiled, opt);

    ColumnarExecOptions plain;
    plain.exec = opt;
    plain.skipping = false;
    plain.planner = false;
    auto col = ColumnarExecutor::Execute(**reader, sql, plain);
    if (!ref.ok() || !col.ok()) {
      if (!ref.ok() && !col.ok() &&
          ref.status().code() == col.status().code()) {
        continue;  // consistent rejection on both paths
      }
      return Fail(std::string("columnar error divergence (") + cfg.name +
                      "): ref=" + ref.status().ToString() +
                      " columnar=" + col.status().ToString(),
                  seed, sql, data);
    }
    ++stats->queries_compared;
    compared_any = true;

    std::vector<std::string> ref_rows = RowStrings(ref->output);
    std::vector<std::string> col_rows = RowStrings(col->output);
    if (ref_rows != col_rows) {
      return Fail(std::string("columnar fast path diverged (") + cfg.name +
                      "): " + DiffRows("in-memory", ref_rows, "columnar",
                                       col_rows),
                  seed, sql, data);
    }
    // Stats contract: with skipping and the planner off, the matcher
    // does identical work over identical segments.
    if (col->stats.matches != ref->stats.matches ||
        col->stats.evaluations != ref->stats.evaluations ||
        col->stats.presat_skips != ref->stats.presat_skips ||
        col->stats.jumps != ref->stats.jumps) {
      return Fail(
          std::string("columnar stats divergence (") + cfg.name +
              "): matches " + std::to_string(col->stats.matches) + " vs " +
              std::to_string(ref->stats.matches) + ", evaluations " +
              std::to_string(col->stats.evaluations) + " vs " +
              std::to_string(ref->stats.evaluations),
          seed, sql, data);
    }

    // Skipping + planner on: rows and match count are invariants (the
    // planner only reorders commutative conjuncts and prefilters
    // doomed starts; skipping only elides refuted blocks).  Because
    // the no-skip run above decoded *every* block and matched the
    // in-memory engine bit-for-bit, it is the force-read-all oracle: a
    // match hiding in any skipped block would show up right here as a
    // row or match-count difference.
    ColumnarExecOptions skipping;
    skipping.exec = opt;
    auto skip = ColumnarExecutor::Execute(**reader, sql, skipping);
    if (!skip.ok()) {
      return Fail(std::string("columnar skipping run failed (") + cfg.name +
                      "): " + skip.status().ToString(),
                  seed, sql, data);
    }
    std::vector<std::string> skip_rows = RowStrings(skip->output);
    if (skip_rows != ref_rows) {
      return Fail(std::string("zone skipping / probe planner changed the "
                              "result (") +
                      cfg.name + "): " +
                      DiffRows("force-read-all", ref_rows, "skipping",
                               skip_rows),
                  seed, sql, data);
    }
    if (skip->stats.matches != ref->stats.matches) {
      return Fail(std::string("zone skipping changed the match count (") +
                      cfg.name +
                      "): " + std::to_string(skip->stats.matches) + " vs " +
                      std::to_string(ref->stats.matches),
                  seed, sql, data);
    }
    if (skip->stats.blocks_skipped < 0 ||
        skip->stats.blocks_skipped > skip->stats.blocks_total ||
        skip->stats.bytes_read > col->stats.bytes_read) {
      return Fail(std::string("columnar skip accounting broken (") +
                      cfg.name + "): skipped " +
                      std::to_string(skip->stats.blocks_skipped) + "/" +
                      std::to_string(skip->stats.blocks_total) +
                      " blocks, read " +
                      std::to_string(skip->stats.bytes_read) + " vs " +
                      std::to_string(col->stats.bytes_read) + " bytes",
                  seed, sql, data);
    }
    ++stats->skip_runs;
    stats->blocks_skipped += skip->stats.blocks_skipped;
  }

  // Streaming legs (interpreted + vectorized): pushing the decoded
  // table — the engine's canonical cluster-major order — must emit the
  // in-memory batch multiset.  Ineligible queries (lookahead, LIMIT)
  // must be rejected identically on both sides.
  if (compared_any) {
    for (bool vectorize : {false, true}) {
      StreamCapture ref_cap = RunStream(data, sql, -1, vectorize);
      StreamCapture col_cap = RunStream(*decoded, sql, -1, vectorize);
      if (ref_cap.created != col_cap.created) {
        return Fail("stream creation divergence over the columnar decode",
                    seed, sql, data);
      }
      if (!ref_cap.created) break;
      if (!ref_cap.status.ok() || !col_cap.status.ok()) {
        if (ref_cap.status.code() == col_cap.status.code()) break;
        return Fail("stream error divergence over the columnar decode: " +
                        ref_cap.status.ToString() + " vs " +
                        col_cap.status.ToString(),
                    seed, sql, data);
      }
      std::vector<std::string> a = EmissionRows(ref_cap);
      std::vector<std::string> b = EmissionRows(col_cap);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) {
        return Fail("streaming over the columnar decode diverged: " +
                        DiffRows("input order (sorted)", a,
                                 "columnar order (sorted)", b),
                    seed, sql, data);
      }
      ++stats->streaming_compared;
    }
  }

  return DifferentialOutcome{};
}

}  // namespace fuzz
}  // namespace sqlts
