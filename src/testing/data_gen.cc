#include "testing/data_gen.h"

#include <algorithm>
#include <random>
#include <vector>

#include "common/logging.h"
#include "types/date.h"

namespace sqlts {
namespace fuzz {
namespace {

/// Per-cluster price process state.  Regimes are what make the data
/// adversarial: constant runs defeat strict predicates, ramps build the
/// long monotone stretches where naive search goes quadratic, ladders
/// walk the exact constants the query generator compares against (so
/// near-miss prefixes abound), and walks provide background noise.
struct ClusterState {
  std::string sym;
  int64_t grp = 0;
  Date day = Date(10000);
  double price = 50.0;
  int64_t vol = 10;
  int rows_left = 0;
  int regime = 0;       // 0 const, 1 up, 2 down, 3 walk, 4 ladder
  int regime_left = 0;
  double step = 0.25;
  int vol_run = 0;
};

/// The threshold constants the query generator draws from; ladder
/// regimes snap onto these so equality and boundary predicates fire.
constexpr double kAnchors[] = {40, 45, 48, 50, 52, 55, 60};

double Quantize(double p) {
  p = std::max(5.0, std::min(100.0, p));
  return std::round(p * 4.0) / 4.0;  // quarter steps: exact doubles
}

}  // namespace

Schema FuzzSchema() {
  Schema s;
  SQLTS_CHECK_OK(s.AddColumn("sym", TypeKind::kString));
  SQLTS_CHECK_OK(s.AddColumn("grp", TypeKind::kInt64));
  SQLTS_CHECK_OK(s.AddColumn("seq", TypeKind::kInt64));
  SQLTS_CHECK_OK(s.AddColumn("day", TypeKind::kDate));
  // price/vol are the NULL-bearing columns (see DataGenOptions), and
  // declaring them nullable is what keeps the compiled θ/φ matrices
  // sound under 3-valued logic for fuzzed predicates.  price is also
  // declared POSITIVE (the generator keeps it in [5, 100]) so fuzzing
  // still exercises the log-domain ratio reasoning; vol reaches 0 and
  // grp is 0/1, so neither may carry the flag.
  SQLTS_CHECK_OK(s.AddColumn("price", TypeKind::kDouble, /*nullable=*/true,
                             /*positive=*/true));
  SQLTS_CHECK_OK(s.AddColumn("vol", TypeKind::kInt64, /*nullable=*/true));
  return s;
}

Table RandomFuzzTable(uint64_t seed, const DataGenOptions& options) {
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  auto pick = [&](int n) { return static_cast<int>(rng() % n); };

  // Cluster identities.  Symbols include CSV-hostile names (separators,
  // quotes, newlines, whitespace) so every repro exercises the escaping
  // path; (sym, grp) pairs may share a sym, which merges their streams
  // when a query clusters by sym alone.
  static const char* kSyms[] = {"IBM",  "INTC",   "A",      "B",
                                "a,b",  "q\"uo",  " sp ",   "nl\nX"};
  const int num_clusters =
      options.min_clusters +
      pick(options.max_clusters - options.min_clusters + 1);
  std::vector<ClusterState> clusters;
  const int span = options.max_rows_per_cluster -
                   options.min_rows_per_cluster + 1;
  for (int c = 0; c < num_clusters; ++c) {
    ClusterState cs;
    cs.sym = kSyms[pick(8)];
    cs.grp = pick(2);
    cs.day = Date(10000 + pick(400));
    cs.price = Quantize(40 + pick(81) * 0.25);
    cs.vol = pick(21);
    cs.rows_left = options.min_rows_per_cluster + pick(span);
    clusters.push_back(std::move(cs));
  }

  Table t(FuzzSchema());
  int64_t seq = pick(50);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<int> live;
  for (int c = 0; c < num_clusters; ++c) {
    if (clusters[c].rows_left > 0) live.push_back(c);
  }
  while (!live.empty()) {
    int li = pick(static_cast<int>(live.size()));
    ClusterState& cs = clusters[live[li]];

    if (cs.regime_left == 0) {
      cs.regime = pick(5);
      cs.regime_left = 2 + pick(11);
      cs.step = 0.25 * (1 + pick(4));
      if (cs.regime == 4) {  // ladder: restart from an anchor
        cs.price = kAnchors[pick(7)];
        cs.step = 1.0;
      }
    }
    switch (cs.regime) {
      case 0:
        break;  // constant run
      case 1:
        cs.price = Quantize(cs.price + cs.step);
        break;
      case 2:
        cs.price = Quantize(cs.price - cs.step);
        break;
      case 3:
        cs.price = Quantize(cs.price + (pick(9) - 4) * 0.25);
        break;
      case 4:
        // Ladder: mostly climb anchor-to-anchor, sometimes dip just
        // short of the next one (the near-miss prefix).
        cs.price = Quantize(cs.price + (pick(4) == 0 ? -0.25 : cs.step));
        break;
    }
    --cs.regime_left;

    if (cs.vol_run == 0) {
      cs.vol = pick(21);
      cs.vol_run = 1 + pick(6);
    }
    --cs.vol_run;

    seq += 1 + pick(3);  // strictly increasing, with gaps
    cs.day = cs.day.AddDays(1 + pick(2));

    Row row;
    row.push_back(Value::String(cs.sym));
    row.push_back(Value::Int64(cs.grp));
    row.push_back(Value::Int64(seq));
    row.push_back(Value::FromDate(cs.day));
    row.push_back(unit(rng) < options.null_prob ? Value::Null()
                                                : Value::Double(cs.price));
    row.push_back(unit(rng) < options.null_prob ? Value::Null()
                                                : Value::Int64(cs.vol));
    SQLTS_CHECK_OK(t.AppendRow(std::move(row)));

    if (--cs.rows_left == 0) {
      live.erase(live.begin() + li);
    }
  }
  return t;
}

}  // namespace fuzz
}  // namespace sqlts
