#ifndef SQLTS_PARSER_ANALYZER_H_
#define SQLTS_PARSER_ANALYZER_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "parser/ast.h"
#include "types/schema.h"

namespace sqlts {

/// One element of the resolved search pattern: its variable name, star
/// flag, and the conjuncts assigned to it (each conjunct is evaluated
/// against every input tuple the element consumes).
struct PatternElement {
  std::string var;
  bool star = false;
  /// Resolved conjuncts (relative/anchored references filled in).
  std::vector<ExprPtr> conjuncts;
  /// AND of `conjuncts`, or null for TRUE.
  ExprPtr predicate;
};

/// A fully resolved SQL-TS query, ready for pattern compilation
/// (pattern/compile.h) and execution (engine/).
struct CompiledQuery {
  Schema input_schema;
  std::string table;
  std::vector<std::string> cluster_by;
  std::vector<std::string> sequence_by;
  std::vector<PatternElement> elements;
  /// Conjuncts referencing only CLUSTER BY columns, hoisted out of the
  /// pattern (the paper drops X.name='IBM' from p₁ this way); evaluated
  /// once per cluster on its first tuple.
  std::vector<ExprPtr> cluster_filters;
  /// Resolved SELECT list (anchored references).
  std::vector<SelectItem> select;
  Schema output_schema;
  /// LIMIT clause (0 = unlimited): cap on total output rows, with exact
  /// early termination of the search.
  int64_t limit = 0;
  /// LIMIT 0 was written explicitly: the executor returns an empty
  /// result without searching; the static analyzer warns (W005).
  bool limit_zero = false;
  /// Source range of the LIMIT clause, for diagnostics.
  SourceSpan limit_span;

  int pattern_length() const { return static_cast<int>(elements.size()); }
};

/// Resolves names, rewrites cross-element references, hoists cluster
/// filters, assigns conjuncts to pattern elements, and type-checks.
StatusOr<CompiledQuery> AnalyzeQuery(const ParsedQuery& query,
                                     const Schema& schema);

/// Convenience: parse + analyze.
StatusOr<CompiledQuery> CompileQueryText(std::string_view text,
                                         const Schema& schema);

}  // namespace sqlts

#endif  // SQLTS_PARSER_ANALYZER_H_
