#include "parser/analyzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "parser/parser.h"

namespace sqlts {
namespace {

/// Recursively infers the type of a resolved expression, failing on
/// genuine type errors (NULL literals type as kNull and unify with
/// anything).
StatusOr<TypeKind> InferType(const Expr& e, const Schema& schema) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.kind();
    case ExprKind::kColumnRef:
      if (e.ref.column_index < 0) {
        return Status::Internal("unresolved column ref in type check");
      }
      return schema.column(e.ref.column_index).type;
    case ExprKind::kArith: {
      SQLTS_ASSIGN_OR_RETURN(TypeKind a, InferType(*e.lhs, schema));
      SQLTS_ASSIGN_OR_RETURN(TypeKind b, InferType(*e.rhs, schema));
      auto numeric = [](TypeKind t) {
        return t == TypeKind::kInt64 || t == TypeKind::kDouble ||
               t == TypeKind::kNull;
      };
      // Calendar arithmetic: DATE ± days → DATE; DATE − DATE → days;
      // days + DATE → DATE.
      if (a == TypeKind::kDate || b == TypeKind::kDate) {
        bool ok =
            (a == TypeKind::kDate && b == TypeKind::kDate &&
             e.arith_op == ArithOp::kSub) ||
            (a == TypeKind::kDate && numeric(b) &&
             (e.arith_op == ArithOp::kAdd || e.arith_op == ArithOp::kSub)) ||
            (numeric(a) && b == TypeKind::kDate &&
             e.arith_op == ArithOp::kAdd);
        if (!ok) {
          return Status::TypeError("unsupported date arithmetic in " +
                                   e.ToString());
        }
        return (a == TypeKind::kDate && b == TypeKind::kDate)
                   ? TypeKind::kInt64
                   : TypeKind::kDate;
      }
      if (!numeric(a) || !numeric(b)) {
        return Status::TypeError("arithmetic requires numeric operands in " +
                                 e.ToString());
      }
      if (e.arith_op == ArithOp::kDiv) return TypeKind::kDouble;
      if (a == TypeKind::kInt64 && b == TypeKind::kInt64) {
        return TypeKind::kInt64;
      }
      return TypeKind::kDouble;
    }
    case ExprKind::kCompare: {
      SQLTS_ASSIGN_OR_RETURN(TypeKind a, InferType(*e.lhs, schema));
      SQLTS_ASSIGN_OR_RETURN(TypeKind b, InferType(*e.rhs, schema));
      auto numeric = [](TypeKind t) {
        return t == TypeKind::kInt64 || t == TypeKind::kDouble;
      };
      bool ok = a == TypeKind::kNull || b == TypeKind::kNull || a == b ||
                (numeric(a) && numeric(b));
      if (!ok) {
        return Status::TypeError(
            "cannot compare " + std::string(TypeKindToString(a)) + " with " +
            std::string(TypeKindToString(b)) + " in " + e.ToString());
      }
      return TypeKind::kBool;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      SQLTS_ASSIGN_OR_RETURN(TypeKind a, InferType(*e.lhs, schema));
      SQLTS_ASSIGN_OR_RETURN(TypeKind b, InferType(*e.rhs, schema));
      if ((a != TypeKind::kBool && a != TypeKind::kNull) ||
          (b != TypeKind::kBool && b != TypeKind::kNull)) {
        return Status::TypeError("AND/OR requires boolean operands in " +
                                 e.ToString());
      }
      return TypeKind::kBool;
    }
    case ExprKind::kNot: {
      SQLTS_ASSIGN_OR_RETURN(TypeKind a, InferType(*e.lhs, schema));
      if (a != TypeKind::kBool && a != TypeKind::kNull) {
        return Status::TypeError("NOT requires a boolean operand in " +
                                 e.ToString());
      }
      return TypeKind::kBool;
    }
    case ExprKind::kAggregate: {
      if (e.agg_op == AggOp::kCount) return TypeKind::kInt64;
      if (e.ref.column_index < 0) {
        return Status::Internal("unresolved aggregate column");
      }
      TypeKind col = schema.column(e.ref.column_index).type;
      bool numeric = col == TypeKind::kInt64 || col == TypeKind::kDouble;
      if (e.agg_op == AggOp::kMin || e.agg_op == AggOp::kMax) {
        if (!numeric && col != TypeKind::kDate && col != TypeKind::kString) {
          return Status::TypeError("MIN/MAX needs an orderable column in " +
                                   e.ToString());
        }
        return col;
      }
      if (!numeric) {
        return Status::TypeError("SUM/AVG needs a numeric column in " +
                                 e.ToString());
      }
      return TypeKind::kDouble;
    }
  }
  return Status::Internal("unknown expr kind");
}

/// True when the tree contains an aggregate node.
bool HasAggregate(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kAggregate) return true;
  return HasAggregate(e->lhs) || HasAggregate(e->rhs);
}

/// Analysis machinery bundled to avoid long parameter lists.
class Analyzer {
 public:
  Analyzer(const ParsedQuery& q, const Schema& schema)
      : q_(q), schema_(schema) {}

  StatusOr<CompiledQuery> Run() {
    CompiledQuery out;
    out.input_schema = schema_;
    out.table = q_.table;
    out.cluster_by = q_.cluster_by;
    out.sequence_by = q_.sequence_by;
    out.limit = q_.limit;
    out.limit_zero = q_.limit_zero;
    out.limit_span = q_.limit_span;

    // Validate cluster/sequence columns and record cluster column ids.
    for (const std::string& c : q_.cluster_by) {
      SQLTS_ASSIGN_OR_RETURN(int idx, schema_.FindColumn(c));
      cluster_cols_.insert(idx);
    }
    for (const std::string& c : q_.sequence_by) {
      SQLTS_RETURN_IF_ERROR(schema_.FindColumn(c).status());
    }

    // Pattern variables.
    if (q_.pattern.empty()) {
      return Status::InvalidArgument("pattern (AS clause) is empty");
    }
    for (size_t i = 0; i < q_.pattern.size(); ++i) {
      const PatternVarDecl& d = q_.pattern[i];
      if (var_index_.count(ToUpper(d.name))) {
        return Status::InvalidArgument("duplicate pattern variable '" +
                                       d.name + "'");
      }
      var_index_[ToUpper(d.name)] = static_cast<int>(i);
      PatternElement el;
      el.var = d.name;
      el.star = d.star;
      out.elements.push_back(std::move(el));
    }

    // WHERE conjuncts.
    if (q_.where != nullptr) {
      std::vector<ExprPtr> conjuncts;
      FlattenConjuncts(q_.where, &conjuncts);
      for (const ExprPtr& c : conjuncts) {
        SQLTS_RETURN_IF_ERROR(PlaceConjunct(c, &out));
      }
    }
    for (PatternElement& el : out.elements) {
      el.predicate = nullptr;
      for (const ExprPtr& c : el.conjuncts) {
        el.predicate = el.predicate ? MakeAnd(el.predicate, c) : c;
      }
    }

    // SELECT list.
    SQLTS_RETURN_IF_ERROR(ResolveSelect(&out));

    // Type checks.
    for (const PatternElement& el : out.elements) {
      for (const ExprPtr& c : el.conjuncts) {
        SQLTS_ASSIGN_OR_RETURN(TypeKind t, InferType(*c, schema_));
        if (t != TypeKind::kBool && t != TypeKind::kNull) {
          return Status::TypeError("WHERE conjunct is not boolean: " +
                                   c->ToString());
        }
      }
    }
    for (const ExprPtr& c : out.cluster_filters) {
      SQLTS_RETURN_IF_ERROR(InferType(*c, schema_).status());
    }
    return out;
  }

 private:
  /// Resolves common parts of a reference: variable and column.
  Status ResolveBasics(const ColumnRef& in, ColumnRef* r) const {
    *r = in;
    if (in.var.empty()) {
      return Status::InvalidArgument(
          "unqualified column reference '" + in.column +
          "'; use <PatternVar>.<column>");
    }
    auto it = var_index_.find(ToUpper(in.var));
    if (it == var_index_.end()) {
      return Status::InvalidArgument("unknown pattern variable '" + in.var +
                                     "'");
    }
    r->element = it->second;
    if (!in.column.empty()) {
      SQLTS_ASSIGN_OR_RETURN(r->column_index, schema_.FindColumn(in.column));
    }
    return Status::OK();
  }

  /// True when every element in [from, to) is non-star.
  bool AllSingle(int from, int to) const {
    for (int i = from; i < to; ++i) {
      if (q_.pattern[i].star) return false;
    }
    return true;
  }

  Status PlaceConjunct(const ExprPtr& conjunct, CompiledQuery* out) {
    if (HasAggregate(conjunct)) {
      return Status::InvalidArgument(
          "aggregates are only allowed in the SELECT list: " +
          conjunct->ToString());
    }
    // Gather references.
    std::vector<ColumnRef> refs;
    Status bad = Status::OK();
    VisitColumnRefs(conjunct, [&](const ColumnRef& r) {
      ColumnRef resolved;
      Status s = ResolveBasics(r, &resolved);
      if (!s.ok() && bad.ok()) bad = s;
      refs.push_back(resolved);
    });
    SQLTS_RETURN_IF_ERROR(bad);
    for (const ColumnRef& r : refs) {
      if (r.accessor != GroupAccessor::kCurrent) {
        return Status::InvalidArgument(
            "FIRST()/LAST() are only allowed in the SELECT list: " +
            conjunct->ToString());
      }
    }

    // Cluster filter: every reference touches only CLUSTER BY columns.
    if (!refs.empty() && !cluster_cols_.empty()) {
      bool all_cluster = std::all_of(
          refs.begin(), refs.end(), [&](const ColumnRef& r) {
            return cluster_cols_.count(r.column_index) > 0;
          });
      if (all_cluster) {
        ExprPtr rewritten =
            RewriteColumnRefs(conjunct, [&](const ColumnRef& r) {
              ColumnRef res;
              SQLTS_CHECK_OK(ResolveBasics(r, &res));
              // Cluster columns are constant within a cluster; read them
              // from the tuple under evaluation directly.
              res.relative = true;
              res.total_offset = 0;
              return res;
            });
        out->cluster_filters.push_back(std::move(rewritten));
        return Status::OK();
      }
    }

    // Owning element: the latest element referenced (constant conjuncts
    // belong to element 0 so they are checked as early as possible).
    int e = 0;
    for (const ColumnRef& r : refs) e = std::max(e, r.element);
    const bool e_star = q_.pattern[e].star;

    ExprPtr rewritten = RewriteColumnRefs(conjunct, [&](const ColumnRef& r) {
      ColumnRef res;
      SQLTS_CHECK_OK(ResolveBasics(r, &res));
      if (res.element == e) {
        // Same element: offsets are relative to the tuple under test.
        res.relative = true;
        res.total_offset = res.nav_offset;
        return res;
      }
      // Earlier element d < e.  When every element in d..e-1 is a single
      // tuple (non-star) and e itself is non-star, the reference is a
      // fixed offset from the tuple under test (the paper's rewriting of
      // Y.price < X.price into a t.previous comparison).  Otherwise it
      // stays anchored to the completed group's span.
      int d = res.element;
      if (!e_star && AllSingle(d, e)) {
        res.relative = true;
        res.total_offset = res.nav_offset - (e - d);
      } else {
        res.relative = false;
      }
      return res;
    });
    out->elements[e].conjuncts.push_back(std::move(rewritten));
    return Status::OK();
  }

  Status ResolveSelect(CompiledQuery* out) {
    if (q_.select.empty()) {
      return Status::InvalidArgument("SELECT list is empty");
    }
    std::set<std::string> used_names;
    for (size_t i = 0; i < q_.select.size(); ++i) {
      const SelectItem& item = q_.select[i];
      Status bad = Status::OK();
      ExprPtr resolved = RewriteColumnRefs(item.expr, [&](const ColumnRef& r) {
        ColumnRef res;
        Status s = ResolveBasics(r, &res);
        if (!s.ok()) {
          if (bad.ok()) bad = s;
          return res;
        }
        res.relative = false;  // SELECT reads from the completed match
        return res;
      });
      SQLTS_RETURN_IF_ERROR(bad);
      SQLTS_ASSIGN_OR_RETURN(TypeKind t, InferType(*resolved, schema_));
      if (t == TypeKind::kNull) t = TypeKind::kString;  // NULL literal

      std::string name = item.alias;
      if (name.empty() && resolved->kind == ExprKind::kColumnRef) {
        name = resolved->ref.column;
      }
      if (name.empty()) name = "col" + std::to_string(i + 1);
      std::string base = name;
      for (int suffix = 2; used_names.count(ToLower(name)); ++suffix) {
        name = base + "_" + std::to_string(suffix);
      }
      used_names.insert(ToLower(name));

      out->select.push_back(SelectItem{resolved, name});
      SQLTS_RETURN_IF_ERROR(out->output_schema.AddColumn(name, t));
    }
    return Status::OK();
  }

  const ParsedQuery& q_;
  const Schema& schema_;
  std::map<std::string, int> var_index_;
  std::set<int> cluster_cols_;
};

}  // namespace

StatusOr<CompiledQuery> AnalyzeQuery(const ParsedQuery& query,
                                     const Schema& schema) {
  Analyzer a(query, schema);
  return a.Run();
}

StatusOr<CompiledQuery> CompileQueryText(std::string_view text,
                                         const Schema& schema) {
  SQLTS_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery(text));
  return AnalyzeQuery(q, schema);
}

}  // namespace sqlts
