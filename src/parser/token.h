#ifndef SQLTS_PARSER_TOKEN_H_
#define SQLTS_PARSER_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sqlts {

/// Lexical token kinds of SQL-TS.
enum class TokenKind : uint8_t {
  kEnd,
  kIdentifier,   // column / variable / table names
  kKeyword,      // SELECT, FROM, ... (text kept upper-cased)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // contents without quotes
  kComma,
  kDot,          // also produced for SQL3 '->' navigation
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,           // <> or !=
};

/// One lexical token with source position (byte offsets for
/// diagnostics).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier (original case), keyword (upper), literal text
  int64_t int_value = 0;
  double double_value = 0;
  int position = 0;     // byte offset of the token's first character
  int end = 0;          // byte offset one past the token's last character

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

}  // namespace sqlts

#endif  // SQLTS_PARSER_TOKEN_H_
