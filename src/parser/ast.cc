#include "parser/ast.h"

namespace sqlts {

std::string ParsedQuery::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i) out += ", ";
    out += select[i].expr->ToString();
    if (!select[i].alias.empty()) out += " AS " + select[i].alias;
  }
  out += "\nFROM " + table;
  auto list = [](const std::vector<std::string>& v) {
    std::string s;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) s += ", ";
      s += v[i];
    }
    return s;
  };
  if (!cluster_by.empty()) out += "\n  CLUSTER BY " + list(cluster_by);
  if (!sequence_by.empty()) out += "\n  SEQUENCE BY " + list(sequence_by);
  out += "\n  AS (";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i) out += ", ";
    if (pattern[i].star) out += "*";
    out += pattern[i].name;
  }
  out += ")";
  if (where != nullptr) out += "\nWHERE " + where->ToString();
  if (limit > 0 || limit_zero) {
    out += "\nLIMIT " + std::to_string(limit);
  }
  return out;
}

}  // namespace sqlts
