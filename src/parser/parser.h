#ifndef SQLTS_PARSER_PARSER_H_
#define SQLTS_PARSER_PARSER_H_

#include <string_view>

#include "common/statusor.h"
#include "parser/ast.h"

namespace sqlts {

/// Parses a SQL-TS query:
///
///   SELECT item [, item]*
///   FROM table
///     [CLUSTER BY col [, col]*] [,]
///     [SEQUENCE BY col [, col]*] [,]
///     AS ( [*]Var [, [*]Var]* )
///   [WHERE condition]
///
/// Expressions support literals (numeric, string, DATE 'yyyy-mm-dd',
/// TRUE/FALSE), arithmetic, comparisons, AND/OR/NOT, pattern-variable
/// navigation (X.previous.price, X.next.price, SQL3 X.previous->price)
/// and group accessors FIRST(X).col / LAST(X).col.
StatusOr<ParsedQuery> ParseQuery(std::string_view text);

/// Parses a stand-alone condition (used by tests and the pattern API).
/// Same expression grammar as WHERE.
StatusOr<ExprPtr> ParseExpression(std::string_view text);

}  // namespace sqlts

#endif  // SQLTS_PARSER_PARSER_H_
