#include "parser/parser.h"

#include "common/string_util.h"
#include "parser/lexer.h"

namespace sqlts {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedQuery> ParseQueryTop() {
    ParsedQuery q;
    SQLTS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SQLTS_RETURN_IF_ERROR(ParseSelectList(&q));
    SQLTS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SQLTS_ASSIGN_OR_RETURN(q.table, ExpectIdentifier("table name"));

    // Optional clauses, with optional separating commas (the paper's
    // Example 9 writes "CLUSTER BY name, SEQUENCE BY date").
    while (true) {
      ConsumeIf(TokenKind::kComma);
      if (Peek().IsKeyword("CLUSTER")) {
        Advance();
        SQLTS_RETURN_IF_ERROR(ExpectKeyword("BY"));
        SQLTS_RETURN_IF_ERROR(ParseIdentList(&q.cluster_by));
        continue;
      }
      if (Peek().IsKeyword("SEQUENCE")) {
        Advance();
        SQLTS_RETURN_IF_ERROR(ExpectKeyword("BY"));
        SQLTS_RETURN_IF_ERROR(ParseIdentList(&q.sequence_by));
        continue;
      }
      break;
    }

    SQLTS_RETURN_IF_ERROR(ExpectKeyword("AS"));
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      PatternVarDecl decl;
      if (ConsumeIf(TokenKind::kStar)) decl.star = true;
      SQLTS_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("pattern variable"));
      q.pattern.push_back(std::move(decl));
      if (!ConsumeIf(TokenKind::kComma)) break;
    }
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));

    if (Peek().IsKeyword("WHERE")) {
      Advance();
      SQLTS_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    // Contextual LIMIT clause.
    if (Peek().kind == TokenKind::kIdentifier &&
        EqualsIgnoreCase(Peek().text, "LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kIntLiteral || Peek().int_value <= 0) {
        return Error("LIMIT expects a positive integer");
      }
      q.limit = Advance().int_value;
    }
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "end of query"));
    return q;
  }

  StatusOr<ExprPtr> ParseExpressionTop() {
    SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "end of expression"));
    return e;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeIf(TokenKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " +
                              std::to_string(Peek().position) + " (near '" +
                              Peek().text + "')");
  }
  Status Expect(TokenKind k, const std::string& what) {
    if (Peek().kind != k) return Error("expected " + what);
    ++pos_;
    return Status::OK();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    ++pos_;
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  Status ParseIdentList(std::vector<std::string>* out) {
    SQLTS_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column"));
    out->push_back(std::move(first));
    // A comma only continues the list when followed by another
    // identifier that is not the start of a different clause.
    while (Peek().kind == TokenKind::kComma &&
           Peek(1).kind == TokenKind::kIdentifier) {
      Advance();
      out->push_back(Advance().text);
    }
    return Status::OK();
  }

  Status ParseSelectList(ParsedQuery* q) {
    while (true) {
      SelectItem item;
      SQLTS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("AS")) {
        SQLTS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      }
      q->select.push_back(std::move(item));
      if (!ConsumeIf(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  // ---- expression grammar ----
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return MakeNot(std::move(e));
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = CmpOp::kGe;
        break;
      case TokenKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = CmpOp::kNe;
        break;
      default:
        return lhs;
    }
    Advance();
    SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeCompare(op, std::move(lhs), std::move(rhs));
  }

  StatusOr<ExprPtr> ParseAdditive() {
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (ConsumeIf(TokenKind::kPlus)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeArith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (ConsumeIf(TokenKind::kMinus)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeArith(ArithOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (ConsumeIf(TokenKind::kStar)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeArith(ArithOp::kMul, std::move(lhs), std::move(rhs));
      } else if (ConsumeIf(TokenKind::kSlash)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeArith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (ConsumeIf(TokenKind::kMinus)) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return MakeArith(ArithOp::kSub, MakeLiteral(Value::Int64(0)),
                       std::move(e));
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return MakeLiteral(Value::Int64(t.int_value));
      case TokenKind::kDoubleLiteral:
        Advance();
        return MakeLiteral(Value::Double(t.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return MakeLiteral(Value::String(t.text));
      case TokenKind::kLParen: {
        Advance();
        SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return e;
      }
      case TokenKind::kKeyword: {
        if (t.text == "TRUE") {
          Advance();
          return MakeLiteral(Value::Bool(true));
        }
        if (t.text == "FALSE") {
          Advance();
          return MakeLiteral(Value::Bool(false));
        }
        if (t.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (t.text == "FIRST" || t.text == "LAST") {
          GroupAccessor acc = t.text == "FIRST" ? GroupAccessor::kFirst
                                                : GroupAccessor::kLast;
          Advance();
          SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
          SQLTS_ASSIGN_OR_RETURN(std::string var,
                                 ExpectIdentifier("pattern variable"));
          SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return ParseRefTail(std::move(var), acc);
        }
        return Error("unexpected keyword " + t.text);
      }
      case TokenKind::kIdentifier: {
        std::string name = Advance().text;
        // Contextual DATE literal: DATE 'yyyy-mm-dd'.
        if (EqualsIgnoreCase(name, "DATE") &&
            Peek().kind == TokenKind::kStringLiteral) {
          SQLTS_ASSIGN_OR_RETURN(Date d, Date::Parse(Advance().text));
          return MakeLiteral(Value::FromDate(d));
        }
        // Contextual aggregate: COUNT(X) / SUM(X.price) / AVG / MIN / MAX.
        if (Peek().kind == TokenKind::kLParen) {
          std::optional<AggOp> agg;
          if (EqualsIgnoreCase(name, "COUNT")) agg = AggOp::kCount;
          else if (EqualsIgnoreCase(name, "SUM")) agg = AggOp::kSum;
          else if (EqualsIgnoreCase(name, "AVG")) agg = AggOp::kAvg;
          else if (EqualsIgnoreCase(name, "MIN")) agg = AggOp::kMin;
          else if (EqualsIgnoreCase(name, "MAX")) agg = AggOp::kMax;
          if (agg.has_value()) {
            Advance();  // '('
            ColumnRef ref;
            SQLTS_ASSIGN_OR_RETURN(ref.var,
                                   ExpectIdentifier("pattern variable"));
            if (ConsumeIf(TokenKind::kDot)) {
              SQLTS_ASSIGN_OR_RETURN(ref.column,
                                     ExpectIdentifier("column name"));
            }
            SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
            if (*agg != AggOp::kCount && ref.column.empty()) {
              return Error(name + "() requires a column argument");
            }
            return MakeAggregate(*agg, std::move(ref));
          }
        }
        return ParseRefTail(std::move(name), GroupAccessor::kCurrent);
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  /// Parses the navigation chain after a variable: sequences of
  /// .previous / .next ending in the column name; a lone identifier is
  /// an unqualified column reference.
  StatusOr<ExprPtr> ParseRefTail(std::string var, GroupAccessor acc) {
    ColumnRef ref;
    ref.accessor = acc;
    if (Peek().kind != TokenKind::kDot) {
      // Unqualified reference: treat the identifier as the column name.
      if (acc != GroupAccessor::kCurrent) {
        return Error("FIRST()/LAST() requires .column");
      }
      ref.column = std::move(var);
      return MakeColumnRef(std::move(ref));
    }
    ref.var = std::move(var);
    while (ConsumeIf(TokenKind::kDot)) {
      const Token& t = Peek();
      if (t.IsKeyword("PREVIOUS")) {
        Advance();
        ref.nav_offset -= 1;
        continue;
      }
      if (t.IsKeyword("NEXT")) {
        Advance();
        ref.nav_offset += 1;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        ref.column = Advance().text;
        return MakeColumnRef(std::move(ref));
      }
      return Error("expected column name or previous/next after '.'");
    }
    return Error("dangling '.'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ParsedQuery> ParseQuery(std::string_view text) {
  SQLTS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  return p.ParseQueryTop();
}

StatusOr<ExprPtr> ParseExpression(std::string_view text) {
  SQLTS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  return p.ParseExpressionTop();
}

}  // namespace sqlts
