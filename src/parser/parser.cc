#include "parser/parser.h"

#include "common/string_util.h"
#include "parser/lexer.h"

namespace sqlts {
namespace {

/// Recursive-descent parser over the token stream.  Keeps the source
/// text to report errors with line/column positions and to stamp every
/// expression node with its source span (see SourceSpan in expr/expr.h).
class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string_view source)
      : tokens_(std::move(tokens)), source_(source) {}

  StatusOr<ParsedQuery> ParseQueryTop() {
    ParsedQuery q;
    SQLTS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SQLTS_RETURN_IF_ERROR(ParseSelectList(&q));
    SQLTS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SQLTS_ASSIGN_OR_RETURN(q.table, ExpectIdentifier("table name"));

    // Optional clauses, with optional separating commas (the paper's
    // Example 9 writes "CLUSTER BY name, SEQUENCE BY date").
    while (true) {
      ConsumeIf(TokenKind::kComma);
      if (Peek().IsKeyword("CLUSTER")) {
        Advance();
        SQLTS_RETURN_IF_ERROR(ExpectKeyword("BY"));
        SQLTS_RETURN_IF_ERROR(ParseIdentList(&q.cluster_by));
        continue;
      }
      if (Peek().IsKeyword("SEQUENCE")) {
        Advance();
        SQLTS_RETURN_IF_ERROR(ExpectKeyword("BY"));
        SQLTS_RETURN_IF_ERROR(ParseIdentList(&q.sequence_by));
        continue;
      }
      break;
    }

    SQLTS_RETURN_IF_ERROR(ExpectKeyword("AS"));
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      PatternVarDecl decl;
      if (ConsumeIf(TokenKind::kStar)) decl.star = true;
      SQLTS_ASSIGN_OR_RETURN(decl.name, ExpectIdentifier("pattern variable"));
      q.pattern.push_back(std::move(decl));
      if (!ConsumeIf(TokenKind::kComma)) break;
    }
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));

    if (Peek().IsKeyword("WHERE")) {
      Advance();
      SQLTS_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    // Contextual LIMIT clause.  LIMIT 0 is legal (every match is
    // discarded); the static analyzer warns about it (W005).
    if (Peek().kind == TokenKind::kIdentifier &&
        EqualsIgnoreCase(Peek().text, "LIMIT")) {
      int limit_begin = Peek().position;
      Advance();
      if (Peek().kind != TokenKind::kIntLiteral || Peek().int_value < 0) {
        return Error("LIMIT expects a non-negative integer");
      }
      q.limit = Advance().int_value;
      q.limit_zero = q.limit == 0;
      q.limit_span = SourceSpan{limit_begin, LastEnd()};
    }
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "end of query"));
    return q;
  }

  StatusOr<ExprPtr> ParseExpressionTop() {
    SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "end of expression"));
    return e;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeIf(TokenKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// End offset of the most recently consumed token (start of the
  /// source when nothing was consumed yet).
  int LastEnd() const { return pos_ > 0 ? tokens_[pos_ - 1].end : 0; }

  /// Stamps `e` with the span [begin, end-of-previous-token).
  ExprPtr Spanned(ExprPtr e, int begin) const {
    return WithSpan(std::move(e), SourceSpan{begin, LastEnd()});
  }

  Status Error(const std::string& what) const {
    int line = 1, column = 1;
    const int offset = Peek().position;
    for (int i = 0; i < offset && i < static_cast<int>(source_.size()); ++i) {
      if (source_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return Status::ParseError(what + " at line " + std::to_string(line) +
                              ", column " + std::to_string(column) +
                              " (offset " + std::to_string(offset) +
                              ", near '" + Peek().text + "')");
  }
  Status Expect(TokenKind k, const std::string& what) {
    if (Peek().kind != k) return Error("expected " + what);
    ++pos_;
    return Status::OK();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    ++pos_;
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  Status ParseIdentList(std::vector<std::string>* out) {
    SQLTS_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column"));
    out->push_back(std::move(first));
    // A comma only continues the list when followed by another
    // identifier that is not the start of a different clause.
    while (Peek().kind == TokenKind::kComma &&
           Peek(1).kind == TokenKind::kIdentifier) {
      Advance();
      out->push_back(Advance().text);
    }
    return Status::OK();
  }

  Status ParseSelectList(ParsedQuery* q) {
    while (true) {
      SelectItem item;
      SQLTS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("AS")) {
        SQLTS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      }
      q->select.push_back(std::move(item));
      if (!ConsumeIf(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  // ---- expression grammar ----
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    const int begin = Peek().position;
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Spanned(MakeOr(std::move(lhs), std::move(rhs)), begin);
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    const int begin = Peek().position;
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Spanned(MakeAnd(std::move(lhs), std::move(rhs)), begin);
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    const int begin = Peek().position;
    if (ConsumeKeyword("NOT")) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Spanned(MakeNot(std::move(e)), begin);
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    const int begin = Peek().position;
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = CmpOp::kGe;
        break;
      case TokenKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = CmpOp::kNe;
        break;
      default:
        return lhs;
    }
    Advance();
    SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Spanned(MakeCompare(op, std::move(lhs), std::move(rhs)), begin);
  }

  StatusOr<ExprPtr> ParseAdditive() {
    const int begin = Peek().position;
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (ConsumeIf(TokenKind::kPlus)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Spanned(
            MakeArith(ArithOp::kAdd, std::move(lhs), std::move(rhs)), begin);
      } else if (ConsumeIf(TokenKind::kMinus)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Spanned(
            MakeArith(ArithOp::kSub, std::move(lhs), std::move(rhs)), begin);
      } else {
        return lhs;
      }
    }
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    const int begin = Peek().position;
    SQLTS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (ConsumeIf(TokenKind::kStar)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Spanned(
            MakeArith(ArithOp::kMul, std::move(lhs), std::move(rhs)), begin);
      } else if (ConsumeIf(TokenKind::kSlash)) {
        SQLTS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Spanned(
            MakeArith(ArithOp::kDiv, std::move(lhs), std::move(rhs)), begin);
      } else {
        return lhs;
      }
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    const int begin = Peek().position;
    if (ConsumeIf(TokenKind::kMinus)) {
      SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Spanned(MakeArith(ArithOp::kSub, MakeLiteral(Value::Int64(0)),
                               std::move(e)),
                     begin);
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const int begin = Peek().position;
    SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimaryImpl());
    return Spanned(std::move(e), begin);
  }

  StatusOr<ExprPtr> ParsePrimaryImpl() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return MakeLiteral(Value::Int64(t.int_value));
      case TokenKind::kDoubleLiteral:
        Advance();
        return MakeLiteral(Value::Double(t.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return MakeLiteral(Value::String(t.text));
      case TokenKind::kLParen: {
        Advance();
        SQLTS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return e;
      }
      case TokenKind::kKeyword: {
        if (t.text == "TRUE") {
          Advance();
          return MakeLiteral(Value::Bool(true));
        }
        if (t.text == "FALSE") {
          Advance();
          return MakeLiteral(Value::Bool(false));
        }
        if (t.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (t.text == "FIRST" || t.text == "LAST") {
          GroupAccessor acc = t.text == "FIRST" ? GroupAccessor::kFirst
                                                : GroupAccessor::kLast;
          Advance();
          SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
          SQLTS_ASSIGN_OR_RETURN(std::string var,
                                 ExpectIdentifier("pattern variable"));
          SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return ParseRefTail(std::move(var), acc);
        }
        return Error("unexpected keyword " + t.text);
      }
      case TokenKind::kIdentifier: {
        std::string name = Advance().text;
        // Contextual DATE literal: DATE 'yyyy-mm-dd'.
        if (EqualsIgnoreCase(name, "DATE") &&
            Peek().kind == TokenKind::kStringLiteral) {
          SQLTS_ASSIGN_OR_RETURN(Date d, Date::Parse(Advance().text));
          return MakeLiteral(Value::FromDate(d));
        }
        // Contextual aggregate: COUNT(X) / SUM(X.price) / AVG / MIN / MAX.
        if (Peek().kind == TokenKind::kLParen) {
          std::optional<AggOp> agg;
          if (EqualsIgnoreCase(name, "COUNT")) agg = AggOp::kCount;
          else if (EqualsIgnoreCase(name, "SUM")) agg = AggOp::kSum;
          else if (EqualsIgnoreCase(name, "AVG")) agg = AggOp::kAvg;
          else if (EqualsIgnoreCase(name, "MIN")) agg = AggOp::kMin;
          else if (EqualsIgnoreCase(name, "MAX")) agg = AggOp::kMax;
          if (agg.has_value()) {
            Advance();  // '('
            ColumnRef ref;
            SQLTS_ASSIGN_OR_RETURN(ref.var,
                                   ExpectIdentifier("pattern variable"));
            if (ConsumeIf(TokenKind::kDot)) {
              SQLTS_ASSIGN_OR_RETURN(ref.column,
                                     ExpectIdentifier("column name"));
            }
            SQLTS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
            if (*agg != AggOp::kCount && ref.column.empty()) {
              return Error(name + "() requires a column argument");
            }
            return MakeAggregate(*agg, std::move(ref));
          }
        }
        return ParseRefTail(std::move(name), GroupAccessor::kCurrent);
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  /// Parses the navigation chain after a variable: sequences of
  /// .previous / .next ending in the column name; a lone identifier is
  /// an unqualified column reference.
  StatusOr<ExprPtr> ParseRefTail(std::string var, GroupAccessor acc) {
    ColumnRef ref;
    ref.accessor = acc;
    if (Peek().kind != TokenKind::kDot) {
      // Unqualified reference: treat the identifier as the column name.
      if (acc != GroupAccessor::kCurrent) {
        return Error("FIRST()/LAST() requires .column");
      }
      ref.column = std::move(var);
      return MakeColumnRef(std::move(ref));
    }
    ref.var = std::move(var);
    while (ConsumeIf(TokenKind::kDot)) {
      const Token& t = Peek();
      if (t.IsKeyword("PREVIOUS")) {
        Advance();
        ref.nav_offset -= 1;
        continue;
      }
      if (t.IsKeyword("NEXT")) {
        Advance();
        ref.nav_offset += 1;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        ref.column = Advance().text;
        return MakeColumnRef(std::move(ref));
      }
      return Error("expected column name or previous/next after '.'");
    }
    return Error("dangling '.'");
  }

  std::vector<Token> tokens_;
  std::string_view source_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ParsedQuery> ParseQuery(std::string_view text) {
  SQLTS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens), text);
  return p.ParseQueryTop();
}

StatusOr<ExprPtr> ParseExpression(std::string_view text) {
  SQLTS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens), text);
  return p.ParseExpressionTop();
}

}  // namespace sqlts
