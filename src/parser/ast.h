#ifndef SQLTS_PARSER_AST_H_
#define SQLTS_PARSER_AST_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace sqlts {

/// One SELECT-list entry: an expression with an optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty when no AS alias was given
};

/// One pattern variable from the AS clause: `X` or `*X`.
struct PatternVarDecl {
  std::string name;
  bool star = false;
};

/// The parse tree of a SQL-TS query (syntactic only; see
/// parser/analyzer.h for the resolved form).
struct ParsedQuery {
  std::vector<SelectItem> select;
  std::string table;
  std::vector<std::string> cluster_by;   // may be empty
  std::vector<std::string> sequence_by;  // may be empty
  std::vector<PatternVarDecl> pattern;
  ExprPtr where;      // null when absent
  int64_t limit = 0;  // 0 = no LIMIT clause (unless limit_zero)
  /// LIMIT 0 was written explicitly: legal, but every match is
  /// discarded — the executor short-circuits and the static analyzer
  /// warns (W005).
  bool limit_zero = false;
  /// Source range of the LIMIT clause, for diagnostics.
  SourceSpan limit_span;

  std::string ToString() const;
};

}  // namespace sqlts

#endif  // SQLTS_PARSER_AST_H_
