#ifndef SQLTS_PARSER_LEXER_H_
#define SQLTS_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "parser/token.h"

namespace sqlts {

/// Tokenizes a SQL-TS query string.  Keywords are recognized
/// case-insensitively and normalized to upper case; `--` starts a
/// comment to end of line.
StatusOr<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace sqlts

#endif  // SQLTS_PARSER_LEXER_H_
