#include "parser/lexer.h"

#include <cctype>
#include <charconv>

#include "common/string_util.h"

namespace sqlts {
namespace {

// NOTE: DATE is intentionally not a keyword — the paper's schemas use a
// column named "date", so DATE '...' literals are recognized
// contextually in the parser instead.
const char* const kKeywords[] = {
    "SELECT", "FROM",  "WHERE", "CLUSTER", "SEQUENCE", "BY",
    "AS",     "AND",   "OR",    "NOT",     "FIRST",    "LAST",
    "PREVIOUS", "NEXT", "TRUE", "FALSE",   "NULL",
};

bool IsKeywordText(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && query[i + 1] == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(query[i])) ++i;
      std::string text(query.substr(start, i - start));
      std::string upper = ToUpper(text);
      if (IsKeywordText(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = text;
      }
      tok.end = static_cast<int>(i);
      out.push_back(std::move(tok));
      continue;
    }
    // Numbers: integer or decimal (with optional exponent).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) ++i;
      if (i < n && query[i] == '.') {
        // Only treat '.' as a decimal point when followed by a digit;
        // "X.price" style navigation keeps its dot.
        if (i + 1 < n && std::isdigit(static_cast<unsigned char>(query[i + 1]))) {
          is_double = true;
          ++i;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(query[i]))) {
            ++i;
          }
        }
      }
      if (i < n && (query[i] == 'e' || query[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (query[i] == '+' || query[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
          is_double = true;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(query[i]))) {
            ++i;
          }
        } else {
          i = save;  // not an exponent; back off
        }
      }
      std::string text(query.substr(start, i - start));
      if (is_double) {
        tok.kind = TokenKind::kDoubleLiteral;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kIntLiteral;
        auto [p, ec] =
            std::from_chars(text.data(), text.data() + text.size(),
                            tok.int_value);
        if (ec != std::errc()) {
          return Status::ParseError("integer literal out of range: " + text);
        }
      }
      tok.text = std::move(text);
      tok.end = static_cast<int>(i);
      out.push_back(std::move(tok));
      continue;
    }
    // String literal: single quotes, '' escapes a quote.
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (query[i] == '\'') {
          if (i + 1 < n && query[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += query[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.position));
      }
      tok.kind = TokenKind::kStringLiteral;
      tok.text = std::move(text);
      tok.end = static_cast<int>(i);
      out.push_back(std::move(tok));
      continue;
    }
    // Operators / punctuation.
    auto push1 = [&](TokenKind k) {
      tok.kind = k;
      tok.text = std::string(1, c);
      tok.end = static_cast<int>(i) + 1;
      out.push_back(tok);
      ++i;
    };
    auto push2 = [&](TokenKind k, const char* text2) {
      tok.kind = k;
      tok.text = text2;
      tok.end = static_cast<int>(i) + 2;
      out.push_back(tok);
      i += 2;
    };
    switch (c) {
      case ',':
        push1(TokenKind::kComma);
        break;
      case '.':
        push1(TokenKind::kDot);
        break;
      case '(':
        push1(TokenKind::kLParen);
        break;
      case ')':
        push1(TokenKind::kRParen);
        break;
      case '*':
        push1(TokenKind::kStar);
        break;
      case '+':
        push1(TokenKind::kPlus);
        break;
      case '/':
        push1(TokenKind::kSlash);
        break;
      case '=':
        push1(TokenKind::kEq);
        break;
      case '-':
        if (i + 1 < n && query[i + 1] == '>') {
          push2(TokenKind::kDot, "->");  // SQL3 navigation: a->b ≡ a.b
        } else {
          push1(TokenKind::kMinus);
        }
        break;
      case '<':
        if (i + 1 < n && query[i + 1] == '=') {
          push2(TokenKind::kLe, "<=");
        } else if (i + 1 < n && query[i + 1] == '>') {
          push2(TokenKind::kNe, "<>");
        } else {
          push1(TokenKind::kLt);
        }
        break;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          push2(TokenKind::kGe, ">=");
        } else {
          push1(TokenKind::kGt);
        }
        break;
      case '!':
        if (i + 1 < n && query[i + 1] == '=') {
          push2(TokenKind::kNe, "!=");
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(i));
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  end.end = static_cast<int>(n);
  out.push_back(end);
  return out;
}

}  // namespace sqlts
