#ifndef SQLTS_ENGINE_EXPLAIN_H_
#define SQLTS_ENGINE_EXPLAIN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "engine/shard_pool.h"
#include "parser/analyzer.h"
#include "pattern/compile.h"

namespace sqlts {

/// Produces a full human-readable compilation report for a query:
/// the resolved pattern (per-element predicates, star flags, hoisted
/// cluster filters), what the analyzer captured for the reasoner (GSW
/// atoms, OR groups, interval views, residue), the θ/φ/S matrices, the
/// shift/next/presatisfied tables, the direction-heuristic scores, the
/// static analyzer's diagnostics, and the output schema — the EXPLAIN
/// of this engine.  `source` is the original query text; when provided,
/// diagnostics render with caret excerpts.
std::string ExplainQuery(const CompiledQuery& query, const PatternPlan& plan,
                         std::string_view source = {});

/// Parse + analyze + compile + explain in one call.
StatusOr<std::string> ExplainQueryText(std::string_view text,
                                       const Schema& schema,
                                       const CompileOptions& options = {});

/// Renders the per-shard counters of a sharded run as an aligned table
/// (one line per shard plus a totals line); empty input renders a
/// single-threaded notice.
std::string FormatShardStats(const std::vector<ShardStats>& shards);

}  // namespace sqlts

#endif  // SQLTS_ENGINE_EXPLAIN_H_
