#include "engine/shard_pool.h"

#include <exception>

#include "common/logging.h"
#include "types/value.h"

namespace sqlts {
namespace {

/// One type-tagged, length-prefixed key part.  Strings use their raw
/// bytes (ToString's display quoting is not escape-safe); other kinds
/// use their canonical rendering.
void AppendKeyPart(const Value& v, std::string* out) {
  std::string part =
      v.kind() == TypeKind::kString ? v.string_value() : v.ToString();
  *out += static_cast<char>('0' + static_cast<int>(v.kind()));
  *out += std::to_string(part.size());
  *out += ':';
  *out += part;
}

}  // namespace

SearchStats TotalSearchStats(const std::vector<ShardStats>& shards) {
  SearchStats total;
  for (const ShardStats& s : shards) total += s.search;
  return total;
}

std::string EncodeClusterKey(const Row& row, const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) AppendKeyPart(row[c], &key);
  return key;
}

std::string EncodeClusterKey(const Row& key) {
  std::string out;
  for (const Value& v : key) AppendKeyPart(v, &out);
  return out;
}

ShardPool::ShardPool(int num_shards, int64_t queue_capacity,
                     TaskHandler handler)
    : handler_(std::move(handler)),
      capacity_(queue_capacity > 0 ? queue_capacity : 1) {
  SQLTS_CHECK(num_shards > 0);
  SQLTS_CHECK(handler_ != nullptr);
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (int s = 0; s < num_shards; ++s) {
    shards_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
  }
}

ShardPool::~ShardPool() { Finish(); }

int ShardPool::ShardFor(std::string_view key) const {
  // Finalizer step of splitmix64 on top of the library hash, so that
  // near-identical keys still spread across shards.
  uint64_t h = std::hash<std::string_view>{}(key);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<int>(h % static_cast<uint64_t>(shards_.size()));
}

void ShardPool::Push(int shard, Task task) {
  SQLTS_CHECK(shard >= 0 && shard < num_shards());
  Shard& s = *shards_[shard];
  {
    ts::MutexLock lock(s.mu);
    SQLTS_CHECK(!s.closed) << "Push after Finish";
    while (static_cast<int64_t>(s.queue.size()) >= capacity_) {
      s.not_full.Wait(s.mu);
    }
    s.queue.push_back(std::move(task));
    ++s.pushed;
    s.high_water =
        std::max(s.high_water, static_cast<int64_t>(s.queue.size()));
  }
  s.not_empty.NotifyOne();
}

void ShardPool::WorkerLoop(int shard) {
  Shard& s = *shards_[shard];
  // Once a handler has thrown, this worker stops invoking it and just
  // drains its queue: producers never block on a dead shard, Finish()
  // can still join, and the first exception is surfaced as a Status.
  bool poisoned = false;
  while (true) {
    Task task;
    {
      ts::MutexLock lock(s.mu);
      s.busy = false;
      if (s.queue.empty()) s.idle.NotifyAll();
      while (s.queue.empty() && !s.closed) s.not_empty.Wait(s.mu);
      if (s.queue.empty()) return;  // closed and drained
      task = std::move(s.queue.front());
      s.queue.pop_front();
      s.busy = true;
    }
    s.not_full.NotifyOne();
    if (poisoned) continue;
    try {
      handler_(shard, std::move(task));
    } catch (const std::exception& e) {
      poisoned = true;
      ts::MutexLock lock(s.mu);
      s.error = Status::Internal(
          std::string("shard worker caught exception: ") + e.what());
    } catch (...) {
      poisoned = true;
      ts::MutexLock lock(s.mu);
      s.error = Status::Internal(
          "shard worker caught an exception not derived from "
          "std::exception");
    }
  }
}

void ShardPool::Finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& s : shards_) {
    {
      ts::MutexLock lock(s->mu);
      s->closed = true;
    }
    s->not_empty.NotifyOne();
  }
  for (auto& s : shards_) {
    if (s->worker.joinable()) s->worker.join();
  }
}

void ShardPool::Drain() {
  for (auto& s : shards_) {
    ts::MutexLock lock(s->mu);
    while (!s->queue.empty() || s->busy) s->idle.Wait(s->mu);
  }
}

Status ShardPool::first_error() const {
  for (const auto& s : shards_) {
    ts::MutexLock lock(s->mu);
    if (!s->error.ok()) return s->error;
  }
  return Status::OK();
}

int64_t ShardPool::pushed(int shard) const {
  SQLTS_CHECK(shard >= 0 && shard < num_shards());
  Shard& s = *shards_[shard];
  ts::MutexLock lock(s.mu);
  return s.pushed;
}

int64_t ShardPool::queue_high_water(int shard) const {
  SQLTS_CHECK(shard >= 0 && shard < num_shards());
  Shard& s = *shards_[shard];
  ts::MutexLock lock(s.mu);
  return s.high_water;
}

}  // namespace sqlts
