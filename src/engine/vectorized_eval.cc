#include "engine/vectorized_eval.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "expr/eval.h"

namespace sqlts {

VectorizedPlanEval::~VectorizedPlanEval() = default;

std::unique_ptr<VectorizedPlanEval> VectorizedPlanEval::Create(
    const PatternPlan& plan, const Schema& schema) {
  auto out = std::unique_ptr<VectorizedPlanEval>(new VectorizedPlanEval());
  out->elements_.resize(plan.predicates.size());
  // Dedup by rendered form: identical conjuncts (common across the
  // elements of one pattern, e.g. symmetric halves of a double bottom)
  // share one kernel and one per-cluster verdict cache.
  std::map<std::string, std::pair<const PredicateKernel*, int>> dedup;
  bool any = false;
  for (size_t j = 1; j < plan.predicates.size(); ++j) {
    if (plan.predicates[j] == nullptr) continue;
    std::vector<ExprPtr> conjuncts;
    FlattenConjuncts(plan.predicates[j], &conjuncts);
    for (ExprPtr& c : conjuncts) {
      Conjunct entry;
      entry.expr = c;
      std::string key = c->ToString();
      auto it = dedup.find(key);
      if (it != dedup.end()) {
        entry.kernel = it->second.first;
        entry.cache_slot = it->second.second;
      } else {
        auto kernel = PredicateKernel::Compile(c, schema);
        if (kernel != nullptr) {
          entry.kernel = kernel.get();
          entry.cache_slot = out->num_slots_++;
          out->kernels_.push_back(std::move(kernel));
        }
        dedup.emplace(std::move(key),
                      std::make_pair(entry.kernel, entry.cache_slot));
      }
      if (entry.kernel != nullptr) any = true;
      out->elements_[j].push_back(std::move(entry));
    }
  }
  if (!any) return nullptr;
  return out;
}

/// Per-matcher evaluator: block-cached kernel verdicts plus the
/// interpreter for everything else.  Single-threaded by contract.
/// Defined at namespace scope (not anonymous) so the header's friend
/// declaration names this exact class.
class VectorizedElementEvaluator final : public ElementEvaluator {
 public:
  explicit VectorizedElementEvaluator(const VectorizedPlanEval* plan)
      : plan_(plan), slots_(plan->num_slots_) {}

  bool Test(int j, const SequenceView& seq, int64_t pos,
            const std::vector<GroupSpan>& spans, int64_t abs_pos) override {
    const auto& conjuncts = plan_->elements_[j];
    SQLTS_CHECK(!conjuncts.empty()) << "Test on TRUE element " << j;
    for (const auto& c : conjuncts) {
      bool sat;
      if (c.kernel != nullptr) {
        sat = TestKernel(c, seq, pos, abs_pos);
      } else {
        EvalContext ctx;
        ctx.seq = &seq;
        ctx.pos = pos;
        ctx.spans = &spans;
        sat = EvalPredicate(*c.expr, ctx);
      }
      if (!sat) return false;  // conjunction: first non-TRUE decides
    }
    return true;
  }

 private:
  struct CachedBlock {
    int valid = 0;  // lanes [0, valid) are filled and final
    BlockVerdict v;
  };
  struct SlotCache {
    std::unordered_map<int64_t, CachedBlock> blocks;
  };

  bool TestKernel(const VectorizedPlanEval::Conjunct& c,
                  const SequenceView& seq, int64_t pos, int64_t abs_pos) {
    const int64_t base = abs_pos - pos;  // 0 in batch execution
    const int64_t block = abs_pos / kKernelBlock;
    const int lane = static_cast<int>(abs_pos % kKernelBlock);
    SlotCache& cache = slots_[c.cache_slot];
    CachedBlock& cb = cache.blocks[block];
    if (lane >= cb.valid) {
      // Fill up to the last lane whose position has arrived.  In batch
      // the view is complete, so every computed verdict is final; in
      // streaming the plan has no lookahead (max_offset <= 0), so a
      // lane is final as soon as its own tuple is buffered.
      const int64_t abs0 = block * kKernelBlock;
      const int64_t limit = base + seq.size() - abs0;
      const int lane_end =
          static_cast<int>(std::min<int64_t>(kKernelBlock, limit));
      SQLTS_CHECK(lane < lane_end) << "test beyond buffered data";
      BlockVerdict fresh;
      c.kernel->EvalBlock(seq, abs0 - base, cb.valid, lane_end, &scratch_,
                          &fresh);
      for (int w = 0; w < kKernelWords; ++w) {
        cb.v.true_bits[w] |= fresh.true_bits[w];
        cb.v.null_bits[w] |= fresh.null_bits[w];
      }
      cb.valid = lane_end;
      MaybePrune(&cache, base);
    }
    return cb.v.True(lane);
  }

  /// Blocks wholly below the working view's base can never be queried
  /// again (tests happen at buffered positions: abs_pos >= base, and
  /// base is nondecreasing) — drop them so long streams stay bounded.
  void MaybePrune(SlotCache* cache, int64_t base) {
    if (cache->blocks.size() < 64) return;
    const int64_t min_block = base / kKernelBlock;
    for (auto it = cache->blocks.begin(); it != cache->blocks.end();) {
      if (it->first < min_block) {
        it = cache->blocks.erase(it);
      } else {
        ++it;
      }
    }
  }

  const VectorizedPlanEval* plan_;
  std::vector<SlotCache> slots_;
  KernelScratch scratch_;
};

std::unique_ptr<ElementEvaluator> VectorizedPlanEval::MakeEvaluator() const {
  return std::make_unique<VectorizedElementEvaluator>(this);
}

}  // namespace sqlts
