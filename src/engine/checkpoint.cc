#include "engine/checkpoint.h"

#include <cstring>

namespace sqlts {
namespace {

void AppendLe(std::string* out, uint64_t v, int bytes) {
  for (int b = 0; b < bytes; ++b) {
    out->push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
}

uint64_t LoadLe(std::string_view data, size_t pos, int bytes) {
  uint64_t v = 0;
  for (int b = 0; b < bytes; ++b) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + b]))
         << (8 * b);
  }
  return v;
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void CheckpointWriter::WriteU8(uint8_t v) {
  payload_.push_back(static_cast<char>(v));
}

void CheckpointWriter::WriteU32(uint32_t v) { AppendLe(&payload_, v, 4); }

void CheckpointWriter::WriteU64(uint64_t v) { AppendLe(&payload_, v, 8); }

void CheckpointWriter::WriteI64(int64_t v) {
  AppendLe(&payload_, static_cast<uint64_t>(v), 8);
}

void CheckpointWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendLe(&payload_, bits, 8);
}

void CheckpointWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  payload_.append(s.data(), s.size());
}

void CheckpointWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      WriteBool(v.bool_value());
      break;
    case TypeKind::kInt64:
      WriteI64(v.int64_value());
      break;
    case TypeKind::kDouble:
      WriteDouble(v.double_value());
      break;
    case TypeKind::kString:
      WriteString(v.string_value());
      break;
    case TypeKind::kDate:
      WriteI64(v.date_value().days_since_epoch());
      break;
  }
}

void CheckpointWriter::WriteRow(const Row& row) {
  WriteU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) WriteValue(v);
}

std::string CheckpointWriter::Finalize() const {
  std::string out(kCheckpointMagic);
  AppendLe(&out, kCheckpointVersion, 4);
  AppendLe(&out, payload_.size(), 8);
  AppendLe(&out, Fnv1a64(payload_), 8);
  out += payload_;
  return out;
}

Status CheckpointReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::IoError("checkpoint payload truncated: need " +
                           std::to_string(n) + " bytes at offset " +
                           std::to_string(pos_) + ", have " +
                           std::to_string(remaining()));
  }
  return Status::OK();
}

StatusOr<uint8_t> CheckpointReader::ReadU8() {
  SQLTS_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> CheckpointReader::ReadU32() {
  SQLTS_RETURN_IF_ERROR(Need(4));
  uint32_t v = static_cast<uint32_t>(LoadLe(data_, pos_, 4));
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> CheckpointReader::ReadU64() {
  SQLTS_RETURN_IF_ERROR(Need(8));
  uint64_t v = LoadLe(data_, pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<int64_t> CheckpointReader::ReadI64() {
  SQLTS_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

StatusOr<bool> CheckpointReader::ReadBool() {
  SQLTS_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  if (v > 1) return Status::IoError("checkpoint bool field out of range");
  return v == 1;
}

StatusOr<double> CheckpointReader::ReadDouble() {
  SQLTS_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> CheckpointReader::ReadString() {
  SQLTS_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  SQLTS_RETURN_IF_ERROR(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

StatusOr<Value> CheckpointReader::ReadValue() {
  SQLTS_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<TypeKind>(tag)) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kBool: {
      SQLTS_ASSIGN_OR_RETURN(bool b, ReadBool());
      return Value::Bool(b);
    }
    case TypeKind::kInt64: {
      SQLTS_ASSIGN_OR_RETURN(int64_t i, ReadI64());
      return Value::Int64(i);
    }
    case TypeKind::kDouble: {
      SQLTS_ASSIGN_OR_RETURN(double d, ReadDouble());
      return Value::Double(d);
    }
    case TypeKind::kString: {
      SQLTS_ASSIGN_OR_RETURN(std::string s, ReadString());
      return Value::String(std::move(s));
    }
    case TypeKind::kDate: {
      SQLTS_ASSIGN_OR_RETURN(int64_t days, ReadI64());
      return Value::FromDate(Date(static_cast<int32_t>(days)));
    }
  }
  return Status::IoError("checkpoint value has unknown type tag " +
                         std::to_string(tag));
}

StatusOr<Row> CheckpointReader::ReadRow() {
  SQLTS_ASSIGN_OR_RETURN(uint32_t arity, ReadU32());
  // Every value occupies at least its one-byte type tag, so an arity
  // larger than the remaining payload is corruption: reject it up front
  // rather than letting an adversarial length-prefix drive a huge
  // reserve() (allocation failure would escape as an exception from an
  // otherwise exception-free API).
  if (arity > remaining()) {
    return Status::IoError("checkpoint row arity " + std::to_string(arity) +
                           " exceeds the " + std::to_string(remaining()) +
                           " payload bytes remaining");
  }
  Row row;
  row.reserve(arity);
  for (uint32_t c = 0; c < arity; ++c) {
    SQLTS_ASSIGN_OR_RETURN(Value v, ReadValue());
    row.push_back(std::move(v));
  }
  return row;
}

StatusOr<std::string_view> OpenCheckpoint(std::string_view bytes) {
  constexpr size_t kHeader = 8 + 4 + 8 + 8;
  if (bytes.size() < kHeader) {
    return Status::IoError("checkpoint too small to hold a header (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  if (bytes.substr(0, 8) != kCheckpointMagic) {
    return Status::IoError("checkpoint magic mismatch: not a SQL-TS "
                           "checkpoint");
  }
  uint32_t version = static_cast<uint32_t>(LoadLe(bytes, 8, 4));
  if (version != kCheckpointVersion) {
    return Status::IoError("unsupported checkpoint version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kCheckpointVersion) + ")");
  }
  uint64_t size = LoadLe(bytes, 12, 8);
  if (bytes.size() - kHeader != size) {
    return Status::IoError(
        "checkpoint payload size mismatch: header declares " +
        std::to_string(size) + " bytes, file carries " +
        std::to_string(bytes.size() - kHeader));
  }
  std::string_view payload = bytes.substr(kHeader);
  uint64_t checksum = LoadLe(bytes, 20, 8);
  if (Fnv1a64(payload) != checksum) {
    return Status::IoError("checkpoint checksum mismatch: payload is "
                           "corrupted");
  }
  return payload;
}

int64_t EstimateRowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value) * (row.size() + 1));
  for (const Value& v : row) {
    if (v.kind() == TypeKind::kString) {
      bytes += static_cast<int64_t>(v.string_value().size());
    }
  }
  return bytes;
}

}  // namespace sqlts
