#include "engine/reverse.h"

#include <algorithm>

#include "common/logging.h"
#include "expr/normalize.h"

namespace sqlts {
namespace {

/// Rewrites a predicate for time-reversed scanning: a reference to the
/// tuple `o` steps after the current one becomes `o` steps before it.
ExprPtr MirrorPredicate(const ExprPtr& pred, bool* ok) {
  if (pred == nullptr) return nullptr;
  return RewriteColumnRefs(pred, [ok](const ColumnRef& r) {
    ColumnRef out = r;
    if (!r.relative) {
      *ok = false;  // anchored refs are not reversible
      return out;
    }
    out.total_offset = -r.total_offset;
    return out;
  });
}

}  // namespace

StatusOr<PatternPlan> CompileReversePlan(const CompiledQuery& query,
                                         const CompileOptions& options) {
  const int m = query.pattern_length();
  if (m == 0) return Status::InvalidArgument("empty pattern");
  VariableCatalog catalog;
  std::vector<PredicateAnalysis> preds;
  std::vector<bool> star0;
  std::vector<ExprPtr> mirrored;
  bool ok = true;
  for (int i = m - 1; i >= 0; --i) {
    const PatternElement& el = query.elements[i];
    star0.push_back(el.star);
    ExprPtr p = MirrorPredicate(el.predicate, &ok);
    if (!ok) {
      return Status::Unimplemented(
          "reverse search with anchored cross-element references");
    }
    mirrored.push_back(p);
    preds.push_back(AnalyzePredicate(p, query.input_schema, &catalog));
  }
  PatternPlan plan = CompileFromAnalyses(std::move(preds), star0, options);
  for (int j = 1; j <= m; ++j) plan.predicates[j] = mirrored[j - 1];
  return plan;
}

DirectionChoice ChooseSearchDirection(const PatternPlan& forward,
                                      const PatternPlan& reverse) {
  DirectionChoice out;
  // Shift dominates; next contributes with a smaller weight.
  out.forward_score = forward.tables.AverageShift() +
                      0.25 * forward.tables.AverageNext();
  out.reverse_score = reverse.tables.AverageShift() +
                      0.25 * reverse.tables.AverageNext();
  out.prefer_reverse = out.reverse_score > out.forward_score;
  return out;
}

std::vector<Match> ReverseOpsSearch(const SequenceView& seq,
                                    const PatternPlan& reverse_plan,
                                    SearchStats* stats) {
  // Materialize the reversed view of the same underlying rows.
  const int64_t n = seq.size();
  std::vector<int64_t> rows;
  rows.reserve(n);
  for (int64_t p = n - 1; p >= 0; --p) rows.push_back(seq.row_index(p));
  SequenceView reversed(&seq.table(), std::move(rows));

  std::vector<Match> rmatches = OpsSearch(reversed, reverse_plan, stats);

  // Map back: reversed position p ↔ forward position n-1-p; reversed
  // element r ↔ forward element m-1-r.
  const int m = reverse_plan.m;
  std::vector<Match> out;
  out.reserve(rmatches.size());
  for (const Match& rm : rmatches) {
    Match fm;
    fm.spans.resize(m);
    for (int r = 0; r < m; ++r) {
      const GroupSpan& rs = rm.spans[r];
      GroupSpan fs;
      fs.first = n - 1 - rs.last;
      fs.last = n - 1 - rs.first;
      fm.spans[m - 1 - r] = fs;
    }
    out.push_back(std::move(fm));
  }
  // Present matches in forward order.
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    return a.first() < b.first();
  });
  return out;
}

}  // namespace sqlts
