#ifndef SQLTS_ENGINE_KMP_SEARCH_H_
#define SQLTS_ENGINE_KMP_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqlts {

/// Character-level pattern search over plain text — the paper's Sec 3.1
/// setting.  Both functions return the 0-based start offsets of every
/// (possibly overlapping) occurrence and count character comparisons in
/// `*comparisons`.

/// Brute-force baseline: restart at every text position.
std::vector<int64_t> NaiveTextSearch(const std::string& text,
                                     const std::string& pattern,
                                     int64_t* comparisons);

/// Knuth–Morris–Pratt with the optimized `next` table (pattern/
/// shift_next.h); never moves the text cursor backwards.
std::vector<int64_t> KmpTextSearch(const std::string& text,
                                   const std::string& pattern,
                                   int64_t* comparisons);

}  // namespace sqlts

#endif  // SQLTS_ENGINE_KMP_SEARCH_H_
