#ifndef SQLTS_ENGINE_STREAM_EXECUTOR_H_
#define SQLTS_ENGINE_STREAM_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/governance.h"
#include "common/thread_annotations.h"
#include "common/statusor.h"
#include "engine/checkpoint.h"
#include "engine/executor.h"
#include "engine/shard_pool.h"
#include "engine/stream.h"
#include "engine/vectorized_eval.h"
#include "parser/analyzer.h"
#include "pattern/compile.h"

namespace sqlts {

/// End-to-end streaming SQL-TS execution: tuples arrive one at a time
/// (interleaved across clusters), each is routed to its CLUSTER BY
/// group's incremental OPS matcher, and every completed match is
/// projected through the SELECT list and delivered as an output row —
/// the paper's "user-defined aggregate over a stream" deployment with
/// the full language on top.
///
/// Execution is sharded when ExecOptions::num_threads > 1: clusters are
/// hash-partitioned across a fixed ShardPool, each shard owning its own
/// matcher map and bounded input queue, with matcher state fully
/// private per cluster.  In that mode output rows are buffered and
/// delivered during Finish() in exactly the order the single-threaded
/// path would have emitted them (by the push that completed each match,
/// then end-of-stream matches in encoded-key order), so results are
/// deterministic and identical for every thread count.  num_threads = 1
/// keeps the classic immediate-emission path, bit-identical to the
/// pre-shard implementation.
///
/// Fault tolerance (see docs/OPERATIONS.md):
///  - ExecOptions::governance supplies per-query buffered-tuple/byte
///    budgets, a deadline, cooperative cancellation, and the
///    malformed-input policy (fail fast vs skip-and-count).
///  - Checkpoint() serializes all live state into the versioned binary
///    container of engine/checkpoint.h; Restore() on a freshly created
///    executor reinstates it.  A restored executor fed the remaining
///    tuples produces bit-identical output and stats to an
///    uninterrupted run, at any thread count on either side.
///
/// Requirements: tuples must arrive in non-decreasing SEQUENCE BY order
/// *within each cluster* (a streaming engine cannot sort); violations
/// of the full SEQUENCE BY tuple are rejected.  Predicates must not
/// look ahead (see OpsStreamMatcher).
class StreamingQueryExecutor {
 public:
  /// Receives one projected output row per match.  Invoked on the
  /// calling thread: during Push()/Finish() when num_threads == 1,
  /// during Finish() and Checkpoint() only when num_threads > 1.
  using RowCallback = std::function<void(const Row&)>;

  /// Parses and compiles `query_text` against `schema`.  Only
  /// options.compile, options.num_threads, options.shard_queue_capacity
  /// and options.governance apply to streaming execution.
  static StatusOr<std::unique_ptr<StreamingQueryExecutor>> Create(
      std::string_view query_text, const Schema& schema,
      RowCallback on_row, const ExecOptions& options = {});

  ~StreamingQueryExecutor();

  /// Processes the next stream tuple.  With num_threads > 1 this only
  /// routes and enqueues (blocking when the owning shard's queue is
  /// full); matcher errors surface from Finish().
  ///
  /// Governance (when configured) is enforced here: kCancelled /
  /// kDeadlineExceeded / kResourceExhausted surface within one Push.
  /// Malformed rows (arity or type mismatch, SEQUENCE BY regressions)
  /// follow the BadInputPolicy: fail fast with a typed error, or drop
  /// the row and count it (see rows_skipped()).
  Status Push(Row row);

  /// Signals end-of-stream: the shard barrier drains every queue,
  /// trailing star groups close, final matches are emitted, and (in
  /// sharded mode) buffered rows are delivered in deterministic order.
  /// Returns the first error any shard encountered — including
  /// exceptions caught at the worker boundary.  Idempotent.
  Status Finish();

  /// Quiesces sharded execution without closing it: blocks until every
  /// shard queue is empty and every worker is idle, making all
  /// worker-side state visible to the caller, then surfaces the first
  /// worker error (if any).  A no-op when num_threads == 1.  Used by
  /// MultiStreamExecutor to serialize shared-catalog mutation
  /// (AddQuery/RemoveQuery) against in-flight shard workers that read
  /// the catalog through their cluster caches.
  Status Quiesce();

  /// Serializes all live state — per-cluster buffered tuples and
  /// attempt state, routing, sequence-order watermarks, stream
  /// position, skip counters, emission tags — into the versioned
  /// checkpoint container.  Quiesces the shard pool first and flushes
  /// any buffered output rows to the callback (they are "before" the
  /// checkpoint, and a resumed run must not re-emit them), so the
  /// produced bytes are identical for every thread count.  Fails if a
  /// shard has already failed.
  Status Checkpoint(std::string* out);

  /// Reinstates state captured by Checkpoint() on a freshly created
  /// executor for the same query text and input schema (thread count
  /// may differ).  Fails with IoError/InvalidArgument on corrupted or
  /// mismatched checkpoints.
  Status Restore(std::string_view bytes);

  /// Aggregated matcher statistics across all clusters.  With
  /// num_threads > 1 this is only meaningful after Finish().
  SearchStats stats() const;

  /// Per-shard counters (tuples routed, clusters owned, matcher stats,
  /// queue high-water marks, buffering peaks, skipped rows).  Populated
  /// by Finish(); one entry per shard (a single entry when
  /// num_threads == 1).
  const std::vector<ShardStats>& shard_stats() const {
    return final_shard_stats_;
  }

  /// Total tuples offered to Push() so far, including skipped ones —
  /// the stream position a resumed producer should continue from.
  int64_t rows_consumed() const { return consumed_; }
  /// Output watermark: rows delivered to the callback so far, in the
  /// deterministic emission order.  Persisted in checkpoints (after the
  /// flush, so it is identical at every thread count) and reinstated by
  /// Restore() — the k-th delivered row of a resumed run is bit-identical
  /// to the k-th of an uninterrupted one, which is what lets a
  /// replicated consumer deduplicate replayed output by sequence number
  /// (see src/replication/).
  int64_t rows_emitted() const { return rows_emitted_; }
  /// Malformed rows dropped under BadInputPolicy::kSkipAndCount.
  int64_t rows_skipped() const { return rows_skipped_; }

  int num_clusters() const { return static_cast<int>(routes_.size()); }
  const Schema& output_schema() const { return query_.output_schema; }

 private:
  /// Router-side cluster bookkeeping; touched only by the Push caller.
  struct RouteInfo {
    uint64_t ordinal = 0;        // dense, in first-appearance order
    int shard = 0;
    bool accepted = true;        // cluster filter verdict (first tuple)
    std::vector<Value> last_seq_key;  // full SEQUENCE BY tuple
    bool has_last = false;
  };

  /// Matcher state owned by exactly one shard worker.
  struct ClusterState {
    /// Shared-evaluation delegate the matcher points at (multi-query
    /// mode only); owned here, declared before `matcher` so it outlives
    /// it on destruction.
    std::unique_ptr<ElementEvaluator> evaluator;
    std::unique_ptr<OpsStreamMatcher> matcher;
    uint64_t emit_seq = 0;  // per-cluster emission counter
  };

  /// A buffered output row with its deterministic merge position.
  struct TaggedRow {
    uint64_t tag;   // push (or finish) event that completed the match
    uint64_t seq;   // per-cluster emission counter at that event
    Row row;
  };

  /// Everything one shard worker owns (index = shard id; the vector is
  /// sized before workers start and never resized).
  struct ShardState {
    std::map<uint64_t, ClusterState> clusters;  // keyed by ordinal
    std::vector<TaggedRow> out;   // sharded mode: buffered emissions
    Status error = Status::OK();  // first matcher error, if any
    uint64_t current_tag = 0;     // tag of the task being processed
    int64_t processed = 0;        // tasks consumed
  };

  StreamingQueryExecutor(CompiledQuery query, PatternPlan plan,
                         RowCallback on_row, const ExecOptions& options);

  /// Looks up (or creates) the routing entry for `row`'s cluster.
  StatusOr<RouteInfo*> RouteFor(const Row& row);
  /// Rejects rows whose values do not fit the input schema.
  Status CheckRowTypes(const Row& row) const;
  /// Rejects rows that regress on the full SEQUENCE BY tuple.
  Status CheckSequenceOrder(const Row& row, RouteInfo* info);
  /// Applies the BadInputPolicy to a malformed-row verdict: fail fast
  /// with `why`, or count the drop and return OK.
  Status HandleBadInput(Status why);
  /// Builds a cluster matcher wired to this executor's governance,
  /// ledger, emission path, and (in multi-query mode) a shared
  /// evaluator for the cluster; fills `cs`.
  Status MakeMatcher(int shard, uint64_t ordinal, ClusterState* cs);
  /// Consumes one routed tuple on its owning shard.
  Status ProcessTask(int shard, ShardPool::Task task);
  /// Match callback: projects the SELECT list and emits or buffers.
  void EmitRow(int shard, uint64_t ordinal, const Match& match,
               const SequenceView& view, int64_t base);
  /// Delivers every buffered TaggedRow in (tag, seq) order and clears
  /// the buffers.  Only meaningful when the pool is quiescent.
  void FlushBufferedRows();

  CompiledQuery query_;
  PatternPlan plan_;
  std::string query_text_;  // verbatim, for checkpoint identity
  RowCallback on_row_;
  int num_threads_;
  ExecGovernance governance_;
  /// Multi-query shared-evaluation factory (may be null).
  std::shared_ptr<ElementEvaluatorFactory> shared_eval_;
  /// Vectorized predicate tier (null when disabled, when shared_eval_
  /// takes precedence, or when no conjunct is vectorizable).  Immutable
  /// after construction; shard workers only call the const factory.
  std::unique_ptr<VectorizedPlanEval> vec_plan_;
  /// Router-populated ordinal → encoded cluster key, read once by a
  /// shard worker when it creates that cluster's matcher (multi-query
  /// mode only; guarded by the mutex because the router may be
  /// inserting a new cluster while a worker instantiates another).
  ts::Mutex ordinal_keys_mu_;
  std::unordered_map<uint64_t, std::string> ordinal_keys_
      GUARDED_BY(ordinal_keys_mu_);
  ResourceLedger ledger_;  // per-query buffered tuples/bytes
  std::vector<int> cluster_cols_;
  std::vector<int> sequence_cols_;
  std::map<std::string, RouteInfo> routes_;  // keyed by encoded key
  std::vector<std::unique_ptr<ShardState>> shards_;
  uint64_t push_tag_ = 0;  // global push counter (merge tag source)
  int64_t consumed_ = 0;   // tuples offered to Push, incl. skipped
  int64_t rows_skipped_ = 0;
  int64_t rows_emitted_ = 0;  // rows delivered to on_row_ (watermark)
  bool finished_ = false;
  Status final_status_ = Status::OK();
  SearchStats final_stats_;
  std::vector<ShardStats> final_shard_stats_;
  /// Declared last: its destructor joins workers that reference the
  /// members above.
  std::unique_ptr<ShardPool> pool_;
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_STREAM_EXECUTOR_H_
