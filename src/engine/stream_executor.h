#ifndef SQLTS_ENGINE_STREAM_EXECUTOR_H_
#define SQLTS_ENGINE_STREAM_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "engine/stream.h"
#include "parser/analyzer.h"
#include "pattern/compile.h"

namespace sqlts {

/// End-to-end streaming SQL-TS execution: tuples arrive one at a time
/// (interleaved across clusters), each is routed to its CLUSTER BY
/// group's incremental OPS matcher, and every completed match is
/// projected through the SELECT list and delivered as an output row —
/// the paper's "user-defined aggregate over a stream" deployment with
/// the full language on top.
///
/// Requirements: tuples must arrive in non-decreasing SEQUENCE BY order
/// *within each cluster* (a streaming engine cannot sort); violations
/// are rejected.  Predicates must not look ahead (see OpsStreamMatcher).
class StreamingQueryExecutor {
 public:
  /// Receives one projected output row per match.
  using RowCallback = std::function<void(const Row&)>;

  /// Parses and compiles `query_text` against `schema`.
  static StatusOr<std::unique_ptr<StreamingQueryExecutor>> Create(
      std::string_view query_text, const Schema& schema,
      RowCallback on_row, const CompileOptions& options = {});

  /// Processes the next stream tuple.
  Status Push(Row row);

  /// Signals end-of-stream: trailing star groups close and final
  /// matches are emitted.
  void Finish();

  /// Aggregated statistics across all clusters.
  SearchStats stats() const;
  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const Schema& output_schema() const { return query_.output_schema; }

 private:
  struct ClusterState {
    std::unique_ptr<OpsStreamMatcher> matcher;
    bool accepted = true;        // cluster filter verdict (first tuple)
    Value last_sequence_key;     // order enforcement
    bool has_last_key = false;
  };

  StreamingQueryExecutor(CompiledQuery query, PatternPlan plan,
                         RowCallback on_row);

  StatusOr<ClusterState*> ClusterFor(const Row& row);
  void EmitRow(const Match& match, const SequenceView& view, int64_t base);

  CompiledQuery query_;
  PatternPlan plan_;
  RowCallback on_row_;
  std::vector<int> cluster_cols_;
  std::vector<int> sequence_cols_;
  std::map<std::string, ClusterState> clusters_;  // keyed by encoded key
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_STREAM_EXECUTOR_H_
