#include "engine/stream.h"

#include <algorithm>

#include "common/logging.h"
#include "expr/eval.h"
#include "storage/sequence.h"

namespace sqlts {
namespace {

/// Most negative relative offset used by any predicate of the plan
/// (0 when none), and whether any predicate looks ahead.
void ScanOffsets(const PatternPlan& plan, int* min_offset,
                 bool* looks_ahead) {
  *min_offset = 0;
  *looks_ahead = false;
  for (int j = 1; j <= plan.m; ++j) {
    if (plan.predicates[j] == nullptr) continue;
    VisitColumnRefs(plan.predicates[j], [&](const ColumnRef& r) {
      if (r.relative) {
        *min_offset = std::min(*min_offset, r.total_offset);
        if (r.total_offset > 0) *looks_ahead = true;
      } else if (r.nav_offset < 0) {
        *min_offset = std::min(*min_offset, r.nav_offset);
      }
    });
  }
}

}  // namespace

StatusOr<OpsStreamMatcher> OpsStreamMatcher::Create(
    const PatternPlan* plan, Schema schema, MatchCallback on_match,
    const ExecGovernance* governance, ResourceLedger* ledger,
    ElementEvaluator* evaluator) {
  SQLTS_CHECK(plan != nullptr);
  int min_offset = 0;
  bool looks_ahead = false;
  ScanOffsets(*plan, &min_offset, &looks_ahead);
  if (looks_ahead) {
    return Status::InvalidArgument(
        "streaming match requires predicates without lookahead "
        "(positive previous/next offsets)");
  }
  return OpsStreamMatcher(plan, std::move(schema), std::move(on_match),
                          min_offset, governance, ledger, evaluator);
}

OpsStreamMatcher::OpsStreamMatcher(const PatternPlan* plan, Schema schema,
                                   MatchCallback on_match, int min_offset,
                                   const ExecGovernance* governance,
                                   ResourceLedger* ledger,
                                   ElementEvaluator* evaluator)
    : plan_(plan),
      schema_(schema),
      on_match_(std::move(on_match)),
      min_offset_(min_offset),
      gov_(governance),
      ledger_(ledger),
      evaluator_(evaluator),
      buffer_(schema),
      cnt_(plan->m + 1, 0),
      spans_(plan->m) {}

void OpsStreamMatcher::Account(int64_t tuples, int64_t bytes) {
  buffered_bytes_ += bytes;
  peak_buffered_ = std::max(peak_buffered_, buffer_.num_rows());
  peak_buffered_bytes_ = std::max(peak_buffered_bytes_, buffered_bytes_);
  if (ledger_ != nullptr) {
    ledger_->buffered_tuples.fetch_add(tuples, std::memory_order_relaxed);
    ledger_->buffered_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
}

Status OpsStreamMatcher::CheckBudget() const {
  if (gov_ == nullptr) return Status::OK();
  const int64_t tuples =
      ledger_ != nullptr
          ? ledger_->buffered_tuples.load(std::memory_order_relaxed)
          : buffer_.num_rows();
  const int64_t bytes =
      ledger_ != nullptr
          ? ledger_->buffered_bytes.load(std::memory_order_relaxed)
          : buffered_bytes_;
  if (gov_->max_buffered_tuples > 0 && tuples > gov_->max_buffered_tuples) {
    return Status::ResourceExhausted(
        "streaming buffer budget exceeded: " + std::to_string(tuples) +
        " tuples held live (budget " +
        std::to_string(gov_->max_buffered_tuples) +
        "); the active pattern attempt cannot release them");
  }
  if (gov_->max_buffered_bytes > 0 && bytes > gov_->max_buffered_bytes) {
    return Status::ResourceExhausted(
        "streaming byte budget exceeded: ~" + std::to_string(bytes) +
        " bytes held live (budget " +
        std::to_string(gov_->max_buffered_bytes) + ")");
  }
  return Status::OK();
}

Status OpsStreamMatcher::Push(Row row) {
  if (gov_ != nullptr) {
    SQLTS_RETURN_IF_ERROR(gov_->Check());
    SQLTS_RETURN_IF_ERROR(gov_->Fault("matcher.append"));
  }
  const int64_t row_bytes = EstimateRowBytes(row);
  SQLTS_RETURN_IF_ERROR(buffer_.AppendRow(std::move(row)));
  view_rows_.push_back(buffer_.num_rows() - 1);
  ++pushed_;
  Account(+1, row_bytes);
  Drain();
  if (gov_ != nullptr && gov_->cancel.cancel_requested()) {
    return Status::Cancelled("query cancelled via CancelToken");
  }
  MaybeEvict();
  return CheckBudget();
}

void OpsStreamMatcher::Finish() {
  const int m = plan_->m;
  // End of stream: the suspended attempt gets no more input.  An open
  // star group on the last element completes a match; otherwise the
  // attempt fails, and — as in batch OpsSearch — a pattern with stars
  // must retry later starts, whose star groups may consume few enough
  // tuples to fit in the remaining input.  Each retry re-runs Drain,
  // which either completes (emitting matches) or suspends at the end of
  // input again; start_ strictly increases, so this terminates.
  while (true) {
    if (gov_ != nullptr && gov_->cancel.cancel_requested()) return;
    if (j_ == m && plan_->star[m] && cnt_[m] > cnt_[m - 1]) {
      EmitMatch();
      Drain();
      continue;
    }
    if (plan_->has_star && plan_->anchored_refs && start_ + 1 < pushed_) {
      ResetAttempt(start_ + 1);
      Drain();
      continue;
    }
    break;
  }
}

void OpsStreamMatcher::EmitMatch() {
  Match match;
  match.spans = spans_;
  ++stats_.matches;
  if (on_match_) {
    SequenceView view(&buffer_, &view_rows_);
    on_match_(match, view, base_);
  }
  ResetAttempt(match.last() + 1);
}

void OpsStreamMatcher::ResetAttempt(int64_t new_start) {
  start_ = new_start;
  i_ = new_start;
  j_ = 1;
  std::fill(cnt_.begin(), cnt_.end(), 0);
  spans_.assign(plan_->m, GroupSpan{});
  presat_pending_ = false;
}

void OpsStreamMatcher::Drain() {
  const int m = plan_->m;
  const SearchTables& tables = plan_->tables;

  // A buffer-relative view (borrowing the incrementally-grown index)
  // and span translation for the evaluator.
  SequenceView view(&buffer_, &view_rows_);
  std::vector<GroupSpan> rel_spans(m);

  while (true) {
    // Cooperative cancellation: state is consistent between iterations,
    // so bailing here leaves a matcher that could even resume.
    if (gov_ != nullptr && gov_->cancel.cancel_requested()) return;
    if (j_ > m) {
      EmitMatch();
      continue;
    }
    if (i_ >= pushed_) return;  // wait for more input

    bool sat;
    if (presat_pending_) {
      sat = true;
      presat_pending_ = false;
      ++stats_.presat_skips;
    } else {
      ++stats_.evaluations;
      const ExprPtr& pred = plan_->predicates[j_];
      if (pred == nullptr) {
        sat = true;
      } else {
        for (int e = 0; e < m; ++e) {
          rel_spans[e] = spans_[e].valid()
                             ? GroupSpan{spans_[e].first - base_,
                                         spans_[e].last - base_}
                             : GroupSpan{};
        }
        if (evaluator_ != nullptr) {
          // The buffer view is positioned at i_ - base_, but the tuple's
          // stable identity across queries (whose buffers may have
          // evicted different prefixes) is its absolute position i_.
          sat = evaluator_->Test(j_, view, i_ - base_, rel_spans,
                                 /*abs_pos=*/i_);
        } else {
          EvalContext ctx;
          ctx.seq = &view;
          ctx.pos = i_ - base_;
          ctx.spans = &rel_spans;
          sat = EvalPredicate(*pred, ctx);
        }
      }
    }

    if (sat) {
      if (cnt_[j_] == cnt_[j_ - 1]) spans_[j_ - 1].first = i_;
      ++cnt_[j_];
      spans_[j_ - 1].last = i_;
      ++i_;
      if (!plan_->star[j_]) {
        ++j_;
        if (j_ <= m) cnt_[j_] = cnt_[j_ - 1];
      }
      continue;
    }

    if (plan_->star[j_] && cnt_[j_] > cnt_[j_ - 1]) {
      ++j_;
      if (j_ <= m) cnt_[j_] = cnt_[j_ - 1];
      continue;
    }

    ++stats_.jumps;
    const int s = tables.shift[j_];
    const int nx = tables.next[j_];
    const bool presat = tables.presatisfied[j_];
    if (nx == 0) {
      ResetAttempt(i_ + 1);
      continue;
    }
    // Mirror of OpsSearch's star-aware shift guard (see matcher.cc): a
    // shift of 1 with a multi-tuple star first group must restart one
    // tuple forward, because the implication graph never refutes the
    // candidate starts *inside* that group's span.  Needed only when an
    // anchored reference can make the replay diverge.
    if (s == 1 && plan_->star[1] && cnt_[1] > 1 && plan_->anchored_refs) {
      ResetAttempt(start_ + 1);
      continue;
    }
    const std::vector<int64_t> old_cnt = cnt_;
    const std::vector<GroupSpan> old_spans = spans_;
    const int64_t old_start = start_;
    start_ = old_start + old_cnt[s];
    std::fill(cnt_.begin(), cnt_.end(), 0);
    spans_.assign(m, GroupSpan{});
    for (int t = 1; t < nx; ++t) {
      cnt_[t] = old_cnt[s + t] - old_cnt[s];
      spans_[t - 1] = old_spans[s + t - 1];
    }
    cnt_[nx] = cnt_[nx - 1];
    i_ = old_start + old_cnt[s + nx - 1];
    j_ = nx;
    presat_pending_ = presat;
  }
}

void OpsStreamMatcher::MaybeEvict() {
  // Everything before the earliest position any test of the active
  // attempt (or its anchored references) can reach is dead.
  const int64_t reachable_from = start_ + min_offset_;
  const int64_t waste = reachable_from - base_;
  if (waste < 4096 || waste < buffer_.num_rows() / 2) return;
  int64_t freed_bytes = 0;
  for (int64_t r = 0; r < waste; ++r) {
    freed_bytes += EstimateRowBytes(buffer_.GetRow(r));
  }
  Table compacted(schema_);
  for (int64_t r = waste; r < buffer_.num_rows(); ++r) {
    SQLTS_CHECK_OK(compacted.AppendRow(buffer_.GetRow(r)));
  }
  buffer_ = std::move(compacted);
  view_rows_.resize(buffer_.num_rows());
  for (int64_t r = 0; r < buffer_.num_rows(); ++r) view_rows_[r] = r;
  base_ += waste;
  Account(-waste, -freed_bytes);
}

void OpsStreamMatcher::Checkpoint(CheckpointWriter* writer) const {
  // Plan fingerprint first, so restoring against a different pattern
  // shape fails loudly instead of resuming into inconsistent state.
  writer->WriteU32(static_cast<uint32_t>(plan_->m));
  writer->WriteI64(min_offset_);
  writer->WriteI64(base_);
  writer->WriteI64(pushed_);
  writer->WriteI64(start_);
  writer->WriteI64(i_);
  writer->WriteU32(static_cast<uint32_t>(j_));
  writer->WriteBool(presat_pending_);
  writer->WriteU32(static_cast<uint32_t>(cnt_.size()));
  for (int64_t c : cnt_) writer->WriteI64(c);
  writer->WriteU32(static_cast<uint32_t>(spans_.size()));
  for (const GroupSpan& s : spans_) {
    writer->WriteI64(s.first);
    writer->WriteI64(s.last);
  }
  writer->WriteI64(stats_.evaluations);
  writer->WriteI64(stats_.presat_skips);
  writer->WriteI64(stats_.jumps);
  writer->WriteI64(stats_.matches);
  writer->WriteU64(static_cast<uint64_t>(buffer_.num_rows()));
  for (int64_t r = 0; r < buffer_.num_rows(); ++r) {
    writer->WriteRow(buffer_.GetRow(r));
  }
}

Status OpsStreamMatcher::RestoreState(CheckpointReader* reader) {
  if (pushed_ != 0) {
    return Status::InvalidArgument(
        "RestoreState requires a freshly created matcher");
  }
  SQLTS_ASSIGN_OR_RETURN(uint32_t m, reader->ReadU32());
  if (static_cast<int>(m) != plan_->m) {
    return Status::InvalidArgument(
        "checkpoint pattern has " + std::to_string(m) +
        " elements, plan has " + std::to_string(plan_->m));
  }
  SQLTS_ASSIGN_OR_RETURN(int64_t min_offset, reader->ReadI64());
  if (static_cast<int>(min_offset) != min_offset_) {
    return Status::InvalidArgument(
        "checkpoint predicate window disagrees with the compiled plan");
  }
  SQLTS_ASSIGN_OR_RETURN(base_, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(pushed_, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(start_, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(i_, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(uint32_t j, reader->ReadU32());
  j_ = static_cast<int>(j);
  SQLTS_ASSIGN_OR_RETURN(presat_pending_, reader->ReadBool());
  SQLTS_ASSIGN_OR_RETURN(uint32_t cnt_size, reader->ReadU32());
  if (cnt_size != cnt_.size()) {
    return Status::IoError("checkpoint counter array size mismatch");
  }
  for (size_t t = 0; t < cnt_.size(); ++t) {
    SQLTS_ASSIGN_OR_RETURN(cnt_[t], reader->ReadI64());
  }
  SQLTS_ASSIGN_OR_RETURN(uint32_t span_count, reader->ReadU32());
  if (span_count != spans_.size()) {
    return Status::IoError("checkpoint span array size mismatch");
  }
  for (GroupSpan& s : spans_) {
    SQLTS_ASSIGN_OR_RETURN(s.first, reader->ReadI64());
    SQLTS_ASSIGN_OR_RETURN(s.last, reader->ReadI64());
  }
  SQLTS_ASSIGN_OR_RETURN(stats_.evaluations, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(stats_.presat_skips, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(stats_.jumps, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(stats_.matches, reader->ReadI64());
  SQLTS_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
  for (uint64_t r = 0; r < rows; ++r) {
    SQLTS_ASSIGN_OR_RETURN(Row row, reader->ReadRow());
    const int64_t row_bytes = EstimateRowBytes(row);
    SQLTS_RETURN_IF_ERROR(buffer_.AppendRow(std::move(row)));
    view_rows_.push_back(buffer_.num_rows() - 1);
    Account(+1, row_bytes);
  }
  return Status::OK();
}

}  // namespace sqlts
