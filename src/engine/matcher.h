#ifndef SQLTS_ENGINE_MATCHER_H_
#define SQLTS_ENGINE_MATCHER_H_

#include <vector>

#include "common/governance.h"
#include "engine/match.h"
#include "engine/shared_eval.h"
#include "pattern/compile.h"
#include "storage/sequence.h"

namespace sqlts {

/// Search knobs shared by the matchers.
struct SearchOptions {
  /// Stop after this many matches (0 = unlimited).  Early exit is exact:
  /// the first `max_matches` left-maximal matches are returned.
  int64_t max_matches = 0;
  /// When set (not owned; must outlive the search), the advance loop
  /// polls cancellation every iteration and the deadline periodically,
  /// returning the matches found so far on trigger.  The caller is
  /// expected to re-check governance and discard the partial result.
  const ExecGovernance* governance = nullptr;
  /// When set (not owned; must outlive the search), element predicate
  /// tests are delegated to this evaluator instead of evaluating
  /// plan.predicates[j] directly — the multi-query seam (shared
  /// per-tuple memoization across queries; see engine/shared_eval.h).
  /// The delegate must be answer-preserving, so results and stats stay
  /// bit-identical.
  ElementEvaluator* evaluator = nullptr;
  /// When set (not owned; must outlive the search), a bitmap over
  /// sequence positions — LSB-first 64-bit words, bit p of word p/64 —
  /// marking the attempt-start positions that can possibly begin a
  /// match.  The matchers advance every (re)start to the next set bit,
  /// never attempting a cleared position.  The caller must guarantee
  /// soundness (a cleared bit proves no match starts there; the
  /// columnar probe planner derives this from the anchor element's
  /// vectorized verdicts) and supply at least ceil(size/64) words.
  /// Match rows are unchanged; evaluation counts shrink.
  const std::vector<uint64_t>* candidate_starts = nullptr;
};

/// Baseline backtracking search (the paper's "naive algorithm"): try a
/// greedy match at every start position; on failure restart one tuple
/// later.  Matches are reported left-maximally (scan left to right;
/// after a match, resume after its last tuple).
///
/// `trace`, when non-null, records every predicate test for the
/// Figure-5 path curves.
std::vector<Match> NaiveSearch(const SequenceView& seq,
                               const PatternPlan& plan, SearchStats* stats,
                               SearchTrace* trace = nullptr,
                               const SearchOptions& options = {});

/// The paper's OPS algorithm (Sec 4.2.1 for star-free patterns, Sec 5's
/// counter-based generalization for star patterns), driven by the
/// compiled shift/next tables.  Produces exactly the same matches as
/// NaiveSearch while testing far fewer (input, element) pairs.
std::vector<Match> OpsSearch(const SequenceView& seq,
                             const PatternPlan& plan, SearchStats* stats,
                             SearchTrace* trace = nullptr,
                             const SearchOptions& options = {});

}  // namespace sqlts

#endif  // SQLTS_ENGINE_MATCHER_H_
