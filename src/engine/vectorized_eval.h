#ifndef SQLTS_ENGINE_VECTORIZED_EVAL_H_
#define SQLTS_ENGINE_VECTORIZED_EVAL_H_

#include <memory>
#include <vector>

#include "engine/shared_eval.h"
#include "expr/kernel.h"
#include "pattern/compile.h"
#include "types/schema.h"

namespace sqlts {

/// The vectorized predicate-evaluation tier for single-query execution
/// (batch and streaming): compiles every vectorizable tuple-local
/// conjunct of a pattern plan into a PredicateKernel once, then hands
/// each matcher an ElementEvaluator that answers element tests from
/// per-block verdict bitmasks — one tight kernel loop per
/// kKernelBlock tuples instead of one interpreter walk per test.
///
/// Answer preservation (the ElementEvaluator contract):
///  - An element's predicate is the conjunction of its top-level
///    conjuncts, and under the TRUE-collapsing EvalPredicate a
///    conjunction is TRUE iff every conjunct is TRUE (Kleene: any
///    FALSE or NULL conjunct makes the whole not-TRUE) — so testing
///    conjuncts independently is exact, the same argument the
///    multi-query evaluator relies on.
///  - Kernel conjuncts are tuple-local (relative references only), so
///    their verdict at a position is independent of match state and
///    can be cached per absolute position.
///  - Non-vectorizable conjuncts (anchored references, strings, ...)
///    are interpreted per test, exactly as before.
///
/// Streaming safety: verdicts are cached per absolute position while
/// the working view grows and evicts.  A block's lanes are filled
/// incrementally, never beyond the tuples that have arrived; streaming
/// plans reject lookahead (offsets <= 0), so a filled lane's verdict
/// is final the moment every referenced cell exists.  The eviction
/// invariant base <= start + min_offset guarantees any lane whose
/// computation could have seen an evicted cell is never queried again
/// (see the matcher's invariants in engine/stream.cc), so cached
/// verdicts always equal what the interpreter would answer at query
/// time.
class VectorizedPlanEval {
 public:
  /// Compiles kernels for `plan` over `schema`.  Returns nullptr when
  /// no element has a vectorizable conjunct (callers then skip the
  /// tier entirely).  Identical conjuncts (within and across elements)
  /// share one kernel and one verdict cache.
  static std::unique_ptr<VectorizedPlanEval> Create(const PatternPlan& plan,
                                                    const Schema& schema);

  ~VectorizedPlanEval();

  /// One evaluator per matcher (single-threaded use); this factory
  /// object is immutable and safe to call from concurrent shards.
  std::unique_ptr<ElementEvaluator> MakeEvaluator() const;

  /// Number of distinct compiled kernels (diagnostics / tests).
  int num_kernels() const { return static_cast<int>(kernels_.size()); }

 private:
  friend class VectorizedElementEvaluator;

  struct Conjunct {
    ExprPtr expr;                            // interpreter form
    const PredicateKernel* kernel = nullptr; // null => interpret per test
    int cache_slot = -1;                     // kernel conjuncts only
  };

  VectorizedPlanEval() = default;

  std::vector<std::vector<Conjunct>> elements_;  // 1-based, like the plan
  std::vector<std::unique_ptr<PredicateKernel>> kernels_;
  int num_slots_ = 0;
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_VECTORIZED_EVAL_H_
