#ifndef SQLTS_ENGINE_REVERSE_H_
#define SQLTS_ENGINE_REVERSE_H_

#include <vector>

#include "common/statusor.h"
#include "engine/matcher.h"
#include "parser/analyzer.h"
#include "pattern/compile.h"

namespace sqlts {

/// Sec 8 (further work): "it is possible to search the input stream in
/// either the forward or the reverse direction … select the better".
/// This module compiles the time-reversed pattern (element order
/// flipped, previous/next navigation negated), scores both directions
/// with the paper's heuristic (large average shift — and secondarily
/// next — predicts effective optimization), and runs the reverse search
/// by scanning a reversed view of the sequence.

/// Builds the plan of the reversed pattern.  Unimplemented when a
/// predicate uses anchored cross-element references (those would point
/// at groups not yet matched when scanning backwards).
StatusOr<PatternPlan> CompileReversePlan(const CompiledQuery& query,
                                         const CompileOptions& options = {});

/// The direction-selection heuristic.  Shift dominates ("a larger value
/// of shift has more effect on the speedup"); next breaks ties.
struct DirectionChoice {
  double forward_score = 0;
  double reverse_score = 0;
  bool prefer_reverse = false;
};
DirectionChoice ChooseSearchDirection(const PatternPlan& forward,
                                      const PatternPlan& reverse);

/// Runs OPS right-to-left using the reversed plan and maps the matches
/// back to forward coordinates and forward element order.
///
/// NOTE: greedy star grouping is direction-dependent, so on patterns
/// where adjacent star predicates overlap the reverse scan can group
/// (and in rare cases select) matches differently; the direction
/// heuristic is a performance tool, with exact agreement guaranteed when
/// adjacent elements are mutually exclusive (see tests).
std::vector<Match> ReverseOpsSearch(const SequenceView& seq,
                                    const PatternPlan& reverse_plan,
                                    SearchStats* stats);

}  // namespace sqlts

#endif  // SQLTS_ENGINE_REVERSE_H_
