#ifndef SQLTS_ENGINE_SHARD_POOL_H_
#define SQLTS_ENGINE_SHARD_POOL_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/match.h"
#include "storage/table.h"

namespace sqlts {

/// Per-shard execution counters layered on top of SearchStats: one
/// entry per worker of a sharded run, aggregated at Finish() time.
struct ShardStats {
  int64_t tuples_pushed = 0;     ///< tasks enqueued to this shard
  int64_t clusters = 0;          ///< clusters owned by this shard
  int64_t queue_high_water = 0;  ///< max queue depth observed
  int64_t rows_skipped = 0;      ///< bad rows dropped under kSkipAndCount
  /// Sum of the per-cluster matcher buffering high-water marks (an
  /// upper bound on tuples/bytes this shard held live at once).
  int64_t buffered_tuples_high = 0;
  int64_t buffered_bytes_high = 0;
  SearchStats search;            ///< matcher counters (evals, matches, ...)

  ShardStats& operator+=(const ShardStats& o) {
    tuples_pushed += o.tuples_pushed;
    clusters += o.clusters;
    queue_high_water = std::max(queue_high_water, o.queue_high_water);
    rows_skipped += o.rows_skipped;
    buffered_tuples_high += o.buffered_tuples_high;
    buffered_bytes_high += o.buffered_bytes_high;
    search += o.search;
    return *this;
  }
};

/// Sum of the per-shard matcher counters.
SearchStats TotalSearchStats(const std::vector<ShardStats>& shards);

/// Injective encoding of the cluster-key values `row[cols...]` as a map
/// key.  Each part is type-tagged and length-prefixed, so no value
/// content (separators, quotes, embedded NULs) can make two distinct
/// key tuples encode equal.
std::string EncodeClusterKey(const Row& row, const std::vector<int>& cols);

/// EncodeClusterKey over every column of `key` (a cluster-key tuple as
/// produced by ClusteredSequence::cluster_key).
std::string EncodeClusterKey(const Row& key);

/// Fixed-size pool of shard workers for per-cluster parallelism.
///
/// Clusters are hash-partitioned across N shards (ShardFor); each shard
/// runs one dedicated worker thread that consumes a bounded MPSC queue
/// of Tasks in FIFO order.  Because a cluster's tasks always land on
/// the same shard, per-cluster matcher state needs no locking: the
/// owning worker is the only thread that touches it.
///
/// Push() blocks while the target queue is full (backpressure bounds
/// memory).  Finish() is the barrier: it drains every queue, joins the
/// workers, and makes all worker-side state visible to the caller.
class ShardPool {
 public:
  /// One unit of work: a row routed to a cluster (streaming), or a bare
  /// cluster ordinal with an empty row (batch, one task per cluster).
  /// `tag` is a producer-assigned sequence number used for the ordered
  /// result merge.
  struct Task {
    Row row;
    uint64_t cluster = 0;
    uint64_t tag = 0;
  };

  /// Consumes one task on the shard's worker thread.  Handlers must
  /// only touch shard-local state (plus read-only shared data); errors
  /// are recorded shard-locally and surfaced after Finish().
  ///
  /// A handler that throws does NOT tear down the pool: the worker
  /// catches the exception at its boundary, converts it to an Internal
  /// Status (see first_error()), and keeps draining its queue without
  /// invoking the handler again — producers stay unblocked and the pool
  /// stays joinable.
  using TaskHandler = std::function<void(int shard, Task&& task)>;

  /// Starts `num_shards` workers, each with a queue bounded at
  /// `queue_capacity` tasks.
  ShardPool(int num_shards, int64_t queue_capacity, TaskHandler handler);

  /// Joins outstanding workers (equivalent to Finish()).
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Shard owning the cluster with encoded key `key`.
  int ShardFor(std::string_view key) const;

  /// Enqueues `task` on `shard`, blocking while its queue is full.
  void Push(int shard, Task task);

  /// Barrier: waits for every queued task to be consumed and joins the
  /// workers.  Idempotent.  After Finish() returns, everything the
  /// handlers wrote is visible to the calling thread.
  void Finish();

  /// Quiesces the pool without closing it: blocks until every queue is
  /// empty and every worker is idle.  On return all handler effects so
  /// far are visible to the caller, and — provided the caller is the
  /// only producer and pushes nothing meanwhile — the workers stay
  /// idle.  Used to take a consistent checkpoint mid-stream.
  void Drain();

  /// First error recorded by any worker's exception boundary (OK when
  /// every handler returned normally).  Stable after Drain()/Finish().
  Status first_error() const;

  /// Tasks pushed to `shard` so far (producer-side counter).
  int64_t pushed(int shard) const;
  /// Highest queue depth `shard` ever reached (valid after Finish()).
  int64_t queue_high_water(int shard) const;

 private:
  struct Shard {
    ts::Mutex mu;
    ts::CondVar not_empty;
    ts::CondVar not_full;
    ts::CondVar idle;  // queue empty and worker not busy
    std::deque<Task> queue GUARDED_BY(mu);
    bool closed GUARDED_BY(mu) = false;  // producer finished; drain and exit
    bool busy GUARDED_BY(mu) = false;    // worker is inside the handler
    /// First exception caught at the worker boundary.
    Status error GUARDED_BY(mu);
    int64_t pushed GUARDED_BY(mu) = 0;
    int64_t high_water GUARDED_BY(mu) = 0;
    // Written once before the worker starts, joined after it exits:
    // never touched concurrently, so not guarded.
    std::thread worker;
  };

  void WorkerLoop(int shard);

  TaskHandler handler_;
  int64_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Producer-thread-only (Finish/dtor run on the owning thread), so
  // not guarded.
  bool finished_ = false;
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_SHARD_POOL_H_
