#include "engine/matcher.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/logging.h"

namespace sqlts {
namespace {

/// First set bit at position >= `from` in the candidate bitmap, or `n`
/// when none remains (missing trailing words read as all-clear).
int64_t NextCandidateStart(const std::vector<uint64_t>& words, int64_t from,
                           int64_t n) {
  if (from < 0) from = 0;
  while (from < n) {
    const size_t w = static_cast<size_t>(from >> 6);
    if (w >= words.size()) return n;
    const uint64_t bits = words[w] >> (from & 63);
    if (bits != 0) {
      from += std::countr_zero(bits);
      return from < n ? from : n;
    }
    from = (from | 63) + 1;
  }
  return n;
}

/// Cheap governance polling for the search loops: cancellation is one
/// relaxed atomic load per call; the deadline clock is only consulted
/// every 256 calls.
class GovernancePoller {
 public:
  explicit GovernancePoller(const ExecGovernance* gov) : gov_(gov) {}

  bool ShouldStop() {
    if (gov_ == nullptr) return false;
    if (gov_->cancel.cancel_requested()) return true;
    return (++calls_ & 255) == 0 && gov_->has_deadline() &&
           std::chrono::steady_clock::now() >= gov_->deadline;
  }

 private:
  const ExecGovernance* gov_;
  uint64_t calls_ = 0;
};

/// Evaluates pattern element `j` (1-based) against sequence position
/// `pos`, with `spans` available for anchored cross-element references.
/// A non-null `evaluator` answers the test instead (shared multi-query
/// evaluation); it is answer-preserving, so either path yields the same
/// verdict.  In batch search the working view is the whole cluster, so
/// the stable cache position equals `pos`.
bool TestElement(const PatternPlan& plan, int j, const SequenceView& seq,
                 int64_t pos, const std::vector<GroupSpan>& spans,
                 SearchStats* stats, SearchTrace* trace,
                 ElementEvaluator* evaluator) {
  ++stats->evaluations;
  if (trace != nullptr) trace->push_back({pos, j});
  const ExprPtr& pred = plan.predicates[j];
  if (pred == nullptr) return true;  // TRUE element
  if (evaluator != nullptr) {
    return evaluator->Test(j, seq, pos, spans, /*abs_pos=*/pos);
  }
  EvalContext ctx;
  ctx.seq = &seq;
  ctx.pos = pos;
  ctx.spans = &spans;
  return EvalPredicate(*pred, ctx);
}

}  // namespace

std::string Match::ToString() const {
  std::string out = "[";
  for (size_t e = 0; e < spans.size(); ++e) {
    if (e) out += " ";
    out += std::to_string(spans[e].first) + ".." +
           std::to_string(spans[e].last);
  }
  out += "]";
  return out;
}

std::vector<Match> NaiveSearch(const SequenceView& seq,
                               const PatternPlan& plan, SearchStats* stats,
                               SearchTrace* trace,
                               const SearchOptions& options) {
  SQLTS_CHECK(stats != nullptr);
  const int m = plan.m;
  const int64_t n = seq.size();
  std::vector<Match> matches;

  GovernancePoller poller(options.governance);
  int64_t s = 0;
  while (s < n) {
    if (poller.ShouldStop()) break;
    if (options.max_matches > 0 &&
        static_cast<int64_t>(matches.size()) >= options.max_matches) {
      break;
    }
    if (options.candidate_starts != nullptr) {
      s = NextCandidateStart(*options.candidate_starts, s, n);
      if (s >= n) break;
    }
    // One greedy attempt starting at s.
    std::vector<GroupSpan> spans(m);
    int j = 1;
    int64_t i = s;
    bool matched = false;
    bool failed = false;
    while (true) {
      if (j > m) {
        matched = true;
        break;
      }
      if (i >= n) {
        // End of input: an open star group on the last element closes
        // the match; anything else fails.
        if (j == m && plan.star[m] && spans[m - 1].valid()) {
          matched = true;
        } else {
          failed = true;
        }
        break;
      }
      bool sat = TestElement(plan, j, seq, i, spans, stats, trace,
                             options.evaluator);
      if (sat) {
        if (!spans[j - 1].valid()) spans[j - 1].first = i;
        spans[j - 1].last = i;
        ++i;
        if (!plan.star[j]) ++j;
        continue;
      }
      if (plan.star[j] && spans[j - 1].valid()) {
        // Star already satisfied at least once: close the group and
        // retest this tuple against the following element.
        ++j;
        continue;
      }
      failed = true;
      break;
    }
    if (matched) {
      Match match;
      match.spans = std::move(spans);
      s = match.last() + 1;  // left-maximality: skip overlapping starts
      ++stats->matches;
      matches.push_back(std::move(match));
    } else {
      SQLTS_DCHECK(failed);
      ++s;
    }
  }
  return matches;
}

std::vector<Match> OpsSearch(const SequenceView& seq,
                             const PatternPlan& plan, SearchStats* stats,
                             SearchTrace* trace,
                             const SearchOptions& options) {
  SQLTS_CHECK(stats != nullptr);
  const int m = plan.m;
  const int64_t n = seq.size();
  const SearchTables& tables = plan.tables;
  std::vector<Match> matches;

  // Attempt state: `start` is the input position of the attempt's first
  // tuple; `cnt[t]` is the cumulative number of tuples consumed by
  // pattern positions 1..t (the paper's count array); `spans` the
  // per-element input spans.
  int64_t start = 0;
  std::vector<int64_t> cnt(m + 1, 0);
  std::vector<GroupSpan> spans(m);
  int j = 1;
  int64_t i = 0;
  bool presat_pending = false;

  auto reset_from = [&](int64_t new_start) {
    if (options.candidate_starts != nullptr) {
      // Attempts never begin at a position the prefilter refuted.  The
      // rebase path below stays unfiltered: a retained-but-doomed start
      // just fails on its own, which is slower but equally correct.
      new_start = NextCandidateStart(*options.candidate_starts, new_start, n);
    }
    start = new_start;
    i = new_start;
    j = 1;
    std::fill(cnt.begin(), cnt.end(), 0);
    spans.assign(m, GroupSpan{});
    presat_pending = false;
  };
  if (options.candidate_starts != nullptr) reset_from(0);

  GovernancePoller poller(options.governance);
  while (true) {
    if (poller.ShouldStop()) break;
    if (j > m) {
      Match match;
      match.spans = spans;
      ++stats->matches;
      int64_t resume = match.last() + 1;
      matches.push_back(std::move(match));
      if (options.max_matches > 0 &&
          static_cast<int64_t>(matches.size()) >= options.max_matches) {
        return matches;
      }
      reset_from(resume);  // left-maximality: no overlapping matches
      continue;
    }
    if (i >= n) {
      if (j == m && plan.star[m] && cnt[m] > cnt[m - 1]) {
        Match match;
        match.spans = spans;
        ++stats->matches;
        matches.push_back(std::move(match));
        break;
      }
      // Ran out of input mid-attempt.  The compiled tables don't apply
      // (no predicate evaluated false), and with a star in the pattern
      // a later start can still complete inside the input — its star
      // groups may consume fewer tuples — so fail the attempt and
      // restart one tuple forward, exactly as the naive engine does.
      // Star-free attempts consume one tuple per element, so any later
      // start would run out even sooner: stop.  Tuple-local patterns
      // (no anchored refs) also stop: a later attempt replays the same
      // per-tuple outcomes, so it dies at the end of input too.
      if (plan.has_star && plan.anchored_refs && start + 1 < n) {
        reset_from(start + 1);
        continue;
      }
      break;
    }

    bool sat;
    if (presat_pending) {
      // φ = 1 on the failing element: known satisfied, no test needed.
      sat = true;
      presat_pending = false;
      ++stats->presat_skips;
    } else {
      sat = TestElement(plan, j, seq, i, spans, stats, trace,
                        options.evaluator);
    }

    if (sat) {
      if (cnt[j] == cnt[j - 1]) spans[j - 1].first = i;  // group opens
      ++cnt[j];
      spans[j - 1].last = i;
      ++i;
      if (!plan.star[j]) {
        ++j;
        if (j <= m) cnt[j] = cnt[j - 1];
      }
      continue;
    }

    if (plan.star[j] && cnt[j] > cnt[j - 1]) {
      // Star group already non-empty: close it; same tuple is retested
      // against the next element (Sec 5 runtime rule 1).
      ++j;
      if (j <= m) cnt[j] = cnt[j - 1];
      continue;
    }

    // Mismatch: consult the compiled tables (Sec 5 runtime rule 2).
    ++stats->jumps;
    const int s = tables.shift[j];
    const int nx = tables.next[j];
    // The presatisfied flag belongs to the *failure* position j, not to
    // the resumption position nx.
    const bool presat = tables.presatisfied[j];
    if (nx == 0) {
      // No overlap can succeed: restart just past the failing tuple.
      // (At this point i == start + cnt[j-1]: the failing tuple.)
      reset_from(i + 1);
      continue;
    }
    // A shift of 1 with a star first element needs care: the implication
    // graph refutes restarts at whole-group boundaries only, and shift
    // == 1 means node (2,1) stays viable — which (via the trivially-true
    // virtual node (1,1), p₁ ⇒ p₁) leaves every tuple *inside* the first
    // star group as a candidate start.  The count-rebasing formula below
    // would jump past all of them to the group-2 boundary, so restart
    // one tuple forward instead, exactly as the naive engine would.
    // (For shift ≥ 2 those interior restarts are refuted: node (2,1)
    // unreachable is what makes the shift exceed 1.)  Only anchored
    // patterns need this: with tuple-local predicates an interior
    // restart replays the original attempt's outcomes and fails at the
    // same place, so the whole-group jump stays sound.
    if (s == 1 && plan.star[1] && cnt[1] > 1 && plan.anchored_refs) {
      reset_from(start + 1);
      continue;
    }
    // Rebase the attempt: new position t maps onto old position s + t.
    const std::vector<int64_t> old_cnt = cnt;
    const std::vector<GroupSpan> old_spans = spans;
    const int64_t old_start = start;
    start = old_start + old_cnt[s];
    for (int t = 0; t <= m; ++t) cnt[t] = 0;
    spans.assign(m, GroupSpan{});
    for (int t = 1; t < nx; ++t) {
      cnt[t] = old_cnt[s + t] - old_cnt[s];
      spans[t - 1] = old_spans[s + t - 1];
    }
    cnt[nx] = cnt[nx - 1];
    i = old_start + old_cnt[s + nx - 1];
    j = nx;
    presat_pending = presat;
  }
  return matches;
}

}  // namespace sqlts
