#ifndef SQLTS_ENGINE_MATCH_H_
#define SQLTS_ENGINE_MATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/eval.h"

namespace sqlts {

/// One pattern occurrence: the input span matched by each pattern
/// element (0-based element index; positions are sequence positions
/// within the cluster).
struct Match {
  std::vector<GroupSpan> spans;

  int64_t first() const { return spans.front().first; }
  int64_t last() const { return spans.back().last; }
  std::string ToString() const;
};

/// Cost accounting for the paper's metric ("the number of times that an
/// element of input is tested against a pattern element", Sec 7) plus
/// auxiliary counters.
struct SearchStats {
  int64_t evaluations = 0;   ///< predicate tests actually executed
  int64_t presat_skips = 0;  ///< tests skipped thanks to presatisfied φ=1
  int64_t jumps = 0;         ///< shift/next resumptions taken
  int64_t matches = 0;
  /// Columnar-storage counters (src/colstore/): row blocks the query's
  /// file(s) hold, how many the zone maps proved irrelevant, and the
  /// encoded payload bytes actually fetched.  Zero on in-memory
  /// execution.  These are I/O accounting, not part of the matcher's
  /// answer, and are deliberately excluded from checkpoint
  /// serialization and the replication stats fingerprint.
  int64_t blocks_total = 0;
  int64_t blocks_skipped = 0;
  int64_t bytes_read = 0;

  SearchStats& operator+=(const SearchStats& o) {
    evaluations += o.evaluations;
    presat_skips += o.presat_skips;
    jumps += o.jumps;
    matches += o.matches;
    blocks_total += o.blocks_total;
    blocks_skipped += o.blocks_skipped;
    bytes_read += o.bytes_read;
    return *this;
  }
};

/// One point of the Figure-5 search-path curve: which input element was
/// tested against which pattern element at each step.
struct TracePoint {
  int64_t i;  ///< input position (0-based)
  int j;      ///< pattern element (1-based)
};
using SearchTrace = std::vector<TracePoint>;

}  // namespace sqlts

#endif  // SQLTS_ENGINE_MATCH_H_
