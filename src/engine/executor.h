#ifndef SQLTS_ENGINE_EXECUTOR_H_
#define SQLTS_ENGINE_EXECUTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/governance.h"
#include "common/statusor.h"
#include "engine/matcher.h"
#include "engine/shard_pool.h"
#include "engine/shared_eval.h"
#include "parser/analyzer.h"
#include "pattern/compile.h"
#include "storage/table.h"

namespace sqlts {

/// Which search algorithm the executor drives.
enum class SearchAlgorithm {
  kOps,    ///< the paper's optimized pattern search (default)
  kNaive,  ///< backtracking baseline
};

/// Execution knobs.
struct ExecOptions {
  CompileOptions compile;
  SearchAlgorithm algorithm = SearchAlgorithm::kOps;
  /// Record every predicate test (expensive; Figure-5 style analysis).
  bool collect_trace = false;
  /// Worker shards for clustered execution.  1 (the default) runs the
  /// classic single-threaded path with bit-identical output; N > 1
  /// hash-partitions clusters across N workers and merges results back
  /// into the same deterministic order (cluster first-appearance order,
  /// matches in cluster order).  Queries with LIMIT or collect_trace
  /// fall back to the single-threaded path, whose early termination and
  /// trace order are inherently sequential.
  int num_threads = 1;
  /// Bound (in tasks) of each shard's input queue; Push blocks when the
  /// owning shard is this far behind (backpressure).
  int64_t shard_queue_capacity = 1024;
  /// Per-query resource governance: buffer budgets (streaming), a
  /// deadline, cooperative cancellation, bad-input policy, and the
  /// testing-only fault hook.  See common/governance.h.
  ExecGovernance governance;
  /// Vectorized predicate tier (ROADMAP item 1): compile each
  /// vectorizable tuple-local conjunct into a type-specialized batch
  /// kernel (expr/kernel.h) and answer element tests from per-block
  /// 3VL verdict bitmasks behind the ElementEvaluator seam.  Answer-
  /// preserving — output and SearchStats are bit-identical with the
  /// interpreter, which remains the fallback for non-vectorizable
  /// conjuncts (and the oracle the differential fuzzer compares
  /// against).  Applies to batch and streaming execution; ignored when
  /// `shared_eval` is set (the multi-query tier has its own kernel
  /// cache).
  bool vectorize = true;
  /// Multi-query seam (streaming): when set, the executor asks this
  /// factory for one ElementEvaluator per cluster matcher, delegating
  /// element predicate tests to it — the hook src/multiquery/ uses to
  /// share per-tuple predicate results across the queries of one
  /// workload.  Answer-preserving by contract; results are unchanged.
  std::shared_ptr<ElementEvaluatorFactory> shared_eval;
};

/// The result of running a SQL-TS query: the projected output rows plus
/// cost accounting (and optionally the full test trace).
struct QueryResult {
  Table output;
  SearchStats stats;
  SearchTrace trace;          // only when collect_trace
  PatternPlan plan;           // the compiled pattern, for EXPLAIN
  int num_clusters = 0;
  /// Malformed input rows dropped under BadInputPolicy::kSkipAndCount
  /// on the way into this query (e.g. by a CSV load feeding it).
  int64_t rows_skipped = 0;
  /// Per-shard counters (one entry per worker); empty when the query
  /// ran on the single-threaded path.
  std::vector<ShardStats> shard_stats;
};

/// True when the hoisted cluster filters accept this cluster (evaluated
/// on its first tuple; cluster columns are constant within a cluster).
/// Shared with the multi-query driver (src/multiquery/).
bool ClusterAccepted(const CompiledQuery& query, const SequenceView& seq);

/// Projects one match of `seq` through `query`'s SELECT list, coercing
/// each value to the declared output column type.
Row ProjectMatch(const CompiledQuery& query, const SequenceView& seq,
                 const Match& match);

/// End-to-end SQL-TS execution engine: parse → analyze → compile the
/// pattern → cluster & sort → match per cluster → evaluate the SELECT
/// list per match.
class QueryExecutor {
 public:
  /// Runs `query_text` against `input`.
  static StatusOr<QueryResult> Execute(const Table& input,
                                       std::string_view query_text,
                                       const ExecOptions& options = {});

  /// Runs an already-analyzed query (used by benchmarks to amortize
  /// parsing/compilation across runs).
  static StatusOr<QueryResult> ExecuteCompiled(const Table& input,
                                               const CompiledQuery& query,
                                               const ExecOptions& options = {});

  /// Loads `path` as CSV against `schema` and runs `query_text` on it.
  /// The load honors options.governance.bad_input: under kSkipAndCount
  /// malformed records are dropped and reported in
  /// QueryResult::rows_skipped instead of failing the query.
  static StatusOr<QueryResult> ExecuteCsvFile(const std::string& path,
                                              const Schema& schema,
                                              std::string_view query_text,
                                              const ExecOptions& options = {});
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_EXECUTOR_H_
