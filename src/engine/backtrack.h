#ifndef SQLTS_ENGINE_BACKTRACK_H_
#define SQLTS_ENGINE_BACKTRACK_H_

#include <vector>

#include "engine/match.h"
#include "pattern/compile.h"
#include "storage/sequence.h"

namespace sqlts {

/// Reference implementation of SQL-TS's *declarative* semantics: the
/// star is "one or more" with no greedy commitment, formalized by the
/// paper via recursive Datalog [11].  This matcher explores every star
/// split point (longest-first, so it coincides with the greedy matchers
/// whenever greedy succeeds) and reports left-maximal non-overlapping
/// matches.
///
/// Use cases:
///  * a semantics oracle: on patterns whose adjacent elements are
///    mutually exclusive, greedy = declarative (tested); on overlapping
///    predicates it finds matches greedy search gives up on;
///  * the cost model of un-optimized declarative evaluation (every
///    split probe is a predicate test).
std::vector<Match> BacktrackingSearch(const SequenceView& seq,
                                      const PatternPlan& plan,
                                      SearchStats* stats);

}  // namespace sqlts

#endif  // SQLTS_ENGINE_BACKTRACK_H_
