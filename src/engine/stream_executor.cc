#include "engine/stream_executor.h"

#include <algorithm>
#include <tuple>

#include "expr/eval.h"

namespace sqlts {

StatusOr<std::unique_ptr<StreamingQueryExecutor>>
StreamingQueryExecutor::Create(std::string_view query_text,
                               const Schema& schema, RowCallback on_row,
                               const ExecOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(query_text, schema));
  SQLTS_ASSIGN_OR_RETURN(PatternPlan plan,
                         CompilePattern(query, options.compile));
  // Fail early on lookahead predicates: probe a matcher construction.
  {
    auto probe =
        OpsStreamMatcher::Create(&plan, schema, OpsStreamMatcher::MatchCallback{});
    SQLTS_RETURN_IF_ERROR(probe.status());
  }
  auto exec = std::unique_ptr<StreamingQueryExecutor>(
      new StreamingQueryExecutor(std::move(query), std::move(plan),
                                 std::move(on_row), options));
  for (const std::string& c : exec->query_.cluster_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, schema.FindColumn(c));
    exec->cluster_cols_.push_back(idx);
  }
  for (const std::string& c : exec->query_.sequence_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, schema.FindColumn(c));
    exec->sequence_cols_.push_back(idx);
  }
  return exec;
}

StreamingQueryExecutor::StreamingQueryExecutor(CompiledQuery query,
                                               PatternPlan plan,
                                               RowCallback on_row,
                                               const ExecOptions& options)
    : query_(std::move(query)),
      plan_(std::move(plan)),
      on_row_(std::move(on_row)),
      num_threads_(std::max(1, options.num_threads)) {
  shards_.reserve(num_threads_);
  for (int s = 0; s < num_threads_; ++s) {
    shards_.push_back(std::make_unique<ShardState>());
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ShardPool>(
        num_threads_, options.shard_queue_capacity,
        [this](int shard, ShardPool::Task&& task) {
          (void)ProcessTask(shard, std::move(task));
        });
  }
}

StreamingQueryExecutor::~StreamingQueryExecutor() {
  if (pool_ != nullptr) pool_->Finish();
}

StatusOr<StreamingQueryExecutor::RouteInfo*>
StreamingQueryExecutor::RouteFor(const Row& row) {
  std::string key = EncodeClusterKey(row, cluster_cols_);
  auto it = routes_.find(key);
  if (it != routes_.end()) return &it->second;

  RouteInfo info;
  info.ordinal = static_cast<uint64_t>(routes_.size());
  info.shard = pool_ != nullptr ? pool_->ShardFor(key) : 0;
  // Cluster filters are constant per cluster: evaluate them on this
  // first tuple directly (they were rewritten to offset-0 references).
  if (!query_.cluster_filters.empty()) {
    Table one(query_.input_schema);
    SQLTS_RETURN_IF_ERROR(one.AppendRow(row));
    std::vector<int64_t> rows = {0};
    SequenceView view(&one, std::move(rows));
    EvalContext ctx;
    ctx.seq = &view;
    ctx.pos = 0;
    for (const ExprPtr& f : query_.cluster_filters) {
      if (!EvalPredicate(*f, ctx)) {
        info.accepted = false;
        break;
      }
    }
  }
  auto [pos, inserted] = routes_.emplace(std::move(key), std::move(info));
  SQLTS_CHECK(inserted);
  return &pos->second;
}

Status StreamingQueryExecutor::CheckSequenceOrder(const Row& row,
                                                  RouteInfo* info) {
  if (sequence_cols_.empty()) return Status::OK();
  if (info->has_last) {
    // Lexicographic comparison of the full SEQUENCE BY tuple; a NULL or
    // incomparable component ends the comparison (conservative accept).
    int verdict = 0;
    for (size_t k = 0; k < sequence_cols_.size(); ++k) {
      const Value& cur = row[sequence_cols_[k]];
      const Value& prev = info->last_seq_key[k];
      if (cur.is_null() || prev.is_null()) break;
      auto cmp = cur.Compare(prev);
      if (!cmp.ok()) break;
      if (*cmp != 0) {
        verdict = *cmp;
        break;
      }
    }
    if (verdict < 0) {
      return Status::InvalidArgument(
          "stream tuple out of SEQUENCE BY order within its cluster");
    }
  }
  info->last_seq_key.clear();
  for (int c : sequence_cols_) info->last_seq_key.push_back(row[c]);
  info->has_last = true;
  return Status::OK();
}

Status StreamingQueryExecutor::Push(Row row) {
  if (finished_) {
    return Status::InvalidArgument("Push after Finish");
  }
  if (static_cast<int>(row.size()) != query_.input_schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  SQLTS_ASSIGN_OR_RETURN(RouteInfo * info, RouteFor(row));
  if (!info->accepted) return Status::OK();
  SQLTS_RETURN_IF_ERROR(CheckSequenceOrder(row, info));
  ++push_tag_;
  ShardPool::Task task{std::move(row), info->ordinal, push_tag_};
  if (pool_ != nullptr) {
    pool_->Push(info->shard, std::move(task));
    return Status::OK();
  }
  return ProcessTask(0, std::move(task));
}

Status StreamingQueryExecutor::ProcessTask(int shard, ShardPool::Task task) {
  ShardState& st = *shards_[shard];
  auto it = st.clusters.find(task.cluster);
  if (it == st.clusters.end()) {
    const uint64_t ordinal = task.cluster;
    auto matcher = OpsStreamMatcher::Create(
        &plan_, query_.input_schema,
        [this, shard, ordinal](const Match& m, const SequenceView& v,
                               int64_t base) {
          EmitRow(shard, ordinal, m, v, base);
        });
    if (!matcher.ok()) {
      if (st.error.ok()) st.error = matcher.status();
      return matcher.status();
    }
    ClusterState cs;
    cs.matcher = std::make_unique<OpsStreamMatcher>(std::move(*matcher));
    it = st.clusters.emplace(ordinal, std::move(cs)).first;
  }
  st.current_tag = task.tag;
  ++st.processed;
  Status status = it->second.matcher->Push(std::move(task.row));
  if (!status.ok() && st.error.ok()) st.error = status;
  return status;
}

void StreamingQueryExecutor::EmitRow(int shard, uint64_t ordinal,
                                     const Match& match,
                                     const SequenceView& view,
                                     int64_t base) {
  if (!on_row_) return;
  // Translate spans into view coordinates for SELECT evaluation.
  std::vector<GroupSpan> rel(match.spans.size());
  for (size_t e = 0; e < match.spans.size(); ++e) {
    rel[e] = GroupSpan{match.spans[e].first - base,
                       match.spans[e].last - base};
  }
  EvalContext ctx;
  ctx.seq = &view;
  ctx.pos = 0;
  ctx.spans = &rel;
  Row out;
  out.reserve(query_.select.size());
  for (const SelectItem& item : query_.select) {
    out.push_back(EvalExpr(*item.expr, ctx));
  }
  if (pool_ == nullptr) {
    on_row_(out);
    return;
  }
  ShardState& st = *shards_[shard];
  ClusterState& cs = st.clusters.at(ordinal);
  st.out.push_back(TaggedRow{st.current_tag, cs.emit_seq++, std::move(out)});
}

Status StreamingQueryExecutor::Finish() {
  if (finished_) return final_status_;
  finished_ = true;
  if (pool_ != nullptr) pool_->Finish();  // barrier: drains and joins

  // Close trailing star groups.  Clusters finish in encoded-key order —
  // the iteration order of the pre-shard implementation, whose cluster
  // map was keyed by the encoded key — with Finish-time emissions
  // tagged after every push so the merge keeps them last.
  uint64_t tag = push_tag_;
  for (auto& [key, info] : routes_) {
    (void)key;
    if (!info.accepted) continue;
    ShardState& st = *shards_[info.shard];
    auto it = st.clusters.find(info.ordinal);
    if (it == st.clusters.end()) continue;
    st.current_tag = ++tag;
    it->second.matcher->Finish();
  }

  if (pool_ != nullptr && on_row_) {
    // Deterministic ordered merge: deliver buffered rows exactly as the
    // single-threaded path would have (by completing push, then by
    // per-cluster emission order).
    size_t total = 0;
    for (const auto& st : shards_) total += st->out.size();
    std::vector<TaggedRow> all;
    all.reserve(total);
    for (const auto& st : shards_) {
      for (TaggedRow& tr : st->out) all.push_back(std::move(tr));
      st->out.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const TaggedRow& a, const TaggedRow& b) {
                return std::tie(a.tag, a.seq) < std::tie(b.tag, b.seq);
              });
    for (const TaggedRow& tr : all) on_row_(tr.row);
  }

  // Aggregate the per-shard stats layer.
  final_shard_stats_.assign(shards_.size(), ShardStats{});
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardState& st = *shards_[s];
    ShardStats& out = final_shard_stats_[s];
    out.tuples_pushed = st.processed;
    out.clusters = static_cast<int64_t>(st.clusters.size());
    out.queue_high_water =
        pool_ != nullptr ? pool_->queue_high_water(static_cast<int>(s)) : 0;
    for (const auto& [ordinal, cs] : st.clusters) {
      (void)ordinal;
      out.search += cs.matcher->stats();
    }
    if (!st.error.ok() && final_status_.ok()) final_status_ = st.error;
  }
  final_stats_ = TotalSearchStats(final_shard_stats_);
  return final_status_;
}

SearchStats StreamingQueryExecutor::stats() const {
  if (finished_) return final_stats_;
  if (pool_ != nullptr) return SearchStats{};  // meaningful after Finish
  SearchStats total;
  for (const auto& [ordinal, cs] : shards_[0]->clusters) {
    (void)ordinal;
    total += cs.matcher->stats();
  }
  return total;
}

}  // namespace sqlts
