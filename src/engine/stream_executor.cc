#include "engine/stream_executor.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "analysis/linter.h"
#include "expr/eval.h"

namespace sqlts {

StatusOr<std::unique_ptr<StreamingQueryExecutor>>
StreamingQueryExecutor::Create(std::string_view query_text,
                               const Schema& schema, RowCallback on_row,
                               const ExecOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(query_text, schema));
  if (options.compile.refuse_provably_empty) {
    LintOptions lint_options;
    lint_options.oracle = options.compile.oracle;
    LintResult lint = LintQuery(query, lint_options);
    if (lint.has_errors()) {
      return Status::InvalidArgument("query is provably empty: " +
                                     SummarizeErrors(lint));
    }
  }
  SQLTS_ASSIGN_OR_RETURN(PatternPlan plan,
                         CompilePattern(query, options.compile));
  // Fail early on lookahead predicates: probe a matcher construction.
  {
    auto probe =
        OpsStreamMatcher::Create(&plan, schema, OpsStreamMatcher::MatchCallback{});
    SQLTS_RETURN_IF_ERROR(probe.status());
  }
  auto exec = std::unique_ptr<StreamingQueryExecutor>(
      new StreamingQueryExecutor(std::move(query), std::move(plan),
                                 std::move(on_row), options));
  exec->query_text_ = std::string(query_text);
  for (const std::string& c : exec->query_.cluster_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, schema.FindColumn(c));
    exec->cluster_cols_.push_back(idx);
  }
  for (const std::string& c : exec->query_.sequence_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, schema.FindColumn(c));
    exec->sequence_cols_.push_back(idx);
  }
  return exec;
}

StreamingQueryExecutor::StreamingQueryExecutor(CompiledQuery query,
                                               PatternPlan plan,
                                               RowCallback on_row,
                                               const ExecOptions& options)
    : query_(std::move(query)),
      plan_(std::move(plan)),
      on_row_(std::move(on_row)),
      num_threads_(std::max(1, options.num_threads)),
      governance_(options.governance),
      shared_eval_(options.shared_eval) {
  if (options.vectorize && shared_eval_ == nullptr) {
    vec_plan_ = VectorizedPlanEval::Create(plan_, query_.input_schema);
  }
  shards_.reserve(num_threads_);
  for (int s = 0; s < num_threads_; ++s) {
    shards_.push_back(std::make_unique<ShardState>());
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ShardPool>(
        num_threads_, options.shard_queue_capacity,
        [this](int shard, ShardPool::Task&& task) {
          (void)ProcessTask(shard, std::move(task));
        });
  }
}

StreamingQueryExecutor::~StreamingQueryExecutor() {
  if (pool_ != nullptr) pool_->Finish();
}

StatusOr<StreamingQueryExecutor::RouteInfo*>
StreamingQueryExecutor::RouteFor(const Row& row) {
  std::string key = EncodeClusterKey(row, cluster_cols_);
  auto it = routes_.find(key);
  if (it != routes_.end()) return &it->second;

  RouteInfo info;
  info.ordinal = static_cast<uint64_t>(routes_.size());
  info.shard = pool_ != nullptr ? pool_->ShardFor(key) : 0;
  // Cluster filters are constant per cluster: evaluate them on this
  // first tuple directly (they were rewritten to offset-0 references).
  if (!query_.cluster_filters.empty()) {
    Table one(query_.input_schema);
    SQLTS_RETURN_IF_ERROR(one.AppendRow(row));
    std::vector<int64_t> rows = {0};
    SequenceView view(&one, std::move(rows));
    EvalContext ctx;
    ctx.seq = &view;
    ctx.pos = 0;
    for (const ExprPtr& f : query_.cluster_filters) {
      if (!EvalPredicate(*f, ctx)) {
        info.accepted = false;
        break;
      }
    }
  }
  if (shared_eval_ != nullptr) {
    ts::MutexLock lock(ordinal_keys_mu_);
    ordinal_keys_.emplace(info.ordinal, key);
  }
  auto [pos, inserted] = routes_.emplace(std::move(key), std::move(info));
  SQLTS_CHECK(inserted);
  return &pos->second;
}

Status StreamingQueryExecutor::CheckRowTypes(const Row& row) const {
  // Mirror of Table::AppendRow's checks, run router-side so a bad row
  // is rejected (or skipped) before it can poison a worker's matcher.
  const Schema& schema = query_.input_schema;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Value& v = row[c];
    if (v.is_null() || v.kind() == schema.column(c).type) continue;
    if (schema.column(c).type == TypeKind::kDouble &&
        v.kind() == TypeKind::kInt64) {
      continue;  // SQL numeric coercion, applied at append time
    }
    return Status::TypeError(
        "stream tuple column '" + schema.column(c).name + "' expects " +
        std::string(TypeKindToString(schema.column(c).type)) + ", got " +
        std::string(TypeKindToString(v.kind())));
  }
  return Status::OK();
}

Status StreamingQueryExecutor::CheckSequenceOrder(const Row& row,
                                                  RouteInfo* info) {
  if (sequence_cols_.empty()) return Status::OK();
  if (info->has_last) {
    // Lexicographic comparison of the full SEQUENCE BY tuple; a NULL or
    // incomparable component ends the comparison (conservative accept).
    int verdict = 0;
    for (size_t k = 0; k < sequence_cols_.size(); ++k) {
      const Value& cur = row[sequence_cols_[k]];
      const Value& prev = info->last_seq_key[k];
      if (cur.is_null() || prev.is_null()) break;
      auto cmp = cur.Compare(prev);
      if (!cmp.ok()) break;
      if (*cmp != 0) {
        verdict = *cmp;
        break;
      }
    }
    if (verdict < 0) {
      return Status::InvalidArgument(
          "stream tuple out of SEQUENCE BY order within its cluster");
    }
  }
  info->last_seq_key.clear();
  for (int c : sequence_cols_) info->last_seq_key.push_back(row[c]);
  info->has_last = true;
  return Status::OK();
}

Status StreamingQueryExecutor::HandleBadInput(Status why) {
  if (governance_.bad_input == BadInputPolicy::kSkipAndCount) {
    ++rows_skipped_;
    return Status::OK();
  }
  return why;
}

Status StreamingQueryExecutor::Push(Row row) {
  if (finished_) {
    return Status::InvalidArgument("Push after Finish");
  }
  SQLTS_RETURN_IF_ERROR(governance_.Check());
  SQLTS_RETURN_IF_ERROR(governance_.Fault("stream.push"));
  ++consumed_;
  if (static_cast<int>(row.size()) != query_.input_schema.num_columns()) {
    return HandleBadInput(Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(query_.input_schema.num_columns())));
  }
  Status types = CheckRowTypes(row);
  if (!types.ok()) return HandleBadInput(std::move(types));
  SQLTS_ASSIGN_OR_RETURN(RouteInfo * info, RouteFor(row));
  if (!info->accepted) return Status::OK();
  Status order = CheckSequenceOrder(row, info);
  if (!order.ok()) return HandleBadInput(std::move(order));
  ++push_tag_;
  ShardPool::Task task{std::move(row), info->ordinal, push_tag_};
  if (pool_ != nullptr) {
    SQLTS_RETURN_IF_ERROR(governance_.Fault("shard.enqueue"));
    pool_->Push(info->shard, std::move(task));
    return Status::OK();
  }
  return ProcessTask(0, std::move(task));
}

Status StreamingQueryExecutor::MakeMatcher(int shard, uint64_t ordinal,
                                           ClusterState* cs) {
  if (shared_eval_ != nullptr) {
    std::string key;
    {
      ts::MutexLock lock(ordinal_keys_mu_);
      auto it = ordinal_keys_.find(ordinal);
      SQLTS_CHECK(it != ordinal_keys_.end());
      key = it->second;
    }
    cs->evaluator = shared_eval_->MakeEvaluator(key);
  } else if (vec_plan_ != nullptr) {
    cs->evaluator = vec_plan_->MakeEvaluator();
  }
  auto matcher = OpsStreamMatcher::Create(
      &plan_, query_.input_schema,
      [this, shard, ordinal](const Match& m, const SequenceView& v,
                             int64_t base) {
        EmitRow(shard, ordinal, m, v, base);
      },
      &governance_, &ledger_, cs->evaluator.get());
  if (!matcher.ok()) return matcher.status();
  cs->matcher = std::make_unique<OpsStreamMatcher>(std::move(*matcher));
  return Status::OK();
}

Status StreamingQueryExecutor::ProcessTask(int shard, ShardPool::Task task) {
  ShardState& st = *shards_[shard];
  // Once this shard has failed, drop further tasks instead of feeding
  // matchers past the failure (e.g. a budget breach must not keep
  // growing the buffer by one tuple per push while errors are pending).
  if (!st.error.ok()) return st.error;
  auto it = st.clusters.find(task.cluster);
  if (it == st.clusters.end()) {
    ClusterState cs;
    Status made = MakeMatcher(shard, task.cluster, &cs);
    if (!made.ok()) {
      if (st.error.ok()) st.error = made;
      return made;
    }
    it = st.clusters.emplace(task.cluster, std::move(cs)).first;
  }
  st.current_tag = task.tag;
  ++st.processed;
  Status status = it->second.matcher->Push(std::move(task.row));
  if (!status.ok() && st.error.ok()) st.error = status;
  return status;
}

void StreamingQueryExecutor::EmitRow(int shard, uint64_t ordinal,
                                     const Match& match,
                                     const SequenceView& view,
                                     int64_t base) {
  if (!on_row_) return;
  // Translate spans into view coordinates for SELECT evaluation.
  std::vector<GroupSpan> rel(match.spans.size());
  for (size_t e = 0; e < match.spans.size(); ++e) {
    rel[e] = GroupSpan{match.spans[e].first - base,
                       match.spans[e].last - base};
  }
  EvalContext ctx;
  ctx.seq = &view;
  ctx.pos = 0;
  ctx.spans = &rel;
  Row out;
  out.reserve(query_.select.size());
  for (const SelectItem& item : query_.select) {
    out.push_back(EvalExpr(*item.expr, ctx));
  }
  ShardState& st = *shards_[shard];
  ClusterState& cs = st.clusters.at(ordinal);
  // The counter advances on both paths so checkpoints are identical at
  // every thread count.
  const uint64_t seq = cs.emit_seq++;
  if (pool_ == nullptr) {
    ++rows_emitted_;
    on_row_(out);
    return;
  }
  st.out.push_back(TaggedRow{st.current_tag, seq, std::move(out)});
}

void StreamingQueryExecutor::FlushBufferedRows() {
  size_t total = 0;
  for (const auto& st : shards_) total += st->out.size();
  if (total == 0) return;
  // Deterministic ordered merge: deliver buffered rows exactly as the
  // single-threaded path would have (by completing push, then by
  // per-cluster emission order).
  std::vector<TaggedRow> all;
  all.reserve(total);
  for (const auto& st : shards_) {
    for (TaggedRow& tr : st->out) all.push_back(std::move(tr));
    st->out.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const TaggedRow& a, const TaggedRow& b) {
              return std::tie(a.tag, a.seq) < std::tie(b.tag, b.seq);
            });
  if (on_row_ == nullptr) return;
  for (const TaggedRow& tr : all) {
    ++rows_emitted_;
    on_row_(tr.row);
  }
}

Status StreamingQueryExecutor::Finish() {
  if (finished_) return final_status_;
  finished_ = true;
  if (pool_ != nullptr) pool_->Finish();  // barrier: drains and joins

  const Status gov = governance_.Check();
  if (gov.ok()) {
    // Close trailing star groups.  Clusters finish in encoded-key
    // order — the iteration order of the pre-shard implementation,
    // whose cluster map was keyed by the encoded key — with
    // Finish-time emissions tagged after every push so the merge keeps
    // them last.
    uint64_t tag = push_tag_;
    for (auto& [key, info] : routes_) {
      (void)key;
      if (!info.accepted) continue;
      ShardState& st = *shards_[info.shard];
      auto it = st.clusters.find(info.ordinal);
      if (it == st.clusters.end()) continue;
      st.current_tag = ++tag;
      it->second.matcher->Finish();
    }
    if (pool_ != nullptr) FlushBufferedRows();
  }

  // Aggregate the per-shard stats layer.
  final_shard_stats_.assign(shards_.size(), ShardStats{});
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardState& st = *shards_[s];
    ShardStats& out = final_shard_stats_[s];
    out.tuples_pushed = st.processed;
    out.clusters = static_cast<int64_t>(st.clusters.size());
    out.queue_high_water =
        pool_ != nullptr ? pool_->queue_high_water(static_cast<int>(s)) : 0;
    for (const auto& [ordinal, cs] : st.clusters) {
      (void)ordinal;
      out.search += cs.matcher->stats();
      out.buffered_tuples_high += cs.matcher->peak_buffered();
      out.buffered_bytes_high += cs.matcher->peak_buffered_bytes();
    }
    if (!st.error.ok() && final_status_.ok()) final_status_ = st.error;
  }
  // The router counts skips (thread-count independent); attribute them
  // to the first shard's entry so they survive aggregation.
  final_shard_stats_[0].rows_skipped = rows_skipped_;
  if (pool_ != nullptr) {
    // Exceptions caught at the worker boundary.
    const Status worker = pool_->first_error();
    if (!worker.ok() && final_status_.ok()) final_status_ = worker;
  }
  if (!gov.ok() && final_status_.ok()) final_status_ = gov;
  final_stats_ = TotalSearchStats(final_shard_stats_);
  return final_status_;
}

Status StreamingQueryExecutor::Quiesce() {
  if (pool_ != nullptr) {
    pool_->Drain();
    SQLTS_RETURN_IF_ERROR(pool_->first_error());
  }
  return Status::OK();
}

Status StreamingQueryExecutor::Checkpoint(std::string* out) {
  if (finished_) {
    return Status::InvalidArgument("Checkpoint after Finish");
  }
  if (pool_ != nullptr) {
    pool_->Drain();  // quiesce: workers idle, their state visible
    SQLTS_RETURN_IF_ERROR(pool_->first_error());
  }
  for (const auto& st : shards_) {
    SQLTS_RETURN_IF_ERROR(st->error);
  }
  // Buffered output precedes the checkpoint: deliver it now so a
  // resumed run never re-emits it (exactly-once), and so the payload
  // below is identical at every thread count.
  if (pool_ != nullptr) FlushBufferedRows();

  CheckpointWriter w;
  w.WriteString(query_text_);
  w.WriteString(query_.input_schema.ToString());
  w.WriteI64(consumed_);
  w.WriteU64(push_tag_);
  w.WriteI64(rows_skipped_);
  w.WriteI64(rows_emitted_);
  w.WriteU64(routes_.size());
  for (const auto& [key, info] : routes_) {
    w.WriteString(key);
    w.WriteU64(info.ordinal);
    w.WriteBool(info.accepted);
    w.WriteBool(info.has_last);
    w.WriteU32(static_cast<uint32_t>(info.last_seq_key.size()));
    for (const Value& v : info.last_seq_key) w.WriteValue(v);
    const ShardState& st = *shards_[info.shard];
    auto it = st.clusters.find(info.ordinal);
    const bool has_matcher = it != st.clusters.end();
    w.WriteBool(has_matcher);
    if (has_matcher) {
      w.WriteU64(it->second.emit_seq);
      it->second.matcher->Checkpoint(&w);
    }
  }
  *out = w.Finalize();
  return Status::OK();
}

Status StreamingQueryExecutor::Restore(std::string_view bytes) {
  if (finished_ || consumed_ != 0 || push_tag_ != 0 || !routes_.empty()) {
    return Status::InvalidArgument(
        "Restore requires a freshly created executor");
  }
  SQLTS_ASSIGN_OR_RETURN(std::string_view payload, OpenCheckpoint(bytes));
  CheckpointReader r(payload);
  SQLTS_ASSIGN_OR_RETURN(std::string query_text, r.ReadString());
  if (query_text != query_text_) {
    return Status::InvalidArgument(
        "checkpoint was taken by a different query text");
  }
  SQLTS_ASSIGN_OR_RETURN(std::string schema_text, r.ReadString());
  if (schema_text != query_.input_schema.ToString()) {
    return Status::InvalidArgument(
        "checkpoint input schema [" + schema_text +
        "] does not match this executor's [" +
        query_.input_schema.ToString() + "]");
  }
  SQLTS_ASSIGN_OR_RETURN(consumed_, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(push_tag_, r.ReadU64());
  SQLTS_ASSIGN_OR_RETURN(rows_skipped_, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(rows_emitted_, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(uint64_t route_count, r.ReadU64());
  for (uint64_t n = 0; n < route_count; ++n) {
    SQLTS_ASSIGN_OR_RETURN(std::string key, r.ReadString());
    RouteInfo info;
    SQLTS_ASSIGN_OR_RETURN(info.ordinal, r.ReadU64());
    SQLTS_ASSIGN_OR_RETURN(info.accepted, r.ReadBool());
    SQLTS_ASSIGN_OR_RETURN(info.has_last, r.ReadBool());
    SQLTS_ASSIGN_OR_RETURN(uint32_t seq_vals, r.ReadU32());
    for (uint32_t k = 0; k < seq_vals; ++k) {
      SQLTS_ASSIGN_OR_RETURN(Value v, r.ReadValue());
      info.last_seq_key.push_back(std::move(v));
    }
    // Shard placement is a property of this executor's pool, not of the
    // checkpoint: recompute it, so thread counts may differ across the
    // kill/restore boundary.
    info.shard = pool_ != nullptr ? pool_->ShardFor(key) : 0;
    if (shared_eval_ != nullptr) {
      ts::MutexLock lock(ordinal_keys_mu_);
      ordinal_keys_.emplace(info.ordinal, key);
    }
    SQLTS_ASSIGN_OR_RETURN(bool has_matcher, r.ReadBool());
    if (has_matcher) {
      ClusterState cs;
      SQLTS_ASSIGN_OR_RETURN(cs.emit_seq, r.ReadU64());
      SQLTS_RETURN_IF_ERROR(MakeMatcher(info.shard, info.ordinal, &cs));
      SQLTS_RETURN_IF_ERROR(cs.matcher->RestoreState(&r));
      // Workers are parked: the first task for this shard is enqueued
      // under its mutex, which publishes this insert to the worker.
      shards_[info.shard]->clusters.emplace(info.ordinal, std::move(cs));
    }
    auto [pos, inserted] = routes_.emplace(std::move(key), std::move(info));
    (void)pos;
    if (!inserted) {
      return Status::IoError("checkpoint contains a duplicate cluster key");
    }
  }
  if (r.remaining() != 0) {
    return Status::IoError("checkpoint has " +
                           std::to_string(r.remaining()) +
                           " trailing bytes after the last cluster");
  }
  return Status::OK();
}

SearchStats StreamingQueryExecutor::stats() const {
  if (finished_) return final_stats_;
  if (pool_ != nullptr) return SearchStats{};  // meaningful after Finish
  SearchStats total;
  for (const auto& [ordinal, cs] : shards_[0]->clusters) {
    (void)ordinal;
    total += cs.matcher->stats();
  }
  return total;
}

}  // namespace sqlts
