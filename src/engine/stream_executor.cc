#include "engine/stream_executor.h"

#include "expr/eval.h"

namespace sqlts {
namespace {

/// Encodes the cluster key values as a map key (ToString is injective
/// enough per type: strings are quoted, numerics canonical).
std::string EncodeKey(const Row& row, const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) {
    key += row[c].ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

StatusOr<std::unique_ptr<StreamingQueryExecutor>>
StreamingQueryExecutor::Create(std::string_view query_text,
                               const Schema& schema, RowCallback on_row,
                               const CompileOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(query_text, schema));
  SQLTS_ASSIGN_OR_RETURN(PatternPlan plan, CompilePattern(query, options));
  // Fail early on lookahead predicates: probe a matcher construction.
  {
    auto probe =
        OpsStreamMatcher::Create(&plan, schema, OpsStreamMatcher::MatchCallback{});
    SQLTS_RETURN_IF_ERROR(probe.status());
  }
  auto exec = std::unique_ptr<StreamingQueryExecutor>(
      new StreamingQueryExecutor(std::move(query), std::move(plan),
                                 std::move(on_row)));
  for (const std::string& c : exec->query_.cluster_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, schema.FindColumn(c));
    exec->cluster_cols_.push_back(idx);
  }
  for (const std::string& c : exec->query_.sequence_by) {
    SQLTS_ASSIGN_OR_RETURN(int idx, schema.FindColumn(c));
    exec->sequence_cols_.push_back(idx);
  }
  return exec;
}

StreamingQueryExecutor::StreamingQueryExecutor(CompiledQuery query,
                                               PatternPlan plan,
                                               RowCallback on_row)
    : query_(std::move(query)),
      plan_(std::move(plan)),
      on_row_(std::move(on_row)) {}

StatusOr<StreamingQueryExecutor::ClusterState*>
StreamingQueryExecutor::ClusterFor(const Row& row) {
  std::string key = EncodeKey(row, cluster_cols_);
  auto it = clusters_.find(key);
  if (it != clusters_.end()) return &it->second;

  ClusterState state;
  auto matcher = OpsStreamMatcher::Create(
      &plan_, query_.input_schema,
      [this](const Match& m, const SequenceView& v, int64_t base) {
        EmitRow(m, v, base);
      });
  SQLTS_RETURN_IF_ERROR(matcher.status());
  state.matcher =
      std::make_unique<OpsStreamMatcher>(std::move(*matcher));
  // Cluster filters are constant per cluster: evaluate them on this
  // first tuple directly (they were rewritten to offset-0 references).
  if (!query_.cluster_filters.empty()) {
    Table one(query_.input_schema);
    SQLTS_RETURN_IF_ERROR(one.AppendRow(row));
    std::vector<int64_t> rows = {0};
    SequenceView view(&one, std::move(rows));
    EvalContext ctx;
    ctx.seq = &view;
    ctx.pos = 0;
    for (const ExprPtr& f : query_.cluster_filters) {
      if (!EvalPredicate(*f, ctx)) {
        state.accepted = false;
        break;
      }
    }
  }
  auto [pos, inserted] = clusters_.emplace(std::move(key), std::move(state));
  SQLTS_CHECK(inserted);
  return &pos->second;
}

Status StreamingQueryExecutor::Push(Row row) {
  if (static_cast<int>(row.size()) != query_.input_schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  SQLTS_ASSIGN_OR_RETURN(ClusterState * state, ClusterFor(row));
  if (!state->accepted) return Status::OK();
  // Enforce per-cluster SEQUENCE BY order (first sequence column is the
  // primary key of the ordering; ties are allowed).
  if (!sequence_cols_.empty()) {
    const Value& key = row[sequence_cols_[0]];
    if (state->has_last_key && !key.is_null() &&
        !state->last_sequence_key.is_null()) {
      auto cmp = key.Compare(state->last_sequence_key);
      if (cmp.ok() && *cmp < 0) {
        return Status::InvalidArgument(
            "stream tuple out of SEQUENCE BY order within its cluster");
      }
    }
    state->last_sequence_key = key;
    state->has_last_key = true;
  }
  return state->matcher->Push(std::move(row));
}

void StreamingQueryExecutor::Finish() {
  for (auto& [key, state] : clusters_) {
    (void)key;
    if (state.accepted) state.matcher->Finish();
  }
}

void StreamingQueryExecutor::EmitRow(const Match& match,
                                     const SequenceView& view,
                                     int64_t base) {
  if (!on_row_) return;
  // Translate spans into view coordinates for SELECT evaluation.
  std::vector<GroupSpan> rel(match.spans.size());
  for (size_t e = 0; e < match.spans.size(); ++e) {
    rel[e] = GroupSpan{match.spans[e].first - base,
                       match.spans[e].last - base};
  }
  EvalContext ctx;
  ctx.seq = &view;
  ctx.pos = 0;
  ctx.spans = &rel;
  Row out;
  out.reserve(query_.select.size());
  for (const SelectItem& item : query_.select) {
    out.push_back(EvalExpr(*item.expr, ctx));
  }
  on_row_(out);
}

SearchStats StreamingQueryExecutor::stats() const {
  SearchStats total;
  for (const auto& [key, state] : clusters_) {
    (void)key;
    if (state.matcher != nullptr) total += state.matcher->stats();
  }
  return total;
}

}  // namespace sqlts
