#ifndef SQLTS_ENGINE_SHARED_EVAL_H_
#define SQLTS_ENGINE_SHARED_EVAL_H_

#include <memory>
#include <string>

#include "expr/eval.h"
#include "storage/sequence.h"

namespace sqlts {

/// Delegate for pattern-element predicate tests, the seam the
/// multi-query subsystem (src/multiquery/) plugs into: when a matcher
/// runs with an ElementEvaluator, every element test goes through
/// Test() instead of evaluating plan.predicates[j] directly, which lets
/// a workload-level driver answer repeated tests of the same canonical
/// predicate against the same tuple from a shared per-cluster cache.
///
/// Contract: Test(j, seq, pos, spans, abs_pos) must return exactly what
/// EvalPredicate(*plan.predicates[j], {seq, pos, spans}) would — the
/// delegate may only change *how* the answer is produced (memoization,
/// implication inference), never the answer itself.  The matchers'
/// search paths, and therefore their output and SearchStats, are
/// bit-identical with and without a delegate.
///
/// `pos` is the position within `seq` (the matcher's working view);
/// `abs_pos` is the stable position of the same tuple counted from the
/// start of the cluster's stream — equal to `pos` in batch execution,
/// `base + pos` in streaming, where the working view may have evicted a
/// prefix.  Caches must key on `abs_pos`: it names the tuple
/// consistently across queries whose buffers are in different states.
class ElementEvaluator {
 public:
  virtual ~ElementEvaluator() = default;

  /// Evaluates pattern element `j` (1-based) at `pos`; never called for
  /// TRUE elements (plan.predicates[j] == nullptr).
  virtual bool Test(int j, const SequenceView& seq, int64_t pos,
                    const std::vector<GroupSpan>& spans, int64_t abs_pos) = 0;
};

/// Builds one ElementEvaluator per cluster for a streaming query.  The
/// executor calls MakeEvaluator when it creates a cluster's matcher;
/// `encoded_cluster_key` (see EncodeClusterKey) identifies the cluster
/// consistently across every query of a shared scan, so implementations
/// can hand matchers of different queries views onto one shared
/// per-cluster cache.  MakeEvaluator may be called from shard worker
/// threads and must be thread-safe; the returned evaluator is used only
/// by the matcher it was created for (single-threaded), but several
/// evaluators of the same cluster may Test concurrently from different
/// queries' workers — the shared state behind them must synchronize.
class ElementEvaluatorFactory {
 public:
  virtual ~ElementEvaluatorFactory() = default;

  virtual std::unique_ptr<ElementEvaluator> MakeEvaluator(
      const std::string& encoded_cluster_key) = 0;
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_SHARED_EVAL_H_
