#include "engine/kmp_search.h"

#include "pattern/shift_next.h"

namespace sqlts {

std::vector<int64_t> NaiveTextSearch(const std::string& text,
                                     const std::string& pattern,
                                     int64_t* comparisons) {
  std::vector<int64_t> out;
  *comparisons = 0;
  const int64_t n = static_cast<int64_t>(text.size());
  const int64_t m = static_cast<int64_t>(pattern.size());
  if (m == 0) return out;
  for (int64_t s = 0; s + m <= n; ++s) {
    int64_t j = 0;
    while (j < m) {
      ++*comparisons;
      if (text[s + j] != pattern[j]) break;
      ++j;
    }
    if (j == m) out.push_back(s);
  }
  return out;
}

std::vector<int64_t> KmpTextSearch(const std::string& text,
                                   const std::string& pattern,
                                   int64_t* comparisons) {
  std::vector<int64_t> out;
  *comparisons = 0;
  const int64_t n = static_cast<int64_t>(text.size());
  const int m = static_cast<int>(pattern.size());
  if (m == 0) return out;
  const std::vector<int> next = BuildKmpNext(pattern);

  // The paper's Sec 3.1 loop, extended to report all occurrences: after
  // a full match we continue as if a mismatch had occurred past the end
  // (standard KMP restart via the border of the whole pattern).
  // Using the (non-optimized) border for restarts keeps overlapping
  // matches; next[] drives mismatch recovery.
  std::vector<int> border(m + 1, 0);
  for (int j = 2, t = 0; j <= m; ++j) {
    while (t > 0 && pattern[j - 1] != pattern[t]) t = border[t];
    if (pattern[j - 1] == pattern[t]) ++t;
    border[j] = t;
  }

  int j = 1;
  int64_t i = 1;
  while (i <= n) {
    while (j > 0) {
      ++*comparisons;
      if (text[i - 1] == pattern[j - 1]) break;
      j = next[j];
    }
    ++i;
    ++j;
    if (j > m) {
      out.push_back(i - 1 - m);
      j = border[m] + 1;
    }
  }
  return out;
}

}  // namespace sqlts
