#include "engine/executor.h"

#include "storage/sequence.h"

namespace sqlts {
namespace {

/// Coerces a computed SELECT value to the declared output column type
/// (int64 results may feed double columns, etc.).
Value CoerceTo(TypeKind want, Value v) {
  if (v.is_null() || v.kind() == want) return v;
  if (want == TypeKind::kDouble && v.kind() == TypeKind::kInt64) {
    return Value::Double(static_cast<double>(v.int64_value()));
  }
  if (want == TypeKind::kInt64 && v.kind() == TypeKind::kDouble) {
    return Value::Int64(static_cast<int64_t>(v.double_value()));
  }
  return v;  // AppendRow will surface genuine type errors
}

/// True when the hoisted cluster filters accept this cluster (evaluated
/// on its first tuple; cluster columns are constant within a cluster).
bool ClusterAccepted(const CompiledQuery& query, const SequenceView& seq) {
  if (seq.size() == 0) return false;
  EvalContext ctx;
  ctx.seq = &seq;
  ctx.pos = 0;
  ctx.spans = nullptr;
  for (const ExprPtr& f : query.cluster_filters) {
    if (!EvalPredicate(*f, ctx)) return false;
  }
  return true;
}

}  // namespace

StatusOr<QueryResult> QueryExecutor::Execute(const Table& input,
                                             std::string_view query_text,
                                             const ExecOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(query_text, input.schema()));
  return ExecuteCompiled(input, query, options);
}

StatusOr<QueryResult> QueryExecutor::ExecuteCompiled(
    const Table& input, const CompiledQuery& query,
    const ExecOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(PatternPlan plan,
                         CompilePattern(query, options.compile));
  SQLTS_ASSIGN_OR_RETURN(
      ClusteredSequence clusters,
      ClusteredSequence::Build(&input, query.cluster_by, query.sequence_by));

  QueryResult result{Table(query.output_schema), SearchStats{},
                     SearchTrace{}, plan, clusters.num_clusters()};

  for (int c = 0; c < clusters.num_clusters(); ++c) {
    const SequenceView& seq = clusters.cluster(c);
    if (!ClusterAccepted(query, seq)) continue;
    // LIMIT: stop searching once enough rows were produced (exact early
    // termination — the first N left-maximal matches, in cluster order).
    SearchOptions search_opts;
    if (query.limit > 0) {
      int64_t remaining = query.limit - result.output.num_rows();
      if (remaining <= 0) break;
      search_opts.max_matches = remaining;
    }

    SearchStats stats;
    SearchTrace* trace = options.collect_trace ? &result.trace : nullptr;
    std::vector<Match> matches =
        options.algorithm == SearchAlgorithm::kOps
            ? OpsSearch(seq, plan, &stats, trace, search_opts)
            : NaiveSearch(seq, plan, &stats, trace, search_opts);
    result.stats += stats;

    for (const Match& match : matches) {
      EvalContext ctx;
      ctx.seq = &seq;
      ctx.pos = 0;
      ctx.spans = &match.spans;
      Row row;
      row.reserve(query.select.size());
      for (size_t s = 0; s < query.select.size(); ++s) {
        Value v = EvalExpr(*query.select[s].expr, ctx);
        row.push_back(
            CoerceTo(result.output.schema().column(s).type, std::move(v)));
      }
      SQLTS_RETURN_IF_ERROR(result.output.AppendRow(std::move(row)));
    }
  }
  return result;
}

}  // namespace sqlts
