#include "engine/executor.h"

#include <algorithm>

#include "analysis/linter.h"
#include "engine/vectorized_eval.h"
#include "storage/csv.h"
#include "storage/sequence.h"

namespace sqlts {
namespace {

/// Coerces a computed SELECT value to the declared output column type
/// (int64 results may feed double columns, etc.).
Value CoerceTo(TypeKind want, Value v) {
  if (v.is_null() || v.kind() == want) return v;
  if (want == TypeKind::kDouble && v.kind() == TypeKind::kInt64) {
    return Value::Double(static_cast<double>(v.int64_value()));
  }
  if (want == TypeKind::kInt64 && v.kind() == TypeKind::kDouble) {
    return Value::Int64(static_cast<int64_t>(v.double_value()));
  }
  return v;  // AppendRow will surface genuine type errors
}

}  // namespace

bool ClusterAccepted(const CompiledQuery& query, const SequenceView& seq) {
  if (seq.size() == 0) return false;
  EvalContext ctx;
  ctx.seq = &seq;
  ctx.pos = 0;
  ctx.spans = nullptr;
  for (const ExprPtr& f : query.cluster_filters) {
    if (!EvalPredicate(*f, ctx)) return false;
  }
  return true;
}

Row ProjectMatch(const CompiledQuery& query, const SequenceView& seq,
                 const Match& match) {
  EvalContext ctx;
  ctx.seq = &seq;
  ctx.pos = 0;
  ctx.spans = &match.spans;
  Row row;
  row.reserve(query.select.size());
  for (size_t s = 0; s < query.select.size(); ++s) {
    Value v = EvalExpr(*query.select[s].expr, ctx);
    row.push_back(
        CoerceTo(query.output_schema.column(s).type, std::move(v)));
  }
  return row;
}

namespace {

/// Parallel per-cluster execution: clusters are hash-partitioned over a
/// ShardPool (one task per cluster), each worker matches and projects
/// its clusters independently, and rows are merged back in cluster
/// first-appearance order — byte-identical to the sequential path.
Status ExecuteSharded(const ClusteredSequence& clusters,
                      const CompiledQuery& query, const ExecOptions& options,
                      const VectorizedPlanEval* vec, QueryResult* result) {
  const int num_clusters = clusters.num_clusters();
  const int num_shards = std::min(options.num_threads, num_clusters);
  const PatternPlan& plan = result->plan;
  std::vector<std::vector<Row>> cluster_rows(num_clusters);
  std::vector<ShardStats> shard_stats(num_shards);

  auto handler = [&](int shard, ShardPool::Task&& task) {
    const int c = static_cast<int>(task.cluster);
    const SequenceView& seq = clusters.cluster(c);
    ShardStats& ss = shard_stats[shard];
    ++ss.clusters;
    ss.tuples_pushed += seq.size();
    // A cancelled/expired query skips remaining clusters; the caller
    // re-checks governance after the barrier and discards the result.
    if (!options.governance.Check().ok()) return;
    if (!ClusterAccepted(query, seq)) return;
    SearchOptions search_opts;
    search_opts.governance = &options.governance;
    std::unique_ptr<ElementEvaluator> vec_eval;
    if (vec != nullptr) {
      vec_eval = vec->MakeEvaluator();
      search_opts.evaluator = vec_eval.get();
    }
    SearchStats stats;
    std::vector<Match> matches =
        options.algorithm == SearchAlgorithm::kOps
            ? OpsSearch(seq, plan, &stats, nullptr, search_opts)
            : NaiveSearch(seq, plan, &stats, nullptr, search_opts);
    ss.search += stats;
    std::vector<Row>& out = cluster_rows[c];
    out.reserve(matches.size());
    for (const Match& match : matches) {
      out.push_back(ProjectMatch(query, seq, match));
    }
  };

  {
    ShardPool pool(num_shards, options.shard_queue_capacity, handler);
    for (int c = 0; c < num_clusters; ++c) {
      int shard = pool.ShardFor(EncodeClusterKey(clusters.cluster_key(c)));
      pool.Push(shard,
                ShardPool::Task{Row{}, static_cast<uint64_t>(c), 0});
    }
    pool.Finish();
    // Exceptions caught at the worker boundary surface here instead of
    // terminating the process.
    SQLTS_RETURN_IF_ERROR(pool.first_error());
    for (int s = 0; s < num_shards; ++s) {
      shard_stats[s].queue_high_water = pool.queue_high_water(s);
    }
  }
  SQLTS_RETURN_IF_ERROR(options.governance.Check());

  for (int c = 0; c < num_clusters; ++c) {
    for (Row& row : cluster_rows[c]) {
      SQLTS_RETURN_IF_ERROR(result->output.AppendRow(std::move(row)));
    }
  }
  result->stats = TotalSearchStats(shard_stats);
  result->shard_stats = std::move(shard_stats);
  return Status::OK();
}

}  // namespace

StatusOr<QueryResult> QueryExecutor::Execute(const Table& input,
                                             std::string_view query_text,
                                             const ExecOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(query_text, input.schema()));
  return ExecuteCompiled(input, query, options);
}

StatusOr<QueryResult> QueryExecutor::ExecuteCsvFile(
    const std::string& path, const Schema& schema,
    std::string_view query_text, const ExecOptions& options) {
  CsvReadOptions csv_options;
  csv_options.bad_input = options.governance.bad_input;
  CsvReadStats csv_stats;
  SQLTS_ASSIGN_OR_RETURN(Table input,
                         ReadCsvFile(path, schema, csv_options, &csv_stats));
  SQLTS_ASSIGN_OR_RETURN(QueryResult result,
                         Execute(input, query_text, options));
  result.rows_skipped = csv_stats.rows_skipped;
  return result;
}

StatusOr<QueryResult> QueryExecutor::ExecuteCompiled(
    const Table& input, const CompiledQuery& query,
    const ExecOptions& options) {
  // Static analysis gate: refuse provably-empty queries up front rather
  // than scanning for matches that cannot exist.
  if (options.compile.refuse_provably_empty) {
    LintOptions lint_options;
    lint_options.oracle = options.compile.oracle;
    LintResult lint = LintQuery(query, lint_options);
    if (lint.has_errors()) {
      return Status::InvalidArgument("query is provably empty: " +
                                     SummarizeErrors(lint));
    }
  }

  SQLTS_ASSIGN_OR_RETURN(PatternPlan plan,
                         CompilePattern(query, options.compile));
  SQLTS_ASSIGN_OR_RETURN(
      ClusteredSequence clusters,
      ClusteredSequence::Build(&input, query.cluster_by, query.sequence_by));

  SQLTS_RETURN_IF_ERROR(options.governance.Check());

  QueryResult result{Table(query.output_schema), SearchStats{},
                     SearchTrace{}, plan, clusters.num_clusters(), 0, {}};

  // An explicit LIMIT 0 never produces rows; skip the search entirely.
  if (query.limit_zero) return result;

  // Vectorized predicate tier: compile kernels once per query; each
  // cluster's matcher then tests elements against cached block
  // verdicts instead of interpreting per tuple (answer-preserving).
  std::unique_ptr<VectorizedPlanEval> vec;
  if (options.vectorize && options.shared_eval == nullptr) {
    vec = VectorizedPlanEval::Create(result.plan, input.schema());
  }

  // Parallel path: per-cluster matcher state is fully private, so
  // clusters shard cleanly.  LIMIT (cross-cluster early termination)
  // and trace collection (a single ordered log) stay sequential.
  if (options.num_threads > 1 && clusters.num_clusters() > 1 &&
      query.limit <= 0 && !options.collect_trace) {
    SQLTS_RETURN_IF_ERROR(
        ExecuteSharded(clusters, query, options, vec.get(), &result));
    return result;
  }

  for (int c = 0; c < clusters.num_clusters(); ++c) {
    const SequenceView& seq = clusters.cluster(c);
    if (!ClusterAccepted(query, seq)) continue;
    // LIMIT: stop searching once enough rows were produced (exact early
    // termination — the first N left-maximal matches, in cluster order).
    SearchOptions search_opts;
    search_opts.governance = &options.governance;
    std::unique_ptr<ElementEvaluator> vec_eval;
    if (vec != nullptr) {
      vec_eval = vec->MakeEvaluator();
      search_opts.evaluator = vec_eval.get();
    }
    if (query.limit > 0) {
      int64_t remaining = query.limit - result.output.num_rows();
      if (remaining <= 0) break;
      search_opts.max_matches = remaining;
    }

    SearchStats stats;
    SearchTrace* trace = options.collect_trace ? &result.trace : nullptr;
    std::vector<Match> matches =
        options.algorithm == SearchAlgorithm::kOps
            ? OpsSearch(seq, plan, &stats, trace, search_opts)
            : NaiveSearch(seq, plan, &stats, trace, search_opts);
    result.stats += stats;

    for (const Match& match : matches) {
      SQLTS_RETURN_IF_ERROR(
          result.output.AppendRow(ProjectMatch(query, seq, match)));
    }
    // A triggered deadline/cancellation truncated this cluster's search:
    // surface the typed error instead of a silently partial result.
    SQLTS_RETURN_IF_ERROR(options.governance.Check());
  }
  return result;
}

}  // namespace sqlts
