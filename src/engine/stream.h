#ifndef SQLTS_ENGINE_STREAM_H_
#define SQLTS_ENGINE_STREAM_H_

#include <functional>
#include <vector>

#include "common/statusor.h"
#include "engine/match.h"
#include "pattern/compile.h"
#include "storage/table.h"

namespace sqlts {

/// Push-based incremental OPS matching over a tuple stream — the
/// deployment mode the paper targets ("the runtime execution of SQL-TS
/// is achieved via user-defined aggregates … on input streams", Sec 6).
///
/// Tuples arrive one at a time via Push(); completed matches are
/// reported through the callback with positions counted from the first
/// pushed tuple.  The matcher runs the exact OPS algorithm (same
/// shift/next tables, same greedy/left-maximal semantics) and is
/// property-tested to agree with the batch OpsSearch on every prefix.
///
/// Memory is bounded by the active attempt: tuples no attempt can reach
/// any more (before `start + min_offset`) are evicted from the internal
/// buffer.
class OpsStreamMatcher {
 public:
  /// Called for each completed match.  `match` spans use absolute
  /// stream positions; `view` exposes the currently buffered tuples at
  /// positions shifted by `base` (absolute position = view position +
  /// base) — everything a match's SELECT list can reference is still
  /// buffered at callback time.  The view is only valid during the
  /// callback.
  using MatchCallback = std::function<void(
      const Match& match, const SequenceView& view, int64_t base)>;

  /// Builds a streaming matcher for `plan` over rows of `schema`.
  /// Fails with InvalidArgument when a WHERE predicate looks *ahead* in
  /// the stream (positive relative offset), which streaming cannot
  /// serve.
  static StatusOr<OpsStreamMatcher> Create(const PatternPlan* plan,
                                           Schema schema,
                                           MatchCallback on_match);

  /// Processes the next tuple of the stream.
  Status Push(Row row);

  /// Signals end-of-stream: a trailing star group that is already
  /// non-empty closes and may complete a final match.
  void Finish();

  const SearchStats& stats() const { return stats_; }
  /// Number of tuples currently buffered (bounded-memory check).
  int64_t buffered() const { return buffer_.num_rows(); }
  /// Total tuples pushed so far.
  int64_t pushed() const { return pushed_; }

 private:
  OpsStreamMatcher(const PatternPlan* plan, Schema schema,
                   MatchCallback on_match, int min_offset);

  /// Runs the OPS state machine over every buffered-but-unprocessed
  /// tuple.
  void Drain();
  /// Handles one satisfied/unsatisfied outcome at (j_, i_).
  void OnOutcome(bool satisfied);
  void EmitMatch();
  void ResetAttempt(int64_t new_start);
  /// Drops buffer rows that no future test or SELECT can reach.
  void MaybeEvict();

  /// Buffer position of absolute stream position `pos`, or -1 if
  /// evicted/future.
  int64_t BufferPos(int64_t pos) const { return pos - base_; }

  const PatternPlan* plan_;
  Schema schema_;
  MatchCallback on_match_;
  int min_offset_;  // most negative relative offset used by predicates

  Table buffer_;
  /// Identity row index into buffer_, grown incrementally so Drain()
  /// can build a SequenceView without an O(buffer) copy per push.
  std::vector<int64_t> view_rows_;
  int64_t base_ = 0;    // absolute position of buffer_ row 0
  int64_t pushed_ = 0;  // total tuples seen

  // OPS state (absolute positions).
  int64_t start_ = 0;
  int64_t i_ = 0;
  int j_ = 1;
  std::vector<int64_t> cnt_;
  std::vector<GroupSpan> spans_;
  bool presat_pending_ = false;
  SearchStats stats_;
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_STREAM_H_
