#ifndef SQLTS_ENGINE_STREAM_H_
#define SQLTS_ENGINE_STREAM_H_

#include <functional>
#include <vector>

#include "common/governance.h"
#include "common/statusor.h"
#include "engine/checkpoint.h"
#include "engine/match.h"
#include "engine/shared_eval.h"
#include "pattern/compile.h"
#include "storage/table.h"

namespace sqlts {

/// Push-based incremental OPS matching over a tuple stream — the
/// deployment mode the paper targets ("the runtime execution of SQL-TS
/// is achieved via user-defined aggregates … on input streams", Sec 6).
///
/// Tuples arrive one at a time via Push(); completed matches are
/// reported through the callback with positions counted from the first
/// pushed tuple.  The matcher runs the exact OPS algorithm (same
/// shift/next tables, same greedy/left-maximal semantics) and is
/// property-tested to agree with the batch OpsSearch on every prefix.
///
/// Memory is bounded by the active attempt: tuples no attempt can reach
/// any more (before `start + min_offset`) are evicted from the internal
/// buffer.  When an ExecGovernance is supplied, Push additionally
/// enforces buffered-tuple/byte budgets (kResourceExhausted), a
/// deadline (kDeadlineExceeded), and cooperative cancellation
/// (kCancelled, polled inside the advance loop) — so a pattern that can
/// never complete degrades into a typed error instead of unbounded
/// buffer growth.
///
/// All live matcher state (buffered tuples, attempt position, star
/// counters, spans, stream position, statistics) can be serialized with
/// Checkpoint() and reinstated on a freshly created matcher with
/// RestoreState(); a restored matcher fed the remaining tuples produces
/// bit-identical callbacks and stats to an uninterrupted run.
class OpsStreamMatcher {
 public:
  /// Called for each completed match.  `match` spans use absolute
  /// stream positions; `view` exposes the currently buffered tuples at
  /// positions shifted by `base` (absolute position = view position +
  /// base) — everything a match's SELECT list can reference is still
  /// buffered at callback time.  The view is only valid during the
  /// callback.
  using MatchCallback = std::function<void(
      const Match& match, const SequenceView& view, int64_t base)>;

  /// Builds a streaming matcher for `plan` over rows of `schema`.
  /// Fails with InvalidArgument when a WHERE predicate looks *ahead* in
  /// the stream (positive relative offset), which streaming cannot
  /// serve.  `governance` (optional; must outlive the matcher) supplies
  /// budgets/deadline/cancellation; `ledger` (optional, shared across
  /// the query's matchers) is where buffered tuples/bytes are accounted
  /// so multi-cluster queries enforce one per-query budget.
  /// `evaluator` (optional; must outlive the matcher) delegates element
  /// predicate tests for shared multi-query evaluation — it is
  /// answer-preserving, so matches and stats are unchanged (see
  /// engine/shared_eval.h).
  static StatusOr<OpsStreamMatcher> Create(
      const PatternPlan* plan, Schema schema, MatchCallback on_match,
      const ExecGovernance* governance = nullptr,
      ResourceLedger* ledger = nullptr,
      ElementEvaluator* evaluator = nullptr);

  /// Processes the next tuple of the stream.
  Status Push(Row row);

  /// Signals end-of-stream: a trailing star group that is already
  /// non-empty closes and may complete a final match.
  void Finish();

  /// Serializes all live state (stream position, attempt state, star
  /// counters, buffered tuples, stats) into `writer`.
  void Checkpoint(CheckpointWriter* writer) const;

  /// Reinstates state captured by Checkpoint() on a freshly created
  /// matcher (same plan and schema; no tuples pushed yet).  Fails with
  /// IoError/InvalidArgument on corrupted or mismatched payloads.
  Status RestoreState(CheckpointReader* reader);

  const SearchStats& stats() const { return stats_; }
  /// Number of tuples currently buffered (bounded-memory check).
  int64_t buffered() const { return buffer_.num_rows(); }
  /// Estimated bytes held by the buffered tuples.
  int64_t buffered_bytes() const { return buffered_bytes_; }
  /// High-water marks of the two gauges above over the matcher's life.
  int64_t peak_buffered() const { return peak_buffered_; }
  int64_t peak_buffered_bytes() const { return peak_buffered_bytes_; }
  /// Total tuples pushed so far.
  int64_t pushed() const { return pushed_; }

 private:
  OpsStreamMatcher(const PatternPlan* plan, Schema schema,
                   MatchCallback on_match, int min_offset,
                   const ExecGovernance* governance, ResourceLedger* ledger,
                   ElementEvaluator* evaluator);

  /// Runs the OPS state machine over every buffered-but-unprocessed
  /// tuple.  Returns early (leaving consistent state) when cancellation
  /// is requested.
  void Drain();
  void EmitMatch();
  void ResetAttempt(int64_t new_start);
  /// Drops buffer rows that no future test or SELECT can reach.
  void MaybeEvict();
  /// Applies a buffered tuples/bytes delta to the gauges and ledger.
  void Account(int64_t tuples, int64_t bytes);
  /// Enforces the configured buffer budgets against the ledger (or the
  /// local gauges when no ledger is shared).
  Status CheckBudget() const;

  /// Buffer position of absolute stream position `pos`, or -1 if
  /// evicted/future.
  int64_t BufferPos(int64_t pos) const { return pos - base_; }

  const PatternPlan* plan_;
  Schema schema_;
  MatchCallback on_match_;
  int min_offset_;  // most negative relative offset used by predicates
  const ExecGovernance* gov_;  // not owned; may be null
  ResourceLedger* ledger_;     // not owned; may be null
  ElementEvaluator* evaluator_ = nullptr;  // not owned; may be null

  Table buffer_;
  /// Identity row index into buffer_, grown incrementally so Drain()
  /// can build a SequenceView without an O(buffer) copy per push.
  std::vector<int64_t> view_rows_;
  int64_t base_ = 0;    // absolute position of buffer_ row 0
  int64_t pushed_ = 0;  // total tuples seen
  int64_t buffered_bytes_ = 0;
  int64_t peak_buffered_ = 0;
  int64_t peak_buffered_bytes_ = 0;

  // OPS state (absolute positions).
  int64_t start_ = 0;
  int64_t i_ = 0;
  int j_ = 1;
  std::vector<int64_t> cnt_;
  std::vector<GroupSpan> spans_;
  bool presat_pending_ = false;
  SearchStats stats_;
};

}  // namespace sqlts

#endif  // SQLTS_ENGINE_STREAM_H_
