#ifndef SQLTS_ENGINE_CHECKPOINT_H_
#define SQLTS_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "types/schema.h"
#include "types/value.h"

namespace sqlts {

/// Binary checkpoint container: a fixed self-describing header followed
/// by an opaque payload.
///
///   offset  size  field
///        0     8  magic "SQTSCKPT"
///        8     4  format version (little-endian u32, currently 1)
///       12     8  payload size in bytes (little-endian u64)
///       20     8  FNV-1a 64 checksum of the payload (little-endian)
///       28     …  payload
///
/// All integers little-endian.  The payload is written/read with
/// CheckpointWriter/CheckpointReader; every variable-length field is
/// length-prefixed, so a reader can skip content it does not
/// understand and corruption is caught either by the checksum or by a
/// typed read failing its bounds check.
inline constexpr std::string_view kCheckpointMagic = "SQTSCKPT";
inline constexpr uint32_t kCheckpointVersion = 1;

/// FNV-1a 64-bit hash (the header checksum).
uint64_t Fnv1a64(std::string_view bytes);

/// Appends typed fields to a growing payload buffer.
class CheckpointWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteDouble(double v);
  /// Length-prefixed (u64) raw bytes.
  void WriteString(std::string_view s);
  /// Type tag (u8 TypeKind) + kind-specific payload; NULL is just the tag.
  void WriteValue(const Value& v);
  /// Arity (u32) + each value.
  void WriteRow(const Row& row);

  const std::string& payload() const { return payload_; }

  /// Wraps the accumulated payload in the versioned checksummed header.
  std::string Finalize() const;

 private:
  std::string payload_;
};

/// Bounds-checked sequential reader over a checkpoint payload.  Every
/// accessor fails with a typed Status instead of reading out of range,
/// so truncated or corrupted payloads surface as errors, never UB.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view payload) : data_(payload) {}

  StatusOr<uint8_t> ReadU8();
  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int64_t> ReadI64();
  StatusOr<bool> ReadBool();
  StatusOr<double> ReadDouble();
  StatusOr<std::string> ReadString();
  StatusOr<Value> ReadValue();
  StatusOr<Row> ReadRow();

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

/// Validates `bytes` as a checkpoint (magic, version, size, checksum)
/// and returns a view of the payload.  The view borrows `bytes`.
StatusOr<std::string_view> OpenCheckpoint(std::string_view bytes);

/// Rough live-memory estimate of a buffered row (payload bytes plus
/// per-value bookkeeping), used for the byte-budget ledger.
int64_t EstimateRowBytes(const Row& row);

}  // namespace sqlts

#endif  // SQLTS_ENGINE_CHECKPOINT_H_
