#include "engine/backtrack.h"

#include "common/logging.h"
#include "expr/eval.h"

namespace sqlts {
namespace {

/// DFS over star split points for one attempt.
class Attempt {
 public:
  Attempt(const SequenceView& seq, const PatternPlan& plan,
          SearchStats* stats)
      : seq_(seq), plan_(plan), stats_(stats), spans_(plan.m) {}

  /// Tries to complete a match whose first element starts at `start`;
  /// on success `spans()` holds the match.
  bool TryFrom(int64_t start) {
    spans_.assign(plan_.m, GroupSpan{});
    return Solve(1, start);
  }

  const std::vector<GroupSpan>& spans() const { return spans_; }

 private:
  bool Test(int j, int64_t i) {
    ++stats_->evaluations;
    const ExprPtr& pred = plan_.predicates[j];
    if (pred == nullptr) return true;
    EvalContext ctx;
    ctx.seq = &seq_;
    ctx.pos = i;
    ctx.spans = &spans_;
    return EvalPredicate(*pred, ctx);
  }

  /// Matches elements j..m starting at input position i.
  bool Solve(int j, int64_t i) {
    if (j > plan_.m) return true;
    if (i >= seq_.size()) return false;
    if (!plan_.star[j]) {
      if (!Test(j, i)) return false;
      spans_[j - 1] = {i, i};
      if (Solve(j + 1, i + 1)) return true;
      spans_[j - 1] = GroupSpan{};
      return false;
    }
    // Star: find the maximal satisfying run, then try split points
    // longest-first (greedy preference keeps agreement with the
    // operational matchers whenever greedy succeeds).
    int64_t len = 0;
    spans_[j - 1] = GroupSpan{};
    while (i + len < seq_.size()) {
      // The star's own predicate may inspect the group built so far.
      spans_[j - 1] = len == 0 ? GroupSpan{} : GroupSpan{i, i + len - 1};
      if (!Test(j, i + len)) break;
      ++len;
    }
    for (int64_t take = len; take >= 1; --take) {
      spans_[j - 1] = {i, i + take - 1};
      if (Solve(j + 1, i + take)) return true;
    }
    spans_[j - 1] = GroupSpan{};
    return false;
  }

  const SequenceView& seq_;
  const PatternPlan& plan_;
  SearchStats* stats_;
  std::vector<GroupSpan> spans_;
};

}  // namespace

std::vector<Match> BacktrackingSearch(const SequenceView& seq,
                                      const PatternPlan& plan,
                                      SearchStats* stats) {
  SQLTS_CHECK(stats != nullptr);
  std::vector<Match> out;
  Attempt attempt(seq, plan, stats);
  int64_t s = 0;
  while (s < seq.size()) {
    if (attempt.TryFrom(s)) {
      Match m;
      m.spans = attempt.spans();
      ++stats->matches;
      s = m.last() + 1;  // left-maximality
      out.push_back(std::move(m));
    } else {
      ++s;
    }
  }
  return out;
}

}  // namespace sqlts
