#include "engine/explain.h"

#include <cstdio>
#include <sstream>

#include "analysis/linter.h"
#include "engine/reverse.h"

namespace sqlts {
namespace {

void DescribeAnalysis(const PredicateAnalysis& a, std::ostringstream* os) {
  if (a.system.trivially_false()) {
    *os << "      constant FALSE conjunct present\n";
  }
  for (const LinearAtom& atom : a.system.linear()) {
    *os << "      linear atom: " << atom.ToString() << "\n";
  }
  for (const RatioAtom& atom : a.system.ratio()) {
    *os << "      ratio atom:  " << atom.ToString() << "\n";
  }
  for (const StringAtom& atom : a.system.strings()) {
    *os << "      string atom: " << atom.ToString() << "\n";
  }
  for (const auto& group : a.or_groups) {
    *os << "      OR group (" << group.disjuncts.size() << " disjuncts"
        << (group.single_atom_disjuncts ? ", negatable" : "") << "):\n";
    for (const ConstraintSystem& d : group.disjuncts) {
      *os << "        | " << d.ToString() << "\n";
    }
  }
  if (a.has_interval) {
    *os << "      interval view: v" << a.interval_var << " in "
        << a.interval.ToString() << "\n";
  }
  if (!a.complete) {
    *os << "      (incomplete: residue conjuncts evaluated at run time "
           "only)\n";
  }
}

}  // namespace

std::string ExplainQuery(const CompiledQuery& query, const PatternPlan& plan,
                         std::string_view source) {
  std::ostringstream os;
  os << "=== SQL-TS plan ===\n";
  os << "input:  " << query.table << " (" << query.input_schema.ToString()
     << ")\n";
  if (!query.cluster_by.empty()) {
    os << "cluster by:";
    for (const auto& c : query.cluster_by) os << " " << c;
    os << "\n";
  }
  if (!query.sequence_by.empty()) {
    os << "sequence by:";
    for (const auto& c : query.sequence_by) os << " " << c;
    os << "\n";
  }
  for (const ExprPtr& f : query.cluster_filters) {
    os << "cluster filter: " << f->ToString() << "\n";
  }
  os << "pattern (" << plan.m << " elements):\n";
  for (int j = 1; j <= plan.m; ++j) {
    const PatternElement& el = query.elements[j - 1];
    os << "  " << (plan.star[j] ? "*" : " ") << el.var << "  p" << j
       << " = "
       << (el.predicate == nullptr ? "TRUE" : el.predicate->ToString())
       << "\n";
    DescribeAnalysis(plan.analyses[j - 1], &os);
  }
  os << plan.ToString();
  // Direction heuristic (Sec 8) when the pattern is reversible.
  auto rev = CompileReversePlan(query);
  if (rev.ok()) {
    DirectionChoice d = ChooseSearchDirection(plan, *rev);
    os << "direction heuristic: forward=" << d.forward_score
       << " reverse=" << d.reverse_score << " -> "
       << (d.prefer_reverse ? "reverse" : "forward") << "\n";
  }
  // Static-analysis verdicts over the same θ/φ machinery.
  LintResult lint = LintQuery(query);
  os << "diagnostics: ";
  if (lint.diagnostics.empty()) {
    os << "none\n";
  } else {
    os << "\n" << RenderDiagnostics(lint.diagnostics, source);
  }
  os << "output: " << query.output_schema.ToString() << "\n";
  return os.str();
}

std::string FormatShardStats(const std::vector<ShardStats>& shards) {
  if (shards.empty()) return "single-threaded run (no shard stats)\n";
  std::ostringstream os;
  os << "shard  tuples      clusters  matches   evals       queue_hw\n";
  ShardStats total;
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardStats& st = shards[s];
    char line[128];
    std::snprintf(line, sizeof(line),
                  "%-6zu %-11lld %-9lld %-9lld %-11lld %lld\n", s,
                  static_cast<long long>(st.tuples_pushed),
                  static_cast<long long>(st.clusters),
                  static_cast<long long>(st.search.matches),
                  static_cast<long long>(st.search.evaluations),
                  static_cast<long long>(st.queue_high_water));
    os << line;
    total += st;
  }
  char line[128];
  std::snprintf(line, sizeof(line),
                "total  %-11lld %-9lld %-9lld %-11lld %lld\n",
                static_cast<long long>(total.tuples_pushed),
                static_cast<long long>(total.clusters),
                static_cast<long long>(total.search.matches),
                static_cast<long long>(total.search.evaluations),
                static_cast<long long>(total.queue_high_water));
  os << line;
  return os.str();
}

StatusOr<std::string> ExplainQueryText(std::string_view text,
                                       const Schema& schema,
                                       const CompileOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(text, schema));
  SQLTS_ASSIGN_OR_RETURN(PatternPlan plan,
                         CompilePattern(query, options));
  return ExplainQuery(query, plan, text);
}

}  // namespace sqlts
