#ifndef SQLTS_COMMON_THREAD_ANNOTATIONS_H_
#define SQLTS_COMMON_THREAD_ANNOTATIONS_H_

/// Compile-time concurrency contracts (docs/STATIC_ANALYSIS.md).
///
/// Macros over Clang's Thread Safety Analysis attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) plus thin
/// annotated wrappers over the std synchronization primitives.  Under
/// Clang with `-Wthread-safety` the annotations turn the repo's lock
/// discipline — "guarded by mu_", "caller holds the lock", "*Locked
/// helpers" — into build failures when violated.  Under GCC (which has
/// no thread-safety analysis) every macro expands to nothing and the
/// wrappers behave exactly like the std primitives they hold.
///
/// Conventions (same as the abseil/LLVM ones the attribute set was
/// designed around):
///  - members:   `int x_ GUARDED_BY(mu_);` — attribute after the name.
///  - functions: attribute after the parameter list (and any const),
///    before the body:  `void FlushLocked() REQUIRES(mu_);`
///  - `NO_THREAD_SAFETY_ANALYSIS` is a last resort and never appears
///    without a comment explaining why the analysis cannot see the
///    invariant (see docs/STATIC_ANALYSIS.md for the policy).

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define SQLTS_TS_ATTR__(x) __has_attribute(x)
#else
#define SQLTS_TS_ATTR__(x) 0
#endif

#if SQLTS_TS_ATTR__(guarded_by)
#define SQLTS_TS__(x) __attribute__((x))
#else
#define SQLTS_TS__(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) SQLTS_TS__(capability(x))

/// Marks an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define SCOPED_CAPABILITY SQLTS_TS__(scoped_lockable)

/// Data member is protected by the given capability: every read or
/// write must happen with the lock held.
#define GUARDED_BY(x) SQLTS_TS__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability (the
/// pointer itself may be read freely).
#define PT_GUARDED_BY(x) SQLTS_TS__(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).  This is the contract of every `*Locked` helper.
#define REQUIRES(...) SQLTS_TS__(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) SQLTS_TS__(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define RELEASE(...) SQLTS_TS__(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (it will
/// acquire it itself — calling with it held would deadlock).
#define EXCLUDES(...) SQLTS_TS__(locks_excluded(__VA_ARGS__))

/// Function checks at runtime that the capability is held and informs
/// the analysis of that fact.
#define ASSERT_CAPABILITY(x) SQLTS_TS__(assert_capability(x))

/// Function returns a reference to the given capability (lets the
/// analysis resolve accessor-returned locks).
#define RETURN_CAPABILITY(x) SQLTS_TS__(lock_returned(x))

/// Opts a function out of the analysis entirely.  Never use without a
/// comment explaining why (docs/STATIC_ANALYSIS.md).
#define NO_THREAD_SAFETY_ANALYSIS SQLTS_TS__(no_thread_safety_analysis)

namespace sqlts {
namespace ts {

/// std::mutex with the CAPABILITY attribute attached, so members can be
/// GUARDED_BY it and helpers can REQUIRES it.  Same cost as std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() SQLTS_TS__(try_acquire_capability(true)) {
    return mu_.try_lock();
  }

  /// The wrapped std::mutex, for interop with std lock adapters inside
  /// functions that manage the capability manually (the caller is
  /// responsible for keeping the analysis informed via ACQUIRE/RELEASE
  /// annotations on the enclosing scope).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over ts::Mutex — the annotated equivalent of
/// std::lock_guard / std::unique_lock for the common hold-entire-scope
/// pattern.  Supports early Unlock()/Lock() cycles like unique_lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. to notify a condvar outside the lock).
  void Unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  /// Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable usable with ts::Mutex.  Backed by
/// std::condition_variable_any, which accepts any BasicLockable — the
/// annotated mutex works directly, no native-handle gymnastics.  Wait
/// requires the caller to hold the mutex, exactly the std contract,
/// but now machine-checked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // The analysis treats the capability as held across the wait; the
    // runtime release/re-acquire inside condition_variable_any is
    // invisible to callers, matching the std::condition_variable
    // contract.
    cv_.wait(mu);
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
               Predicate pred) REQUIRES(mu) {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ts
}  // namespace sqlts

#endif  // SQLTS_COMMON_THREAD_ANNOTATIONS_H_
