#ifndef SQLTS_COMMON_LOGGING_H_
#define SQLTS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sqlts {
namespace internal_logging {

/// Accumulates a message and aborts the process on destruction.  Used by
/// SQLTS_CHECK for programmer-error invariants (never for data errors,
/// which flow through Status).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "[FATAL " << file << ":" << line << "] ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace sqlts

/// Aborts with a message when `cond` is false.  For invariants only;
/// supports streaming extra context: SQLTS_CHECK(x > 0) << "x=" << x;
/// The switch wrapper makes the macro safe in unbraced if/else bodies.
#define SQLTS_CHECK(cond)                                              \
  switch (0)                                                           \
  case 0:                                                              \
  default:                                                             \
    if (cond) {                                                        \
    } else /* NOLINT */                                                \
      ::sqlts::internal_logging::FatalLogMessage(__FILE__, __LINE__)   \
          << "Check failed: " #cond " "

#define SQLTS_CHECK_OK(expr)                                       \
  do {                                                             \
    ::sqlts::Status _st_check = (expr);                            \
    SQLTS_CHECK(_st_check.ok()) << _st_check.ToString();           \
  } while (false)

#define SQLTS_DCHECK(cond) SQLTS_CHECK(cond)

#endif  // SQLTS_COMMON_LOGGING_H_
