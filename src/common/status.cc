#include "common/status.h"

namespace sqlts {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace sqlts
