#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace sqlts {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace sqlts
