#ifndef SQLTS_COMMON_STRING_UTIL_H_
#define SQLTS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqlts {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);
/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace sqlts

#endif  // SQLTS_COMMON_STRING_UTIL_H_
