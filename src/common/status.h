#ifndef SQLTS_COMMON_STATUS_H_
#define SQLTS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace sqlts {

/// Canonical error codes, modeled after the usual database-library set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kTypeError,
  kIoError,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail.  The library is built without
/// exceptions; every fallible public API returns `Status` or
/// `StatusOr<T>`.  A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Evaluates `expr` (a Status) and returns it from the enclosing function
/// if it is not OK.
#define SQLTS_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::sqlts::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace sqlts

#endif  // SQLTS_COMMON_STATUS_H_
