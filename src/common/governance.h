#ifndef SQLTS_COMMON_GOVERNANCE_H_
#define SQLTS_COMMON_GOVERNANCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sqlts {

/// Cooperative cancellation handle.  Copies share one flag: any copy's
/// RequestCancel() is observed by every holder.  A default-constructed
/// token is inert (never cancelled, copies share nothing) so embedding
/// one in an options struct costs nothing until a caller opts in via
/// CancelToken::Cancellable().
///
/// The engine polls the token at every Push, inside the matcher advance
/// loop, and between shard tasks, so a cancelled query surfaces
/// `kCancelled` within one push of the request.
class CancelToken {
 public:
  CancelToken() = default;

  /// A live token whose copies share a cancellation flag.
  static CancelToken Cancellable() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Requests cancellation (no-op on an inert token).  Thread-safe.
  void RequestCancel() {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  /// True once RequestCancel() was called on any copy.  Thread-safe.
  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// How the engine treats malformed input rows (arity or type mismatch,
/// SEQUENCE BY order violations, truncated CSV records).
enum class BadInputPolicy {
  kFailFast,      ///< surface a typed error immediately (default)
  kSkipAndCount,  ///< drop the row and increment a skip counter
};

/// Shared live-resource ledger for one query: total tuples/bytes
/// currently buffered across every cluster matcher, updated atomically
/// so sharded workers account against one per-query budget.
struct ResourceLedger {
  std::atomic<int64_t> buffered_tuples{0};
  std::atomic<int64_t> buffered_bytes{0};
};

/// Deterministic failure-injection hook (testing only).  Called at
/// named engine sites ("stream.push", "matcher.append",
/// "shard.enqueue"); a non-OK return simulates that site failing — the
/// engine must surface it as a Status without losing or duplicating
/// output.  Hooks may also throw, which exercises the shard workers'
/// exception boundary.
using FaultHook = std::function<Status(std::string_view site)>;

/// Per-query resource-governance knobs shared by the batch and
/// streaming executors.  Zero/absent values disable each control.
struct ExecGovernance {
  /// Max tuples buffered concurrently across all cluster matchers of
  /// one streaming query (0 = unlimited).  Exceeding it fails the Push
  /// with kResourceExhausted instead of growing without bound.
  int64_t max_buffered_tuples = 0;
  /// Same budget in (approximate, payload-estimated) bytes.
  int64_t max_buffered_bytes = 0;
  /// Absolute deadline; a Push/Execute past it fails with
  /// kDeadlineExceeded.  Default: none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation; see CancelToken.
  CancelToken cancel;
  /// Malformed-input handling (see BadInputPolicy).
  BadInputPolicy bad_input = BadInputPolicy::kFailFast;
  /// Testing-only fault injection; see FaultHook.
  FaultHook fault_hook;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }

  /// Polls cancellation and the deadline; OK when neither triggered.
  Status Check() const {
    if (cancel.cancel_requested()) {
      return Status::Cancelled("query cancelled via CancelToken");
    }
    if (has_deadline() && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  /// Fires the fault hook for `site` (OK when no hook is installed).
  Status Fault(std::string_view site) const {
    return fault_hook ? fault_hook(site) : Status::OK();
  }
};

}  // namespace sqlts

#endif  // SQLTS_COMMON_GOVERNANCE_H_
