#ifndef SQLTS_COMMON_STATUSOR_H_
#define SQLTS_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace sqlts {

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// Typical usage:
///
///   StatusOr<Table> t = CsvReader::Read(path);
///   if (!t.ok()) return t.status();
///   Use(*t);
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status.  `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SQLTS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  /// Constructs from a value.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SQLTS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SQLTS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SQLTS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// status from the enclosing function.
#define SQLTS_ASSIGN_OR_RETURN(lhs, expr)        \
  SQLTS_ASSIGN_OR_RETURN_IMPL(                   \
      SQLTS_STATUS_MACRO_CONCAT(_status_or_, __LINE__), lhs, expr)

#define SQLTS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define SQLTS_STATUS_MACRO_CONCAT(a, b) SQLTS_STATUS_MACRO_CONCAT_IMPL(a, b)
#define SQLTS_STATUS_MACRO_CONCAT_IMPL(a, b) a##b

}  // namespace sqlts

#endif  // SQLTS_COMMON_STATUSOR_H_
