#include "constraints/catalog.h"

#include "common/logging.h"

namespace sqlts {

VarId VariableCatalog::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  VarId id = static_cast<VarId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

const std::string& VariableCatalog::Name(VarId id) const {
  SQLTS_CHECK(id >= 0 && id < size()) << "bad VarId " << id;
  return names_[id];
}

}  // namespace sqlts
