#ifndef SQLTS_CONSTRAINTS_SYSTEM_H_
#define SQLTS_CONSTRAINTS_SYSTEM_H_

#include <string>
#include <vector>

#include "constraints/atom.h"

namespace sqlts {

/// A conjunction of atomic constraints over interned variables — the
/// object the GSW procedure reasons about.  A pattern-element predicate
/// compiles to one ConstraintSystem (plus possibly opaque residue the
/// solver treats as unknown; see expr/normalize.h).
class ConstraintSystem {
 public:
  ConstraintSystem() = default;

  void AddLinear(LinearAtom a) { linear_.push_back(a); }
  void AddRatio(RatioAtom a) { ratio_.push_back(a); }
  void AddString(StringAtom a) { string_.push_back(std::move(a)); }

  /// Marks the whole conjunction as constant-false (used when a conjunct
  /// folds to FALSE during normalization).
  void SetTriviallyFalse() { trivially_false_ = true; }
  bool trivially_false() const { return trivially_false_; }

  /// Convenience builders.
  /// x op y + c
  void AddXopYplusC(VarId x, CmpOp op, VarId y, double c) {
    linear_.push_back({x, y, op, c});
  }
  /// x op c
  void AddXopC(VarId x, CmpOp op, double c) {
    linear_.push_back({x, kNoVar, op, c});
  }
  /// x op c * y
  void AddXopCtimesY(VarId x, CmpOp op, double c, VarId y) {
    ratio_.push_back({x, y, op, c});
  }

  const std::vector<LinearAtom>& linear() const { return linear_; }
  const std::vector<RatioAtom>& ratio() const { return ratio_; }
  const std::vector<StringAtom>& strings() const { return string_; }

  bool empty() const {
    return linear_.empty() && ratio_.empty() && string_.empty();
  }
  int num_atoms() const {
    return static_cast<int>(linear_.size() + ratio_.size() + string_.size());
  }

  /// Conjunction of `a` and `b`.
  static ConstraintSystem Conjoin(const ConstraintSystem& a,
                                  const ConstraintSystem& b);

  std::string ToString() const;

 private:
  std::vector<LinearAtom> linear_;
  std::vector<RatioAtom> ratio_;
  std::vector<StringAtom> string_;
  bool trivially_false_ = false;
};

}  // namespace sqlts

#endif  // SQLTS_CONSTRAINTS_SYSTEM_H_
