#include "constraints/gsw.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "common/logging.h"

namespace sqlts {
namespace {

/// Tolerance for floating-point bound comparisons.  Chosen so rounding
/// errors (e.g. from the log transform) can only push a decision toward
/// "unknown", never toward a wrong theorem, as long as user constants are
/// separated by more than kEps.
constexpr double kEps = 1e-9;

/// Remaps the (possibly sparse) global VarIds used by a system to dense
/// graph node ids.
class NodeMap {
 public:
  int NodeOf(VarId v) {
    auto it = map_.find(v);
    if (it != map_.end()) return it->second;
    int id = static_cast<int>(map_.size());
    map_.emplace(v, id);
    return id;
  }
  int size() const { return static_cast<int>(map_.size()); }
  const std::map<VarId, int>& entries() const { return map_; }

 private:
  std::map<VarId, int> map_;
};

struct Disequality {
  int x;
  int y;
  double c;
};

/// Adds `x op y + c` (node ids) to `g`, or records a disequality.
void ApplyDifference(DifferenceGraph* g, std::vector<Disequality>* diseq,
                     int x, int y, CmpOp op, double c) {
  switch (op) {
    case CmpOp::kLe:
      g->AddUpperBound(x, y, c, /*strict=*/false);
      break;
    case CmpOp::kLt:
      g->AddUpperBound(x, y, c, /*strict=*/true);
      break;
    case CmpOp::kGe:
      g->AddUpperBound(y, x, -c, /*strict=*/false);
      break;
    case CmpOp::kGt:
      g->AddUpperBound(y, x, -c, /*strict=*/true);
      break;
    case CmpOp::kEq:
      g->AddUpperBound(x, y, c, /*strict=*/false);
      g->AddUpperBound(y, x, -c, /*strict=*/false);
      break;
    case CmpOp::kNe:
      diseq->push_back({x, y, c});
      break;
  }
}

}  // namespace

Bound Bound::Plus(const Bound& o) const {
  if (!exists || !o.exists) return Infinite();
  return Finite(value + o.value, strict || o.strict);
}

bool Bound::TighterThan(const Bound& o) const {
  if (!exists) return false;
  if (!o.exists) return true;
  if (value != o.value) return value < o.value;
  return strict && !o.strict;
}

DifferenceGraph::DifferenceGraph(int num_vars)
    : n_(num_vars + 1), b_(static_cast<size_t>(n_) * n_) {
  for (int i = 0; i < n_; ++i) {
    b_[i * n_ + i] = Bound::Finite(0, false);
  }
}

void DifferenceGraph::AddUpperBound(int x, int y, double c, bool strict) {
  SQLTS_CHECK(x >= 0 && x < n_ && y >= 0 && y < n_);
  Bound candidate = Bound::Finite(c, strict);
  Bound& cur = b_[x * n_ + y];
  if (candidate.TighterThan(cur)) cur = candidate;
}

void DifferenceGraph::Close() {
  // Floyd–Warshall over (value, strict) bounds.  n_ is tiny (a pattern
  // predicate mentions a handful of variables), so O(n³) is negligible.
  for (int k = 0; k < n_; ++k) {
    for (int i = 0; i < n_; ++i) {
      const Bound& ik = b_[i * n_ + k];
      if (!ik.exists) continue;
      for (int j = 0; j < n_; ++j) {
        Bound via = ik.Plus(b_[k * n_ + j]);
        Bound& cur = b_[i * n_ + j];
        if (via.TighterThan(cur)) cur = via;
      }
    }
  }
}

bool DifferenceGraph::HasNegativeCycle() const {
  for (int i = 0; i < n_; ++i) {
    const Bound& d = b_[i * n_ + i];
    if (!d.exists) continue;
    if (d.value < -kEps) return true;
    if (d.strict && d.value < kEps) return true;
  }
  return false;
}

bool DifferenceGraph::Entails(int x, int y, double c, bool strict) const {
  const Bound& b = bound(x, y);
  if (!b.exists) return false;
  if (b.value < c - kEps) return true;
  if (std::abs(b.value - c) <= kEps) return b.strict || !strict;
  return false;
}

bool DifferenceGraph::ForcesEquality(int x, int y, double c) const {
  return Entails(x, y, c, /*strict=*/false) &&
         Entails(y, x, -c, /*strict=*/false);
}

GswSolver::GswSolver(GswOptions options) : options_(options) {}

bool GswSolver::StringsUnsat(const ConstraintSystem& s) const {
  // Per variable: at most one equality target; no ≠ clashing with it.
  std::map<VarId, std::string> eq;
  for (const StringAtom& a : s.strings()) {
    if (!a.equal) continue;
    auto [it, inserted] = eq.emplace(a.x, a.text);
    if (!inserted && it->second != a.text) return true;
  }
  for (const StringAtom& a : s.strings()) {
    if (a.equal) continue;
    auto it = eq.find(a.x);
    if (it != eq.end() && it->second == a.text) return true;
  }
  return false;
}

bool GswSolver::LinearDomainUnsat(const ConstraintSystem& s) const {
  NodeMap nodes;
  for (const LinearAtom& a : s.linear()) {
    nodes.NodeOf(a.x);
    if (a.y != kNoVar) nodes.NodeOf(a.y);
  }
  // Pure comparisons hiding in ratio atoms (c == 1): x op y is additive
  // too, so fold them in for cross-domain strength.
  for (const RatioAtom& a : s.ratio()) {
    if (a.c == 1.0) {
      nodes.NodeOf(a.x);
      nodes.NodeOf(a.y);
    }
  }
  DifferenceGraph g(nodes.size());
  const int zero = g.zero();
  std::vector<Disequality> diseq;
  for (const LinearAtom& a : s.linear()) {
    int x = nodes.NodeOf(a.x);
    int y = (a.y == kNoVar) ? zero : nodes.NodeOf(a.y);
    ApplyDifference(&g, &diseq, x, y, a.op, a.c);
  }
  for (const RatioAtom& a : s.ratio()) {
    if (a.c == 1.0) {
      ApplyDifference(&g, &diseq, nodes.NodeOf(a.x), nodes.NodeOf(a.y), a.op,
                      0.0);
    }
  }
  if (options_.positive_domain) {
    // Every variable is > 0:  0 - x < 0.
    for (const auto& [var, node] : nodes.entries()) {
      (void)var;
      g.AddUpperBound(zero, node, 0, /*strict=*/true);
    }
  }
  g.Close();
  ++closure_count_;
  if (g.HasNegativeCycle()) return true;
  for (const Disequality& d : diseq) {
    if (g.ForcesEquality(d.x, d.y, d.c)) return true;
  }
  return false;
}

bool GswSolver::LogDomainUnsat(const ConstraintSystem& s) const {
  if (!options_.positive_domain) return false;
  NodeMap nodes;
  // First pass: degenerate (non-positive) constants decide atoms outright
  // under the positivity assumption.
  for (const RatioAtom& a : s.ratio()) {
    if (a.c <= 0 && (a.op == CmpOp::kLt || a.op == CmpOp::kLe ||
                     a.op == CmpOp::kEq)) {
      return true;  // x op c*y with c*y ≤ 0 < x: atom is false.
    }
  }
  for (const LinearAtom& a : s.linear()) {
    if (a.y == kNoVar && a.c <= 0 &&
        (a.op == CmpOp::kLt || a.op == CmpOp::kLe || a.op == CmpOp::kEq)) {
      return true;  // x op c with c ≤ 0 < x: atom is false.
    }
  }
  for (const RatioAtom& a : s.ratio()) {
    if (a.c > 0) {
      nodes.NodeOf(a.x);
      nodes.NodeOf(a.y);
    }
  }
  for (const LinearAtom& a : s.linear()) {
    if (a.y == kNoVar && a.c > 0) {
      nodes.NodeOf(a.x);
    } else if (a.y != kNoVar && a.c == 0.0) {
      nodes.NodeOf(a.x);
      nodes.NodeOf(a.y);
    }
  }
  if (nodes.size() == 0) return false;
  DifferenceGraph g(nodes.size());
  const int zero = g.zero();  // log-domain constant node (log 1 = 0)
  std::vector<Disequality> diseq;
  for (const RatioAtom& a : s.ratio()) {
    if (a.c <= 0) continue;  // tautological ops already handled above
    ApplyDifference(&g, &diseq, nodes.NodeOf(a.x), nodes.NodeOf(a.y), a.op,
                    std::log(a.c));
  }
  for (const LinearAtom& a : s.linear()) {
    if (a.y == kNoVar && a.c > 0) {
      ApplyDifference(&g, &diseq, nodes.NodeOf(a.x), zero, a.op,
                      std::log(a.c));
    } else if (a.y != kNoVar && a.c == 0.0) {
      // x op y is order-preserved by log on the positive reals.
      ApplyDifference(&g, &diseq, nodes.NodeOf(a.x), nodes.NodeOf(a.y), a.op,
                      0.0);
    }
  }
  g.Close();
  ++closure_count_;
  if (g.HasNegativeCycle()) return true;
  for (const Disequality& d : diseq) {
    if (g.ForcesEquality(d.x, d.y, d.c)) return true;
  }
  return false;
}

bool GswSolver::ProvablyUnsat(const ConstraintSystem& s) const {
  return s.trivially_false() || StringsUnsat(s) || LinearDomainUnsat(s) ||
         LogDomainUnsat(s);
}

bool GswSolver::ProvablyImplies(const ConstraintSystem& s,
                                const ConstraintSystem& t) const {
  if (ProvablyUnsat(s)) return true;
  // s ⇒ (a₁ ∧ a₂ ∧ …) iff each s ∧ ¬aᵢ is unsatisfiable.
  for (const LinearAtom& a : t.linear()) {
    ConstraintSystem probe = s;
    probe.AddLinear(a.Negated());
    if (!ProvablyUnsat(probe)) return false;
  }
  for (const RatioAtom& a : t.ratio()) {
    ConstraintSystem probe = s;
    probe.AddRatio(a.Negated());
    if (!ProvablyUnsat(probe)) return false;
  }
  for (const StringAtom& a : t.strings()) {
    ConstraintSystem probe = s;
    probe.AddString(a.Negated());
    if (!ProvablyUnsat(probe)) return false;
  }
  return true;
}

bool GswSolver::ProvablyValid(const ConstraintSystem& t) const {
  return ProvablyImplies(ConstraintSystem(), t);
}

}  // namespace sqlts
