#ifndef SQLTS_CONSTRAINTS_GSW_H_
#define SQLTS_CONSTRAINTS_GSW_H_

#include <optional>
#include <vector>

#include "constraints/system.h"

namespace sqlts {

/// Options for the decision procedure.
struct GswOptions {
  /// Assume every numeric variable ranges over positive reals.  This is
  /// the paper's Sec 6 assumption ("the domain of Y is positive numbers
  /// (stock prices)") that makes ratio atoms X op C*Y analyzable via the
  /// Z = X/Y (log) transform.  When false, ratio atoms contribute no
  /// reasoning (conservative).
  bool positive_domain = true;
};

/// An upper bound on a variable difference: (value, strict) with
/// "does not exist" meaning +infinity.
struct Bound {
  double value = 0;
  bool strict = false;
  bool exists = false;

  static Bound Infinite() { return Bound{}; }
  static Bound Finite(double v, bool s) { return Bound{v, s, true}; }

  /// Bound composition along a path: values add, strictness ORs.
  Bound Plus(const Bound& o) const;
  /// True when this bound is tighter than `o` (smaller value; strict
  /// beats non-strict at equal value).
  bool TighterThan(const Bound& o) const;
};

/// A dense difference-constraint graph over `n` variables plus one
/// implicit constant node; `Close()` runs Floyd–Warshall, after which
/// `bound(a, b)` is the tightest derivable upper bound on (a - b).
/// This is the satisfiability core of the Guo–Sun–Weiss procedure [5].
class DifferenceGraph {
 public:
  explicit DifferenceGraph(int num_vars);

  /// Node id of the constant-zero pseudo-variable.
  int zero() const { return n_ - 1; }

  /// Adds x - y ≤ c (strict: x - y < c), tightening any existing edge.
  void AddUpperBound(int x, int y, double c, bool strict);

  /// Computes the all-pairs closure.
  void Close();

  /// Post-closure tightest upper bound on (x - y).
  const Bound& bound(int x, int y) const { return b_[x * n_ + y]; }

  /// Post-closure: some cycle has negative weight (or zero weight with a
  /// strict edge) — the constraint set is unsatisfiable over the reals.
  bool HasNegativeCycle() const;

  /// Post-closure: the constraints entail x - y ≤ c (or < c if strict).
  bool Entails(int x, int y, double c, bool strict) const;

  /// Post-closure: the constraints force x - y = c exactly.
  bool ForcesEquality(int x, int y, double c) const;

 private:
  int n_;  // num_vars + 1 (constant node last)
  std::vector<Bound> b_;
};

/// Sound (never wrong, possibly incomplete) satisfiability and
/// implication tests for conjunctions of LinearAtom / RatioAtom /
/// StringAtom constraints — our implementation of the GSW algorithm [5]
/// plus the paper's ratio extension.  "Provably" means: a `true` answer
/// is a theorem; `false` means "could not prove".
class GswSolver {
 public:
  explicit GswSolver(GswOptions options = GswOptions{});

  /// True iff `s` is proven to have no solution.
  bool ProvablyUnsat(const ConstraintSystem& s) const;

  /// True iff every model of `s` satisfies `t` (proven).
  bool ProvablyImplies(const ConstraintSystem& s,
                       const ConstraintSystem& t) const;

  /// True iff `t` holds in every model (a tautology).
  bool ProvablyValid(const ConstraintSystem& t) const;

  /// Number of satisfiability graph closures run so far (compile-cost
  /// accounting for the benchmarks).
  int64_t closure_count() const { return closure_count_; }

 private:
  /// Builds and checks one domain; returns true if that domain proves
  /// unsatisfiability.
  bool LinearDomainUnsat(const ConstraintSystem& s) const;
  bool LogDomainUnsat(const ConstraintSystem& s) const;
  bool StringsUnsat(const ConstraintSystem& s) const;

  GswOptions options_;
  mutable int64_t closure_count_ = 0;
};

}  // namespace sqlts

#endif  // SQLTS_CONSTRAINTS_GSW_H_
