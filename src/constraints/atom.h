#ifndef SQLTS_CONSTRAINTS_ATOM_H_
#define SQLTS_CONSTRAINTS_ATOM_H_

#include <cstdint>
#include <string>

namespace sqlts {

/// Comparison operators of the GSW constraint language
/// (op ∈ {=, ≠, ≤, <, ≥, >}; paper Sec 6).
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// "=", "<>", "<", "<=", ">", ">=".
std::string CmpOpToString(CmpOp op);

/// Logical negation: ¬(x < y) ≡ x ≥ y, ¬(x = y) ≡ x ≠ y, ...
CmpOp NegateOp(CmpOp op);

/// Swaps sides: (x op y) ≡ (y SwapOp(op) x).
CmpOp SwapOp(CmpOp op);

/// Evaluates `a op b` on doubles.
bool EvalCmp(double a, CmpOp op, double b);

/// Identifier of a constraint variable, interned by VariableCatalog.
/// In pattern analysis a variable denotes "attribute at tuple offset",
/// e.g. price@0 (current tuple) or price@-1 (t.previous).
using VarId = int;

/// Sentinel meaning "no second variable" — the atom compares against the
/// constant alone (X op C).
inline constexpr VarId kNoVar = -1;

/// Additive atom:  x op y + c   (or x op c when y == kNoVar).
/// This is the GSW form "X op Y + C".
struct LinearAtom {
  VarId x;
  VarId y;
  CmpOp op;
  double c;

  LinearAtom Negated() const { return {x, y, NegateOp(op), c}; }
  std::string ToString() const;
  bool operator==(const LinearAtom&) const = default;
};

/// Multiplicative atom:  x op c * y   (requires a positive domain to be
/// analyzable; the paper's Sec 6 extension via Z = X/Y).
struct RatioAtom {
  VarId x;
  VarId y;
  CmpOp op;
  double c;

  RatioAtom Negated() const { return {x, y, NegateOp(op), c}; }
  std::string ToString() const;
  bool operator==(const RatioAtom&) const = default;
};

/// Categorical atom:  x = 'str'  or  x ≠ 'str' (e.g. name='IBM').
struct StringAtom {
  VarId x;
  bool equal;  // true: =, false: ≠
  std::string text;

  StringAtom Negated() const { return {x, !equal, text}; }
  std::string ToString() const;
  bool operator==(const StringAtom&) const = default;
};

}  // namespace sqlts

#endif  // SQLTS_CONSTRAINTS_ATOM_H_
