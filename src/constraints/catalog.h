#ifndef SQLTS_CONSTRAINTS_CATALOG_H_
#define SQLTS_CONSTRAINTS_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "constraints/atom.h"

namespace sqlts {

/// Interns variable names to dense VarIds shared by all predicates of a
/// pattern (so that two predicates over "price@0" talk about the same
/// variable when θ/φ entries are computed).
class VariableCatalog {
 public:
  /// Returns the id for `name`, creating it on first use.
  VarId Intern(std::string_view name);

  /// Name of `id` (checked invariant).
  const std::string& Name(VarId id) const;

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, VarId> ids_;
  std::vector<std::string> names_;
};

}  // namespace sqlts

#endif  // SQLTS_CONSTRAINTS_CATALOG_H_
