#include "constraints/atom.h"

#include "common/logging.h"

namespace sqlts {

std::string CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp NegateOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  SQLTS_CHECK(false);
  return op;
}

CmpOp SwapOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  SQLTS_CHECK(false);
  return op;
}

bool EvalCmp(double a, CmpOp op, double b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

std::string LinearAtom::ToString() const {
  std::string out = "v" + std::to_string(x) + " " + CmpOpToString(op) + " ";
  if (y != kNoVar) {
    out += "v" + std::to_string(y);
    if (c != 0) out += " + " + std::to_string(c);
  } else {
    out += std::to_string(c);
  }
  return out;
}

std::string RatioAtom::ToString() const {
  return "v" + std::to_string(x) + " " + CmpOpToString(op) + " " +
         std::to_string(c) + " * v" + std::to_string(y);
}

std::string StringAtom::ToString() const {
  return "v" + std::to_string(x) + (equal ? " = '" : " <> '") + text + "'";
}

}  // namespace sqlts
