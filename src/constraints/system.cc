#include "constraints/system.h"

namespace sqlts {

ConstraintSystem ConstraintSystem::Conjoin(const ConstraintSystem& a,
                                           const ConstraintSystem& b) {
  ConstraintSystem out = a;
  for (const auto& atom : b.linear_) out.linear_.push_back(atom);
  for (const auto& atom : b.ratio_) out.ratio_.push_back(atom);
  for (const auto& atom : b.string_) out.string_.push_back(atom);
  out.trivially_false_ = a.trivially_false_ || b.trivially_false_;
  return out;
}

std::string ConstraintSystem::ToString() const {
  std::string out;
  auto append = [&out](const std::string& s) {
    if (!out.empty()) out += " AND ";
    out += s;
  };
  for (const auto& a : linear_) append(a.ToString());
  for (const auto& a : ratio_) append(a.ToString());
  for (const auto& a : string_) append(a.ToString());
  if (out.empty()) out = "TRUE";
  return out;
}

}  // namespace sqlts
