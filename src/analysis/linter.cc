#include "analysis/linter.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "constraints/gsw.h"
#include "expr/normalize.h"

namespace sqlts {
namespace {

// The linter reuses the θ/φ machinery (expr/normalize + the
// ImplicationOracle) but asks different questions: instead of relating
// predicates of *different* elements evaluated at the *same* tuple, it
// proves properties of one query — per-element satisfiability,
// cross-element consistency (by shifting constraint variables to a
// common tuple frame), filter/pattern contradictions, and per-conjunct
// redundancy.  Everything here is conservative: an emitted E-code is a
// theorem that the query returns zero rows; every W-code that claims
// drop-safety (W001/W002) is validated continuously by the fuzz
// harness's drop test.
//
// Two soundness pillars carried over from the engine (PR 2):
//  * 3VL: a comparison touching NULL is unknown = unsatisfied.  For
//    unsatisfiability proofs that direction is free (a predicate that
//    evaluates TRUE has real values behind every captured atom); for
//    validity/implication claims the oracle's nullable gating applies,
//    and this file adds the analogous *range* gating — a reference at a
//    non-zero offset can fail to resolve at cluster boundaries, so
//    "always true" and "droppable" claims additionally require the
//    involved offsets to be anchored by the remaining conjuncts.
//  * positive-domain: ratio/log reasoning is licensed only when every
//    column the pattern and the hoisted cluster filters touch is
//    declared POSITIVE (same gate as pattern compilation).

/// Splits the InternPatternVar naming convention "column@offset".
std::optional<std::pair<std::string, int>> SplitVarName(
    const std::string& name) {
  size_t at = name.rfind('@');
  if (at == std::string::npos || at + 1 >= name.size()) return std::nullopt;
  int offset = 0;
  bool neg = false;
  size_t i = at + 1;
  if (name[i] == '-') {
    neg = true;
    ++i;
  }
  if (i >= name.size()) return std::nullopt;
  for (; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    offset = offset * 10 + (name[i] - '0');
  }
  return std::make_pair(name.substr(0, at), neg ? -offset : offset);
}

/// Re-interns every variable of `s` at its offset shifted by `delta`
/// tuple positions (used to conjoin adjacent elements' systems in one
/// tuple frame).  nullopt when a variable is not in pattern-var form.
std::optional<ConstraintSystem> ShiftSystem(const ConstraintSystem& s,
                                            int delta,
                                            VariableCatalog* catalog) {
  auto shift = [&](VarId v) -> std::optional<VarId> {
    auto parsed = SplitVarName(catalog->Name(v));
    if (!parsed) return std::nullopt;
    return InternPatternVar(catalog, parsed->first, parsed->second + delta);
  };
  ConstraintSystem out;
  if (s.trivially_false()) out.SetTriviallyFalse();
  for (const LinearAtom& a : s.linear()) {
    auto x = shift(a.x);
    if (!x) return std::nullopt;
    VarId y = a.y;
    if (y != kNoVar) {
      auto ys = shift(y);
      if (!ys) return std::nullopt;
      y = *ys;
    }
    out.AddLinear({*x, y, a.op, a.c});
  }
  for (const RatioAtom& a : s.ratio()) {
    auto x = shift(a.x);
    auto y = shift(a.y);
    if (!x || !y) return std::nullopt;
    out.AddRatio({*x, *y, a.op, a.c});
  }
  for (const StringAtom& a : s.strings()) {
    auto x = shift(a.x);
    if (!x) return std::nullopt;
    out.AddString({*x, a.equal, a.text});
  }
  return out;
}

/// The ambient SEQUENCE BY axioms: within a cluster, tuples are sorted
/// by the first SEQUENCE BY column, so for interned variables seq@a,
/// seq@b with a > b the data satisfies seq@a >= seq@b (non-strict:
/// ties are legal).  A chain over the sorted offsets suffices — the
/// difference-graph closure derives the rest.  Only sound when the
/// column is non-nullable (a NULL has no place in the order).
ConstraintSystem OrderingSystem(const VariableCatalog& catalog,
                                const std::string& seq_column) {
  std::vector<std::pair<int, VarId>> seq_vars;
  for (VarId v = 0; v < catalog.size(); ++v) {
    auto parsed = SplitVarName(catalog.Name(v));
    if (parsed && parsed->first == seq_column) {
      seq_vars.emplace_back(parsed->second, v);
    }
  }
  std::sort(seq_vars.begin(), seq_vars.end());
  ConstraintSystem out;
  for (size_t i = 1; i < seq_vars.size(); ++i) {
    out.AddXopYplusC(seq_vars[i].second, CmpOp::kGe, seq_vars[i - 1].second,
                     0);
  }
  return out;
}

/// True when `s` constrains the SEQUENCE BY column at any offset.
bool TouchesSeqColumn(const ConstraintSystem& s,
                      const VariableCatalog& catalog,
                      const std::string& seq_column) {
  auto is_seq = [&](VarId v) {
    if (v == kNoVar) return false;
    auto parsed = SplitVarName(catalog.Name(v));
    return parsed && parsed->first == seq_column;
  };
  for (const LinearAtom& a : s.linear()) {
    if (is_seq(a.x) || is_seq(a.y)) return true;
  }
  for (const RatioAtom& a : s.ratio()) {
    if (is_seq(a.x) || is_seq(a.y)) return true;
  }
  return false;
}

/// A conjunct is *rigid* when its 3VL value can only be TRUE if every
/// leaf comparison evaluated on real (resolved, non-NULL) operands: no
/// OR anywhere, and NOT only directly above a comparison.  Rigid
/// conjuncts anchor two claims: their references are guaranteed
/// resolved wherever they hold (W001's range gating), and an
/// unresolvable reference inside one makes it fail (E004's
/// star-group requirement).
bool RigidConjunct(const ExprPtr& e) {
  if (e == nullptr) return true;
  if (e->kind == ExprKind::kOr) return false;
  if (e->kind == ExprKind::kNot) {
    return e->lhs != nullptr && e->lhs->kind == ExprKind::kCompare;
  }
  return RigidConjunct(e->lhs) && RigidConjunct(e->rhs);
}

/// Everything the per-conjunct checks need to know about one conjunct.
struct ConjunctInfo {
  ExprPtr expr;
  PredicateAnalysis analysis;
  bool rigid = false;
  bool has_anchored = false;
  /// total_offsets of relative references.
  std::set<int> rel_offsets;
  /// 0-based elements referenced through anchored (group-span) refs.
  std::set<int> anchored_elements;
};

ConjunctInfo BuildConjunctInfo(const ExprPtr& c, const Schema& schema,
                               VariableCatalog* catalog) {
  ConjunctInfo info;
  info.expr = c;
  info.analysis = AnalyzePredicate(c, schema, catalog);
  info.rigid = RigidConjunct(c);
  VisitColumnRefs(c, [&](const ColumnRef& r) {
    if (r.relative) {
      info.rel_offsets.insert(r.total_offset);
    } else {
      info.has_anchored = true;
      if (r.element >= 0) info.anchored_elements.insert(r.element);
    }
  });
  return info;
}

SourceSpan ElementSpan(const PatternElement& el) {
  SourceSpan span;
  for (const ExprPtr& c : el.conjuncts) {
    span = SourceSpan::Union(span, c->span);
  }
  return span;
}

std::string ElementLabel(const CompiledQuery& q, int e0) {
  return "pattern element " + std::to_string(e0 + 1) + " (" +
         (q.elements[e0].star ? "*" : "") + q.elements[e0].var + ")";
}

std::string PredicateText(const PatternElement& el) {
  return el.predicate == nullptr ? "TRUE" : el.predicate->ToString();
}

/// Walks `e` reporting FIRST()/LAST() accessors applied to non-star
/// elements (W003): the group is a single tuple, so the accessor is
/// noise.
void FindScalarGroupAccessors(
    const ExprPtr& e, const CompiledQuery& q,
    const std::function<void(const ExprPtr&)>& report) {
  if (e == nullptr) return;
  if ((e->kind == ExprKind::kColumnRef || e->kind == ExprKind::kAggregate) &&
      e->ref.accessor != GroupAccessor::kCurrent && e->ref.element >= 0 &&
      e->ref.element < q.pattern_length() &&
      !q.elements[e->ref.element].star) {
    report(e);
  }
  FindScalarGroupAccessors(e->lhs, q, report);
  FindScalarGroupAccessors(e->rhs, q, report);
}

}  // namespace

bool LintResult::has_errors() const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) { return d.is_error(); });
}

bool LintResult::has_warnings() const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) { return !d.is_error(); });
}

std::vector<Diagnostic> LintResult::with_code(std::string_view code) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) out.push_back(d);
  }
  return out;
}

std::string SummarizeErrors(const LintResult& result) {
  std::string out;
  for (const Diagnostic& d : result.diagnostics) {
    if (!d.is_error()) continue;
    if (!out.empty()) out += "; ";
    out += "[" + d.code + "] " + d.message;
  }
  return out;
}

LintResult LintQuery(const CompiledQuery& q, const LintOptions& options) {
  LintResult out;
  const int m = q.pattern_length();
  if (m == 0) return out;
  const Schema& schema = q.input_schema;

  // Positive-domain gate, mirroring CompilePattern but extended to the
  // hoisted cluster filters (the linter conjoins filter systems with
  // element systems, so their columns must satisfy the same domain
  // assumption).
  bool all_positive = true;
  auto gate = [&](const ExprPtr& e) {
    VisitColumnRefs(e, [&](const ColumnRef& r) {
      if (r.column_index < 0 || !schema.column(r.column_index).positive) {
        all_positive = false;
      }
    });
  };
  for (const PatternElement& el : q.elements) {
    if (el.predicate != nullptr) gate(el.predicate);
  }
  for (const ExprPtr& f : q.cluster_filters) gate(f);

  LintOptions gated = options;
  gated.oracle.gsw.positive_domain =
      gated.oracle.gsw.positive_domain && all_positive;
  ImplicationOracle oracle(gated.oracle);
  const GswSolver& solver = oracle.solver();

  // One shared catalog: "col@off" variables mean the same thing in
  // every analysis, which is what lets systems be conjoined across
  // elements and filters.
  VariableCatalog catalog;
  std::vector<PredicateAnalysis> elem(m);
  std::vector<std::vector<ConjunctInfo>> conj(m);
  std::vector<SourceSpan> elem_span(m);
  for (int e = 0; e < m; ++e) {
    elem[e] = AnalyzePredicate(q.elements[e].predicate, schema, &catalog);
    elem_span[e] = ElementSpan(q.elements[e]);
    for (const ExprPtr& c : q.elements[e].conjuncts) {
      conj[e].push_back(BuildConjunctInfo(c, schema, &catalog));
    }
  }
  std::vector<PredicateAnalysis> filt;
  filt.reserve(q.cluster_filters.size());
  for (const ExprPtr& f : q.cluster_filters) {
    filt.push_back(AnalyzePredicate(f, schema, &catalog));
  }

  // SEQUENCE BY ordering axioms are licensed by a non-nullable, ordered
  // first sequencing column.
  std::string seq_column;
  bool seq_ordered = false;
  if (!q.sequence_by.empty()) {
    auto idx = schema.FindColumn(q.sequence_by[0]);
    if (idx.ok()) {
      const ColumnDef& col = schema.column(*idx);
      seq_ordered = !col.nullable && (col.type == TypeKind::kInt64 ||
                                      col.type == TypeKind::kDouble ||
                                      col.type == TypeKind::kDate);
      if (seq_ordered) seq_column = col.name;
    }
  }
  auto ordering = [&]() {
    return seq_ordered ? OrderingSystem(catalog, seq_column)
                       : ConstraintSystem();
  };

  // --- E005: a cluster filter is itself unsatisfiable -----------------
  std::vector<bool> filter_dead(filt.size(), false);
  for (size_t f = 0; f < filt.size(); ++f) {
    if (!oracle.Unsat(filt[f])) continue;
    filter_dead[f] = true;
    out.diagnostics.push_back(Diagnostic{
        "E005", DiagSeverity::kError,
        "cluster filter '" + q.cluster_filters[f]->ToString() +
            "' is provably unsatisfiable: no cluster passes, so the query "
            "returns zero rows",
        q.cluster_filters[f]->span, 0, -1});
  }
  // Hoisting splits a contradictory filter conjunction into individually
  // satisfiable pieces (grp > 5 AND grp < 3), so also test them jointly.
  if (filt.size() >= 2 &&
      std::none_of(filter_dead.begin(), filter_dead.end(),
                   [](bool b) { return b; })) {
    PredicateAnalysis joint;
    SourceSpan span;
    std::string text;
    for (size_t f = 0; f < filt.size(); ++f) {
      joint.system = ConstraintSystem::Conjoin(joint.system, filt[f].system);
      for (const auto& g : filt[f].or_groups) joint.or_groups.push_back(g);
      span = SourceSpan::Union(span, q.cluster_filters[f]->span);
      if (!text.empty()) text += " AND ";
      text += q.cluster_filters[f]->ToString();
    }
    if (oracle.Unsat(joint)) {
      filter_dead.assign(filt.size(), true);
      out.diagnostics.push_back(Diagnostic{
          "E005", DiagSeverity::kError,
          "cluster filters '" + text +
              "' are jointly unsatisfiable: no cluster passes, so the "
              "query returns zero rows",
          span, 0, -1});
    }
  }

  // --- E001/E003/E004/W006: per-element unsatisfiability --------------
  // For each element, try the predicate alone, then augmented with the
  // ordering axioms, then conjoined with each (satisfiable) cluster
  // filter.  Any unsat verdict is sound: a tuple satisfying the
  // predicate would provide real values satisfying all captured atoms,
  // the ordering holds by the sort, and cluster-filter atoms hold on
  // every tuple of an accepted cluster (cluster columns are constant).
  std::vector<bool> elem_dead(m, false);
  for (int e = 0; e < m; ++e) {
    bool unsat = oracle.Unsat(elem[e]);
    bool via_ordering = false;
    int via_filter = -1;
    if (!unsat && seq_ordered) {
      PredicateAnalysis aug = elem[e];
      aug.system = ConstraintSystem::Conjoin(aug.system, ordering());
      if (oracle.Unsat(aug)) {
        unsat = true;
        via_ordering = true;
      }
    }
    if (!unsat) {
      for (size_t f = 0; f < filt.size(); ++f) {
        if (filter_dead[f]) continue;
        PredicateAnalysis aug = elem[e];
        aug.system = ConstraintSystem::Conjoin(aug.system, filt[f].system);
        for (const auto& g : filt[f].or_groups) aug.or_groups.push_back(g);
        if (seq_ordered) {
          aug.system = ConstraintSystem::Conjoin(aug.system, ordering());
        }
        if (oracle.Unsat(aug)) {
          unsat = true;
          via_filter = static_cast<int>(f);
          break;
        }
      }
    }
    if (!unsat) continue;
    elem_dead[e] = true;

    const bool star = q.elements[e].star;
    if (!star) {
      if (via_filter >= 0) {
        out.diagnostics.push_back(Diagnostic{
            "E003", DiagSeverity::kError,
            ElementLabel(q, e) + ": predicate '" +
                PredicateText(q.elements[e]) +
                "' contradicts the hoisted cluster filter '" +
                q.cluster_filters[via_filter]->ToString() +
                "': no tuple in an accepted cluster can satisfy it, so "
                "the query returns zero rows",
            SourceSpan::Union(elem_span[e],
                              q.cluster_filters[via_filter]->span),
            e + 1, -1});
      } else {
        out.diagnostics.push_back(Diagnostic{
            "E001", DiagSeverity::kError,
            ElementLabel(q, e) + ": predicate '" +
                PredicateText(q.elements[e]) +
                "' is provably unsatisfiable" +
                (via_ordering ? " under the SEQUENCE BY ordering" : "") +
                ", so the query returns zero rows",
            elem_span[e], e + 1, -1});
      }
      continue;
    }

    // Star element: the group can never take a tuple.  That only makes
    // the query provably empty when a later non-star element *requires*
    // the group non-empty: a rigid conjunct with an anchored reference
    // into it necessarily fails on the empty group's unresolvable span
    // (3VL: unknown = unsatisfied).  Otherwise it is dead weight (W006).
    int req_elem = -1, req_conj = -1;
    for (int k = 0; k < m && req_elem < 0; ++k) {
      if (k == e || q.elements[k].star || elem_dead[k]) continue;
      for (size_t i = 0; i < conj[k].size(); ++i) {
        if (conj[k][i].rigid && conj[k][i].anchored_elements.count(e)) {
          req_elem = k;
          req_conj = static_cast<int>(i);
          break;
        }
      }
    }
    if (req_elem >= 0) {
      out.diagnostics.push_back(Diagnostic{
          "E004", DiagSeverity::kError,
          ElementLabel(q, e) + ": continuation predicate '" +
              PredicateText(q.elements[e]) +
              "' is provably unsatisfiable, so the group is always "
              "empty; but '" +
              conj[req_elem][req_conj].expr->ToString() + "' (" +
              ElementLabel(q, req_elem) +
              ") references the group and can never hold on an empty "
              "one, so the query returns zero rows",
          SourceSpan::Union(elem_span[e],
                            conj[req_elem][req_conj].expr->span),
          e + 1, -1});
    } else {
      out.diagnostics.push_back(Diagnostic{
          "W006", DiagSeverity::kWarning,
          ElementLabel(q, e) + ": continuation predicate '" +
              PredicateText(q.elements[e]) +
              "' is provably unsatisfiable — the star group is always "
              "empty and the element is dead weight",
          elem_span[e], e + 1, -1});
    }
  }

  // --- E002: adjacent non-star elements contradict --------------------
  // Shift each element's system into a common tuple frame (element j's
  // tuple sits delta positions after element a's within a run of
  // single-tuple elements) and test joint satisfiability under the
  // ordering axioms.  Pairwise first for precise attribution, then the
  // whole run to catch longer contradiction cycles.
  {
    int a = 0;
    while (a < m) {
      if (q.elements[a].star || elem_dead[a]) {
        ++a;
        continue;
      }
      int b = a;
      while (b + 1 < m && !q.elements[b + 1].star && !elem_dead[b + 1]) ++b;
      bool pair_fired = false;
      for (int j = a; j < b; ++j) {
        auto shifted = ShiftSystem(elem[j + 1].system, 1, &catalog);
        if (!shifted) continue;
        ConstraintSystem joint =
            ConstraintSystem::Conjoin(elem[j].system, *shifted);
        if (seq_ordered) {
          joint = ConstraintSystem::Conjoin(joint, ordering());
        }
        if (solver.ProvablyUnsat(joint)) {
          pair_fired = true;
          out.diagnostics.push_back(Diagnostic{
              "E002", DiagSeverity::kError,
              ElementLabel(q, j) + " and " + ElementLabel(q, j + 1) +
                  ": combined constraints on consecutive tuples are "
                  "contradictory under the difference-graph closure, so "
                  "the query returns zero rows",
              SourceSpan::Union(elem_span[j], elem_span[j + 1]), j + 1,
              -1});
        }
      }
      if (!pair_fired && b - a >= 2) {
        ConstraintSystem joint = elem[a].system;
        bool all_shifted = true;
        for (int j = a + 1; j <= b; ++j) {
          auto shifted = ShiftSystem(elem[j].system, j - a, &catalog);
          if (!shifted) {
            all_shifted = false;
            break;
          }
          joint = ConstraintSystem::Conjoin(joint, *shifted);
        }
        if (seq_ordered) {
          joint = ConstraintSystem::Conjoin(joint, ordering());
        }
        if (all_shifted && solver.ProvablyUnsat(joint)) {
          SourceSpan span;
          for (int j = a; j <= b; ++j) {
            span = SourceSpan::Union(span, elem_span[j]);
          }
          out.diagnostics.push_back(Diagnostic{
              "E002", DiagSeverity::kError,
              ElementLabel(q, a) + " through " + ElementLabel(q, b) +
                  ": the run's combined constraints are contradictory "
                  "under the difference-graph closure, so the query "
                  "returns zero rows",
              span, a + 1, -1});
        }
      }
      a = b + 1;
    }
  }

  // --- W005: LIMIT 0 --------------------------------------------------
  if (q.limit_zero) {
    out.diagnostics.push_back(Diagnostic{
        "W005", DiagSeverity::kWarning,
        "LIMIT 0 discards every match: the pattern is never evaluated "
        "and the query always returns zero rows",
        q.limit_span, 0, -1});
  }

  // --- W003: FIRST()/LAST() on a non-star element ---------------------
  for (const SelectItem& item : q.select) {
    FindScalarGroupAccessors(item.expr, q, [&](const ExprPtr& node) {
      const char* acc =
          node->ref.accessor == GroupAccessor::kFirst ? "FIRST" : "LAST";
      out.diagnostics.push_back(Diagnostic{
          "W003", DiagSeverity::kWarning,
          std::string(acc) + "(" + node->ref.var + ") in the SELECT list: " +
              ElementLabel(q, node->ref.element) +
              " matches exactly one tuple, so the accessor is a no-op",
          node->span, node->ref.element + 1, -1});
    });
  }

  // --- W001/W002/W004: per-conjunct findings --------------------------
  for (int e = 0; e < m; ++e) {
    if (elem_dead[e]) continue;  // dead elements already reported
    const std::vector<ConjunctInfo>& infos = conj[e];
    for (size_t i = 0; i < infos.size(); ++i) {
      const ConjunctInfo& ci = infos[i];

      // W002: always true.  Valid() covers NULLs (3VL gating); the
      // offset restriction covers cluster-boundary resolution — only
      // the tuple under test (offset 0) is guaranteed to exist.
      bool offsets_trivial = !ci.has_anchored;
      for (int off : ci.rel_offsets) offsets_trivial &= off == 0;
      if (offsets_trivial && oracle.Valid(ci.analysis)) {
        out.diagnostics.push_back(Diagnostic{
            "W002", DiagSeverity::kWarning,
            ElementLabel(q, e) + ": conjunct '" + ci.expr->ToString() +
                "' is always true and can be dropped",
            ci.expr->span, e + 1, static_cast<int>(i)});
        continue;
      }

      // W004: entailed by the SEQUENCE BY sort order alone.  Advisory,
      // not drop-safe: at cluster boundaries an off-tuple reference
      // fails to resolve, so the comparison still acts as a range
      // guard.
      if (seq_ordered && ci.analysis.complete &&
          ci.analysis.or_groups.empty() && !ci.analysis.system.empty() &&
          !ci.analysis.system.trivially_false() &&
          TouchesSeqColumn(ci.analysis.system, catalog, seq_column) &&
          solver.ProvablyImplies(ordering(), ci.analysis.system)) {
        out.diagnostics.push_back(Diagnostic{
            "W004", DiagSeverity::kWarning,
            ElementLabel(q, e) + ": comparison '" + ci.expr->ToString() +
                "' on SEQUENCE BY column '" + seq_column +
                "' is implied by the sort order wherever its references "
                "resolve (it only acts as a cluster-boundary guard)",
            ci.expr->span, e + 1, static_cast<int>(i)});
        continue;
      }

      // W001: implied by the sibling conjuncts.  Drop-safe: whenever
      // the siblings hold, (a) their rigid members pin every offset the
      // conjunct dereferences (range), (b) the oracle's nullable gating
      // pins its NULLs, and (c) the captured implication pins its
      // truth.
      if (infos.size() < 2 || ci.has_anchored) continue;
      std::set<int> guaranteed{0};
      ExprPtr rest;
      for (size_t k = 0; k < infos.size(); ++k) {
        if (k == i) continue;
        rest = rest ? MakeAnd(rest, infos[k].expr) : infos[k].expr;
        if (infos[k].rigid) {
          guaranteed.insert(infos[k].rel_offsets.begin(),
                            infos[k].rel_offsets.end());
        }
      }
      bool offsets_covered = true;
      for (int off : ci.rel_offsets) offsets_covered &= guaranteed.count(off);
      if (!offsets_covered) continue;
      PredicateAnalysis rest_an = AnalyzePredicate(rest, schema, &catalog);
      if (oracle.Implies(rest_an, ci.analysis)) {
        out.diagnostics.push_back(Diagnostic{
            "W001", DiagSeverity::kWarning,
            ElementLabel(q, e) + ": conjunct '" + ci.expr->ToString() +
                "' is implied by its sibling conjuncts and can be dropped",
            ci.expr->span, e + 1, static_cast<int>(i)});
      }
    }
  }

  return out;
}

StatusOr<LintResult> LintQueryText(std::string_view text,
                                   const Schema& schema,
                                   const LintOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(text, schema));
  return LintQuery(query, options);
}

}  // namespace sqlts
