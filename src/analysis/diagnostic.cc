#include "analysis/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace sqlts {
namespace {

/// Start offset of the line containing `offset` and the line's length
/// (excluding the newline).
std::pair<int, int> LineExtent(std::string_view source, int offset) {
  int begin = offset;
  while (begin > 0 && source[begin - 1] != '\n') --begin;
  int end = offset;
  while (end < static_cast<int>(source.size()) && source[end] != '\n') ++end;
  return {begin, end - begin};
}

void JsonEscape(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Stable display order: errors before warnings, then source position,
/// then code.
std::vector<const Diagnostic*> Sorted(
    const std::vector<Diagnostic>& diagnostics) {
  std::vector<const Diagnostic*> out;
  out.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) out.push_back(&d);
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     if (a->is_error() != b->is_error()) return a->is_error();
                     int pa = a->span.valid() ? a->span.begin : 1 << 30;
                     int pb = b->span.valid() ? b->span.begin : 1 << 30;
                     if (pa != pb) return pa < pb;
                     return a->code < b->code;
                   });
  return out;
}

}  // namespace

const char* DiagSeverityName(DiagSeverity severity) {
  return severity == DiagSeverity::kError ? "error" : "warning";
}

LineCol LineColAt(std::string_view source, int offset) {
  if (offset < 0 || offset > static_cast<int>(source.size())) return {};
  LineCol lc{1, 1};
  for (int i = 0; i < offset; ++i) {
    if (source[i] == '\n') {
      ++lc.line;
      lc.column = 1;
    } else {
      ++lc.column;
    }
  }
  return lc;
}

std::string FormatDiagnostic(const Diagnostic& d, std::string_view source) {
  std::ostringstream os;
  os << DiagSeverityName(d.severity) << "[" << d.code << "]: " << d.message
     << "\n";
  if (!d.span.valid() || d.span.begin >= static_cast<int>(source.size())) {
    return os.str();
  }
  LineCol lc = LineColAt(source, d.span.begin);
  os << "  --> query:" << lc.line << ":" << lc.column << "\n";
  auto [line_begin, line_len] = LineExtent(source, d.span.begin);
  os << "   |\n";
  os << "   | " << source.substr(line_begin, line_len) << "\n";
  // Carets under the span, clipped to the first line it touches.
  int caret_start = d.span.begin - line_begin;
  int caret_len =
      std::min(d.span.end, line_begin + line_len) - d.span.begin;
  caret_len = std::max(caret_len, 1);
  os << "   | " << std::string(caret_start, ' ') << "^"
     << std::string(caret_len - 1, '~') << "\n";
  return os.str();
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source) {
  std::string out;
  int errors = 0, warnings = 0;
  for (const Diagnostic* d : Sorted(diagnostics)) {
    out += FormatDiagnostic(*d, source);
    (d->is_error() ? errors : warnings) += 1;
  }
  if (!diagnostics.empty()) {
    out += std::to_string(errors) + " error(s), " +
           std::to_string(warnings) + " warning(s)\n";
  }
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source) {
  std::string out = "[";
  bool first = true;
  for (const Diagnostic* d : Sorted(diagnostics)) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"code\":\"";
    JsonEscape(d->code, &out);
    out += "\",\"severity\":\"";
    out += DiagSeverityName(d->severity);
    out += "\",\"message\":\"";
    JsonEscape(d->message, &out);
    out += "\"";
    if (d->span.valid()) {
      LineCol lc = LineColAt(source, d->span.begin);
      out += ",\"line\":" + std::to_string(lc.line);
      out += ",\"column\":" + std::to_string(lc.column);
      out += ",\"offset\":" + std::to_string(d->span.begin);
      out += ",\"length\":" + std::to_string(d->span.end - d->span.begin);
    }
    out += ",\"element\":" + std::to_string(d->element);
    out += ",\"conjunct\":" + std::to_string(d->conjunct);
    out += "}";
  }
  out += diagnostics.empty() ? "]" : "\n]";
  return out;
}

}  // namespace sqlts
