#ifndef SQLTS_ANALYSIS_LINTER_H_
#define SQLTS_ANALYSIS_LINTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/statusor.h"
#include "parser/analyzer.h"
#include "pattern/theta_phi.h"

namespace sqlts {

/// Knobs for the static query analyzer.  The GSW positive-domain mode
/// is gated per-query exactly like pattern compilation: it only stays
/// on when every column the pattern (or a hoisted cluster filter)
/// touches is declared POSITIVE.
struct LintOptions {
  OracleOptions oracle;
};

/// The analyzer's verdicts over one compiled query.
struct LintResult {
  std::vector<Diagnostic> diagnostics;

  bool has_errors() const;
  bool has_warnings() const;
  /// Diagnostics with the given code, in emission order.
  std::vector<Diagnostic> with_code(std::string_view code) const;
};

/// Statically analyzes a resolved query between semantic analysis
/// (parser/analyzer.h) and pattern compilation (pattern/compile.h),
/// reusing the θ/φ implication oracle — GSW difference-constraint
/// closure, interval sets, and the 3VL nullable gating — to prove:
///
/// E-codes (the query provably returns zero rows):
///   E001  an element's predicate is unsatisfiable (alone or under the
///         SEQUENCE BY ordering axioms)
///   E002  consecutive non-star elements' combined constraints
///         contradict under the difference-graph closure
///   E003  a hoisted cluster filter contradicts an element predicate
///   E004  a star group's continuation predicate is unsatisfiable while
///         a later non-star element requires the group non-empty
///   E005  a hoisted cluster filter is itself unsatisfiable
///
/// W-codes (wasted work; results provably unaffected):
///   W001  a conjunct is implied by its sibling conjuncts (redundant)
///   W002  an explicitly written always-true conjunct
///   W003  FIRST()/LAST() applied to a non-star element in SELECT
///   W004  a comparison already entailed by the SEQUENCE BY ordering
///   W005  LIMIT 0 discards every match
///   W006  a star element's predicate is unsatisfiable (group always
///         empty) without any element requiring it
///
/// Every answer is conservative: an E-code is a theorem ("this query
/// cannot match"), checked continuously against the naive execution
/// oracle by the differential fuzzer.
LintResult LintQuery(const CompiledQuery& query,
                     const LintOptions& options = {});

/// Convenience: parse + analyze + lint.  Fails only when the query does
/// not compile (parse/semantic errors); lint findings are in the result.
StatusOr<LintResult> LintQueryText(std::string_view text,
                                   const Schema& schema,
                                   const LintOptions& options = {});

/// "[E001] message; [E003] message" — for refusal Status messages.
std::string SummarizeErrors(const LintResult& result);

}  // namespace sqlts

#endif  // SQLTS_ANALYSIS_LINTER_H_
