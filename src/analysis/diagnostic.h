#ifndef SQLTS_ANALYSIS_DIAGNOSTIC_H_
#define SQLTS_ANALYSIS_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "expr/expr.h"

namespace sqlts {

/// Severity of a static-analysis diagnostic.  Errors are reserved for
/// queries the analyzer *proved* return zero rows (sound: "true is a
/// theorem"); warnings flag wasted work whose removal cannot change
/// results.
enum class DiagSeverity : uint8_t { kWarning, kError };

/// "warning" / "error".
const char* DiagSeverityName(DiagSeverity severity);

/// One diagnostic with a stable code (see docs/DIAGNOSTICS.md for the
/// catalog), a source span into the query text, and — where the finding
/// is attributable — the pattern element and conjunct it concerns, so
/// tools (and the fuzz harness's drop-test) can act on it mechanically.
struct Diagnostic {
  /// Stable machine-readable code: "E001".."E005", "W001".."W006".
  std::string code;
  DiagSeverity severity = DiagSeverity::kWarning;
  std::string message;
  /// Byte range in the query text; invalid when not attributable.
  SourceSpan span;
  /// 1-based pattern element the finding concerns; 0 = whole query or a
  /// cluster filter.
  int element = 0;
  /// Index into that element's conjunct list (for per-conjunct findings
  /// such as W001/W002); -1 = the whole predicate.
  int conjunct = -1;

  bool is_error() const { return severity == DiagSeverity::kError; }
};

/// 1-based line/column position; {0, 0} when the offset is unknown.
struct LineCol {
  int line = 0;
  int column = 0;
};

/// Line/column of byte `offset` within `source`.
LineCol LineColAt(std::string_view source, int offset);

/// Renders one diagnostic in caret style:
///
///   error[E001]: pattern element 1 (X): ...
///     --> query:1:52
///      | ... WHERE X.price > 10 AND X.price < 5
///      |       ^~~~~~~~~~~~~~~~~~~~~~~~~~
///
/// `source` is the query text the spans index into; diagnostics without
/// a valid span render without the excerpt.
std::string FormatDiagnostic(const Diagnostic& d, std::string_view source);

/// Renders all diagnostics (errors first) plus a one-line summary.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source);

/// Machine-readable JSON array:
///   [{"code":"E001","severity":"error","message":...,"line":1,
///     "column":52,"offset":51,"length":26,"element":1,"conjunct":0}]
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source);

}  // namespace sqlts

#endif  // SQLTS_ANALYSIS_DIAGNOSTIC_H_
