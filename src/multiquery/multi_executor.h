#ifndef SQLTS_MULTIQUERY_MULTI_EXECUTOR_H_
#define SQLTS_MULTIQUERY_MULTI_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "engine/executor.h"
#include "multiquery/predicate_catalog.h"
#include "storage/table.h"

namespace sqlts {

/// Result of running a set of SQL-TS queries over one input: each
/// query's ordinary QueryResult (output rows bit-identical to running
/// it alone) plus the workload-level sharing accounting.
struct QuerySetResult {
  std::vector<QueryResult> per_query;
  MultiQueryStats stats;
};

/// Batch shared multi-query execution: compiles every query, groups
/// them by (CLUSTER BY, SEQUENCE BY) signature so each group clusters
/// the input once, canonicalizes all pattern-element conjuncts of a
/// group into one SharedPredicateCatalog, and drives every query's OPS
/// matcher over each cluster behind a per-cluster memo — a predicate
/// shared by several queries is evaluated at most once per tuple.
///
/// Output equivalence: per-query rows are bit-identical to running the
/// query alone with the same options, at any thread count.  With
/// options.num_threads > 1 each scan group hash-partitions its
/// clusters over a ShardPool (one task per cluster; a worker runs all
/// of the group's matchers for its cluster) and rows merge back in
/// cluster first-appearance order.  LIMIT queries are truncated to
/// their first `limit` rows in that same deterministic order.
/// collect_trace is not supported here (traces are per-query sequential
/// logs); per-query traces come back empty.
class MultiQueryExecutor {
 public:
  static StatusOr<QuerySetResult> Execute(
      const Table& input, const std::vector<std::string>& queries,
      const ExecOptions& options = {});
};

/// EXPLAIN for a query set: each query's full compilation report plus
/// the shared predicate catalog — distinct predicates, merge/edge
/// counts, and per-predicate registration fan-in.
StatusOr<std::string> ExplainQuerySet(const Schema& schema,
                                      const std::vector<std::string>& queries,
                                      const ExecOptions& options = {});

}  // namespace sqlts

#endif  // SQLTS_MULTIQUERY_MULTI_EXECUTOR_H_
