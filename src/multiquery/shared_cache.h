#ifndef SQLTS_MULTIQUERY_SHARED_CACHE_H_
#define SQLTS_MULTIQUERY_SHARED_CACHE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/shared_eval.h"
#include "expr/eval.h"
#include "multiquery/predicate_catalog.h"
#include "parser/analyzer.h"

namespace sqlts {

/// One query's pattern elements mapped into a shared predicate id
/// space: element j's conjuncts, each carrying its catalog id (or -1
/// when the conjunct is private to the query and always evaluated
/// directly).
struct QueryConjuncts {
  struct Conjunct {
    ExprPtr expr;
    int shared_id = -1;
  };
  /// Indexed by 1-based pattern element (slot 0 unused), mirroring
  /// PatternPlan::predicates.
  std::vector<std::vector<Conjunct>> elements;
};

/// Registers every pattern-element conjunct of `query` in `catalog`.
QueryConjuncts RegisterQueryConjuncts(const CompiledQuery& query,
                                      SharedPredicateCatalog* catalog);

/// Scan-group signature of a query: the resolved column indexes of its
/// CLUSTER BY and SEQUENCE BY lists.  Queries with equal signatures
/// partition the input identically, so they share one clustering pass,
/// one predicate catalog, and per-cluster caches.
StatusOr<std::string> ScanGroupSignature(const Schema& schema,
                                         const CompiledQuery& query);

/// Memo of shared-predicate verdicts for one cluster, keyed by
/// (predicate id, absolute sequence position).  A ring window per
/// predicate bounds memory: an evicted slot only costs a re-evaluation,
/// never correctness, because cached values are query-independent (a
/// tuple-local conjunct shared by two queries reads the same tuple
/// neighborhood in both — see docs/MULTIQUERY.md for the buffered-view
/// argument).  Thread-safe: per-query streaming executors shard by the
/// same cluster-key hash, so workers of *different* queries may probe
/// one cluster's cache concurrently.
class SharedClusterCache {
 public:
  /// `window` slots per predicate; sized to the cluster length in batch
  /// mode (exact once-per-tuple memoization) and to a fixed horizon in
  /// streaming mode.
  SharedClusterCache(const SharedPredicateCatalog* catalog, int64_t window);

  /// Returns the TRUE-collapsed verdict of predicate `pred_id` at
  /// absolute position `abs_pos`, evaluating under `ctx` only on a
  /// miss.  A TRUE verdict seeds the slots of every predicate the
  /// catalog proves subsumed.
  bool Test(int pred_id, const EvalContext& ctx, int64_t abs_pos,
            MultiQueryCounters* counters);

 private:
  struct Slot {
    int64_t pos = -1;  // absolute position cached, -1 = empty
    bool val = false;
    bool inferred = false;  // seeded by a subsumption edge
  };

  const SharedPredicateCatalog* catalog_;
  int64_t window_;
  ts::Mutex mu_;
  /// [pred id][abs_pos % window]
  std::vector<std::vector<Slot>> rings_ GUARDED_BY(mu_);
  KernelScratch scratch_ GUARDED_BY(mu_);  // kernel work area
};

/// ElementEvaluator for one (query, cluster) pair: splits the element
/// predicate into its conjuncts, answering shared ones through the
/// cluster cache and private ones directly.  Answer-preserving: under
/// Kleene semantics the AND of conjuncts is TRUE iff every conjunct is
/// TRUE, which is exactly the per-conjunct collapse this reproduces.
class MultiQueryEvaluator : public ElementEvaluator {
 public:
  MultiQueryEvaluator(const QueryConjuncts* conjuncts,
                      SharedClusterCache* cache,
                      MultiQueryCounters* counters)
      : conjuncts_(conjuncts), cache_(cache), counters_(counters) {}

  bool Test(int j, const SequenceView& seq, int64_t pos,
            const std::vector<GroupSpan>& spans, int64_t abs_pos) override;

 private:
  const QueryConjuncts* conjuncts_;
  SharedClusterCache* cache_;
  MultiQueryCounters* counters_;
};

/// Shared-evaluation state for one scan group (queries with identical
/// CLUSTER BY / SEQUENCE BY): the predicate catalog, one cache per
/// cluster (keyed by encoded cluster key, the identity stable across
/// per-query executors), and the workload counters.
class SharedEvalManager {
 public:
  SharedEvalManager(const Schema& schema, OracleOptions oracle,
                    int64_t window);

  /// Registers a query's conjuncts; call on the control thread only.
  QueryConjuncts Register(const CompiledQuery& query) {
    return RegisterQueryConjuncts(query, &catalog_);
  }

  /// Cache for `encoded_key`'s cluster, created on first use.
  /// Thread-safe (shard workers of different queries race here).
  SharedClusterCache* CacheFor(const std::string& encoded_key);

  /// Frees every cache namespaced to `epoch` (keys the factories build
  /// as "<epoch>\x1f<cluster key>").  Only call once no live query of
  /// this scan group holds that epoch: evaluators keep raw cache
  /// pointers for the life of their matcher, so releasing an epoch
  /// with a live member would dangle them.  MultiStreamExecutor calls
  /// this when RemoveQuery drops the last query of an epoch.
  void ReleaseEpoch(int64_t epoch);

  /// Live cluster caches across every epoch (registry-invariant probe
  /// for tests: removal of a whole epoch must return this to the sum
  /// of the remaining epochs' caches).
  int64_t num_caches() const;

  const SharedPredicateCatalog& catalog() const { return catalog_; }
  MultiQueryCounters* counters() { return &counters_; }
  const MultiQueryCounters& counters_ref() const { return counters_; }

 private:
  /// Registered on the control thread only; workers read the immutable
  /// parts through their evaluators (see Register), so not guarded.
  SharedPredicateCatalog catalog_;
  int64_t window_;
  MultiQueryCounters counters_;  // atomics
  mutable ts::Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<SharedClusterCache>> caches_
      GUARDED_BY(mu_);
};

/// Binds one registered query to its scan group's manager: the factory
/// a StreamingQueryExecutor consults (via ExecOptions::shared_eval) to
/// equip each cluster matcher with a shared evaluator.
///
/// `epoch` namespaces the per-cluster caches by registration point: a
/// streaming matcher reports positions relative to the tuples *it* has
/// seen of a cluster, so two queries may only share a cache when their
/// matchers joined the stream at the same position (equal sub-streams
/// per cluster ⇒ aligned position spaces).  Queries added mid-stream
/// get a fresh epoch and share with each other, not with earlier ones.
class QuerySharedEvalFactory : public ElementEvaluatorFactory {
 public:
  QuerySharedEvalFactory(std::shared_ptr<SharedEvalManager> manager,
                         QueryConjuncts conjuncts, int64_t epoch = 0)
      : manager_(std::move(manager)),
        conjuncts_(std::move(conjuncts)),
        epoch_(epoch) {}

  std::unique_ptr<ElementEvaluator> MakeEvaluator(
      const std::string& encoded_cluster_key) override {
    return std::make_unique<MultiQueryEvaluator>(
        &conjuncts_,
        manager_->CacheFor(std::to_string(epoch_) + '\x1f' +
                           encoded_cluster_key),
        manager_->counters());
  }

 private:
  std::shared_ptr<SharedEvalManager> manager_;
  QueryConjuncts conjuncts_;
  int64_t epoch_;
};

}  // namespace sqlts

#endif  // SQLTS_MULTIQUERY_SHARED_CACHE_H_
