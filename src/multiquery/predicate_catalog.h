#ifndef SQLTS_MULTIQUERY_PREDICATE_CATALOG_H_
#define SQLTS_MULTIQUERY_PREDICATE_CATALOG_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "constraints/catalog.h"
#include "expr/expr.h"
#include "expr/kernel.h"
#include "expr/normalize.h"
#include "pattern/theta_phi.h"
#include "types/schema.h"

namespace sqlts {

/// One canonical predicate of a multi-query workload: a pattern-element
/// conjunct that at least one registered query tests, deduplicated
/// across queries so the shared evaluation cache computes it at most
/// once per tuple.
struct SharedPredicate {
  int id = -1;
  /// Representative expression (the first registration's tree; merged
  /// registrations may have syntactically different but provably
  /// equivalent trees).
  ExprPtr expr;
  std::string fingerprint;
  /// Constraint-form analysis under the workload-wide variable catalog.
  PredicateAnalysis analysis;
  /// Sorted, deduplicated (column_index, total_offset) pairs the
  /// expression reads.  The sharing and subsumption gates key on this:
  /// two predicates only interchange when their boundary/NULL behavior
  /// provably matches, and reference sets are how that is proved.
  std::vector<std::pair<int, int>> refs;
  /// Eligible for oracle-based (semantic) merging and subsumption: the
  /// analysis captured every conjunct, there are no OR groups, and no
  /// reference touches a declared-NULLABLE column — the gates under
  /// which two-valued reasoning over the reals coincides with the
  /// engine's 3-valued TRUE-collapse (see docs/MULTIQUERY.md).
  bool semantic_ok = false;
  /// Every referenced column is declared POSITIVE, so the GSW log-domain
  /// (ratio) mode is sound for oracle calls involving this predicate.
  bool all_positive = true;
  /// Ids this predicate subsumes: when this predicate evaluates TRUE on
  /// a tuple, each listed predicate is TRUE on that tuple too (oracle
  /// implication + reference-set containment), so the cache records
  /// their results without evaluating them.
  std::vector<int> implies;
  /// How many registered conjuncts (across all queries) map to this id.
  int registrations = 0;
  /// Type-specialized batch kernel for this predicate (expr/kernel.h),
  /// compiled once at registration; null when the expression is not
  /// vectorizable (strings, unsupported shapes).  Shared predicates are
  /// tuple-local by construction, so the kernel's verdict at a position
  /// is the interpreter's verdict — the cluster cache uses it to fill a
  /// run of slots per miss instead of interpreting one position.
  std::unique_ptr<PredicateKernel> kernel;
};

/// Registration-time accounting for one predicate catalog.
struct CatalogStats {
  int conjuncts_registered = 0;  ///< Register() calls
  int unshareable = 0;           ///< anchored/aggregate conjuncts (id -1)
  int distinct_predicates = 0;   ///< catalog entries
  int structural_merges = 0;     ///< fingerprint-identical registrations
  int semantic_merges = 0;       ///< oracle-proved-equivalent registrations
  int subsumption_edges = 0;     ///< implication edges recorded
  int kernels_compiled = 0;      ///< entries with a vectorized kernel
};

/// Run-time counters shared by every evaluator of one multi-query
/// execution (batch or streaming).  Atomics: streaming shard workers of
/// different per-query executors may test the same cluster concurrently.
struct MultiQueryCounters {
  std::atomic<int64_t> shared_lookups{0};  ///< cache consultations
  std::atomic<int64_t> shared_evals{0};    ///< actual EvalPredicate runs
  std::atomic<int64_t> cache_hits{0};      ///< answered from the memo
  std::atomic<int64_t> inferred_hits{0};   ///< hits seeded by subsumption
  std::atomic<int64_t> private_evals{0};   ///< unshareable conjunct runs
};

/// Workload-level accounting for one multi-query execution, surfaced
/// through EXPLAIN, the CLI, and the benchmarks: how much evaluation
/// work the shared scan and the predicate cache saved.
struct MultiQueryStats {
  int num_queries = 0;
  int num_scan_groups = 0;
  /// Input rows consumed — once, no matter how many queries ran.
  int64_t tuples_scanned = 0;
  /// Registration-time catalog accounting, summed over scan groups.
  CatalogStats catalog;
  /// Run-time cache accounting (snapshot of the workload counters).
  int64_t shared_lookups = 0;
  int64_t shared_evals = 0;
  int64_t cache_hits = 0;
  int64_t inferred_hits = 0;
  int64_t private_evals = 0;

  /// Shared-predicate evaluations avoided by the memo.
  int64_t evals_saved() const { return cache_hits; }
  /// Fraction of shared-predicate tests answered without evaluating.
  double dedup_hit_rate() const {
    return shared_lookups > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(shared_lookups)
               : 0.0;
  }

  void AddCatalog(const CatalogStats& s);
  void SnapshotCounters(const MultiQueryCounters& c);

  std::string ToString() const;
  std::string ToJson() const;
};

/// Canonicalizes pattern-element conjuncts across the queries of one
/// scan group (same CLUSTER BY / SEQUENCE BY, same input schema) into a
/// workload-wide predicate id space.
///
/// Three levels of sharing, each individually proved answer-preserving:
///  1. Structural: resolved-tree fingerprints (column indexes and
///     offsets, not variable names) — always sound, NULLs included,
///     because both queries evaluate the identical expression on the
///     identical tuple neighborhood.
///  2. Semantic: the GSW + interval implication oracle proves mutual
///     implication over the reals.  Gated on complete OR-free analyses,
///     equal reference sets, and no NULLABLE references; the GSW
///     positive (log) domain is enabled per pair only when both sides
///     read only POSITIVE columns (ColumnDef::positive).
///  3. Subsumption: p ⇒ q with refs(q) ⊆ refs(p) records an edge so a
///     TRUE verdict for p seeds q's cache slot.  Only the positive
///     direction is used — p evaluating TRUE certifies every value p
///     reads exists and is non-NULL, which covers q's reads.
///
/// Not thread-safe: Register() runs on the control thread (query
/// registration happens between batches); execution-time readers use
/// the immutable-after-registration accessors.
class SharedPredicateCatalog {
 public:
  explicit SharedPredicateCatalog(const Schema& schema,
                                  OracleOptions oracle = OracleOptions{});

  /// Maps one resolved pattern-element conjunct to its shared predicate
  /// id, creating or merging catalog entries as proofs allow.  Returns
  /// -1 when the conjunct cannot be shared across queries: its value
  /// depends on more than the tuple neighborhood (anchored or
  /// FIRST/LAST references, aggregates read the registering query's
  /// group spans), so each query must evaluate it privately.
  int Register(const ExprPtr& conjunct);

  int size() const { return static_cast<int>(preds_.size()); }
  const SharedPredicate& predicate(int id) const { return preds_[id]; }
  const CatalogStats& stats() const { return stats_; }

 private:
  /// Oracle for a pair gated by both sides' POSITIVE coverage.
  const ImplicationOracle& OracleFor(const SharedPredicate& a,
                                     const SharedPredicate& b) const;
  /// Records implication edges between the fresh entry and every
  /// compatible existing entry (both directions).
  void LinkSubsumption(SharedPredicate* fresh);

  Schema schema_;
  VariableCatalog vars_;  ///< shared so oracle VarIds align across queries
  ImplicationOracle oracle_plain_;  ///< positive_domain forced off
  ImplicationOracle oracle_pos_;    ///< positive_domain as configured
  std::vector<SharedPredicate> preds_;
  std::unordered_map<std::string, int> by_fingerprint_;
  CatalogStats stats_;
};

/// Canonical serialization of a resolved expression tree: two conjuncts
/// fingerprint equal iff they evaluate identically on every tuple
/// neighborhood (same ops, literals, column indexes, offsets).
std::string PredicateFingerprint(const ExprPtr& e);

/// True when every column reference is tuple-relative and the tree has
/// no aggregates — the conjunct's value depends only on (sequence,
/// position), never on the registering query's match state.
bool IsTupleLocal(const ExprPtr& e);

}  // namespace sqlts

#endif  // SQLTS_MULTIQUERY_PREDICATE_CATALOG_H_
