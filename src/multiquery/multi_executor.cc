#include "multiquery/multi_executor.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "analysis/linter.h"
#include "engine/explain.h"
#include "engine/matcher.h"
#include "engine/shard_pool.h"
#include "multiquery/shared_cache.h"
#include "storage/sequence.h"

namespace sqlts {
namespace {

/// Batch cache window cap: a cluster at most this long is memoized
/// exactly (every shared predicate evaluated once per tuple); longer
/// clusters wrap the ring, costing re-evaluations but never answers.
constexpr int64_t kMaxBatchWindow = 1 << 16;

/// One query of the set, compiled and mapped into its scan group's
/// shared predicate id space.
struct SetQuery {
  CompiledQuery query;
  PatternPlan plan;
  QueryConjuncts conjuncts;
  Table output;
  SearchStats stats;
  int group = -1;  // scan-group index
  /// Sharded path: rows buffered per cluster ordinal, merged in cluster
  /// first-appearance order after the barrier.
  std::vector<std::vector<Row>> cluster_rows;

  explicit SetQuery(Schema out_schema) : output(std::move(out_schema)) {}
};

/// Queries sharing (CLUSTER BY, SEQUENCE BY): one clustering pass, one
/// predicate catalog.
struct ScanGroup {
  std::vector<int> members;  // indexes into the query set
  ClusteredSequence clusters;
  std::unique_ptr<SharedPredicateCatalog> catalog;
};

Status Prefixed(int index, const Status& s) {
  return Status(s.code(),
                "query #" + std::to_string(index + 1) + ": " + s.message());
}

/// Runs one query's matcher over one cluster through the shared cache
/// and projects its matches.  `max_matches` = 0 means unlimited.
std::vector<Row> RunQueryOnCluster(SetQuery* sq, const SequenceView& seq,
                                   SharedClusterCache* cache,
                                   MultiQueryCounters* counters,
                                   const ExecOptions& options,
                                   int64_t max_matches, SearchStats* stats) {
  MultiQueryEvaluator evaluator(&sq->conjuncts, cache, counters);
  SearchOptions search_opts;
  search_opts.governance = &options.governance;
  search_opts.evaluator = &evaluator;
  search_opts.max_matches = max_matches;
  std::vector<Match> matches =
      options.algorithm == SearchAlgorithm::kOps
          ? OpsSearch(seq, sq->plan, stats, nullptr, search_opts)
          : NaiveSearch(seq, sq->plan, stats, nullptr, search_opts);
  std::vector<Row> rows;
  rows.reserve(matches.size());
  for (const Match& match : matches) {
    rows.push_back(ProjectMatch(sq->query, seq, match));
  }
  return rows;
}

/// Sequential per-group execution: clusters in first-appearance order,
/// the group's queries in registration order within each cluster, with
/// exact per-query LIMIT early termination — each query's rows come out
/// in the same order its standalone run produces.
Status ExecuteGroupSequential(ScanGroup* group, std::vector<SetQuery>* set,
                              const ExecOptions& options,
                              MultiQueryCounters* counters) {
  for (int c = 0; c < group->clusters.num_clusters(); ++c) {
    const SequenceView& seq = group->clusters.cluster(c);
    SharedClusterCache cache(group->catalog.get(),
                             std::min<int64_t>(seq.size(), kMaxBatchWindow));
    for (int qi : group->members) {
      SetQuery& sq = (*set)[qi];
      if (sq.query.limit_zero) continue;
      int64_t max_matches = 0;
      if (sq.query.limit > 0) {
        max_matches = sq.query.limit - sq.output.num_rows();
        if (max_matches <= 0) continue;
      }
      if (!ClusterAccepted(sq.query, seq)) continue;
      SearchStats stats;
      std::vector<Row> rows = RunQueryOnCluster(
          &sq, seq, &cache, counters, options, max_matches, &stats);
      sq.stats += stats;
      for (Row& row : rows) {
        SQLTS_RETURN_IF_ERROR(sq.output.AppendRow(std::move(row)));
      }
      SQLTS_RETURN_IF_ERROR(options.governance.Check());
    }
  }
  return Status::OK();
}

/// Sharded per-group execution, mirroring the single-query
/// ExecuteSharded: one task per cluster, the owning worker runs every
/// query of the group against it (sharing the cluster cache), rows
/// merge back per query in cluster order.  LIMIT queries truncate at
/// assembly — same first-N rows as the sequential path.
Status ExecuteGroupSharded(ScanGroup* group, std::vector<SetQuery>* set,
                           const ExecOptions& options,
                           MultiQueryCounters* counters) {
  const int num_clusters = group->clusters.num_clusters();
  const int num_shards = std::min(options.num_threads, num_clusters);
  for (int qi : group->members) {
    (*set)[qi].cluster_rows.assign(num_clusters, {});
  }
  // [shard][query index in set]: workers may not touch shared stats.
  std::vector<std::vector<SearchStats>> shard_query_stats(
      num_shards, std::vector<SearchStats>(set->size()));

  auto handler = [&](int shard, ShardPool::Task&& task) {
    const int c = static_cast<int>(task.cluster);
    const SequenceView& seq = group->clusters.cluster(c);
    if (!options.governance.Check().ok()) return;
    SharedClusterCache cache(group->catalog.get(),
                             std::min<int64_t>(seq.size(), kMaxBatchWindow));
    for (int qi : group->members) {
      SetQuery& sq = (*set)[qi];
      if (sq.query.limit_zero) continue;
      if (!ClusterAccepted(sq.query, seq)) continue;
      sq.cluster_rows[c] = RunQueryOnCluster(
          &sq, seq, &cache, counters, options, /*max_matches=*/0,
          &shard_query_stats[shard][qi]);
    }
  };

  {
    ShardPool pool(num_shards, options.shard_queue_capacity, handler);
    for (int c = 0; c < num_clusters; ++c) {
      int shard =
          pool.ShardFor(EncodeClusterKey(group->clusters.cluster_key(c)));
      pool.Push(shard, ShardPool::Task{Row{}, static_cast<uint64_t>(c), 0});
    }
    pool.Finish();
    SQLTS_RETURN_IF_ERROR(pool.first_error());
  }
  SQLTS_RETURN_IF_ERROR(options.governance.Check());

  for (int qi : group->members) {
    SetQuery& sq = (*set)[qi];
    for (int s = 0; s < num_shards; ++s) {
      sq.stats += shard_query_stats[s][qi];
    }
    int64_t remaining =
        sq.query.limit > 0 ? sq.query.limit : static_cast<int64_t>(-1);
    for (int c = 0; c < num_clusters && remaining != 0; ++c) {
      for (Row& row : sq.cluster_rows[c]) {
        if (remaining == 0) break;
        SQLTS_RETURN_IF_ERROR(sq.output.AppendRow(std::move(row)));
        if (remaining > 0) --remaining;
      }
    }
    sq.cluster_rows.clear();
    // Parallel cluster tasks cannot observe a cross-cluster LIMIT, so
    // matches past the cutoff were found and then truncated here; clamp
    // the reported count to keep matches == emitted rows at any thread
    // count (the sequential path terminates the search at the limit).
    if (sq.query.limit > 0 && sq.stats.matches > sq.query.limit) {
      sq.stats.matches = sq.query.limit;
    }
  }
  return Status::OK();
}

/// Compiles the set and assembles its scan groups (shared by Execute
/// and ExplainQuerySet).
Status BuildQuerySet(const Schema& schema,
                     const std::vector<std::string>& queries,
                     const ExecOptions& options, std::vector<SetQuery>* set,
                     std::vector<ScanGroup>* groups,
                     std::vector<std::string>* signatures) {
  for (size_t i = 0; i < queries.size(); ++i) {
    auto compiled = CompileQueryText(queries[i], schema);
    if (!compiled.ok()) return Prefixed(static_cast<int>(i), compiled.status());
    if (options.compile.refuse_provably_empty) {
      LintOptions lint_options;
      lint_options.oracle = options.compile.oracle;
      LintResult lint = LintQuery(*compiled, lint_options);
      if (lint.has_errors()) {
        return Prefixed(static_cast<int>(i),
                        Status::InvalidArgument("query is provably empty: " +
                                                SummarizeErrors(lint)));
      }
    }
    auto plan = CompilePattern(*compiled, options.compile);
    if (!plan.ok()) return Prefixed(static_cast<int>(i), plan.status());
    SetQuery sq(compiled->output_schema);
    sq.query = std::move(*compiled);
    sq.plan = std::move(*plan);
    set->push_back(std::move(sq));
  }

  for (size_t i = 0; i < set->size(); ++i) {
    SetQuery& sq = (*set)[i];
    auto sig = ScanGroupSignature(schema, sq.query);
    if (!sig.ok()) return Prefixed(static_cast<int>(i), sig.status());
    int g = -1;
    for (size_t k = 0; k < signatures->size(); ++k) {
      if ((*signatures)[k] == *sig) {
        g = static_cast<int>(k);
        break;
      }
    }
    if (g < 0) {
      g = static_cast<int>(groups->size());
      signatures->push_back(std::move(*sig));
      ScanGroup group;
      group.catalog = std::make_unique<SharedPredicateCatalog>(
          schema, options.compile.oracle);
      groups->push_back(std::move(group));
    }
    (*groups)[g].members.push_back(static_cast<int>(i));
    sq.group = g;
    sq.conjuncts = RegisterQueryConjuncts(sq.query, (*groups)[g].catalog.get());
  }
  return Status::OK();
}

}  // namespace

StatusOr<QuerySetResult> MultiQueryExecutor::Execute(
    const Table& input, const std::vector<std::string>& queries,
    const ExecOptions& options) {
  std::vector<SetQuery> set;
  std::vector<ScanGroup> groups;
  std::vector<std::string> signatures;
  SQLTS_RETURN_IF_ERROR(BuildQuerySet(input.schema(), queries, options, &set,
                                      &groups, &signatures));
  SQLTS_RETURN_IF_ERROR(options.governance.Check());

  MultiQueryCounters counters;
  for (ScanGroup& group : groups) {
    // One clustering pass per distinct (CLUSTER BY, SEQUENCE BY); the
    // input table itself is only ever scanned here.
    const SetQuery& first = set[group.members.front()];
    SQLTS_ASSIGN_OR_RETURN(group.clusters,
                           ClusteredSequence::Build(&input,
                                                    first.query.cluster_by,
                                                    first.query.sequence_by));
    if (options.num_threads > 1 && group.clusters.num_clusters() > 1) {
      SQLTS_RETURN_IF_ERROR(
          ExecuteGroupSharded(&group, &set, options, &counters));
    } else {
      SQLTS_RETURN_IF_ERROR(
          ExecuteGroupSequential(&group, &set, options, &counters));
    }
  }

  QuerySetResult result;
  result.stats.num_queries = static_cast<int>(set.size());
  result.stats.num_scan_groups = static_cast<int>(groups.size());
  result.stats.tuples_scanned = input.num_rows();
  for (const ScanGroup& group : groups) {
    result.stats.AddCatalog(group.catalog->stats());
  }
  result.stats.SnapshotCounters(counters);

  result.per_query.reserve(set.size());
  for (SetQuery& sq : set) {
    QueryResult qr{std::move(sq.output),
                   sq.stats,
                   SearchTrace{},
                   std::move(sq.plan),
                   groups[sq.group].clusters.num_clusters(),
                   0,
                   {}};
    result.per_query.push_back(std::move(qr));
  }
  return result;
}

StatusOr<std::string> ExplainQuerySet(const Schema& schema,
                                      const std::vector<std::string>& queries,
                                      const ExecOptions& options) {
  std::vector<SetQuery> set;
  std::vector<ScanGroup> groups;
  std::vector<std::string> signatures;
  SQLTS_RETURN_IF_ERROR(
      BuildQuerySet(schema, queries, options, &set, &groups, &signatures));

  std::string out;
  for (size_t i = 0; i < set.size(); ++i) {
    out += "== query #" + std::to_string(i + 1) + " ==\n";
    out += ExplainQuery(set[i].query, set[i].plan, queries[i]);
    out += "\n";
  }
  out += "== shared predicate catalog ==\n";
  out += "scan groups: " + std::to_string(groups.size()) + "\n";
  for (size_t g = 0; g < groups.size(); ++g) {
    const SharedPredicateCatalog& catalog = *groups[g].catalog;
    const CatalogStats& cs = catalog.stats();
    out += "group " + std::to_string(g + 1) + " (" +
           std::to_string(groups[g].members.size()) + " queries): " +
           std::to_string(cs.conjuncts_registered) + " conjuncts -> " +
           std::to_string(cs.distinct_predicates) + " distinct, " +
           std::to_string(cs.structural_merges) + " structural + " +
           std::to_string(cs.semantic_merges) + " semantic merges, " +
           std::to_string(cs.unshareable) + " private, " +
           std::to_string(cs.subsumption_edges) + " subsumption edge(s)\n";
    for (int p = 0; p < catalog.size(); ++p) {
      const SharedPredicate& pred = catalog.predicate(p);
      out += "  [" + std::to_string(p) + "] " + pred.expr->ToString() +
             "  (registered " + std::to_string(pred.registrations) + "x";
      if (!pred.implies.empty()) {
        out += "; implies";
        for (int q : pred.implies) out += " [" + std::to_string(q) + "]";
      }
      out += ")\n";
    }
  }
  return out;
}

}  // namespace sqlts
