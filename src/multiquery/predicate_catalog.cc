#include "multiquery/predicate_catalog.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace sqlts {
namespace {

/// Exact, delimiter-safe rendering of a literal for fingerprints.
/// Doubles use their bit pattern (ToString rounds); strings are
/// length-prefixed so payload bytes cannot mimic structure.
void AppendLiteral(const Value& v, std::string* out) {
  out->push_back('L');
  out->append(std::to_string(static_cast<int>(v.kind())));
  out->push_back(':');
  switch (v.kind()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      out->push_back(v.bool_value() ? '1' : '0');
      break;
    case TypeKind::kInt64:
      out->append(std::to_string(v.int64_value()));
      break;
    case TypeKind::kDouble: {
      double d = v.double_value();
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(d), "double width");
      std::memcpy(&bits, &d, sizeof(bits));
      char buf[17];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(bits));
      out->append(buf);
      break;
    }
    case TypeKind::kString: {
      const std::string& s = v.string_value();
      out->append(std::to_string(s.size()));
      out->push_back('=');
      out->append(s);
      break;
    }
    case TypeKind::kDate:
      out->append(v.ToString());
      break;
  }
}

void AppendFingerprint(const ExprPtr& e, std::string* out) {
  if (e == nullptr) {
    out->push_back('T');  // absent predicate = TRUE
    return;
  }
  switch (e->kind) {
    case ExprKind::kLiteral:
      AppendLiteral(e->literal, out);
      return;
    case ExprKind::kColumnRef: {
      const ColumnRef& r = e->ref;
      out->push_back(r.relative ? 'c' : 'g');
      out->append(std::to_string(r.column_index));
      out->push_back('@');
      out->append(std::to_string(r.total_offset));
      if (!r.relative) {
        // Anchored references never share across queries, but keep the
        // fingerprint injective anyway.
        out->push_back('e');
        out->append(std::to_string(r.element));
        out->push_back('a');
        out->append(std::to_string(static_cast<int>(r.accessor)));
        out->push_back('n');
        out->append(std::to_string(r.nav_offset));
      }
      return;
    }
    case ExprKind::kArith:
      out->push_back('A');
      out->append(std::to_string(static_cast<int>(e->arith_op)));
      break;
    case ExprKind::kCompare:
      out->push_back('P');
      out->append(std::to_string(static_cast<int>(e->cmp_op)));
      break;
    case ExprKind::kAnd:
      out->push_back('&');
      break;
    case ExprKind::kOr:
      out->push_back('|');
      break;
    case ExprKind::kNot:
      out->push_back('!');
      break;
    case ExprKind::kAggregate:
      out->push_back('F');
      out->append(std::to_string(static_cast<int>(e->agg_op)));
      out->push_back('v');
      out->append(std::to_string(e->ref.element));
      out->push_back(',');
      out->append(std::to_string(e->ref.column_index));
      return;
  }
  out->push_back('(');
  AppendFingerprint(e->lhs, out);
  if (e->kind != ExprKind::kNot) {
    out->push_back(',');
    AppendFingerprint(e->rhs, out);
  }
  out->push_back(')');
}

}  // namespace

void MultiQueryStats::AddCatalog(const CatalogStats& s) {
  catalog.conjuncts_registered += s.conjuncts_registered;
  catalog.unshareable += s.unshareable;
  catalog.distinct_predicates += s.distinct_predicates;
  catalog.structural_merges += s.structural_merges;
  catalog.semantic_merges += s.semantic_merges;
  catalog.subsumption_edges += s.subsumption_edges;
  catalog.kernels_compiled += s.kernels_compiled;
}

void MultiQueryStats::SnapshotCounters(const MultiQueryCounters& c) {
  shared_lookups += c.shared_lookups.load(std::memory_order_relaxed);
  shared_evals += c.shared_evals.load(std::memory_order_relaxed);
  cache_hits += c.cache_hits.load(std::memory_order_relaxed);
  inferred_hits += c.inferred_hits.load(std::memory_order_relaxed);
  private_evals += c.private_evals.load(std::memory_order_relaxed);
}

std::string MultiQueryStats::ToString() const {
  std::string out;
  out += "multi-query execution: " + std::to_string(num_queries) +
         " queries, " + std::to_string(num_scan_groups) +
         " scan group(s), " + std::to_string(tuples_scanned) +
         " tuples scanned once\n";
  out += "  predicate catalog: " +
         std::to_string(catalog.conjuncts_registered) +
         " conjuncts -> " + std::to_string(catalog.distinct_predicates) +
         " distinct (" + std::to_string(catalog.structural_merges) +
         " structural merges, " + std::to_string(catalog.semantic_merges) +
         " semantic merges, " + std::to_string(catalog.unshareable) +
         " private), " + std::to_string(catalog.subsumption_edges) +
         " subsumption edge(s), " +
         std::to_string(catalog.kernels_compiled) + " vectorized\n";
  out += "  shared tests: " + std::to_string(shared_lookups) +
         " lookups, " + std::to_string(shared_evals) + " evaluated, " +
         std::to_string(cache_hits) + " cache hits (" +
         std::to_string(inferred_hits) + " via subsumption), " +
         std::to_string(private_evals) + " private evals\n";
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f", dedup_hit_rate());
  out += "  dedup hit rate: ";
  out += rate;
  out += "\n";
  return out;
}

std::string MultiQueryStats::ToJson() const {
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.6f", dedup_hit_rate());
  std::string out = "{";
  out += "\"num_queries\": " + std::to_string(num_queries);
  out += ", \"scan_groups\": " + std::to_string(num_scan_groups);
  out += ", \"tuples_scanned\": " + std::to_string(tuples_scanned);
  out += ", \"conjuncts_registered\": " +
         std::to_string(catalog.conjuncts_registered);
  out += ", \"distinct_predicates\": " +
         std::to_string(catalog.distinct_predicates);
  out += ", \"structural_merges\": " +
         std::to_string(catalog.structural_merges);
  out += ", \"semantic_merges\": " + std::to_string(catalog.semantic_merges);
  out += ", \"subsumption_edges\": " +
         std::to_string(catalog.subsumption_edges);
  out += ", \"kernels_compiled\": " +
         std::to_string(catalog.kernels_compiled);
  out += ", \"unshareable\": " + std::to_string(catalog.unshareable);
  out += ", \"shared_lookups\": " + std::to_string(shared_lookups);
  out += ", \"shared_evals\": " + std::to_string(shared_evals);
  out += ", \"cache_hits\": " + std::to_string(cache_hits);
  out += ", \"inferred_hits\": " + std::to_string(inferred_hits);
  out += ", \"private_evals\": " + std::to_string(private_evals);
  out += ", \"dedup_hit_rate\": ";
  out += rate;
  out += "}";
  return out;
}

std::string PredicateFingerprint(const ExprPtr& e) {
  std::string out;
  AppendFingerprint(e, &out);
  return out;
}

bool IsTupleLocal(const ExprPtr& e) {
  if (e == nullptr) return true;
  switch (e->kind) {
    case ExprKind::kAggregate:
      return false;  // reads the registering query's group spans
    case ExprKind::kColumnRef:
      // Anchored (cross-element / FIRST / LAST) references read the
      // attempt's spans, which differ per query.
      return e->ref.relative && e->ref.accessor == GroupAccessor::kCurrent;
    case ExprKind::kLiteral:
      return true;
    default:
      return IsTupleLocal(e->lhs) && IsTupleLocal(e->rhs);
  }
}

SharedPredicateCatalog::SharedPredicateCatalog(const Schema& schema,
                                               OracleOptions oracle)
    : schema_(schema),
      oracle_plain_([&] {
        OracleOptions off = oracle;
        off.gsw.positive_domain = false;
        return ImplicationOracle(off);
      }()),
      oracle_pos_(oracle) {}

const ImplicationOracle& SharedPredicateCatalog::OracleFor(
    const SharedPredicate& a, const SharedPredicate& b) const {
  // The GSW log-domain (ratio) mode assumes strictly positive reals —
  // sound for this pair only when every column either side reads is
  // declared POSITIVE (mirrors the per-pattern gate in
  // pattern/compile.cc).
  return (a.all_positive && b.all_positive) ? oracle_pos_ : oracle_plain_;
}

int SharedPredicateCatalog::Register(const ExprPtr& conjunct) {
  ++stats_.conjuncts_registered;
  if (conjunct == nullptr || !IsTupleLocal(conjunct)) {
    ++stats_.unshareable;
    return -1;
  }
  std::string fp = PredicateFingerprint(conjunct);
  auto it = by_fingerprint_.find(fp);
  if (it != by_fingerprint_.end()) {
    // Level 1: identical resolved tree — same value on every tuple
    // neighborhood, NULLs and sequence boundaries included.
    ++stats_.structural_merges;
    ++preds_[it->second].registrations;
    return it->second;
  }

  SharedPredicate entry;
  entry.expr = conjunct;
  entry.fingerprint = fp;
  entry.analysis = AnalyzePredicate(conjunct, schema_, &vars_);
  VisitColumnRefs(conjunct, [&](const ColumnRef& r) {
    entry.refs.emplace_back(r.column_index, r.total_offset);
    if (r.column_index < 0 || !schema_.column(r.column_index).positive) {
      entry.all_positive = false;
    }
  });
  std::sort(entry.refs.begin(), entry.refs.end());
  entry.refs.erase(std::unique(entry.refs.begin(), entry.refs.end()),
                   entry.refs.end());
  // Semantic reasoning is two-valued over the reals; it coincides with
  // the engine's 3-valued TRUE-collapse only when the analysis captured
  // everything, no conjunct is disjunctive, and no read can yield NULL.
  entry.semantic_ok = entry.analysis.complete &&
                      entry.analysis.or_groups.empty() &&
                      entry.analysis.nullable_vars.empty() &&
                      !entry.analysis.nullable_residue;

  if (entry.semantic_ok) {
    for (SharedPredicate& p : preds_) {
      // Equal reference sets make boundary behavior identical: at any
      // position where one side reads out-of-sequence, so does the
      // other, and both collapse to not-TRUE.  Elsewhere all reads are
      // real values and mutual implication gives equality.
      if (!p.semantic_ok || p.refs != entry.refs) continue;
      const ImplicationOracle& oracle = OracleFor(p, entry);
      if (oracle.Implies(p.analysis, entry.analysis) &&
          oracle.Implies(entry.analysis, p.analysis)) {
        ++stats_.semantic_merges;
        ++p.registrations;
        // Future syntactic twins of this spelling hit level 1 directly.
        by_fingerprint_.emplace(std::move(fp), p.id);
        return p.id;
      }
    }
  }

  entry.id = size();
  entry.registrations = 1;
  entry.kernel = PredicateKernel::Compile(conjunct, schema_);
  if (entry.kernel != nullptr) ++stats_.kernels_compiled;
  LinkSubsumption(&entry);
  by_fingerprint_.emplace(entry.fingerprint, entry.id);
  preds_.push_back(std::move(entry));
  stats_.distinct_predicates = size();
  return preds_.back().id;
}

void SharedPredicateCatalog::LinkSubsumption(SharedPredicate* fresh) {
  if (!fresh->semantic_ok) return;
  for (SharedPredicate& p : preds_) {
    if (!p.semantic_ok) continue;
    const ImplicationOracle& oracle = OracleFor(p, *fresh);
    // p TRUE certifies every value p reads exists and is non-NULL; a
    // consequence q whose reads are a subset is then decided by real
    // arithmetic, so a TRUE verdict transfers.  Only this positive
    // direction is sound (p FALSE may stem from an out-of-sequence
    // read that tells q nothing).
    if (std::includes(p.refs.begin(), p.refs.end(), fresh->refs.begin(),
                      fresh->refs.end()) &&
        oracle.Implies(p.analysis, fresh->analysis)) {
      p.implies.push_back(fresh->id);
      ++stats_.subsumption_edges;
    }
    if (std::includes(fresh->refs.begin(), fresh->refs.end(), p.refs.begin(),
                      p.refs.end()) &&
        oracle.Implies(fresh->analysis, p.analysis)) {
      fresh->implies.push_back(p.id);
      ++stats_.subsumption_edges;
    }
  }
}

}  // namespace sqlts
