#include "multiquery/queryset_lint.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "multiquery/predicate_catalog.h"
#include "multiquery/shared_cache.h"
#include "parser/analyzer.h"

namespace sqlts {
namespace {

/// One compiled set member, mapped into its scan group's predicate id
/// space plus the structural fingerprints the pair checks compare.
struct LintQueryInfo {
  CompiledQuery query;
  QueryConjuncts conjuncts;
  int group = -1;
  /// Per element (1-based like QueryConjuncts::elements): sorted
  /// identity tokens, one per conjunct — "s<id>" for shared entries,
  /// "p<fingerprint>" for private (-1) ones.  Two elements with equal
  /// token lists test the identical predicate.
  std::vector<std::vector<std::string>> element_tokens;
  /// Ordered SELECT-expression fingerprints (output order matters).
  std::vector<std::string> select_fp;
  /// Sorted cluster-filter fingerprints (conjunction order does not).
  std::vector<std::string> filter_fp;
  bool has_star = false;
};

std::string ConjunctToken(const QueryConjuncts::Conjunct& c) {
  if (c.shared_id >= 0) return "s" + std::to_string(c.shared_id);
  return "p" + PredicateFingerprint(c.expr);
}

/// True when the catalog proves element predicate A implies element
/// predicate B: every conjunct of B is either present in A (same shared
/// id / identical private tree) or implied by some shared conjunct of A
/// through a recorded subsumption edge.  A's extra conjuncts only
/// strengthen A, so they never break the implication.
bool ElementImplies(const SharedPredicateCatalog& catalog,
                    const std::vector<QueryConjuncts::Conjunct>& a,
                    const std::vector<QueryConjuncts::Conjunct>& b) {
  for (const QueryConjuncts::Conjunct& cb : b) {
    bool covered = false;
    for (const QueryConjuncts::Conjunct& ca : a) {
      if (cb.shared_id >= 0 && ca.shared_id >= 0) {
        if (ca.shared_id == cb.shared_id) {
          covered = true;
          break;
        }
        const std::vector<int>& implies =
            catalog.predicate(ca.shared_id).implies;
        if (std::find(implies.begin(), implies.end(), cb.shared_id) !=
            implies.end()) {
          covered = true;
          break;
        }
      } else if (cb.shared_id < 0 && ca.shared_id < 0 &&
                 PredicateFingerprint(ca.expr) ==
                     PredicateFingerprint(cb.expr)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

/// Element-for-element identical predicates (the W007 core): same
/// length and, per element, the same sorted conjunct-token multiset.
bool SameElements(const LintQueryInfo& a, const LintQueryInfo& b) {
  return a.element_tokens == b.element_tokens;
}

/// Shared projection + cluster-filter surface: both W007 and W008
/// require the two queries to emit the same columns from the same
/// clusters.
bool SameOutputSurface(const LintQueryInfo& a, const LintQueryInfo& b) {
  return a.select_fp == b.select_fp && a.filter_fp == b.filter_fp;
}

}  // namespace

StatusOr<QuerySetLintResult> LintQuerySet(
    const Schema& schema, const std::vector<std::string>& queries,
    OracleOptions oracle) {
  std::vector<LintQueryInfo> infos;
  std::vector<std::string> signatures;
  std::vector<std::unique_ptr<SharedPredicateCatalog>> catalogs;

  for (size_t i = 0; i < queries.size(); ++i) {
    auto compiled = CompileQueryText(queries[i], schema);
    if (!compiled.ok()) {
      return Status(compiled.status().code(),
                    "query #" + std::to_string(i + 1) + ": " +
                        compiled.status().message());
    }
    LintQueryInfo info;
    info.query = std::move(*compiled);

    auto sig = ScanGroupSignature(schema, info.query);
    if (!sig.ok()) {
      return Status(sig.status().code(), "query #" + std::to_string(i + 1) +
                                             ": " + sig.status().message());
    }
    for (size_t k = 0; k < signatures.size(); ++k) {
      if (signatures[k] == *sig) info.group = static_cast<int>(k);
    }
    if (info.group < 0) {
      info.group = static_cast<int>(signatures.size());
      signatures.push_back(std::move(*sig));
      catalogs.push_back(
          std::make_unique<SharedPredicateCatalog>(schema, oracle));
    }
    info.conjuncts =
        RegisterQueryConjuncts(info.query, catalogs[info.group].get());

    info.element_tokens.resize(info.conjuncts.elements.size());
    for (size_t j = 0; j < info.conjuncts.elements.size(); ++j) {
      for (const QueryConjuncts::Conjunct& c : info.conjuncts.elements[j]) {
        info.element_tokens[j].push_back(ConjunctToken(c));
      }
      std::sort(info.element_tokens[j].begin(), info.element_tokens[j].end());
    }
    for (const SelectItem& item : info.query.select) {
      info.select_fp.push_back(PredicateFingerprint(item.expr));
    }
    for (const ExprPtr& f : info.query.cluster_filters) {
      info.filter_fp.push_back(PredicateFingerprint(f));
    }
    std::sort(info.filter_fp.begin(), info.filter_fp.end());
    for (const PatternElement& e : info.query.elements) {
      info.has_star = info.has_star || e.star;
    }
    infos.push_back(std::move(info));
  }

  QuerySetLintResult result;
  // W007: the later member of each identical pair is flagged once,
  // against its earliest duplicate.
  std::vector<int> duplicate_of(infos.size(), -1);
  for (size_t j = 1; j < infos.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      const LintQueryInfo& a = infos[i];
      const LintQueryInfo& b = infos[j];
      if (a.group != b.group) continue;
      if (!SameElements(a, b) || !SameOutputSurface(a, b)) continue;
      if (a.query.limit != b.query.limit ||
          a.query.limit_zero != b.query.limit_zero) {
        continue;
      }
      duplicate_of[j] = static_cast<int>(i);
      QuerySetDiagnostic d;
      d.code = "W007";
      d.query = static_cast<int>(j) + 1;
      d.other = static_cast<int>(i) + 1;
      d.message = "duplicate of query #" + std::to_string(i + 1) +
                  ": identical pattern predicates, cluster filters, "
                  "SELECT list and LIMIT — outputs are bit-identical";
      result.diagnostics.push_back(std::move(d));
      break;
    }
  }

  // W008: ordered pairs (a subsumed by b).  Star-free patterns only —
  // weakening a star element's predicate can move greedy match
  // boundaries, not just admit a superset of matches — and LIMIT-free,
  // since a row cap truncates the nominally larger result.  Duplicate
  // pairs are already W007 (mutual subsumption adds nothing).
  for (size_t a = 0; a < infos.size(); ++a) {
    if (duplicate_of[a] >= 0) continue;
    for (size_t b = 0; b < infos.size(); ++b) {
      if (a == b || duplicate_of[b] >= 0) continue;
      const LintQueryInfo& qa = infos[a];
      const LintQueryInfo& qb = infos[b];
      if (qa.group != qb.group) continue;
      if (qa.has_star || qb.has_star) continue;
      if (qa.query.limit != 0 || qb.query.limit != 0 || qa.query.limit_zero ||
          qb.query.limit_zero) {
        continue;
      }
      if (qa.conjuncts.elements.size() != qb.conjuncts.elements.size()) {
        continue;
      }
      if (!SameOutputSurface(qa, qb)) continue;
      if (SameElements(qa, qb)) continue;  // that pair is W007 territory
      const SharedPredicateCatalog& catalog = *catalogs[qa.group];
      bool implies = true;
      for (size_t j = 1; j < qa.conjuncts.elements.size() && implies; ++j) {
        implies = ElementImplies(catalog, qa.conjuncts.elements[j],
                                 qb.conjuncts.elements[j]);
      }
      if (!implies) continue;
      QuerySetDiagnostic d;
      d.code = "W008";
      d.query = static_cast<int>(a) + 1;
      d.other = static_cast<int>(b) + 1;
      d.message = "subsumed by query #" + std::to_string(b + 1) +
                  ": every match of this query is a match of query #" +
                  std::to_string(b + 1) +
                  " (element-wise predicate implication), so its rows "
                  "are a subset of that query's rows";
      result.diagnostics.push_back(std::move(d));
    }
  }
  return result;
}

std::string RenderQuerySetLint(const QuerySetLintResult& result) {
  if (result.diagnostics.empty()) return "no cross-query findings\n";
  std::string out;
  for (const QuerySetDiagnostic& d : result.diagnostics) {
    out += "warning[" + d.code + "]: query #" + std::to_string(d.query) +
           ": " + d.message + "\n";
  }
  return out;
}

std::string QuerySetLintToJson(const QuerySetLintResult& result) {
  std::string out = "[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const QuerySetDiagnostic& d = result.diagnostics[i];
    if (i > 0) out += ", ";
    std::string escaped;
    for (char c : d.message) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out += "{\"code\": \"" + d.code +
           "\", \"query\": " + std::to_string(d.query) +
           ", \"other\": " + std::to_string(d.other) + ", \"message\": \"" +
           escaped + "\"}";
  }
  out += "]";
  return out;
}

}  // namespace sqlts
