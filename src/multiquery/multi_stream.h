#ifndef SQLTS_MULTIQUERY_MULTI_STREAM_H_
#define SQLTS_MULTIQUERY_MULTI_STREAM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "engine/stream_executor.h"
#include "multiquery/predicate_catalog.h"
#include "multiquery/shared_cache.h"

namespace sqlts {

/// Streaming shared multi-query execution: a registry of
/// StreamingQueryExecutors fed from one Push() stream, with the queries
/// of each scan group sharing per-cluster predicate memos through
/// ExecOptions::shared_eval.  Output is inherently demultiplexed — each
/// query delivers rows to its own callback, in exactly the
/// deterministic (tag, seq)-merged order its standalone executor
/// produces at any thread count.
///
/// Queries register and deregister between pushes: AddQuery() starts a
/// query at the current stream position (it sees only subsequent
/// tuples, like a standalone executor created now); RemoveQuery()
/// cancels one without emitting its pending matches.  Checkpoint()
/// captures the whole registered set — every query's text and full
/// matcher state plus the workload counters — and Restore() reinstates
/// it on a freshly created instance, re-resolving per-query callbacks
/// through the caller's resolver.
class MultiStreamExecutor {
 public:
  using RowCallback = StreamingQueryExecutor::RowCallback;
  /// Supplies the output callback for restored query `index`
  /// (registration order, as returned by AddQuery) with text `text`.
  using CallbackResolver =
      std::function<RowCallback(int index, const std::string& text)>;

  static StatusOr<std::unique_ptr<MultiStreamExecutor>> Create(
      Schema schema, const ExecOptions& options = {});

  /// Registers `query_text`, returning its id (dense, registration
  /// order, stable across RemoveQuery).  Only call between pushes.
  StatusOr<int> AddQuery(std::string_view query_text, RowCallback on_row);

  /// Cancels query `id`: no further rows are delivered, its matcher
  /// state is dropped without running end-of-stream completion.
  Status RemoveQuery(int id);

  /// Feeds `row` to every live query.  The first error encountered is
  /// returned, but the row is still offered to the remaining queries so
  /// their stream positions stay aligned.
  Status Push(Row row);

  /// End-of-stream for every live query, in registration order.
  Status Finish();

  /// Serializes the registered set: per-query text + sub-checkpoint,
  /// stream position, and the shared-evaluation counters.
  Status Checkpoint(std::string* out);

  /// Reinstates a Checkpoint() on a fresh instance (same schema and
  /// options; thread count may differ).  Queries are re-registered in
  /// their original order with callbacks from `resolver`.
  Status Restore(std::string_view bytes, const CallbackResolver& resolver);

  /// Workload accounting: catalog state of every scan group plus the
  /// shared-cache counters (cumulative across a Restore).
  MultiQueryStats stats() const;

  /// Live (registered, not removed) query count.
  int num_queries() const;
  /// Total tuples offered to Push().
  int64_t rows_consumed() const { return pushed_; }

  /// The underlying executor of query `id` (null if removed) — for
  /// stats inspection; do not push to it directly.
  const StreamingQueryExecutor* query(int id) const {
    return queries_[id].exec.get();
  }

 private:
  struct Registered {
    std::string text;
    std::string group_sig;
    /// Stream position at registration: namespaces the shared caches so
    /// only queries with aligned matcher position spaces share memos.
    int64_t epoch = 0;
    std::unique_ptr<StreamingQueryExecutor> exec;  // null once removed
  };

  MultiStreamExecutor(Schema schema, const ExecOptions& options)
      : schema_(std::move(schema)), options_(options) {}

  StatusOr<int> AddQueryWithEpoch(std::string_view query_text,
                                  RowCallback on_row, int64_t epoch);

  Schema schema_;
  ExecOptions options_;
  std::map<std::string, std::shared_ptr<SharedEvalManager>> groups_;
  std::vector<Registered> queries_;
  int64_t pushed_ = 0;
  /// Counter values carried over from a restored checkpoint, so stats()
  /// stays cumulative across a save/restore boundary.
  MultiQueryStats baseline_;
};

}  // namespace sqlts

#endif  // SQLTS_MULTIQUERY_MULTI_STREAM_H_
