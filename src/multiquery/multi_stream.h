#ifndef SQLTS_MULTIQUERY_MULTI_STREAM_H_
#define SQLTS_MULTIQUERY_MULTI_STREAM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "engine/stream_executor.h"
#include "multiquery/predicate_catalog.h"
#include "multiquery/shared_cache.h"

namespace sqlts {

/// Streaming shared multi-query execution: a registry of
/// StreamingQueryExecutors fed from one Push() stream, with the queries
/// of each scan group sharing per-cluster predicate memos through
/// ExecOptions::shared_eval.  Output is inherently demultiplexed — each
/// query delivers rows to its own callback, in exactly the
/// deterministic (tag, seq)-merged order its standalone executor
/// produces at any thread count.
///
/// Queries register and deregister mid-stream: AddQuery() starts a
/// query at the current stream position (it sees only subsequent
/// tuples, like a standalone executor created now); RemoveQuery()
/// cancels one without emitting its pending matches.  Checkpoint()
/// captures the whole registered set — every query's text and full
/// matcher state plus the workload counters — and Restore() reinstates
/// it on a freshly created instance, re-resolving per-query callbacks
/// through the caller's resolver.
///
/// Locking contract (the seam sqlts_server relies on): every public
/// method serializes on one internal mutex, so AddQuery / RemoveQuery /
/// Push / Finish / Checkpoint / stats may be called concurrently from
/// different threads — a session thread can register or cancel a query
/// while the server's ingest thread is pushing tuples.  Two
/// consequences callers must respect:
///  - Row callbacks of single-threaded member executors run inside
///    Push/Finish, i.e. while the executor mutex is held.  A callback
///    must not call back into this MultiStreamExecutor (re-entrancy
///    would self-deadlock); hand rows off to a queue instead.
///  - With options.num_threads > 1, AddQuery/RemoveQuery first quiesce
///    the shard workers of the affected scan group
///    (StreamingQueryExecutor::Quiesce) before touching the shared
///    predicate catalog or the epoch-namespaced caches, because workers
///    read the catalog through their cluster caches between pushes.
class MultiStreamExecutor {
 public:
  using RowCallback = StreamingQueryExecutor::RowCallback;
  /// Supplies the output callback for restored query `index`
  /// (registration order, as returned by AddQuery) with text `text`.
  using CallbackResolver =
      std::function<RowCallback(int index, const std::string& text)>;

  /// One member query's failure, attributed by id (see Push).
  struct QueryError {
    int id = -1;
    Status status;
  };

  static StatusOr<std::unique_ptr<MultiStreamExecutor>> Create(
      Schema schema, const ExecOptions& options = {});

  /// Registers `query_text`, returning its id (dense, registration
  /// order, stable across RemoveQuery).  Thread-safe; may be called
  /// concurrently with Push from another thread.  When `governance` is
  /// non-null it overrides ExecOptions::governance for this query only
  /// (per-session budgets, deadline, cancellation).
  StatusOr<int> AddQuery(std::string_view query_text, RowCallback on_row,
                         const ExecGovernance* governance = nullptr);

  /// Cancels query `id`: no further rows are delivered, its matcher
  /// state is dropped without running end-of-stream completion.  When
  /// the removed query is the last member of its registration epoch,
  /// the epoch's cluster caches are freed (registry invariant: epochs
  /// never leak; see SharedEvalManager::ReleaseEpoch).  Thread-safe.
  Status RemoveQuery(int id);

  /// Feeds `row` to every live query.  The first error encountered is
  /// returned, but the row is still offered to the remaining queries so
  /// their stream positions stay aligned.  Thread-safe.
  Status Push(Row row);

  /// Push with per-query error attribution: each failing member is
  /// reported in `errors` with its id, and the overall Status is OK
  /// unless the executor itself is unusable — so a server can fail (and
  /// remove) exactly the member whose budget or deadline tripped while
  /// the rest of the stream continues.  Thread-safe.
  Status Push(Row row, std::vector<QueryError>* errors);

  /// End-of-stream for every live query, in registration order.
  Status Finish();

  /// Serializes the registered set: per-query text + sub-checkpoint,
  /// stream position, and the shared-evaluation counters.
  Status Checkpoint(std::string* out);

  /// Reinstates a Checkpoint() on a fresh instance (same schema and
  /// options; thread count may differ).  Queries are re-registered in
  /// their original order with callbacks from `resolver`.
  Status Restore(std::string_view bytes, const CallbackResolver& resolver);

  /// Workload accounting: catalog state of every scan group plus the
  /// shared-cache counters (cumulative across a Restore).
  MultiQueryStats stats() const;

  /// Live (registered, not removed) query count.
  int num_queries() const;
  /// Total tuples offered to Push().
  int64_t rows_consumed() const;

  /// Stream position at which query `id` was registered — the suffix
  /// of the stream it observes, which a standalone oracle run must
  /// start from to reproduce its output.  InvalidArgument for unknown
  /// ids.  Thread-safe.
  StatusOr<int64_t> query_epoch(int id) const;

  /// Output watermark of query `id`: rows delivered to its callback so
  /// far (StreamingQueryExecutor::rows_emitted, persisted across
  /// Checkpoint/Restore).  InvalidArgument for unknown or removed ids.
  /// Thread-safe.
  StatusOr<int64_t> rows_emitted(int id) const;

  /// Live epoch-namespaced cluster caches across every scan group (the
  /// registry invariant probed by tests: removing the last query of an
  /// epoch must free all of that epoch's caches).
  int64_t num_epoch_caches() const;

  /// The underlying executor of query `id` (null if removed) — for
  /// stats inspection; do not push to it directly.  Only meaningful
  /// while no other thread is mutating the registry.
  const StreamingQueryExecutor* query(int id) const {
    ts::MutexLock lock(mu_);
    return queries_[id].exec.get();
  }

 private:
  struct Registered {
    std::string text;
    std::string group_sig;
    /// Stream position at registration: namespaces the shared caches so
    /// only queries with aligned matcher position spaces share memos.
    int64_t epoch = 0;
    std::unique_ptr<StreamingQueryExecutor> exec;  // null once removed
  };

  MultiStreamExecutor(Schema schema, const ExecOptions& options)
      : schema_(std::move(schema)), options_(options) {}

  /// All *Locked helpers require mu_ held by the caller (enforced).
  StatusOr<int> AddQueryLocked(std::string_view query_text,
                               RowCallback on_row, int64_t epoch,
                               const ExecGovernance* governance)
      REQUIRES(mu_);
  Status PushLocked(Row row, std::vector<QueryError>* errors)
      REQUIRES(mu_);
  MultiQueryStats StatsLocked() const REQUIRES(mu_);
  /// Drains the shard workers of every live query in scan group `sig`
  /// so the shared catalog/caches can be mutated safely.
  Status QuiesceGroupLocked(const std::string& sig) REQUIRES(mu_);

  Schema schema_;
  ExecOptions options_;
  mutable ts::Mutex mu_;
  std::map<std::string, std::shared_ptr<SharedEvalManager>> groups_
      GUARDED_BY(mu_);
  std::vector<Registered> queries_ GUARDED_BY(mu_);
  int64_t pushed_ GUARDED_BY(mu_) = 0;
  /// Counter values carried over from a restored checkpoint, so stats()
  /// stays cumulative across a save/restore boundary.
  MultiQueryStats baseline_ GUARDED_BY(mu_);
};

}  // namespace sqlts

#endif  // SQLTS_MULTIQUERY_MULTI_STREAM_H_
