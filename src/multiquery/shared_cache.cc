#include "multiquery/shared_cache.h"

namespace sqlts {

QueryConjuncts RegisterQueryConjuncts(const CompiledQuery& query,
                                      SharedPredicateCatalog* catalog) {
  QueryConjuncts out;
  out.elements.resize(query.elements.size() + 1);
  for (size_t i = 0; i < query.elements.size(); ++i) {
    for (const ExprPtr& c : query.elements[i].conjuncts) {
      QueryConjuncts::Conjunct entry;
      entry.expr = c;
      entry.shared_id = catalog->Register(c);
      out.elements[i + 1].push_back(std::move(entry));
    }
  }
  return out;
}

StatusOr<std::string> ScanGroupSignature(const Schema& schema,
                                         const CompiledQuery& query) {
  std::string sig = "c";
  for (const std::string& name : query.cluster_by) {
    SQLTS_ASSIGN_OR_RETURN(int col, schema.FindColumn(name));
    sig += ":" + std::to_string(col);
  }
  sig += "|s";
  for (const std::string& name : query.sequence_by) {
    SQLTS_ASSIGN_OR_RETURN(int col, schema.FindColumn(name));
    sig += ":" + std::to_string(col);
  }
  return sig;
}

SharedClusterCache::SharedClusterCache(const SharedPredicateCatalog* catalog,
                                       int64_t window)
    : catalog_(catalog), window_(window < 1 ? 1 : window) {}

bool SharedClusterCache::Test(int pred_id, const EvalContext& ctx,
                              int64_t abs_pos,
                              MultiQueryCounters* counters) {
  counters->shared_lookups.fetch_add(1, std::memory_order_relaxed);
  ts::MutexLock lock(mu_);
  // The catalog can grow between batches (AddQuery); rings follow.
  if (static_cast<int>(rings_.size()) < catalog_->size()) {
    rings_.resize(catalog_->size());
  }
  std::vector<Slot>& ring = rings_[pred_id];
  if (ring.empty()) ring.resize(window_);
  Slot& slot = ring[abs_pos % window_];
  if (slot.pos == abs_pos) {
    counters->cache_hits.fetch_add(1, std::memory_order_relaxed);
    if (slot.inferred) {
      counters->inferred_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return slot.val;
  }
  counters->shared_evals.fetch_add(1, std::memory_order_relaxed);
  const SharedPredicate& pred = catalog_->predicate(pred_id);
  // A TRUE verdict certifies every read value exists; predicates the
  // catalog proves implied (with reference subsets) are TRUE there too.
  auto seed_implied = [&](int64_t at) {
    for (int q : pred.implies) {
      std::vector<Slot>& qring = rings_[q];
      if (qring.empty()) qring.resize(window_);
      Slot& qslot = qring[at % window_];
      if (qslot.pos != at) {
        qslot.pos = at;
        qslot.val = true;
        qslot.inferred = true;
      }
    }
  };

  if (pred.kernel != nullptr) {
    // Vectorized fill: one kernel sweep computes a contiguous run of
    // verdicts starting at the missed position.  Every filled position
    // p' >= ctx.pos lies in the current view, and since p' + off is
    // bracketed by ctx.pos + min_offset (>= 0, the matcher only tests
    // positions whose references are buffered) and p' (< size), each
    // verdict reads only live cells — so it equals what the interpreter
    // would answer at query time (the buffered-view argument of
    // docs/MULTIQUERY.md extends to the whole run).  Only the queried
    // lane counts as an eval; prefilled lanes surface as cache hits.
    const int64_t n = std::min<int64_t>(
        std::min<int64_t>(kKernelBlock, window_),
        ctx.seq->size() - ctx.pos);
    TriMask mask;
    pred.kernel->Eval(*ctx.seq, ctx.pos, n, &scratch_, &mask);
    for (int64_t i = 0; i < n; ++i) {
      Slot& s = ring[(abs_pos + i) % window_];
      if (i != 0 && s.pos == abs_pos + i) continue;  // keep cached slots
      s.pos = abs_pos + i;
      s.val = mask.True(i);
      s.inferred = false;
      if (s.val) seed_implied(abs_pos + i);
    }
    return ring[abs_pos % window_].val;
  }

  bool val = EvalPredicate(*pred.expr, ctx);
  slot.pos = abs_pos;
  slot.val = val;
  slot.inferred = false;
  if (val) seed_implied(abs_pos);
  return val;
}

bool MultiQueryEvaluator::Test(int j, const SequenceView& seq, int64_t pos,
                               const std::vector<GroupSpan>& spans,
                               int64_t abs_pos) {
  EvalContext ctx;
  ctx.seq = &seq;
  ctx.pos = pos;
  ctx.spans = &spans;
  for (const QueryConjuncts::Conjunct& c : conjuncts_->elements[j]) {
    bool sat;
    if (c.shared_id >= 0) {
      sat = cache_->Test(c.shared_id, ctx, abs_pos, counters_);
    } else {
      counters_->private_evals.fetch_add(1, std::memory_order_relaxed);
      sat = EvalPredicate(*c.expr, ctx);
    }
    if (!sat) return false;
  }
  return true;
}

SharedEvalManager::SharedEvalManager(const Schema& schema,
                                     OracleOptions oracle, int64_t window)
    : catalog_(schema, oracle), window_(window) {}

SharedClusterCache* SharedEvalManager::CacheFor(
    const std::string& encoded_key) {
  ts::MutexLock lock(mu_);
  std::unique_ptr<SharedClusterCache>& slot = caches_[encoded_key];
  if (slot == nullptr) {
    slot = std::make_unique<SharedClusterCache>(&catalog_, window_);
  }
  return slot.get();
}

void SharedEvalManager::ReleaseEpoch(int64_t epoch) {
  const std::string prefix = std::to_string(epoch) + '\x1f';
  ts::MutexLock lock(mu_);
  for (auto it = caches_.begin(); it != caches_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = caches_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t SharedEvalManager::num_caches() const {
  ts::MutexLock lock(mu_);
  return static_cast<int64_t>(caches_.size());
}

}  // namespace sqlts
