#include "multiquery/shared_cache.h"

namespace sqlts {

QueryConjuncts RegisterQueryConjuncts(const CompiledQuery& query,
                                      SharedPredicateCatalog* catalog) {
  QueryConjuncts out;
  out.elements.resize(query.elements.size() + 1);
  for (size_t i = 0; i < query.elements.size(); ++i) {
    for (const ExprPtr& c : query.elements[i].conjuncts) {
      QueryConjuncts::Conjunct entry;
      entry.expr = c;
      entry.shared_id = catalog->Register(c);
      out.elements[i + 1].push_back(std::move(entry));
    }
  }
  return out;
}

StatusOr<std::string> ScanGroupSignature(const Schema& schema,
                                         const CompiledQuery& query) {
  std::string sig = "c";
  for (const std::string& name : query.cluster_by) {
    SQLTS_ASSIGN_OR_RETURN(int col, schema.FindColumn(name));
    sig += ":" + std::to_string(col);
  }
  sig += "|s";
  for (const std::string& name : query.sequence_by) {
    SQLTS_ASSIGN_OR_RETURN(int col, schema.FindColumn(name));
    sig += ":" + std::to_string(col);
  }
  return sig;
}

SharedClusterCache::SharedClusterCache(const SharedPredicateCatalog* catalog,
                                       int64_t window)
    : catalog_(catalog), window_(window < 1 ? 1 : window) {}

bool SharedClusterCache::Test(int pred_id, const EvalContext& ctx,
                              int64_t abs_pos,
                              MultiQueryCounters* counters) {
  counters->shared_lookups.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  // The catalog can grow between batches (AddQuery); rings follow.
  if (static_cast<int>(rings_.size()) < catalog_->size()) {
    rings_.resize(catalog_->size());
  }
  std::vector<Slot>& ring = rings_[pred_id];
  if (ring.empty()) ring.resize(window_);
  Slot& slot = ring[abs_pos % window_];
  if (slot.pos == abs_pos) {
    counters->cache_hits.fetch_add(1, std::memory_order_relaxed);
    if (slot.inferred) {
      counters->inferred_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return slot.val;
  }
  counters->shared_evals.fetch_add(1, std::memory_order_relaxed);
  bool val = EvalPredicate(*catalog_->predicate(pred_id).expr, ctx);
  slot.pos = abs_pos;
  slot.val = val;
  slot.inferred = false;
  if (val) {
    // A TRUE verdict certifies every read value exists; predicates the
    // catalog proves implied (with reference subsets) are TRUE here too.
    for (int q : catalog_->predicate(pred_id).implies) {
      std::vector<Slot>& qring = rings_[q];
      if (qring.empty()) qring.resize(window_);
      Slot& qslot = qring[abs_pos % window_];
      if (qslot.pos != abs_pos) {
        qslot.pos = abs_pos;
        qslot.val = true;
        qslot.inferred = true;
      }
    }
  }
  return val;
}

bool MultiQueryEvaluator::Test(int j, const SequenceView& seq, int64_t pos,
                               const std::vector<GroupSpan>& spans,
                               int64_t abs_pos) {
  EvalContext ctx;
  ctx.seq = &seq;
  ctx.pos = pos;
  ctx.spans = &spans;
  for (const QueryConjuncts::Conjunct& c : conjuncts_->elements[j]) {
    bool sat;
    if (c.shared_id >= 0) {
      sat = cache_->Test(c.shared_id, ctx, abs_pos, counters_);
    } else {
      counters_->private_evals.fetch_add(1, std::memory_order_relaxed);
      sat = EvalPredicate(*c.expr, ctx);
    }
    if (!sat) return false;
  }
  return true;
}

SharedEvalManager::SharedEvalManager(const Schema& schema,
                                     OracleOptions oracle, int64_t window)
    : catalog_(schema, oracle), window_(window) {}

SharedClusterCache* SharedEvalManager::CacheFor(
    const std::string& encoded_key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<SharedClusterCache>& slot = caches_[encoded_key];
  if (slot == nullptr) {
    slot = std::make_unique<SharedClusterCache>(&catalog_, window_);
  }
  return slot.get();
}

}  // namespace sqlts
