#ifndef SQLTS_MULTIQUERY_QUERYSET_LINT_H_
#define SQLTS_MULTIQUERY_QUERYSET_LINT_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "pattern/theta_phi.h"
#include "types/schema.h"

namespace sqlts {

/// One cross-query finding over a query set (see docs/DIAGNOSTICS.md):
///   W007 — `query` is a duplicate of `other`: same scan group, and the
///          shared predicate catalog maps the two queries to identical
///          element predicates, cluster filters, SELECT list and LIMIT,
///          so their outputs are bit-identical and one of them is
///          entirely wasted work.
///   W008 — `query` is subsumed by `other`: every match of `query` is a
///          match of `other` (element-wise predicate implication through
///          the catalog's subsumption edges), and the projections agree,
///          so `query`'s rows are a sub-multiset of `other`'s.
/// Both are warnings: removal is an application decision, not ours.
struct QuerySetDiagnostic {
  std::string code;  ///< "W007" or "W008"
  int query = 0;     ///< 1-based index of the flagged query in the set
  int other = 0;     ///< 1-based index of the sibling it duplicates/is
                     ///< subsumed by
  std::string message;
};

struct QuerySetLintResult {
  std::vector<QuerySetDiagnostic> diagnostics;
  bool has_warnings() const { return !diagnostics.empty(); }
};

/// Cross-query lint of a query set: compiles every member, groups by
/// scan-group signature, registers all pattern conjuncts in one
/// SharedPredicateCatalog per group, and reports W007/W008 from the
/// catalog's merge and implication verdicts.  The verdicts reuse exactly
/// the proofs the shared executor trusts for answer-preserving sharing,
/// so a flagged pair is as sound as multi-query execution itself (the
/// fuzzer cross-checks this: see CheckQuerySetLintSoundness).
/// Fails with the first query's compile error (prefixed "query #N:")
/// when any member does not compile.
StatusOr<QuerySetLintResult> LintQuerySet(
    const Schema& schema, const std::vector<std::string>& queries,
    OracleOptions oracle = OracleOptions{});

/// Renders the result as one human-readable block ("no cross-query
/// findings" when empty).
std::string RenderQuerySetLint(const QuerySetLintResult& result);

/// Machine-readable JSON array:
///   [{"code":"W007","query":2,"other":1,"message":...}]
std::string QuerySetLintToJson(const QuerySetLintResult& result);

}  // namespace sqlts

#endif  // SQLTS_MULTIQUERY_QUERYSET_LINT_H_
