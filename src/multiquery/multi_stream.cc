#include "multiquery/multi_stream.h"

#include <utility>

#include "engine/checkpoint.h"

namespace sqlts {
namespace {

/// Streaming memo horizon per predicate per cluster.  Attempts probe a
/// bounded window around the stream head, so a modest ring captures
/// virtually all cross-query re-tests; a wrapped slot only costs a
/// re-evaluation.
constexpr int64_t kStreamCacheWindow = 4096;

}  // namespace

StatusOr<std::unique_ptr<MultiStreamExecutor>> MultiStreamExecutor::Create(
    Schema schema, const ExecOptions& options) {
  return std::unique_ptr<MultiStreamExecutor>(
      new MultiStreamExecutor(std::move(schema), options));
}

StatusOr<int> MultiStreamExecutor::AddQuery(std::string_view query_text,
                                            RowCallback on_row,
                                            const ExecGovernance* governance) {
  ts::MutexLock lock(mu_);
  return AddQueryLocked(query_text, std::move(on_row), pushed_, governance);
}

Status MultiStreamExecutor::QuiesceGroupLocked(const std::string& sig) {
  // Shard workers of the group's live queries read the shared catalog
  // through their cluster caches; drain them before mutating it.  With
  // num_threads == 1 every Quiesce is a no-op.
  for (Registered& r : queries_) {
    if (r.exec == nullptr || r.group_sig != sig) continue;
    SQLTS_RETURN_IF_ERROR(r.exec->Quiesce());
  }
  return Status::OK();
}

StatusOr<int> MultiStreamExecutor::AddQueryLocked(
    std::string_view query_text, RowCallback on_row, int64_t epoch,
    const ExecGovernance* governance) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileQueryText(query_text, schema_));
  SQLTS_ASSIGN_OR_RETURN(std::string sig,
                         ScanGroupSignature(schema_, compiled));
  SQLTS_RETURN_IF_ERROR(QuiesceGroupLocked(sig));
  std::shared_ptr<SharedEvalManager>& manager = groups_[sig];
  if (manager == nullptr) {
    manager = std::make_shared<SharedEvalManager>(
        schema_, options_.compile.oracle, kStreamCacheWindow);
  }
  QueryConjuncts conjuncts = manager->Register(compiled);
  ExecOptions query_options = options_;
  if (governance != nullptr) query_options.governance = *governance;
  query_options.shared_eval = std::make_shared<QuerySharedEvalFactory>(
      manager, std::move(conjuncts), epoch);
  SQLTS_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamingQueryExecutor> exec,
      StreamingQueryExecutor::Create(query_text, schema_, std::move(on_row),
                                     query_options));
  Registered r;
  r.text = std::string(query_text);
  r.group_sig = std::move(sig);
  r.epoch = epoch;
  r.exec = std::move(exec);
  queries_.push_back(std::move(r));
  return static_cast<int>(queries_.size()) - 1;
}

Status MultiStreamExecutor::RemoveQuery(int id) {
  ts::MutexLock lock(mu_);
  if (id < 0 || id >= static_cast<int>(queries_.size())) {
    return Status::InvalidArgument("no query with id " + std::to_string(id));
  }
  if (queries_[id].exec == nullptr) {
    return Status::InvalidArgument("query " + std::to_string(id) +
                                   " already removed");
  }
  // Cancel: drop the matcher without Finish(), so no end-of-stream
  // matches are emitted.  The catalog keeps its registrations (stale
  // entries are harmless; a re-added identical query re-merges), but
  // the epoch-namespaced cluster caches are freed once their last
  // member leaves — evaluators hold raw pointers into them, so the
  // release is gated on the epoch refcount below.
  const std::string sig = queries_[id].group_sig;
  const int64_t epoch = queries_[id].epoch;
  // Destroying the executor joins its own shard workers, so after this
  // line nothing of query `id` can touch the shared caches.
  queries_[id].exec.reset();
  bool epoch_live = false;
  for (const Registered& r : queries_) {
    if (r.exec != nullptr && r.group_sig == sig && r.epoch == epoch) {
      epoch_live = true;
      break;
    }
  }
  if (!epoch_live) {
    auto it = groups_.find(sig);
    if (it != groups_.end()) it->second->ReleaseEpoch(epoch);
  }
  return Status::OK();
}

Status MultiStreamExecutor::Push(Row row) {
  ts::MutexLock lock(mu_);
  std::vector<QueryError> errors;
  Status st = PushLocked(std::move(row), &errors);
  if (!st.ok()) return st;
  return errors.empty() ? Status::OK() : errors.front().status;
}

Status MultiStreamExecutor::Push(Row row, std::vector<QueryError>* errors) {
  ts::MutexLock lock(mu_);
  return PushLocked(std::move(row), errors);
}

Status MultiStreamExecutor::PushLocked(Row row,
                                       std::vector<QueryError>* errors) {
  ++pushed_;
  for (size_t id = 0; id < queries_.size(); ++id) {
    Registered& r = queries_[id];
    if (r.exec == nullptr) continue;
    Status st = r.exec->Push(row);
    if (!st.ok() && errors != nullptr) {
      errors->push_back({static_cast<int>(id), std::move(st)});
    }
  }
  return Status::OK();
}

Status MultiStreamExecutor::Finish() {
  ts::MutexLock lock(mu_);
  Status first = Status::OK();
  for (Registered& r : queries_) {
    if (r.exec == nullptr) continue;
    Status st = r.exec->Finish();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status MultiStreamExecutor::Checkpoint(std::string* out) {
  ts::MutexLock lock(mu_);
  CheckpointWriter w;
  w.WriteU64(static_cast<uint64_t>(queries_.size()));
  for (Registered& r : queries_) {
    w.WriteString(r.text);
    w.WriteI64(r.epoch);
    w.WriteBool(r.exec != nullptr);
    if (r.exec != nullptr) {
      std::string sub;
      SQLTS_RETURN_IF_ERROR(r.exec->Checkpoint(&sub));
      w.WriteString(sub);
    }
  }
  w.WriteI64(pushed_);
  MultiQueryStats s = StatsLocked();
  w.WriteI64(s.shared_lookups);
  w.WriteI64(s.shared_evals);
  w.WriteI64(s.cache_hits);
  w.WriteI64(s.inferred_hits);
  w.WriteI64(s.private_evals);
  *out = w.Finalize();
  return Status::OK();
}

Status MultiStreamExecutor::Restore(std::string_view bytes,
                                    const CallbackResolver& resolver) {
  ts::MutexLock lock(mu_);
  if (!queries_.empty() || pushed_ != 0) {
    return Status::InvalidArgument(
        "Restore requires a freshly created multi-stream executor");
  }
  SQLTS_ASSIGN_OR_RETURN(std::string_view payload, OpenCheckpoint(bytes));
  CheckpointReader r(payload);
  SQLTS_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  for (uint64_t i = 0; i < count; ++i) {
    SQLTS_ASSIGN_OR_RETURN(std::string text, r.ReadString());
    SQLTS_ASSIGN_OR_RETURN(int64_t epoch, r.ReadI64());
    SQLTS_ASSIGN_OR_RETURN(bool live, r.ReadBool());
    if (live) {
      SQLTS_ASSIGN_OR_RETURN(std::string sub, r.ReadString());
      // The original epoch carries over: restored matchers resume their
      // saved positions, so cache alignment is decided by where each
      // query originally joined the stream, not by the restore point.
      SQLTS_ASSIGN_OR_RETURN(
          int id,
          AddQueryLocked(text, resolver(static_cast<int>(i), text), epoch,
                         nullptr));
      SQLTS_RETURN_IF_ERROR(queries_[id].exec->Restore(sub));
    } else {
      // Keep ids dense: a removed query stays a tombstone after restore.
      Registered dead;
      dead.text = std::move(text);
      dead.epoch = epoch;
      queries_.push_back(std::move(dead));
    }
  }
  SQLTS_ASSIGN_OR_RETURN(pushed_, r.ReadI64());
  // Shared-cache counters restart at zero in the fresh managers; carry
  // the saved totals so stats() stays cumulative.  Subtract what the
  // re-registration above already re-counted (nothing — registration
  // touches only catalog stats, which rebuild deterministically).
  SQLTS_ASSIGN_OR_RETURN(baseline_.shared_lookups, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.shared_evals, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.cache_hits, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.inferred_hits, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.private_evals, r.ReadI64());
  return Status::OK();
}

MultiQueryStats MultiStreamExecutor::StatsLocked() const {
  MultiQueryStats s = baseline_;
  s.num_scan_groups = static_cast<int>(groups_.size());
  s.tuples_scanned = pushed_;
  for (const Registered& r : queries_) {
    if (r.exec != nullptr) ++s.num_queries;
  }
  for (const auto& entry : groups_) {
    s.AddCatalog(entry.second->catalog().stats());
    s.SnapshotCounters(entry.second->counters_ref());
  }
  return s;
}

MultiQueryStats MultiStreamExecutor::stats() const {
  ts::MutexLock lock(mu_);
  return StatsLocked();
}

int MultiStreamExecutor::num_queries() const {
  ts::MutexLock lock(mu_);
  int live = 0;
  for (const Registered& r : queries_) {
    if (r.exec != nullptr) ++live;
  }
  return live;
}

int64_t MultiStreamExecutor::rows_consumed() const {
  ts::MutexLock lock(mu_);
  return pushed_;
}

StatusOr<int64_t> MultiStreamExecutor::query_epoch(int id) const {
  ts::MutexLock lock(mu_);
  if (id < 0 || id >= static_cast<int>(queries_.size())) {
    return Status::InvalidArgument("no query with id " + std::to_string(id));
  }
  return queries_[id].epoch;
}

StatusOr<int64_t> MultiStreamExecutor::rows_emitted(int id) const {
  ts::MutexLock lock(mu_);
  if (id < 0 || id >= static_cast<int>(queries_.size()) ||
      queries_[id].exec == nullptr) {
    return Status::InvalidArgument("no live query with id " +
                                   std::to_string(id));
  }
  return queries_[id].exec->rows_emitted();
}

int64_t MultiStreamExecutor::num_epoch_caches() const {
  ts::MutexLock lock(mu_);
  int64_t total = 0;
  for (const auto& entry : groups_) total += entry.second->num_caches();
  return total;
}

}  // namespace sqlts
