#include "multiquery/multi_stream.h"

#include <utility>

#include "engine/checkpoint.h"

namespace sqlts {
namespace {

/// Streaming memo horizon per predicate per cluster.  Attempts probe a
/// bounded window around the stream head, so a modest ring captures
/// virtually all cross-query re-tests; a wrapped slot only costs a
/// re-evaluation.
constexpr int64_t kStreamCacheWindow = 4096;

}  // namespace

StatusOr<std::unique_ptr<MultiStreamExecutor>> MultiStreamExecutor::Create(
    Schema schema, const ExecOptions& options) {
  return std::unique_ptr<MultiStreamExecutor>(
      new MultiStreamExecutor(std::move(schema), options));
}

StatusOr<int> MultiStreamExecutor::AddQuery(std::string_view query_text,
                                            RowCallback on_row) {
  return AddQueryWithEpoch(query_text, std::move(on_row), pushed_);
}

StatusOr<int> MultiStreamExecutor::AddQueryWithEpoch(
    std::string_view query_text, RowCallback on_row, int64_t epoch) {
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileQueryText(query_text, schema_));
  SQLTS_ASSIGN_OR_RETURN(std::string sig,
                         ScanGroupSignature(schema_, compiled));
  std::shared_ptr<SharedEvalManager>& manager = groups_[sig];
  if (manager == nullptr) {
    manager = std::make_shared<SharedEvalManager>(
        schema_, options_.compile.oracle, kStreamCacheWindow);
  }
  QueryConjuncts conjuncts = manager->Register(compiled);
  ExecOptions query_options = options_;
  query_options.shared_eval = std::make_shared<QuerySharedEvalFactory>(
      manager, std::move(conjuncts), epoch);
  SQLTS_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamingQueryExecutor> exec,
      StreamingQueryExecutor::Create(query_text, schema_, std::move(on_row),
                                     query_options));
  Registered r;
  r.text = std::string(query_text);
  r.group_sig = std::move(sig);
  r.epoch = epoch;
  r.exec = std::move(exec);
  queries_.push_back(std::move(r));
  return static_cast<int>(queries_.size()) - 1;
}

Status MultiStreamExecutor::RemoveQuery(int id) {
  if (id < 0 || id >= static_cast<int>(queries_.size())) {
    return Status::InvalidArgument("no query with id " + std::to_string(id));
  }
  if (queries_[id].exec == nullptr) {
    return Status::InvalidArgument("query " + std::to_string(id) +
                                   " already removed");
  }
  // Cancel: drop the matcher without Finish(), so no end-of-stream
  // matches are emitted.  The catalog keeps its registrations (stale
  // entries are harmless; a re-added identical query re-merges).
  queries_[id].exec.reset();
  return Status::OK();
}

Status MultiStreamExecutor::Push(Row row) {
  ++pushed_;
  Status first = Status::OK();
  for (Registered& r : queries_) {
    if (r.exec == nullptr) continue;
    Status st = r.exec->Push(row);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status MultiStreamExecutor::Finish() {
  Status first = Status::OK();
  for (Registered& r : queries_) {
    if (r.exec == nullptr) continue;
    Status st = r.exec->Finish();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status MultiStreamExecutor::Checkpoint(std::string* out) {
  CheckpointWriter w;
  w.WriteU64(static_cast<uint64_t>(queries_.size()));
  for (Registered& r : queries_) {
    w.WriteString(r.text);
    w.WriteI64(r.epoch);
    w.WriteBool(r.exec != nullptr);
    if (r.exec != nullptr) {
      std::string sub;
      SQLTS_RETURN_IF_ERROR(r.exec->Checkpoint(&sub));
      w.WriteString(sub);
    }
  }
  w.WriteI64(pushed_);
  MultiQueryStats s = stats();
  w.WriteI64(s.shared_lookups);
  w.WriteI64(s.shared_evals);
  w.WriteI64(s.cache_hits);
  w.WriteI64(s.inferred_hits);
  w.WriteI64(s.private_evals);
  *out = w.Finalize();
  return Status::OK();
}

Status MultiStreamExecutor::Restore(std::string_view bytes,
                                    const CallbackResolver& resolver) {
  if (!queries_.empty() || pushed_ != 0) {
    return Status::InvalidArgument(
        "Restore requires a freshly created multi-stream executor");
  }
  SQLTS_ASSIGN_OR_RETURN(std::string_view payload, OpenCheckpoint(bytes));
  CheckpointReader r(payload);
  SQLTS_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  for (uint64_t i = 0; i < count; ++i) {
    SQLTS_ASSIGN_OR_RETURN(std::string text, r.ReadString());
    SQLTS_ASSIGN_OR_RETURN(int64_t epoch, r.ReadI64());
    SQLTS_ASSIGN_OR_RETURN(bool live, r.ReadBool());
    if (live) {
      SQLTS_ASSIGN_OR_RETURN(std::string sub, r.ReadString());
      // The original epoch carries over: restored matchers resume their
      // saved positions, so cache alignment is decided by where each
      // query originally joined the stream, not by the restore point.
      SQLTS_ASSIGN_OR_RETURN(
          int id, AddQueryWithEpoch(text, resolver(static_cast<int>(i), text),
                                    epoch));
      SQLTS_RETURN_IF_ERROR(queries_[id].exec->Restore(sub));
    } else {
      // Keep ids dense: a removed query stays a tombstone after restore.
      Registered dead;
      dead.text = std::move(text);
      dead.epoch = epoch;
      queries_.push_back(std::move(dead));
    }
  }
  SQLTS_ASSIGN_OR_RETURN(pushed_, r.ReadI64());
  // Shared-cache counters restart at zero in the fresh managers; carry
  // the saved totals so stats() stays cumulative.  Subtract what the
  // re-registration above already re-counted (nothing — registration
  // touches only catalog stats, which rebuild deterministically).
  SQLTS_ASSIGN_OR_RETURN(baseline_.shared_lookups, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.shared_evals, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.cache_hits, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.inferred_hits, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(baseline_.private_evals, r.ReadI64());
  return Status::OK();
}

MultiQueryStats MultiStreamExecutor::stats() const {
  MultiQueryStats s = baseline_;
  s.num_queries = num_queries();
  s.num_scan_groups = static_cast<int>(groups_.size());
  s.tuples_scanned = pushed_;
  for (const auto& entry : groups_) {
    s.AddCatalog(entry.second->catalog().stats());
    s.SnapshotCounters(entry.second->counters_ref());
  }
  return s;
}

int MultiStreamExecutor::num_queries() const {
  int live = 0;
  for (const Registered& r : queries_) {
    if (r.exec != nullptr) ++live;
  }
  return live;
}

}  // namespace sqlts
