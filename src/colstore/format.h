#ifndef SQLTS_COLSTORE_FORMAT_H_
#define SQLTS_COLSTORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "types/schema.h"
#include "types/value.h"

namespace sqlts {

/// ---------------------------------------------------------------------
/// Persistent columnar container (ROADMAP item 3; docs/STORAGE.md).
///
/// A `.sqlc` file is a single self-describing container:
///
///   offset  size  field
///        0     8  magic "SQTSCOL1"
///        8     4  format version (little-endian u32, currently 1)
///       12     8  footer offset (little-endian u64)
///       20     8  footer size in bytes (little-endian u64)
///       28     8  FNV-1a 64 checksum of the footer bytes (LE)
///       36     …  block data region (concatenated encoded blocks)
///        …     …  footer (CheckpointWriter field conventions)
///
/// Rows are grouped into fixed-size row blocks of kColBlockRows
/// positions (aligned with the kernel tier's 256-lane blocks) that
/// never span a cluster boundary, and each column of each block is
/// encoded independently (per-column compression) and checksummed
/// separately — so a block the zone maps prove irrelevant is never
/// read, and corruption inside it is detected if and only if it is.
/// The footer carries the schema, the cluster directory, the block
/// directory, and per-(column, block) sketches: min/max zone maps,
/// null counts, and optional bloom filters.
/// ---------------------------------------------------------------------

inline constexpr std::string_view kColumnarMagic = "SQTSCOL1";
inline constexpr uint32_t kColumnarVersion = 1;
inline constexpr size_t kColumnarHeaderSize = 36;
/// Rows per block; equals expr/kernel.h's kKernelBlock so stored blocks
/// line up with vectorized evaluation blocks.
inline constexpr int kColBlockRows = 256;
/// Bloom filter geometry: 1024 bits, 4 probes per key.
inline constexpr size_t kColBloomBytes = 128;
inline constexpr int kColBloomProbes = 4;

/// How one column of one block is encoded in the data region.  Every
/// encoding stores only the non-NULL cells (densely packed); a leading
/// validity bitmap is present exactly when the block has NULLs.
enum class BlockEncoding : uint8_t {
  kRawI64 = 0,  ///< 8-byte LE two's-complement per value (int64/date)
  kRawF64 = 1,  ///< 8-byte LE IEEE-754 bit pattern per value
  kRawBool = 2, ///< 1 byte per value (0/1)
  kForI64 = 3,  ///< frame of reference: min + byte-width-packed deltas
  kRleI64 = 4,  ///< run-length: (value, run) pairs
  kDict = 5,    ///< prefix-compressed sorted dictionary + fixed indexes
};

std::string_view BlockEncodingName(BlockEncoding e);

/// Per-(column, block) statistics the skipping planner consumes.
/// `min`/`max` are typed Values over the non-NULL cells (NULL when the
/// block is entirely NULL); strings use lexicographic order.  `bloom`
/// is empty or exactly kColBloomBytes.
struct BlockSketch {
  Value min;
  Value max;
  int64_t null_count = 0;
  std::string bloom;
};

/// Location + integrity + sketch of one column of one block.
struct ColumnBlockMeta {
  BlockEncoding encoding = BlockEncoding::kRawI64;
  uint64_t offset = 0;    ///< absolute file offset of the encoded bytes
  uint64_t size = 0;      ///< encoded byte count
  uint64_t checksum = 0;  ///< FNV-1a 64 of the encoded bytes
  BlockSketch sketch;
};

/// One row block of the file (all columns share the row range).
struct RowBlockMeta {
  int64_t start_row = 0;
  int32_t row_count = 0;
  int32_t cluster = -1;  ///< owning cluster index; -1 when unclustered
};

/// One CLUSTER BY group: a contiguous row range covering whole blocks.
struct ClusterMeta {
  Row key;  ///< one value per cluster_by column
  int64_t start_row = 0;
  int64_t row_count = 0;
  int32_t first_block = 0;
  int32_t num_blocks = 0;
};

/// The decoded footer: everything needed to plan reads.
struct ColumnarFooter {
  Schema schema;
  int64_t num_rows = 0;
  int32_t block_rows = kColBlockRows;
  /// The physical ordering contract: when `clustered` is true the rows
  /// are stored cluster-major (clusters in first-appearance order of
  /// the source table) and sorted within each cluster by `sequence_by`
  /// (stable), i.e. exactly the order ClusteredSequence::Build yields.
  bool clustered = false;
  std::vector<std::string> cluster_by;
  std::vector<std::string> sequence_by;
  std::vector<ClusterMeta> clusters;    ///< empty when !clustered
  std::vector<RowBlockMeta> blocks;
  /// column-major: columns[c][b] describes column c of block b.
  std::vector<std::vector<ColumnBlockMeta>> columns;
};

/// Encodes one column slice [start, start+rows) of `col` (the raw
/// column vector of a Table).  Picks the cheapest eligible encoding for
/// the column type, fills `meta`'s encoding + sketch (offset/size/
/// checksum are the caller's), and returns the encoded bytes.
/// `want_bloom` adds a per-block bloom filter (string/int64/date
/// columns only).
std::string EncodeColumnBlock(const std::vector<Value>& col, int64_t start,
                              int rows, TypeKind type, bool want_bloom,
                              ColumnBlockMeta* meta);

/// Decodes one encoded column block back into `rows` Values appended to
/// `out`.  Bounds-checked: corrupt or truncated bytes yield a typed
/// ParseError, never UB or a crash.
Status DecodeColumnBlock(std::string_view bytes, BlockEncoding encoding,
                         TypeKind type, int rows, int64_t null_count,
                         std::vector<Value>* out);

/// Footer serialization (CheckpointWriter/Reader field conventions).
std::string EncodeFooter(const ColumnarFooter& footer);
/// Decodes and *validates* a footer against `file_size`: every offset/
/// size must stay inside the data region, cluster and block directories
/// must tile [0, num_rows) consistently.  Corruption yields ParseError.
StatusOr<ColumnarFooter> DecodeFooter(std::string_view payload,
                                      uint64_t file_size);

/// Bloom filter primitives (split-probe FNV double hashing).
uint64_t BloomHashBytes(std::string_view bytes);
uint64_t BloomHashInt64(int64_t v);
void BloomAdd(std::string* bits, uint64_t hash);
/// False only when the key is definitely absent.
bool BloomMayContain(std::string_view bits, uint64_t hash);

}  // namespace sqlts

#endif  // SQLTS_COLSTORE_FORMAT_H_
