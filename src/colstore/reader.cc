#include "colstore/reader.h"

#include <cstring>

#include "engine/checkpoint.h"

namespace sqlts {
namespace {

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

struct Header {
  uint32_t version = 0;
  uint64_t footer_offset = 0;
  uint64_t footer_size = 0;
  uint64_t footer_checksum = 0;
};

StatusOr<Header> ParseHeader(std::string_view head, uint64_t file_size) {
  if (head.size() < kColumnarHeaderSize) {
    return Status::ParseError("columnar container: truncated header");
  }
  if (head.substr(0, kColumnarMagic.size()) != kColumnarMagic) {
    return Status::ParseError("columnar container: bad magic");
  }
  Header h;
  h.version = GetU32(head.data() + 8);
  if (h.version != kColumnarVersion) {
    return Status::ParseError("columnar container: unsupported version " +
                              std::to_string(h.version));
  }
  h.footer_offset = GetU64(head.data() + 12);
  h.footer_size = GetU64(head.data() + 20);
  h.footer_checksum = GetU64(head.data() + 28);
  if (h.footer_offset < kColumnarHeaderSize || h.footer_size > file_size ||
      h.footer_offset > file_size ||
      h.footer_offset + h.footer_size > file_size) {
    return Status::ParseError("columnar container: bad footer extent");
  }
  return h;
}

}  // namespace

bool ColumnarReader::SniffBytes(std::string_view bytes) {
  return bytes.size() >= kColumnarMagic.size() &&
         bytes.substr(0, kColumnarMagic.size()) == kColumnarMagic;
}

bool ColumnarReader::SniffFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char buf[8];
  in.read(buf, sizeof(buf));
  return in.gcount() == static_cast<std::streamsize>(sizeof(buf)) &&
         SniffBytes(std::string_view(buf, sizeof(buf)));
}

StatusOr<std::unique_ptr<ColumnarReader>> ColumnarReader::Open(
    const std::string& path) {
  auto reader = std::unique_ptr<ColumnarReader>(new ColumnarReader());
  reader->file_.open(path, std::ios::binary);
  if (!reader->file_) {
    return Status::IoError("cannot open '" + path + "'");
  }
  reader->file_.seekg(0, std::ios::end);
  const auto end = reader->file_.tellg();
  if (end < 0) return Status::IoError("cannot stat '" + path + "'");
  reader->file_size_ = static_cast<uint64_t>(end);
  reader->file_.seekg(0);
  std::string head(kColumnarHeaderSize, '\0');
  reader->file_.read(head.data(),
                     static_cast<std::streamsize>(head.size()));
  if (reader->file_.gcount() !=
      static_cast<std::streamsize>(kColumnarHeaderSize)) {
    return Status::ParseError("columnar container: truncated header");
  }
  SQLTS_ASSIGN_OR_RETURN(Header h, ParseHeader(head, reader->file_size_));
  std::string footer_bytes(h.footer_size, '\0');
  reader->file_.seekg(static_cast<std::streamoff>(h.footer_offset));
  reader->file_.read(footer_bytes.data(),
                     static_cast<std::streamsize>(footer_bytes.size()));
  if (reader->file_.gcount() !=
      static_cast<std::streamsize>(h.footer_size)) {
    return Status::ParseError("columnar container: truncated footer");
  }
  if (Fnv1a64(footer_bytes) != h.footer_checksum) {
    return Status::ParseError("columnar container: footer checksum mismatch");
  }
  SQLTS_ASSIGN_OR_RETURN(reader->footer_,
                         DecodeFooter(footer_bytes, reader->file_size_));
  reader->file_.clear();
  return reader;
}

StatusOr<std::unique_ptr<ColumnarReader>> ColumnarReader::OpenBytes(
    std::string bytes) {
  auto reader = std::unique_ptr<ColumnarReader>(new ColumnarReader());
  reader->in_memory_ = true;
  reader->buffer_ = std::move(bytes);
  reader->file_size_ = reader->buffer_.size();
  SQLTS_ASSIGN_OR_RETURN(Header h,
                         ParseHeader(reader->buffer_, reader->file_size_));
  const std::string_view footer_bytes =
      std::string_view(reader->buffer_)
          .substr(h.footer_offset, h.footer_size);
  if (Fnv1a64(footer_bytes) != h.footer_checksum) {
    return Status::ParseError("columnar container: footer checksum mismatch");
  }
  SQLTS_ASSIGN_OR_RETURN(reader->footer_,
                         DecodeFooter(footer_bytes, reader->file_size_));
  return reader;
}

StatusOr<std::string> ColumnarReader::FetchBlockBytes(int col, int block) {
  const ColumnBlockMeta& m = footer_.columns[col][block];
  std::string bytes(m.size, '\0');
  if (in_memory_) {
    std::memcpy(bytes.data(), buffer_.data() + m.offset, m.size);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(m.offset));
    file_.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (file_.gcount() != static_cast<std::streamsize>(m.size)) {
      return Status::IoError("columnar container: short block read");
    }
  }
  if (Fnv1a64(bytes) != m.checksum) {
    return Status::ParseError("columnar container: block checksum mismatch (column " +
                              footer_.schema.column(col).name + ", block " +
                              std::to_string(block) + ")");
  }
  bytes_read_.fetch_add(static_cast<int64_t>(m.size),
                        std::memory_order_relaxed);
  return bytes;
}

StatusOr<Table> ColumnarReader::ReadBlockRange(int first_block,
                                               int num_blocks) {
  if (first_block < 0 || num_blocks < 0 ||
      first_block + num_blocks > static_cast<int>(footer_.blocks.size())) {
    return Status::InvalidArgument("columnar reader: block range out of bounds");
  }
  int64_t rows = 0;
  for (int b = first_block; b < first_block + num_blocks; ++b) {
    rows += footer_.blocks[b].row_count;
  }
  std::vector<std::vector<Value>> columns(footer_.schema.num_columns());
  for (int c = 0; c < footer_.schema.num_columns(); ++c) {
    const TypeKind type = footer_.schema.column(c).type;
    columns[c].reserve(rows);
    for (int b = first_block; b < first_block + num_blocks; ++b) {
      SQLTS_ASSIGN_OR_RETURN(std::string bytes, FetchBlockBytes(c, b));
      const ColumnBlockMeta& m = footer_.columns[c][b];
      SQLTS_RETURN_IF_ERROR(DecodeColumnBlock(
          bytes, m.encoding, type, footer_.blocks[b].row_count,
          m.sketch.null_count, &columns[c]));
    }
  }
  return Table::FromColumns(footer_.schema, std::move(columns));
}

StatusOr<Table> ColumnarReader::ReadTable() {
  return ReadBlockRange(0, static_cast<int>(footer_.blocks.size()));
}

}  // namespace sqlts
