#ifndef SQLTS_COLSTORE_READER_H_
#define SQLTS_COLSTORE_READER_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "colstore/format.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/table.h"

namespace sqlts {

/// Buffered random-access reader over a `.sqlc` columnar container.
///
/// Open() validates the header, loads and checksum-verifies the footer,
/// and validates the whole directory (DecodeFooter) — but reads no block
/// data.  Block bytes are fetched lazily, verified against their
/// per-block FNV-1a checksum, and decoded on demand, so blocks the zone
/// maps prove irrelevant cost zero I/O.  Fetches are serialized on an
/// internal mutex (decode happens outside it), making the reader safe
/// to share across the sharded executor's workers.
class ColumnarReader {
 public:
  /// Opens a container file.  Magic/version/footer-checksum mismatches
  /// and directory inconsistencies yield typed errors.
  static StatusOr<std::unique_ptr<ColumnarReader>> Open(
      const std::string& path);

  /// Opens an in-memory container image (tests, corruption fuzzing).
  static StatusOr<std::unique_ptr<ColumnarReader>> OpenBytes(
      std::string bytes);

  /// True when `path` starts with the columnar magic (format
  /// auto-detection; false on unreadable or short files).
  static bool SniffFile(const std::string& path);
  static bool SniffBytes(std::string_view bytes);

  const ColumnarFooter& footer() const { return footer_; }
  const Schema& schema() const { return footer_.schema; }

  /// Decodes every column of blocks [first_block, first_block +
  /// num_blocks) into a row-aligned Table (the contiguous-segment form
  /// the matchers consume).
  StatusOr<Table> ReadBlockRange(int first_block, int num_blocks);

  /// Full decode of the file in stored row order.
  StatusOr<Table> ReadTable();

  /// Cumulative encoded payload bytes fetched from the container so
  /// far (excludes header/footer; feeds SearchStats::bytes_read).
  int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 private:
  ColumnarReader() = default;

  /// Fetches + checksum-verifies the encoded bytes of (col, block).
  StatusOr<std::string> FetchBlockBytes(int col, int block);

  ColumnarFooter footer_;
  uint64_t file_size_ = 0;

  std::mutex mu_;
  std::ifstream file_ GUARDED_BY(mu_);  // file-backed mode
  bool in_memory_ = false;
  std::string buffer_;  // in-memory mode (immutable after Open)
  std::atomic<int64_t> bytes_read_{0};
};

}  // namespace sqlts

#endif  // SQLTS_COLSTORE_READER_H_
