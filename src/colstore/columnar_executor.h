#ifndef SQLTS_COLSTORE_COLUMNAR_EXECUTOR_H_
#define SQLTS_COLSTORE_COLUMNAR_EXECUTOR_H_

#include <string>
#include <string_view>

#include "colstore/reader.h"
#include "engine/executor.h"

namespace sqlts {

/// Knobs for execution straight off a `.sqlc` columnar file.
struct ColumnarExecOptions {
  ExecOptions exec;
  /// Zone-map cluster/block skipping (colstore/zone_skip.h).  Rows are
  /// unchanged; matcher stats may shrink (skipped blocks are never
  /// tested), so turn off for bit-identical stats against the
  /// in-memory path.
  bool skipping = true;
  /// Selectivity-driven conjunct reorder + anchor start prefilter
  /// (colstore/probe_planner.h).  Rows unchanged, stats may shift.
  bool planner = true;
};

/// Executes SQL-TS queries directly against a columnar container.
///
/// When the file's physical layout matches the query (same CLUSTER BY /
/// SEQUENCE BY, which the writer stores in exactly
/// ClusteredSequence::Build order), execution streams cluster by
/// cluster: hoisted cluster filters are decided from the footer's
/// cluster keys alone, zone maps skip refuted clusters and blocks
/// before any I/O, kept blocks decode into contiguous segments that
/// are matched independently, and the probe planner prefilters attempt
/// starts.  Any layout mismatch (or trace collection) falls back to a
/// full decode through the classic executor — same rows, zero skips.
///
/// SearchStats::blocks_total / blocks_skipped / bytes_read report the
/// storage work either way.
class ColumnarExecutor {
 public:
  static StatusOr<QueryResult> Execute(ColumnarReader& reader,
                                       std::string_view query_text,
                                       const ColumnarExecOptions& options = {},
                                       std::string* explain_out = nullptr);

  static StatusOr<QueryResult> ExecuteFile(
      const std::string& path, std::string_view query_text,
      const ColumnarExecOptions& options = {},
      std::string* explain_out = nullptr);
};

}  // namespace sqlts

#endif  // SQLTS_COLSTORE_COLUMNAR_EXECUTOR_H_
