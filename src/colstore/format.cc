#include "colstore/format.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "engine/checkpoint.h"

namespace sqlts {
namespace {

void PutU8(std::string* s, uint8_t v) { s->push_back(static_cast<char>(v)); }

void PutU32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(s, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(s, static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::string* s, int64_t v) { PutU64(s, static_cast<uint64_t>(v)); }

/// Bounds-checked little-endian reader over encoded block bytes.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool Need(size_t n) const { return data_.size() - pos_ >= n; }
  size_t remaining() const { return data_.size() - pos_; }

  StatusOr<uint8_t> U8() {
    if (!Need(1)) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  StatusOr<uint32_t> U32() {
    if (!Need(4)) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  StatusOr<uint64_t> U64() {
    if (!Need(8)) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  StatusOr<std::string_view> Bytes(size_t n) {
    if (!Need(n)) return Truncated();
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  static Status Truncated() {
    return Status::ParseError("columnar block: truncated payload");
  }
  std::string_view data_;
  size_t pos_ = 0;
};

/// Numeric cell as int64 (int64 columns and dates; dates store their
/// epoch-day number).
int64_t CellI64(const Value& v, TypeKind type) {
  return type == TypeKind::kDate
             ? static_cast<int64_t>(v.date_value().days_since_epoch())
             : v.int64_value();
}

Value I64Cell(int64_t raw, TypeKind type, Status* bad) {
  if (type == TypeKind::kDate) {
    if (raw < std::numeric_limits<int32_t>::min() ||
        raw > std::numeric_limits<int32_t>::max()) {
      *bad = Status::ParseError("columnar block: date out of range");
      return Value::Null();
    }
    return Value::FromDate(Date(static_cast<int32_t>(raw)));
  }
  return Value::Int64(raw);
}

int ForWidth(uint64_t range) {
  if (range == 0) return 0;
  if (range <= 0xffu) return 1;
  if (range <= 0xffffu) return 2;
  if (range <= 0xffffffffu) return 4;
  return 8;
}

std::string EncodeI64s(const std::vector<int64_t>& vals,
                       BlockEncoding* encoding) {
  const size_t n = vals.size();
  if (n == 0) {
    *encoding = BlockEncoding::kRawI64;
    return {};
  }
  int64_t lo = vals[0], hi = vals[0];
  size_t runs = 1;
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, vals[i]);
    hi = std::max(hi, vals[i]);
    if (vals[i] != vals[i - 1]) ++runs;
  }
  const uint64_t range =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  const int width = ForWidth(range);
  const size_t for_size = 9 + n * static_cast<size_t>(width);
  const size_t rle_size = 4 + runs * 12;
  std::string out;
  if (rle_size < for_size) {
    *encoding = BlockEncoding::kRleI64;
    out.reserve(rle_size);
    PutU32(&out, static_cast<uint32_t>(runs));
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j < n && vals[j] == vals[i]) ++j;
      PutI64(&out, vals[i]);
      PutU32(&out, static_cast<uint32_t>(j - i));
      i = j;
    }
  } else {
    *encoding = BlockEncoding::kForI64;
    out.reserve(for_size);
    PutI64(&out, lo);
    PutU8(&out, static_cast<uint8_t>(width));
    for (size_t i = 0; i < n; ++i) {
      const uint64_t d =
          static_cast<uint64_t>(vals[i]) - static_cast<uint64_t>(lo);
      for (int b = 0; b < width; ++b) {
        PutU8(&out, static_cast<uint8_t>(d >> (8 * b)));
      }
    }
  }
  return out;
}

StatusOr<std::vector<int64_t>> DecodeI64s(std::string_view bytes,
                                          BlockEncoding encoding, size_t n) {
  std::vector<int64_t> vals;
  vals.reserve(n);
  Cursor cur(bytes);
  switch (encoding) {
    case BlockEncoding::kRawI64: {
      for (size_t i = 0; i < n; ++i) {
        SQLTS_ASSIGN_OR_RETURN(uint64_t v, cur.U64());
        vals.push_back(static_cast<int64_t>(v));
      }
      break;
    }
    case BlockEncoding::kForI64: {
      SQLTS_ASSIGN_OR_RETURN(uint64_t lo, cur.U64());
      SQLTS_ASSIGN_OR_RETURN(uint8_t width, cur.U8());
      if (width != 0 && width != 1 && width != 2 && width != 4 &&
          width != 8) {
        return Status::ParseError("columnar block: bad FOR width");
      }
      for (size_t i = 0; i < n; ++i) {
        uint64_t d = 0;
        if (width > 0) {
          SQLTS_ASSIGN_OR_RETURN(std::string_view raw, cur.Bytes(width));
          for (int b = 0; b < width; ++b) {
            d |= static_cast<uint64_t>(static_cast<uint8_t>(raw[b]))
                 << (8 * b);
          }
        }
        vals.push_back(static_cast<int64_t>(lo + d));
      }
      break;
    }
    case BlockEncoding::kRleI64: {
      SQLTS_ASSIGN_OR_RETURN(uint32_t runs, cur.U32());
      for (uint32_t r = 0; r < runs; ++r) {
        SQLTS_ASSIGN_OR_RETURN(uint64_t v, cur.U64());
        SQLTS_ASSIGN_OR_RETURN(uint32_t len, cur.U32());
        if (len == 0 || vals.size() + len > n) {
          return Status::ParseError("columnar block: bad RLE run");
        }
        vals.insert(vals.end(), len, static_cast<int64_t>(v));
      }
      break;
    }
    default:
      return Status::ParseError("columnar block: encoding/type mismatch");
  }
  if (vals.size() != n || cur.remaining() != 0) {
    return Status::ParseError("columnar block: length mismatch");
  }
  return vals;
}

std::string EncodeDict(const std::vector<const std::string*>& vals) {
  // Sorted unique dictionary with common-prefix compression.
  std::vector<const std::string*> sorted(vals);
  std::sort(sorted.begin(), sorted.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  std::vector<const std::string*> dict;
  for (const std::string* s : sorted) {
    if (dict.empty() || *dict.back() != *s) dict.push_back(s);
  }
  std::string out;
  PutU32(&out, static_cast<uint32_t>(dict.size()));
  for (size_t i = 0; i < dict.size(); ++i) {
    size_t prefix = 0;
    if (i > 0) {
      const std::string& prev = *dict[i - 1];
      const std::string& curr = *dict[i];
      const size_t limit = std::min(prev.size(), curr.size());
      while (prefix < limit && prev[prefix] == curr[prefix]) ++prefix;
    }
    PutU32(&out, static_cast<uint32_t>(prefix));
    PutU32(&out, static_cast<uint32_t>(dict[i]->size() - prefix));
    out.append(*dict[i], prefix, dict[i]->size() - prefix);
  }
  const int width = dict.size() <= 0xff ? 1 : dict.size() <= 0xffff ? 2 : 4;
  PutU8(&out, static_cast<uint8_t>(width));
  for (const std::string* s : vals) {
    const auto it = std::lower_bound(
        dict.begin(), dict.end(), s,
        [](const std::string* a, const std::string* b) { return *a < *b; });
    const uint32_t idx = static_cast<uint32_t>(it - dict.begin());
    for (int b = 0; b < width; ++b) {
      PutU8(&out, static_cast<uint8_t>(idx >> (8 * b)));
    }
  }
  return out;
}

StatusOr<std::vector<std::string>> DecodeDict(std::string_view bytes,
                                              size_t n) {
  Cursor cur(bytes);
  SQLTS_ASSIGN_OR_RETURN(uint32_t dict_size, cur.U32());
  if (dict_size > bytes.size()) {
    return Status::ParseError("columnar block: dictionary too large");
  }
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (uint32_t i = 0; i < dict_size; ++i) {
    SQLTS_ASSIGN_OR_RETURN(uint32_t prefix, cur.U32());
    SQLTS_ASSIGN_OR_RETURN(uint32_t suffix, cur.U32());
    if (i == 0 ? prefix != 0 : prefix > dict[i - 1].size()) {
      return Status::ParseError("columnar block: bad dictionary prefix");
    }
    SQLTS_ASSIGN_OR_RETURN(std::string_view tail, cur.Bytes(suffix));
    std::string entry =
        i == 0 ? std::string() : dict[i - 1].substr(0, prefix);
    entry.append(tail);
    dict.push_back(std::move(entry));
  }
  SQLTS_ASSIGN_OR_RETURN(uint8_t width, cur.U8());
  if (width != 1 && width != 2 && width != 4) {
    return Status::ParseError("columnar block: bad dictionary index width");
  }
  std::vector<std::string> vals;
  vals.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SQLTS_ASSIGN_OR_RETURN(std::string_view raw, cur.Bytes(width));
    uint32_t idx = 0;
    for (int b = 0; b < width; ++b) {
      idx |= static_cast<uint32_t>(static_cast<uint8_t>(raw[b])) << (8 * b);
    }
    if (idx >= dict_size) {
      return Status::ParseError("columnar block: dictionary index range");
    }
    vals.push_back(dict[idx]);
  }
  if (cur.remaining() != 0) {
    return Status::ParseError("columnar block: trailing bytes");
  }
  return vals;
}

}  // namespace

std::string_view BlockEncodingName(BlockEncoding e) {
  switch (e) {
    case BlockEncoding::kRawI64: return "raw-i64";
    case BlockEncoding::kRawF64: return "raw-f64";
    case BlockEncoding::kRawBool: return "raw-bool";
    case BlockEncoding::kForI64: return "for-i64";
    case BlockEncoding::kRleI64: return "rle-i64";
    case BlockEncoding::kDict: return "dict";
  }
  return "?";
}

uint64_t BloomHashBytes(std::string_view bytes) { return Fnv1a64(bytes); }

uint64_t BloomHashInt64(int64_t v) {
  char raw[8];
  const uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<char>(u >> (8 * i));
  return Fnv1a64(std::string_view(raw, 8));
}

namespace {
inline uint32_t BloomProbe(uint64_t hash, int k) {
  const uint64_t h2 = hash * 0x9e3779b97f4a7c15ull | 1;
  return static_cast<uint32_t>((hash + static_cast<uint64_t>(k) * h2) %
                               (kColBloomBytes * 8));
}
}  // namespace

void BloomAdd(std::string* bits, uint64_t hash) {
  if (bits->size() != kColBloomBytes) bits->assign(kColBloomBytes, '\0');
  for (int k = 0; k < kColBloomProbes; ++k) {
    const uint32_t p = BloomProbe(hash, k);
    (*bits)[p >> 3] |= static_cast<char>(1u << (p & 7));
  }
}

bool BloomMayContain(std::string_view bits, uint64_t hash) {
  if (bits.size() != kColBloomBytes) return true;  // no filter: unknown
  for (int k = 0; k < kColBloomProbes; ++k) {
    const uint32_t p = BloomProbe(hash, k);
    if ((static_cast<uint8_t>(bits[p >> 3]) & (1u << (p & 7))) == 0) {
      return false;
    }
  }
  return true;
}

std::string EncodeColumnBlock(const std::vector<Value>& col, int64_t start,
                              int rows, TypeKind type, bool want_bloom,
                              ColumnBlockMeta* meta) {
  BlockSketch& sketch = meta->sketch;
  sketch = BlockSketch{};
  std::string bitmap((rows + 7) / 8, '\0');
  bool has_null = false;
  for (int r = 0; r < rows; ++r) {
    if (col[start + r].is_null()) {
      has_null = true;
      ++sketch.null_count;
    } else {
      bitmap[r >> 3] |= static_cast<char>(1u << (r & 7));
    }
  }

  std::string payload;
  switch (type) {
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      std::vector<int64_t> vals;
      vals.reserve(rows);
      bool first = true;
      int64_t lo = 0, hi = 0;
      for (int r = 0; r < rows; ++r) {
        const Value& v = col[start + r];
        if (v.is_null()) continue;
        const int64_t x = CellI64(v, type);
        vals.push_back(x);
        if (first) {
          lo = hi = x;
          first = false;
        } else {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
        if (want_bloom) BloomAdd(&sketch.bloom, BloomHashInt64(x));
      }
      if (!first) {
        Status ignored = Status::OK();
        sketch.min = I64Cell(lo, type, &ignored);
        sketch.max = I64Cell(hi, type, &ignored);
      }
      payload = EncodeI64s(vals, &meta->encoding);
      break;
    }
    case TypeKind::kDouble: {
      meta->encoding = BlockEncoding::kRawF64;
      bool first = true;
      bool saw_nan = false;
      double lo = 0, hi = 0;
      for (int r = 0; r < rows; ++r) {
        const Value& v = col[start + r];
        if (v.is_null()) continue;
        const double x = v.double_value();
        if (std::isnan(x)) {
          saw_nan = true;
        } else if (first) {
          lo = hi = x;
          first = false;
        } else {
          lo = std::min(lo, x);
          hi = std::max(hi, x);
        }
        PutU64(&payload, std::bit_cast<uint64_t>(x));
      }
      // A NaN cell poisons ordering; publish no zone bounds (sound:
      // the skipper simply cannot constrain this block).
      if (!first && !saw_nan) {
        sketch.min = Value::Double(lo);
        sketch.max = Value::Double(hi);
      }
      break;
    }
    case TypeKind::kBool: {
      meta->encoding = BlockEncoding::kRawBool;
      bool first = true;
      bool lo = false, hi = false;
      for (int r = 0; r < rows; ++r) {
        const Value& v = col[start + r];
        if (v.is_null()) continue;
        const bool x = v.bool_value();
        if (first) {
          lo = hi = x;
          first = false;
        } else {
          lo = lo && x;
          hi = hi || x;
        }
        PutU8(&payload, x ? 1 : 0);
      }
      if (!first) {
        sketch.min = Value::Bool(lo);
        sketch.max = Value::Bool(hi);
      }
      break;
    }
    case TypeKind::kString: {
      meta->encoding = BlockEncoding::kDict;
      std::vector<const std::string*> vals;
      vals.reserve(rows);
      const std::string* lo = nullptr;
      const std::string* hi = nullptr;
      for (int r = 0; r < rows; ++r) {
        const Value& v = col[start + r];
        if (v.is_null()) continue;
        const std::string& s = v.string_value();
        vals.push_back(&s);
        if (lo == nullptr || s < *lo) lo = &s;
        if (hi == nullptr || *hi < s) hi = &s;
        if (want_bloom) BloomAdd(&sketch.bloom, BloomHashBytes(s));
      }
      if (lo != nullptr) {
        sketch.min = Value::String(*lo);
        sketch.max = Value::String(*hi);
      }
      payload = EncodeDict(vals);
      break;
    }
    case TypeKind::kNull:
      meta->encoding = BlockEncoding::kRawI64;
      break;
  }

  std::string out;
  if (has_null) out = std::move(bitmap);
  out += payload;
  return out;
}

Status DecodeColumnBlock(std::string_view bytes, BlockEncoding encoding,
                         TypeKind type, int rows, int64_t null_count,
                         std::vector<Value>* out) {
  if (rows < 0 || null_count < 0 || null_count > rows) {
    return Status::ParseError("columnar block: bad row/null counts");
  }
  std::string_view bitmap;
  if (null_count > 0) {
    const size_t bitmap_bytes = (static_cast<size_t>(rows) + 7) / 8;
    if (bytes.size() < bitmap_bytes) {
      return Status::ParseError("columnar block: truncated validity bitmap");
    }
    bitmap = bytes.substr(0, bitmap_bytes);
    bytes.remove_prefix(bitmap_bytes);
    int64_t set = 0;
    for (int r = 0; r < rows; ++r) {
      set += (static_cast<uint8_t>(bitmap[r >> 3]) >> (r & 7)) & 1;
    }
    if (set != rows - null_count) {
      return Status::ParseError("columnar block: validity bitmap mismatch");
    }
  }
  const size_t n = static_cast<size_t>(rows - null_count);
  auto non_null = [&](int r) {
    return null_count == 0 ||
           ((static_cast<uint8_t>(bitmap[r >> 3]) >> (r & 7)) & 1) != 0;
  };

  switch (type) {
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      if (encoding != BlockEncoding::kRawI64 &&
          encoding != BlockEncoding::kForI64 &&
          encoding != BlockEncoding::kRleI64) {
        return Status::ParseError("columnar block: encoding/type mismatch");
      }
      SQLTS_ASSIGN_OR_RETURN(std::vector<int64_t> vals,
                             DecodeI64s(bytes, encoding, n));
      size_t k = 0;
      Status bad = Status::OK();
      for (int r = 0; r < rows; ++r) {
        if (!non_null(r)) {
          out->push_back(Value::Null());
          continue;
        }
        out->push_back(I64Cell(vals[k++], type, &bad));
        if (!bad.ok()) return bad;
      }
      return Status::OK();
    }
    case TypeKind::kDouble: {
      if (encoding != BlockEncoding::kRawF64) {
        return Status::ParseError("columnar block: encoding/type mismatch");
      }
      Cursor cur(bytes);
      std::vector<double> vals;
      vals.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        SQLTS_ASSIGN_OR_RETURN(uint64_t raw, cur.U64());
        vals.push_back(std::bit_cast<double>(raw));
      }
      if (cur.remaining() != 0) {
        return Status::ParseError("columnar block: trailing bytes");
      }
      size_t k = 0;
      for (int r = 0; r < rows; ++r) {
        out->push_back(non_null(r) ? Value::Double(vals[k++])
                                   : Value::Null());
      }
      return Status::OK();
    }
    case TypeKind::kBool: {
      if (encoding != BlockEncoding::kRawBool) {
        return Status::ParseError("columnar block: encoding/type mismatch");
      }
      if (bytes.size() != n) {
        return Status::ParseError("columnar block: length mismatch");
      }
      size_t k = 0;
      for (int r = 0; r < rows; ++r) {
        if (!non_null(r)) {
          out->push_back(Value::Null());
          continue;
        }
        const uint8_t b = static_cast<uint8_t>(bytes[k++]);
        if (b > 1) return Status::ParseError("columnar block: bad bool");
        out->push_back(Value::Bool(b != 0));
      }
      return Status::OK();
    }
    case TypeKind::kString: {
      if (encoding != BlockEncoding::kDict) {
        return Status::ParseError("columnar block: encoding/type mismatch");
      }
      SQLTS_ASSIGN_OR_RETURN(std::vector<std::string> vals,
                             DecodeDict(bytes, n));
      size_t k = 0;
      for (int r = 0; r < rows; ++r) {
        out->push_back(non_null(r) ? Value::String(std::move(vals[k++]))
                                   : Value::Null());
      }
      return Status::OK();
    }
    case TypeKind::kNull:
      return Status::ParseError("columnar block: untyped column");
  }
  return Status::ParseError("columnar block: unknown encoding");
}

std::string EncodeFooter(const ColumnarFooter& footer) {
  CheckpointWriter w;
  const Schema& schema = footer.schema;
  w.WriteU32(static_cast<uint32_t>(schema.num_columns()));
  for (int c = 0; c < schema.num_columns(); ++c) {
    const ColumnDef& col = schema.column(c);
    w.WriteString(col.name);
    w.WriteU8(static_cast<uint8_t>(col.type));
    w.WriteBool(col.nullable);
    w.WriteBool(col.positive);
  }
  w.WriteI64(footer.num_rows);
  w.WriteU32(static_cast<uint32_t>(footer.block_rows));
  w.WriteBool(footer.clustered);
  w.WriteU32(static_cast<uint32_t>(footer.cluster_by.size()));
  for (const std::string& s : footer.cluster_by) w.WriteString(s);
  w.WriteU32(static_cast<uint32_t>(footer.sequence_by.size()));
  for (const std::string& s : footer.sequence_by) w.WriteString(s);
  w.WriteU32(static_cast<uint32_t>(footer.clusters.size()));
  for (const ClusterMeta& cl : footer.clusters) {
    w.WriteRow(cl.key);
    w.WriteI64(cl.start_row);
    w.WriteI64(cl.row_count);
    w.WriteU32(static_cast<uint32_t>(cl.first_block));
    w.WriteU32(static_cast<uint32_t>(cl.num_blocks));
  }
  w.WriteU32(static_cast<uint32_t>(footer.blocks.size()));
  for (const RowBlockMeta& b : footer.blocks) {
    w.WriteI64(b.start_row);
    w.WriteU32(static_cast<uint32_t>(b.row_count));
    w.WriteI64(b.cluster);
  }
  for (const auto& column : footer.columns) {
    for (const ColumnBlockMeta& m : column) {
      w.WriteU8(static_cast<uint8_t>(m.encoding));
      w.WriteU64(m.offset);
      w.WriteU64(m.size);
      w.WriteU64(m.checksum);
      w.WriteI64(m.sketch.null_count);
      w.WriteValue(m.sketch.min);
      w.WriteValue(m.sketch.max);
      w.WriteString(m.sketch.bloom);
    }
  }
  return w.payload();
}

StatusOr<ColumnarFooter> DecodeFooter(std::string_view payload,
                                      uint64_t file_size) {
  CheckpointReader r(payload);
  ColumnarFooter footer;
  SQLTS_ASSIGN_OR_RETURN(uint32_t ncols, r.ReadU32());
  if (ncols == 0 || ncols > 100000) {
    return Status::ParseError("columnar footer: bad column count");
  }
  for (uint32_t c = 0; c < ncols; ++c) {
    SQLTS_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    SQLTS_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    SQLTS_ASSIGN_OR_RETURN(bool nullable, r.ReadBool());
    SQLTS_ASSIGN_OR_RETURN(bool positive, r.ReadBool());
    if (type == 0 || type > static_cast<uint8_t>(TypeKind::kDate)) {
      return Status::ParseError("columnar footer: bad column type");
    }
    SQLTS_RETURN_IF_ERROR(footer.schema.AddColumn(
        name, static_cast<TypeKind>(type), nullable, positive));
  }
  SQLTS_ASSIGN_OR_RETURN(footer.num_rows, r.ReadI64());
  SQLTS_ASSIGN_OR_RETURN(uint32_t block_rows, r.ReadU32());
  if (footer.num_rows < 0 || block_rows == 0 || block_rows > (1u << 20)) {
    return Status::ParseError("columnar footer: bad row/block geometry");
  }
  footer.block_rows = static_cast<int32_t>(block_rows);
  SQLTS_ASSIGN_OR_RETURN(footer.clustered, r.ReadBool());
  SQLTS_ASSIGN_OR_RETURN(uint32_t ncluster_by, r.ReadU32());
  if (ncluster_by > ncols) {
    return Status::ParseError("columnar footer: bad cluster_by");
  }
  for (uint32_t i = 0; i < ncluster_by; ++i) {
    SQLTS_ASSIGN_OR_RETURN(std::string s, r.ReadString());
    footer.cluster_by.push_back(std::move(s));
  }
  SQLTS_ASSIGN_OR_RETURN(uint32_t nsequence_by, r.ReadU32());
  if (nsequence_by > ncols) {
    return Status::ParseError("columnar footer: bad sequence_by");
  }
  for (uint32_t i = 0; i < nsequence_by; ++i) {
    SQLTS_ASSIGN_OR_RETURN(std::string s, r.ReadString());
    footer.sequence_by.push_back(std::move(s));
  }
  SQLTS_ASSIGN_OR_RETURN(uint32_t nclusters, r.ReadU32());
  if (nclusters > static_cast<uint64_t>(footer.num_rows) + 1) {
    return Status::ParseError("columnar footer: bad cluster count");
  }
  for (uint32_t i = 0; i < nclusters; ++i) {
    ClusterMeta cl;
    SQLTS_ASSIGN_OR_RETURN(cl.key, r.ReadRow());
    SQLTS_ASSIGN_OR_RETURN(cl.start_row, r.ReadI64());
    SQLTS_ASSIGN_OR_RETURN(cl.row_count, r.ReadI64());
    SQLTS_ASSIGN_OR_RETURN(uint32_t first_block, r.ReadU32());
    SQLTS_ASSIGN_OR_RETURN(uint32_t num_blocks, r.ReadU32());
    cl.first_block = static_cast<int32_t>(first_block);
    cl.num_blocks = static_cast<int32_t>(num_blocks);
    if (cl.key.size() != footer.cluster_by.size()) {
      return Status::ParseError("columnar footer: cluster key arity");
    }
    footer.clusters.push_back(std::move(cl));
  }
  SQLTS_ASSIGN_OR_RETURN(uint32_t nblocks, r.ReadU32());
  if (nblocks > static_cast<uint64_t>(footer.num_rows) + 1) {
    return Status::ParseError("columnar footer: bad block count");
  }
  int64_t next_row = 0;
  for (uint32_t b = 0; b < nblocks; ++b) {
    RowBlockMeta m;
    SQLTS_ASSIGN_OR_RETURN(m.start_row, r.ReadI64());
    SQLTS_ASSIGN_OR_RETURN(uint32_t row_count, r.ReadU32());
    int64_t cluster;
    SQLTS_ASSIGN_OR_RETURN(cluster, r.ReadI64());
    m.row_count = static_cast<int32_t>(row_count);
    m.cluster = static_cast<int32_t>(cluster);
    if (m.start_row != next_row || m.row_count <= 0 ||
        m.row_count > footer.block_rows ||
        (footer.clustered &&
         (m.cluster < 0 ||
          m.cluster >= static_cast<int64_t>(footer.clusters.size())))) {
      return Status::ParseError("columnar footer: bad block directory");
    }
    next_row += m.row_count;
    footer.blocks.push_back(m);
  }
  if (next_row != footer.num_rows) {
    return Status::ParseError("columnar footer: blocks do not tile rows");
  }
  // Clusters must cover whole, consecutive block ranges.
  if (footer.clustered) {
    int64_t next_block = 0;
    int64_t row = 0;
    for (const ClusterMeta& cl : footer.clusters) {
      if (cl.first_block != next_block || cl.num_blocks <= 0 ||
          cl.first_block + cl.num_blocks >
              static_cast<int64_t>(footer.blocks.size()) ||
          cl.start_row != row || cl.row_count <= 0) {
        return Status::ParseError("columnar footer: bad cluster directory");
      }
      int64_t rows_in_blocks = 0;
      for (int b = cl.first_block; b < cl.first_block + cl.num_blocks; ++b) {
        if (footer.blocks[b].cluster !=
            static_cast<int32_t>(&cl - footer.clusters.data())) {
          return Status::ParseError("columnar footer: cluster/block link");
        }
        rows_in_blocks += footer.blocks[b].row_count;
      }
      if (rows_in_blocks != cl.row_count) {
        return Status::ParseError("columnar footer: cluster row count");
      }
      next_block += cl.num_blocks;
      row += cl.row_count;
    }
    if (next_block != static_cast<int64_t>(footer.blocks.size()) ||
        row != footer.num_rows) {
      return Status::ParseError("columnar footer: clusters do not tile");
    }
  } else if (!footer.clusters.empty()) {
    return Status::ParseError("columnar footer: clusters without ordering");
  }
  footer.columns.resize(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    const TypeKind type = footer.schema.column(static_cast<int>(c)).type;
    footer.columns[c].resize(nblocks);
    for (uint32_t b = 0; b < nblocks; ++b) {
      ColumnBlockMeta& m = footer.columns[c][b];
      SQLTS_ASSIGN_OR_RETURN(uint8_t enc, r.ReadU8());
      if (enc > static_cast<uint8_t>(BlockEncoding::kDict)) {
        return Status::ParseError("columnar footer: bad encoding");
      }
      m.encoding = static_cast<BlockEncoding>(enc);
      SQLTS_ASSIGN_OR_RETURN(m.offset, r.ReadU64());
      SQLTS_ASSIGN_OR_RETURN(m.size, r.ReadU64());
      SQLTS_ASSIGN_OR_RETURN(m.checksum, r.ReadU64());
      SQLTS_ASSIGN_OR_RETURN(m.sketch.null_count, r.ReadI64());
      SQLTS_ASSIGN_OR_RETURN(m.sketch.min, r.ReadValue());
      SQLTS_ASSIGN_OR_RETURN(m.sketch.max, r.ReadValue());
      SQLTS_ASSIGN_OR_RETURN(m.sketch.bloom, r.ReadString());
      if (m.offset < kColumnarHeaderSize || m.size > file_size ||
          m.offset + m.size > file_size ||
          m.sketch.null_count < 0 ||
          m.sketch.null_count > footer.blocks[b].row_count ||
          (!m.sketch.bloom.empty() &&
           m.sketch.bloom.size() != kColBloomBytes)) {
        return Status::ParseError("columnar footer: bad block extent");
      }
      // Zone values must be NULL or match the column type; anything else
      // would let a corrupted footer feed the skipping oracle garbage.
      if ((!m.sketch.min.is_null() && m.sketch.min.kind() != type) ||
          (!m.sketch.max.is_null() && m.sketch.max.kind() != type) ||
          m.sketch.min.is_null() != m.sketch.max.is_null()) {
        return Status::ParseError("columnar footer: bad zone map");
      }
    }
  }
  if (r.remaining() != 0) {
    return Status::ParseError("columnar footer: trailing bytes");
  }
  return footer;
}

}  // namespace sqlts
