#include "colstore/writer.h"

#include <algorithm>
#include <fstream>

#include "engine/checkpoint.h"
#include "storage/sequence.h"

namespace sqlts {
namespace {

void PutU32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}

}  // namespace

StatusOr<std::string> ColumnarWriter::WriteBytes(
    const Table& table, const ColumnarWriterOptions& options) {
  const Schema& schema = table.schema();
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("columnar writer: table has no columns");
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == TypeKind::kNull) {
      return Status::InvalidArgument("columnar writer: untyped column '" +
                                     schema.column(c).name + "'");
    }
  }

  ColumnarFooter footer;
  footer.schema = schema;
  footer.num_rows = table.num_rows();
  footer.block_rows = kColBlockRows;
  footer.cluster_by = options.cluster_by;
  footer.sequence_by = options.sequence_by;
  footer.clustered =
      !options.cluster_by.empty() || !options.sequence_by.empty();

  // Physical row order: identity, or cluster-major + sequence-sorted.
  // `order[i]` is the source row stored at file position i.
  std::vector<int64_t> order;
  order.reserve(table.num_rows());
  if (footer.clustered) {
    SQLTS_ASSIGN_OR_RETURN(
        ClusteredSequence clusters,
        ClusteredSequence::Build(&table, options.cluster_by,
                                 options.sequence_by));
    for (int c = 0; c < clusters.num_clusters(); ++c) {
      const SequenceView& seq = clusters.cluster(c);
      ClusterMeta meta;
      meta.key = clusters.cluster_key(c);
      meta.start_row = static_cast<int64_t>(order.size());
      meta.row_count = seq.size();
      meta.first_block = static_cast<int32_t>(footer.blocks.size());
      // Blocks never span clusters: each cluster opens a fresh block.
      int64_t done = 0;
      while (done < seq.size()) {
        const int rows = static_cast<int>(
            std::min<int64_t>(kColBlockRows, seq.size() - done));
        footer.blocks.push_back({meta.start_row + done, rows,
                                 static_cast<int32_t>(footer.clusters.size())});
        done += rows;
      }
      meta.num_blocks =
          static_cast<int32_t>(footer.blocks.size()) - meta.first_block;
      for (int64_t p = 0; p < seq.size(); ++p) {
        order.push_back(seq.row_index(p));
      }
      footer.clusters.push_back(std::move(meta));
    }
  } else {
    for (int64_t r = 0; r < table.num_rows(); ++r) order.push_back(r);
    int64_t done = 0;
    while (done < table.num_rows()) {
      const int rows = static_cast<int>(
          std::min<int64_t>(kColBlockRows, table.num_rows() - done));
      footer.blocks.push_back({done, rows, -1});
      done += rows;
    }
  }

  // Materialize each column in file order once, then encode per block.
  std::string data;
  footer.columns.resize(schema.num_columns());
  std::vector<Value> col;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const TypeKind type = schema.column(c).type;
    const std::vector<Value>& src = table.column_data(c);
    col.clear();
    col.reserve(order.size());
    for (int64_t r : order) col.push_back(src[r]);
    const bool want_bloom =
        options.bloom && (type == TypeKind::kString ||
                          type == TypeKind::kInt64 || type == TypeKind::kDate);
    footer.columns[c].resize(footer.blocks.size());
    for (size_t b = 0; b < footer.blocks.size(); ++b) {
      const RowBlockMeta& rb = footer.blocks[b];
      ColumnBlockMeta& m = footer.columns[c][b];
      std::string bytes = EncodeColumnBlock(col, rb.start_row, rb.row_count,
                                            type, want_bloom, &m);
      m.offset = kColumnarHeaderSize + data.size();
      m.size = bytes.size();
      m.checksum = Fnv1a64(bytes);
      data += bytes;
    }
  }

  const std::string footer_bytes = EncodeFooter(footer);
  std::string out;
  out.reserve(kColumnarHeaderSize + data.size() + footer_bytes.size());
  out += kColumnarMagic;
  PutU32(&out, kColumnarVersion);
  PutU64(&out, kColumnarHeaderSize + data.size());  // footer offset
  PutU64(&out, footer_bytes.size());
  PutU64(&out, Fnv1a64(footer_bytes));
  out += data;
  out += footer_bytes;
  return out;
}

Status ColumnarWriter::WriteFile(const Table& table, const std::string& path,
                                 const ColumnarWriterOptions& options) {
  SQLTS_ASSIGN_OR_RETURN(std::string bytes, WriteBytes(table, options));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace sqlts
