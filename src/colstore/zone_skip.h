#ifndef SQLTS_COLSTORE_ZONE_SKIP_H_
#define SQLTS_COLSTORE_ZONE_SKIP_H_

#include <string>
#include <vector>

#include "colstore/format.h"
#include "constraints/catalog.h"
#include "expr/normalize.h"
#include "parser/analyzer.h"
#include "pattern/theta_phi.h"

namespace sqlts {

/// Skip verdict for one cluster of a columnar file.
struct ZoneDecision {
  /// The whole cluster provably contains no match: some non-star
  /// element's predicate is refuted over the cluster-aggregate zones.
  bool skip_cluster = false;
  /// Per block of the cluster (cluster-local index): true when every
  /// element (star included) is refuted over the zones of the blocks
  /// within ±2·reach rows, so no match consumes any of its positions.
  std::vector<bool> skip_block;
};

/// Zone-map block skipping: feeds per-block min/max/null/bloom sketches
/// into the paper's implication oracle to refute pattern elements over
/// whole row ranges before any block I/O happens.
///
/// Soundness contract (docs/STORAGE.md §4).  For a covered row range R
/// we assert zone atoms `lo ≤ col@off ≤ hi` only when element-TRUE at a
/// position anchored in the probed range forces the referenced cell to
/// be a non-NULL value drawn from R:
///   (a) the variable occurs in a base-system linear/ratio atom (or is
///       the predicate's interval variable with a non-trivial interval)
///       — the atom evaluating TRUE forces the cell non-NULL, and the
///       probe geometry keeps every |offset| ≤ reach read inside R; or
///   (b) offset == 0 and the column has zero NULLs across R — the tuple
///       under test always exists.
/// `ImplicationOracle::Exclusive(zones, element)` proving the
/// conjunction unsatisfiable then refutes element-TRUE everywhere in
/// the probed range.  String equality conjuncts are refuted when the
/// aggregate lexical range or every covering block's bloom filter
/// definitely excludes the literal; int64/date equality conjuncts
/// likewise through their blooms.  Columns that are entirely NULL over
/// R refute any element with a base atom on them.  int64 bounds that
/// don't round-trip through double are widened outward, and blocks
/// whose sketch was suppressed (NaN cells) publish no zone atoms.
///
/// Cluster-level skips need one refuted NON-star element (every match
/// instantiates each non-star element at least once).  Block-level
/// skips refute ALL elements over E(B) = [B.lo − reach, B.hi + reach]
/// using zones aggregated over B ± 2·reach rows, where `reach` bounds
/// every relative/navigation offset the query can read — so no match
/// consumes a position in E(B), matches never read a skipped block,
/// and the kept blocks form segments that match independently.
class ZoneSkipper {
 public:
  /// `query` must be analyzed against `footer.schema`.
  ZoneSkipper(const CompiledQuery& query, const ColumnarFooter& footer,
              const OracleOptions& oracle_options);

  /// False when no element predicate offers any refutation handle (all
  /// residue); DecideCluster would never skip anything.
  bool enabled() const { return enabled_; }

  /// Max |relative offset| / |navigation step| the query reads, over
  /// element conjuncts, SELECT list, and cluster filters.
  int reach() const { return reach_; }

  /// Skip decisions for cluster `ci` of the footer.
  ZoneDecision DecideCluster(int ci) const;

  /// One-line summary for EXPLAIN output.
  std::string ToString() const;

 private:
  struct VarInfo {
    int column = -1;  ///< schema column index; -1 when unparsable
    int offset = 0;
  };
  /// Aggregate sketch of one column over a covered block set.
  struct ColumnAgg {
    bool has_values = false;  ///< some covered block holds non-NULL cells
    bool bounded = false;     ///< has_values and every such block has bounds
    int64_t nulls = 0;
    Value min;
    Value max;
  };

  ColumnAgg Aggregate(int col, int first_block, int last_block) const;
  /// True when element `e` (0-based) provably cannot be TRUE at any
  /// position whose reads stay within blocks [first_block, last_block].
  bool RefuteElement(int e, int first_block, int last_block) const;

  const ColumnarFooter& footer_;
  ImplicationOracle oracle_;
  VariableCatalog catalog_;
  std::vector<PredicateAnalysis> analyses_;   ///< per element, 0-based
  std::vector<bool> star_;                    ///< per element
  std::vector<std::vector<VarId>> base_vars_; ///< per element
  std::vector<VarInfo> vars_;                 ///< per VarId
  int reach_ = 0;
  bool enabled_ = false;
};

}  // namespace sqlts

#endif  // SQLTS_COLSTORE_ZONE_SKIP_H_
