#include "colstore/zone_skip.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.h"
#include "expr/expr.h"

namespace sqlts {
namespace {

/// Largest double <= v (int64 cast can round up past the true value
/// once |v| exceeds 2^53; zone bounds must stay outward-conservative).
double WidenDown(int64_t v) {
  double d = static_cast<double>(v);
  if (static_cast<long double>(d) > static_cast<long double>(v)) {
    d = std::nextafter(d, -std::numeric_limits<double>::infinity());
  }
  return d;
}

/// Smallest double >= v.
double WidenUp(int64_t v) {
  double d = static_cast<double>(v);
  if (static_cast<long double>(d) < static_cast<long double>(v)) {
    d = std::nextafter(d, std::numeric_limits<double>::infinity());
  }
  return d;
}

/// True when the refutation machinery has anything to work with for
/// this element's predicate.
bool HasHandles(const PredicateAnalysis& a) {
  return a.system.trivially_false() || a.system.num_atoms() > 0 ||
         (a.has_interval && !a.interval.IsAll()) || !a.or_groups.empty();
}

bool Contains(const std::vector<VarId>& vars, VarId v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

/// The exact int64 a (captured-as-double) equality constant denotes, if
/// any — bloom probes need the original key bytes.
bool ExactInt64(double c, int64_t* out) {
  if (!(c >= -9223372036854775808.0 && c < 9223372036854775808.0)) {
    return false;
  }
  const int64_t v = static_cast<int64_t>(c);
  if (static_cast<double>(v) != c) return false;
  *out = v;
  return true;
}

/// Mirrors CompilePattern's GSW positive-domain licensing: that mode
/// assumes every variable ranges over the strictly positive reals,
/// which holds only when each column any pattern predicate touches is
/// declared POSITIVE.  The executor hands us the raw (ungated) compile
/// options, so the gate must be re-applied here — without it the
/// refutation oracle "proves" satisfiable predicates like `grp = 0`
/// exclusive with any zone and skips live blocks.
OracleOptions GatePositiveDomain(const CompiledQuery& query,
                                 OracleOptions options) {
  bool all_positive = true;
  for (const PatternElement& elem : query.elements) {
    if (elem.predicate == nullptr) continue;
    VisitColumnRefs(elem.predicate, [&](const ColumnRef& r) {
      if (r.column_index < 0 ||
          !query.input_schema.column(r.column_index).positive) {
        all_positive = false;
      }
    });
  }
  options.gsw.positive_domain &= all_positive;
  return options;
}

}  // namespace

ZoneSkipper::ZoneSkipper(const CompiledQuery& query,
                         const ColumnarFooter& footer,
                         const OracleOptions& oracle_options)
    : footer_(footer), oracle_(GatePositiveDomain(query, oracle_options)) {
  const Schema& schema = footer_.schema;
  const int m = query.pattern_length();
  analyses_.reserve(m);
  star_.reserve(m);
  base_vars_.resize(m);
  for (int e = 0; e < m; ++e) {
    const PatternElement& elem = query.elements[e];
    star_.push_back(elem.star);
    analyses_.push_back(AnalyzePredicate(elem.predicate, schema, &catalog_));
    const PredicateAnalysis& a = analyses_.back();
    auto add_var = [&](VarId v) {
      if (v != kNoVar && !Contains(base_vars_[e], v)) {
        base_vars_[e].push_back(v);
      }
    };
    for (const LinearAtom& atom : a.system.linear()) {
      add_var(atom.x);
      add_var(atom.y);
    }
    for (const RatioAtom& atom : a.system.ratio()) {
      add_var(atom.x);
      add_var(atom.y);
    }
    // A non-trivial interval view also pins its variable: the predicate
    // can only be TRUE on a non-NULL cell inside the interval.
    if (a.has_interval && !a.interval.IsAll()) add_var(a.interval_var);
  }

  // Decode the catalog's "column@offset" naming back to schema columns.
  vars_.resize(catalog_.size());
  for (VarId v = 0; v < catalog_.size(); ++v) {
    const std::string& name = catalog_.Name(v);
    const size_t at = name.rfind('@');
    VarInfo info;
    if (at != std::string::npos) {
      auto col = schema.FindColumn(name.substr(0, at));
      if (col.ok()) {
        info.column = col.value();
        info.offset = std::atoi(name.c_str() + at + 1);
      }
    }
    vars_[v] = info;
  }

  // Reach: the farthest any predicate, SELECT item, or cluster filter
  // can read from its anchor position (relative offsets) or from a
  // group endpoint (navigation steps).
  auto visit = [&](const ExprPtr& e) {
    VisitColumnRefs(e, [&](const ColumnRef& r) {
      if (r.relative) reach_ = std::max(reach_, std::abs(r.total_offset));
      reach_ = std::max(reach_, std::abs(r.nav_offset));
    });
  };
  for (const PatternElement& elem : query.elements) visit(elem.predicate);
  for (const SelectItem& item : query.select) visit(item.expr);
  for (const ExprPtr& f : query.cluster_filters) visit(f);

  bool cluster_capable = false;
  bool block_capable = m > 0;
  for (int e = 0; e < m; ++e) {
    const bool handles = HasHandles(analyses_[e]);
    if (!star_[e] && handles) cluster_capable = true;
    if (!handles) block_capable = false;
  }
  enabled_ = cluster_capable || block_capable;
}

ZoneSkipper::ColumnAgg ZoneSkipper::Aggregate(int col, int first_block,
                                              int last_block) const {
  ColumnAgg agg;
  bool suppressed = false;
  for (int b = first_block; b <= last_block; ++b) {
    const BlockSketch& s = footer_.columns[col][b].sketch;
    agg.nulls += s.null_count;
    if (s.null_count >= footer_.blocks[b].row_count) continue;  // all-NULL
    agg.has_values = true;
    if (s.min.is_null()) {
      // Values exist but the writer published no bounds (NaN cells):
      // the column is unbounded over this range.
      suppressed = true;
      continue;
    }
    if (agg.min.is_null()) {
      agg.min = s.min;
      agg.max = s.max;
    } else {
      auto lo = s.min.Compare(agg.min);
      auto hi = s.max.Compare(agg.max);
      if (!lo.ok() || !hi.ok()) {
        suppressed = true;  // heterogenous sketches: give up on bounds
        continue;
      }
      if (lo.value() < 0) agg.min = s.min;
      if (hi.value() > 0) agg.max = s.max;
    }
  }
  agg.bounded = agg.has_values && !suppressed && !agg.min.is_null();
  return agg;
}

bool ZoneSkipper::RefuteElement(int e, int first_block,
                                int last_block) const {
  const PredicateAnalysis& a = analyses_[e];
  if (a.system.trivially_false()) return true;

  std::map<int, ColumnAgg> aggs;
  auto agg_of = [&](int col) -> const ColumnAgg& {
    auto it = aggs.find(col);
    if (it == aggs.end()) {
      it = aggs.emplace(col, Aggregate(col, first_block, last_block)).first;
    }
    return it->second;
  };

  // All-NULL refutation: a base atom (numeric or string) evaluating
  // TRUE forces its cell non-NULL, and the probe geometry keeps the
  // read inside the covered range — impossible when the column holds
  // no values there.
  for (VarId v : base_vars_[e]) {
    const VarInfo& vi = vars_[v];
    if (vi.column >= 0 && !agg_of(vi.column).has_values) return true;
  }
  for (const StringAtom& atom : a.system.strings()) {
    const VarInfo& vi = vars_[atom.x];
    if (vi.column >= 0 && !agg_of(vi.column).has_values) return true;
  }

  // String equality: refute when the aggregate lexical range — or every
  // covering block individually (bounds or bloom) — excludes the text.
  for (const StringAtom& atom : a.system.strings()) {
    if (!atom.equal) continue;
    const VarInfo& vi = vars_[atom.x];
    if (vi.column < 0 ||
        footer_.schema.column(vi.column).type != TypeKind::kString) {
      continue;
    }
    const ColumnAgg& agg = agg_of(vi.column);
    if (agg.bounded && (atom.text < agg.min.string_value() ||
                        atom.text > agg.max.string_value())) {
      return true;
    }
    const uint64_t hash = BloomHashBytes(atom.text);
    bool all_exclude = true;
    for (int b = first_block; b <= last_block && all_exclude; ++b) {
      const BlockSketch& s = footer_.columns[vi.column][b].sketch;
      if (s.null_count >= footer_.blocks[b].row_count) continue;
      if (!s.bloom.empty() && !BloomMayContain(s.bloom, hash)) continue;
      if (!s.min.is_null() && (atom.text < s.min.string_value() ||
                               atom.text > s.max.string_value())) {
        continue;
      }
      all_exclude = false;
    }
    if (all_exclude) return true;
  }

  // Int64/date point equality through the per-block blooms (the zone
  // ranges alone go through the solver below).
  for (const LinearAtom& atom : a.system.linear()) {
    if (atom.y != kNoVar || atom.op != CmpOp::kEq) continue;
    const VarInfo& vi = vars_[atom.x];
    if (vi.column < 0) continue;
    const TypeKind type = footer_.schema.column(vi.column).type;
    if (type != TypeKind::kInt64 && type != TypeKind::kDate) continue;
    int64_t key;
    if (!ExactInt64(atom.c, &key)) continue;
    const uint64_t hash = BloomHashInt64(key);
    bool all_exclude = true;
    for (int b = first_block; b <= last_block && all_exclude; ++b) {
      const BlockSketch& s = footer_.columns[vi.column][b].sketch;
      if (s.null_count >= footer_.blocks[b].row_count) continue;
      if (!s.bloom.empty() && !BloomMayContain(s.bloom, hash)) continue;
      all_exclude = false;
    }
    if (all_exclude) return true;
  }

  // Zone premise for the implication oracle: lo/hi atoms per eligible
  // variable, plus an interval view when the element has one.
  PredicateAnalysis premise;
  premise.complete = false;
  for (VarId v = 0; v < static_cast<VarId>(vars_.size()); ++v) {
    const VarInfo& vi = vars_[v];
    if (vi.column < 0) continue;
    const bool in_base = Contains(base_vars_[e], v);
    const ColumnAgg& agg = agg_of(vi.column);
    const bool anchored_nonnull =
        vi.offset == 0 && agg.nulls == 0 && agg.has_values;
    if (!in_base && !anchored_nonnull) continue;
    if (!agg.bounded) continue;
    double lo, hi;
    switch (footer_.schema.column(vi.column).type) {
      case TypeKind::kInt64:
        lo = WidenDown(agg.min.int64_value());
        hi = WidenUp(agg.max.int64_value());
        break;
      case TypeKind::kDouble:
        lo = agg.min.double_value();
        hi = agg.max.double_value();
        break;
      case TypeKind::kDate:
        lo = agg.min.AsDouble();  // day numbers: exact in double
        hi = agg.max.AsDouble();
        break;
      default:
        continue;
    }
    premise.system.AddXopC(v, CmpOp::kGe, lo);
    premise.system.AddXopC(v, CmpOp::kLe, hi);
    if (a.has_interval && a.interval_var == v && !premise.has_interval) {
      premise.has_interval = true;
      premise.interval_var = v;
      premise.interval = IntervalSet(
          Interval::Make(Endpoint::Closed(lo), Endpoint::Closed(hi)));
    }
  }
  if (premise.system.empty() && !premise.has_interval) return false;
  return oracle_.Exclusive(premise, a);
}

ZoneDecision ZoneSkipper::DecideCluster(int ci) const {
  const ClusterMeta& cm = footer_.clusters[ci];
  ZoneDecision d;
  d.skip_block.assign(cm.num_blocks, false);
  if (!enabled_ || cm.num_blocks == 0) return d;
  const int first = cm.first_block;
  const int last = cm.first_block + cm.num_blocks - 1;

  // Cluster level: one refuted non-star element kills every match.
  const int m = static_cast<int>(analyses_.size());
  for (int e = 0; e < m; ++e) {
    if (!star_[e] && RefuteElement(e, first, last)) {
      d.skip_cluster = true;
      return d;
    }
  }

  // Block level needs every element refutable in principle.
  for (int e = 0; e < m; ++e) {
    if (!HasHandles(analyses_[e])) return d;
  }
  const int64_t margin = 2 * static_cast<int64_t>(reach_);
  for (int b = 0; b < cm.num_blocks; ++b) {
    const int g = first + b;
    const int64_t lo = footer_.blocks[g].start_row - margin;
    const int64_t hi =
        footer_.blocks[g].start_row + footer_.blocks[g].row_count - 1 + margin;
    int fb = g;
    while (fb > first &&
           footer_.blocks[fb - 1].start_row + footer_.blocks[fb - 1].row_count -
                   1 >=
               lo) {
      --fb;
    }
    int lb = g;
    while (lb < last && footer_.blocks[lb + 1].start_row <= hi) ++lb;
    bool all = true;
    for (int e = 0; e < m && all; ++e) all = RefuteElement(e, fb, lb);
    d.skip_block[b] = all;
  }
  return d;
}

std::string ZoneSkipper::ToString() const {
  std::string out = "zone skipping: ";
  if (!enabled_) return out + "disabled (no refutation handles)";
  out += "enabled, reach=" + std::to_string(reach_) + ", handles=[";
  for (size_t e = 0; e < analyses_.size(); ++e) {
    if (e) out += " ";
    out += HasHandles(analyses_[e]) ? "y" : "-";
  }
  out += "]";
  return out;
}

}  // namespace sqlts
