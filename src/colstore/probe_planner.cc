#include "colstore/probe_planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "expr/normalize.h"

namespace sqlts {
namespace {

/// Opaque conjuncts (multi-variable arithmetic, residue, aggregates)
/// get the textbook one-third default.
constexpr double kDefaultSelectivity = 1.0 / 3.0;

/// Sketch-bounds → double range; false when the column type has no
/// numeric zone view.
bool SketchRange(const BlockSketch& s, TypeKind type, double* lo,
                 double* hi) {
  if (s.min.is_null()) return false;
  switch (type) {
    case TypeKind::kInt64:
      *lo = static_cast<double>(s.min.int64_value());
      *hi = static_cast<double>(s.max.int64_value());
      return true;
    case TypeKind::kDouble:
      *lo = s.min.double_value();
      *hi = s.max.double_value();
      return true;
    case TypeKind::kDate:
      *lo = s.min.AsDouble();
      *hi = s.max.AsDouble();
      return true;
    default:
      return false;
  }
}

/// Fraction of [lo, hi] covered by `set`, assuming a uniform value
/// distribution inside the block's zone range.
double OverlapFraction(const IntervalSet& set, double lo, double hi) {
  if (hi <= lo) return set.Contains(lo) ? 1.0 : 0.0;
  double covered = 0;
  for (const Interval& part : set.parts()) {
    const double plo = part.lo.infinite
                           ? lo
                           : std::max(lo, part.lo.value);
    const double phi = part.hi.infinite
                           ? hi
                           : std::min(hi, part.hi.value);
    if (phi > plo) covered += phi - plo;
    // Degenerate point parts still admit a sliver; ignore their mass.
  }
  return std::clamp(covered / (hi - lo), 0.0, 1.0);
}

/// The schema column a single-variable analysis talks about, parsed
/// back from the catalog's "column@offset" naming; -1 when unusable.
int VarColumn(const VariableCatalog& catalog, VarId v,
              const Schema& schema) {
  if (v == kNoVar || v >= catalog.size()) return -1;
  const std::string& name = catalog.Name(v);
  const size_t at = name.rfind('@');
  if (at == std::string::npos) return -1;
  auto col = schema.FindColumn(name.substr(0, at));
  return col.ok() ? col.value() : -1;
}

/// Estimates the fraction of stored tuples one conjunct accepts, from
/// the per-block sketches (a stride-sampled pass when the file is
/// large).
double EstimateConjunct(const ExprPtr& conjunct, const ColumnarFooter& footer) {
  VariableCatalog catalog;
  PredicateAnalysis a = AnalyzePredicate(conjunct, footer.schema, &catalog);
  const size_t nblocks = footer.blocks.size();
  if (nblocks == 0) return kDefaultSelectivity;
  const size_t stride = std::max<size_t>(1, nblocks / 256);

  if (a.has_interval) {
    const int col = VarColumn(catalog, a.interval_var, footer.schema);
    if (col < 0) return kDefaultSelectivity;
    const TypeKind type = footer.schema.column(col).type;
    double weighted = 0, rows = 0;
    for (size_t b = 0; b < nblocks; b += stride) {
      const BlockSketch& s = footer.columns[col][b].sketch;
      const double r = footer.blocks[b].row_count;
      rows += r;
      const double values = r - static_cast<double>(s.null_count);
      if (values <= 0) continue;
      double lo, hi;
      if (!SketchRange(s, type, &lo, &hi)) {
        weighted += values * kDefaultSelectivity;
        continue;
      }
      weighted += values * OverlapFraction(a.interval, lo, hi);
    }
    return rows > 0 ? std::clamp(weighted / rows, 0.0, 1.0)
                    : kDefaultSelectivity;
  }

  // Lone string-equality conjunct: admitting-row fraction via blooms
  // and lexical zones.
  if (a.complete && a.system.strings().size() == 1 &&
      a.system.linear().empty() && a.system.ratio().empty() &&
      a.or_groups.empty() && a.system.strings()[0].equal) {
    const StringAtom& atom = a.system.strings()[0];
    const int col = VarColumn(catalog, atom.x, footer.schema);
    if (col < 0 || footer.schema.column(col).type != TypeKind::kString) {
      return kDefaultSelectivity;
    }
    const uint64_t hash = BloomHashBytes(atom.text);
    double admitted = 0, rows = 0;
    for (size_t b = 0; b < nblocks; b += stride) {
      const BlockSketch& s = footer.columns[col][b].sketch;
      const double r = footer.blocks[b].row_count;
      rows += r;
      if (s.null_count >= footer.blocks[b].row_count) continue;
      if (!s.bloom.empty() && !BloomMayContain(s.bloom, hash)) continue;
      if (!s.min.is_null() && (atom.text < s.min.string_value() ||
                               atom.text > s.max.string_value())) {
        continue;
      }
      // The block may hold the key; assume a tenth of its rows do.
      admitted += r * 0.1;
    }
    return rows > 0 ? std::clamp(admitted / rows, 0.0, 1.0)
                    : kDefaultSelectivity;
  }

  return kDefaultSelectivity;
}

}  // namespace

ProbePlan ProbePlanner::Plan(const CompiledQuery& query,
                             const ColumnarFooter& footer) {
  ProbePlan plan;
  plan.query = query;
  const int m = plan.query.pattern_length();
  plan.element_selectivity.assign(m, 1.0);

  for (int e = 0; e < m; ++e) {
    PatternElement& elem = plan.query.elements[e];
    const size_t k = elem.conjuncts.size();
    std::vector<double> sel(k);
    for (size_t c = 0; c < k; ++c) {
      sel[c] = EstimateConjunct(elem.conjuncts[c], footer);
    }
    double product = 1.0;
    for (double s : sel) product *= s;
    plan.element_selectivity[e] = product;
    if (k < 2) continue;
    // Cheapest-reject-first: evaluate the most selective conjunct
    // before the rest (AND short-circuits on FALSE in both the
    // interpreter and the kernel tier).
    std::vector<size_t> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t x, size_t y) { return sel[x] < sel[y]; });
    bool changed = false;
    for (size_t c = 0; c < k; ++c) changed |= order[c] != c;
    if (!changed) continue;
    std::vector<ExprPtr> sorted;
    sorted.reserve(k);
    for (size_t c : order) sorted.push_back(elem.conjuncts[c]);
    ExprPtr pred = sorted[0];
    for (size_t c = 1; c < k; ++c) pred = MakeAnd(pred, sorted[c]);
    elem.conjuncts = std::move(sorted);
    elem.predicate = std::move(pred);
    plan.reordered_elements.push_back(e);
  }

  // Anchor: the most selective kernel-compilable element reachable at a
  // fixed offset from the match start (every earlier element non-star).
  double best = 2.0;
  for (int e = 0; e < m; ++e) {
    const PatternElement& elem = plan.query.elements[e];
    if (elem.predicate != nullptr) {
      auto kernel =
          PredicateKernel::Compile(elem.predicate, footer.schema);
      if (kernel != nullptr && plan.element_selectivity[e] < best) {
        best = plan.element_selectivity[e];
        plan.anchor_element = e;
        plan.anchor_kernel = std::move(kernel);
      }
    }
    // A star element consumes a variable number of tuples: everything
    // after it sits at an unknown offset from the start.
    if (elem.star) break;
  }
  return plan;
}

std::string ProbePlan::ToString() const {
  std::ostringstream os;
  os << "probe planner:\n";
  os << "  element selectivity estimates:";
  for (double s : element_selectivity) os << " " << s;
  os << "\n  anchor element: ";
  if (anchor_element >= 0) {
    os << anchor_element << " (0-based; est. selectivity "
       << element_selectivity[anchor_element]
       << "; vectorized start prefilter)";
  } else {
    os << "none (no kernel-compilable prefix element)";
  }
  os << "\n  conjuncts reordered in elements:";
  if (reordered_elements.empty()) {
    os << " none";
  } else {
    for (int e : reordered_elements) os << " " << e;
  }
  os << "\n";
  return os.str();
}

}  // namespace sqlts
