#ifndef SQLTS_COLSTORE_WRITER_H_
#define SQLTS_COLSTORE_WRITER_H_

#include <string>
#include <vector>

#include "colstore/format.h"
#include "common/statusor.h"
#include "storage/table.h"

namespace sqlts {

/// Options for converting a table to the columnar container.
struct ColumnarWriterOptions {
  /// When set, rows are physically reordered cluster-major (clusters in
  /// first-appearance order) and sorted within each cluster by
  /// `sequence_by` — the exact order ClusteredSequence::Build produces —
  /// and the cluster directory maps each CLUSTER BY group to its block
  /// range (blocks never span clusters).  Queries whose CLUSTER BY /
  /// SEQUENCE BY match take the zone-map skipping fast path.
  std::vector<std::string> cluster_by;
  std::vector<std::string> sequence_by;
  /// Per-block bloom filters for equality-heavy columns (string, int64
  /// and date columns; kColBloomBytes per block per column).
  bool bloom = true;
};

/// Serializes tables into `.sqlc` columnar containers (format.h).
class ColumnarWriter {
 public:
  /// Encodes `table` to container bytes.
  static StatusOr<std::string> WriteBytes(
      const Table& table, const ColumnarWriterOptions& options = {});

  /// Encodes `table` and writes it to `path` atomically enough for our
  /// purposes (single write + flush; IoError on failure).
  static Status WriteFile(const Table& table, const std::string& path,
                          const ColumnarWriterOptions& options = {});
};

}  // namespace sqlts

#endif  // SQLTS_COLSTORE_WRITER_H_
