#include "colstore/columnar_executor.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <memory>
#include <numeric>
#include <thread>

#include "analysis/linter.h"
#include "colstore/probe_planner.h"
#include "colstore/zone_skip.h"
#include "engine/explain.h"
#include "engine/vectorized_eval.h"

namespace sqlts {
namespace {

bool SameName(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool NamesMatch(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameName(a[i], b[i])) return false;
  }
  return true;
}

/// Candidate-start bitmap from the anchor element's kernel verdicts:
/// bit s set iff the anchor predicate is TRUE at s + anchor_element.
std::vector<uint64_t> BuildCandidates(const ProbePlan& pplan,
                                      const SequenceView& seq,
                                      KernelScratch* scratch) {
  const int64_t n = seq.size();
  TriMask mask;
  pplan.anchor_kernel->Eval(seq, 0, n, scratch, &mask);
  std::vector<uint64_t> words(static_cast<size_t>((n + 63) / 64), 0);
  const int d = pplan.anchor_element;
  for (int64_t s = 0; s + d < n; ++s) {
    if (mask.True(s + d)) {
      words[static_cast<size_t>(s >> 6)] |= uint64_t{1} << (s & 63);
    }
  }
  return words;
}

/// Hoisted cluster filters, decided from the stored cluster key alone:
/// the filters reference only CLUSTER BY columns (constant over the
/// cluster), so evaluating them on a synthetic one-row table — key
/// values in the cluster columns, NULL elsewhere — yields exactly the
/// verdict ClusterAccepted computes on the cluster's first tuple
/// (out-of-range navigation reads NULL in both).
StatusOr<bool> ClusterKeyAccepted(const CompiledQuery& query,
                                  const Schema& schema,
                                  const std::vector<int>& cluster_cols,
                                  const Row& key) {
  if (query.cluster_filters.empty()) return true;
  Table key_table(schema);
  Row row(schema.num_columns());
  for (size_t k = 0; k < cluster_cols.size() && k < key.size(); ++k) {
    row[cluster_cols[k]] = key[k];
  }
  SQLTS_RETURN_IF_ERROR(key_table.AppendRow(std::move(row)));
  SequenceView view(&key_table, std::vector<int64_t>{0});
  return ClusterAccepted(query, view);
}

struct FastPathState {
  ColumnarReader* reader;
  const ColumnarFooter* footer;
  const ColumnarExecOptions* options;
  const ProbePlan* pplan;
  const PatternPlan* plan;
  const ZoneSkipper* skipper;        // null when skipping disabled
  const VectorizedPlanEval* vec;     // null when vectorization is off
  std::vector<int> cluster_cols;
};

/// Matches one cluster: filter by key, skip refuted clusters/blocks,
/// decode kept segments, search each independently.  `remaining`, when
/// non-null, carries the LIMIT budget (sequential execution only).
Status RunCluster(const FastPathState& st, int ci, std::vector<Row>* rows,
                  SearchStats* stats, KernelScratch* scratch,
                  int64_t* remaining) {
  const ClusterMeta& cm = st.footer->clusters[ci];
  const CompiledQuery& query = st.pplan->query;
  SQLTS_ASSIGN_OR_RETURN(
      bool accepted,
      ClusterKeyAccepted(query, st.footer->schema, st.cluster_cols, cm.key));
  if (!accepted) {
    stats->blocks_skipped += cm.num_blocks;
    return Status::OK();
  }
  ZoneDecision dec;
  if (st.skipper != nullptr && st.skipper->enabled()) {
    dec = st.skipper->DecideCluster(ci);
  } else {
    dec.skip_block.assign(cm.num_blocks, false);
  }
  if (dec.skip_cluster) {
    stats->blocks_skipped += cm.num_blocks;
    return Status::OK();
  }

  for (int b = 0; b < cm.num_blocks;) {
    if (dec.skip_block[b]) {
      ++stats->blocks_skipped;
      ++b;
      continue;
    }
    if (remaining != nullptr && *remaining <= 0) return Status::OK();
    int eb = b;
    while (eb + 1 < cm.num_blocks && !dec.skip_block[eb + 1]) ++eb;
    SQLTS_ASSIGN_OR_RETURN(
        Table segment,
        st.reader->ReadBlockRange(cm.first_block + b, eb - b + 1));
    std::vector<int64_t> idx(segment.num_rows());
    std::iota(idx.begin(), idx.end(), 0);
    SequenceView seq(&segment, std::move(idx));

    SearchOptions sopts;
    sopts.governance = &st.options->exec.governance;
    // Verdict caches are per absolute position, so each decoded
    // segment (its own SequenceView) gets a fresh evaluator.
    std::unique_ptr<ElementEvaluator> vec_eval;
    if (st.vec != nullptr) {
      vec_eval = st.vec->MakeEvaluator();
      sopts.evaluator = vec_eval.get();
    }
    std::vector<uint64_t> candidates;
    if (st.pplan->anchor_kernel != nullptr) {
      candidates = BuildCandidates(*st.pplan, seq, scratch);
      sopts.candidate_starts = &candidates;
    }
    if (remaining != nullptr) sopts.max_matches = *remaining;

    SearchStats sstats;
    std::vector<Match> matches =
        st.options->exec.algorithm == SearchAlgorithm::kOps
            ? OpsSearch(seq, *st.plan, &sstats, nullptr, sopts)
            : NaiveSearch(seq, *st.plan, &sstats, nullptr, sopts);
    *stats += sstats;
    if (remaining != nullptr) {
      *remaining -= static_cast<int64_t>(matches.size());
    }
    for (const Match& match : matches) {
      rows->push_back(ProjectMatch(query, seq, match));
    }
    b = eb + 1;
  }
  return Status::OK();
}

}  // namespace

StatusOr<QueryResult> ColumnarExecutor::ExecuteFile(
    const std::string& path, std::string_view query_text,
    const ColumnarExecOptions& options, std::string* explain_out) {
  SQLTS_ASSIGN_OR_RETURN(std::unique_ptr<ColumnarReader> reader,
                         ColumnarReader::Open(path));
  return Execute(*reader, query_text, options, explain_out);
}

StatusOr<QueryResult> ColumnarExecutor::Execute(
    ColumnarReader& reader, std::string_view query_text,
    const ColumnarExecOptions& options, std::string* explain_out) {
  const ColumnarFooter& footer = reader.footer();
  SQLTS_ASSIGN_OR_RETURN(CompiledQuery query,
                         CompileQueryText(query_text, footer.schema));
  if (options.exec.compile.refuse_provably_empty) {
    LintOptions lint_options;
    lint_options.oracle = options.exec.compile.oracle;
    LintResult lint = LintQuery(query, lint_options);
    if (lint.has_errors()) {
      return Status::InvalidArgument("query is provably empty: " +
                                     SummarizeErrors(lint));
    }
  }

  const int64_t bytes_before = reader.bytes_read();
  const bool fast = footer.clustered &&
                    NamesMatch(query.cluster_by, footer.cluster_by) &&
                    NamesMatch(query.sequence_by, footer.sequence_by) &&
                    !options.exec.collect_trace;
  if (!fast) {
    SQLTS_ASSIGN_OR_RETURN(Table table, reader.ReadTable());
    SQLTS_ASSIGN_OR_RETURN(
        QueryResult result,
        QueryExecutor::ExecuteCompiled(table, query, options.exec));
    result.stats.blocks_total += static_cast<int64_t>(footer.blocks.size());
    result.stats.bytes_read += reader.bytes_read() - bytes_before;
    if (explain_out != nullptr) {
      *explain_out =
          ExplainQuery(query, result.plan, query_text) +
          "columnar storage: full-decode path (layout mismatch or trace "
          "requested); no block skipping\n";
    }
    return result;
  }

  ProbePlan pplan;
  if (options.planner) {
    pplan = ProbePlanner::Plan(query, footer);
  } else {
    pplan.query = std::move(query);
    pplan.element_selectivity.assign(pplan.query.pattern_length(), 1.0);
  }
  SQLTS_ASSIGN_OR_RETURN(PatternPlan plan,
                         CompilePattern(pplan.query, options.exec.compile));
  std::unique_ptr<ZoneSkipper> skipper;
  if (options.skipping) {
    skipper = std::make_unique<ZoneSkipper>(pplan.query, footer,
                                            options.exec.compile.oracle);
  }
  // Vectorized predicate tier, mirroring the batch executor: kernels
  // compile once per query; each segment's matcher then answers
  // element tests from block verdicts.
  std::unique_ptr<VectorizedPlanEval> vec;
  if (options.exec.vectorize && options.exec.shared_eval == nullptr) {
    vec = VectorizedPlanEval::Create(plan, footer.schema);
  }
  SQLTS_RETURN_IF_ERROR(options.exec.governance.Check());

  const int num_clusters = static_cast<int>(footer.clusters.size());
  QueryResult result{Table(pplan.query.output_schema), SearchStats{},
                     SearchTrace{},  plan,  num_clusters, 0, {}};
  result.stats.blocks_total = static_cast<int64_t>(footer.blocks.size());
  if (explain_out != nullptr) {
    *explain_out = ExplainQuery(pplan.query, plan, query_text) +
                   pplan.ToString() +
                   (skipper != nullptr ? skipper->ToString()
                                       : "zone skipping: off") +
                   "\n";
  }
  if (pplan.query.limit_zero) return result;

  FastPathState st{&reader,       &footer,   &options, &pplan,
                   &plan,         skipper.get(), vec.get(), {}};
  for (const std::string& name : footer.cluster_by) {
    SQLTS_ASSIGN_OR_RETURN(int col, footer.schema.FindColumn(name));
    st.cluster_cols.push_back(col);
  }

  const bool sharded = options.exec.num_threads > 1 && num_clusters > 1 &&
                       pplan.query.limit <= 0;
  if (!sharded) {
    KernelScratch scratch;
    int64_t remaining = pplan.query.limit;
    int64_t* budget = pplan.query.limit > 0 ? &remaining : nullptr;
    for (int ci = 0; ci < num_clusters; ++ci) {
      if (budget != nullptr && *budget <= 0) break;
      std::vector<Row> rows;
      SQLTS_RETURN_IF_ERROR(
          RunCluster(st, ci, &rows, &result.stats, &scratch, budget));
      for (Row& row : rows) {
        SQLTS_RETURN_IF_ERROR(result.output.AppendRow(std::move(row)));
      }
      SQLTS_RETURN_IF_ERROR(options.exec.governance.Check());
    }
    result.stats.bytes_read += reader.bytes_read() - bytes_before;
    return result;
  }

  // Parallel path: workers claim whole clusters; outputs are indexed by
  // cluster and merged in footer (first-appearance) order, so rows and
  // summed stats are deterministic regardless of scheduling.
  const int num_workers =
      std::min(options.exec.num_threads, num_clusters);
  std::vector<std::vector<Row>> cluster_rows(num_clusters);
  std::vector<SearchStats> cluster_stats(num_clusters);
  std::vector<Status> worker_status(num_workers, Status::OK());
  std::atomic<int> next{0};
  {
    std::vector<std::thread> workers;
    workers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
      workers.emplace_back([&, w] {
        KernelScratch scratch;
        int ci;
        while ((ci = next.fetch_add(1)) < num_clusters) {
          if (!options.exec.governance.Check().ok()) return;
          Status s = RunCluster(st, ci, &cluster_rows[ci],
                                &cluster_stats[ci], &scratch, nullptr);
          if (!s.ok()) {
            worker_status[w] = std::move(s);
            return;
          }
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  for (const Status& s : worker_status) SQLTS_RETURN_IF_ERROR(s);
  SQLTS_RETURN_IF_ERROR(options.exec.governance.Check());
  for (int ci = 0; ci < num_clusters; ++ci) {
    result.stats += cluster_stats[ci];
    for (Row& row : cluster_rows[ci]) {
      SQLTS_RETURN_IF_ERROR(result.output.AppendRow(std::move(row)));
    }
  }
  result.stats.bytes_read += reader.bytes_read() - bytes_before;
  return result;
}

}  // namespace sqlts
