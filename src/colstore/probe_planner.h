#ifndef SQLTS_COLSTORE_PROBE_PLANNER_H_
#define SQLTS_COLSTORE_PROBE_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "colstore/format.h"
#include "expr/kernel.h"
#include "parser/analyzer.h"

namespace sqlts {

/// Output of the selectivity-driven probe planner.
struct ProbePlan {
  /// The input query with each element's conjuncts stably reordered by
  /// ascending estimated selectivity (AND is commutative in Kleene
  /// 3VL, so rows are unchanged; θ/φ and evaluation counts may shift).
  CompiledQuery query;
  /// Elements whose conjunct order actually changed (0-based).
  std::vector<int> reordered_elements;
  /// Estimated fraction of tuples satisfying each element's predicate.
  std::vector<double> element_selectivity;
  /// Anchor element for the first probe (0-based), or -1: all elements
  /// before it are non-star, so a match starting at s instantiates it
  /// exactly at s + anchor_element — its vectorized verdicts prefilter
  /// the matcher's candidate start positions.  Chosen as the most
  /// selective kernel-compilable prefix element (the classic engine
  /// always probes element 0 first).
  int anchor_element = -1;
  /// Kernel for the anchor element's predicate (immutable, shareable
  /// across threads); null when anchor_element < 0.
  std::shared_ptr<const PredicateKernel> anchor_kernel;

  /// EXPLAIN section.
  std::string ToString() const;
};

/// Estimates conjunct selectivities from the file's block sketches
/// (zone-range overlap for interval-shaped conjuncts, bloom/zone
/// admission for string equality, a fixed default for opaque shapes),
/// reorders conjuncts cheapest-reject-first within each element, and
/// picks the anchor element for the first probe.
class ProbePlanner {
 public:
  static ProbePlan Plan(const CompiledQuery& query,
                        const ColumnarFooter& footer);
};

}  // namespace sqlts

#endif  // SQLTS_COLSTORE_PROBE_PLANNER_H_
