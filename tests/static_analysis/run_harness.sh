#!/bin/sh
# Driver for the thread-safety negative-compile harness (registered as
# ctest test `static_analysis_test`).  Configures the sibling CMake
# project with a Clang compiler, which runs the whole try_compile
# assertion loop at configure time.  Exits 77 — ctest's SKIP_RETURN_CODE
# — when no clang++ is on PATH (e.g. a GCC-only dev container); the CI
# lint job always installs one, so the gate cannot silently rot there.
set -u

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

clang=${SQLTS_CLANGXX:-}
if [ -z "$clang" ]; then
  for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                   clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      clang=$candidate
      break
    fi
  done
fi
if [ -z "$clang" ]; then
  echo "SKIP: no clang++ on PATH; thread-safety analysis needs Clang" \
       "(set SQLTS_CLANGXX to override)"
  exit 77
fi

bin_dir=${TMPDIR:-/tmp}/sqlts_static_analysis.$$
trap 'rm -rf "$bin_dir"' EXIT INT TERM

cmake -S "$src_dir" -B "$bin_dir" -DCMAKE_CXX_COMPILER="$clang"
