// expect: calling function 'FlushLocked' requires holding mutex 'mu_' exclusively
// Seeded violation (REQUIRES): calling a *Locked helper without the
// lock must fail the build — the repo's "caller must hold mu_"
// comments, enforced.
#include "common/thread_annotations.h"

class Buffer {
 public:
  void Flush() { FlushLocked(); }  // BAD: mu_ not held

 private:
  void FlushLocked() REQUIRES(mu_) { pending_ = 0; }

  sqlts::ts::Mutex mu_;
  int pending_ GUARDED_BY(mu_) = 0;
};

int main() {
  Buffer b;
  b.Flush();
  return 0;
}
