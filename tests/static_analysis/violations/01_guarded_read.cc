// expect: reading variable 'value_' requires holding mutex 'mu_'
// Seeded violation (GUARDED_BY): a lock-free read of a guarded member
// must fail the build.
#include "common/thread_annotations.h"

class Counter {
 public:
  void Add(long n) {
    sqlts::ts::MutexLock lock(mu_);
    value_ += n;
  }
  long Get() const { return value_; }  // BAD: no lock held

 private:
  mutable sqlts::ts::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Add(1);
  return static_cast<int>(c.Get());
}
