// expect: writing variable 'value_' requires holding mutex 'mu_' exclusively
// Seeded violation (GUARDED_BY): a lock-free write of a guarded member
// must fail the build.
#include "common/thread_annotations.h"

class Counter {
 public:
  void Reset() { value_ = 0; }  // BAD: no lock held

 private:
  sqlts::ts::Mutex mu_;
  long value_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Reset();
  return 0;
}
