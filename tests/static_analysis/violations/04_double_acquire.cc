// expect: acquiring mutex 'mu_' that is already
// Seeded violation (ACQUIRE via SCOPED_CAPABILITY): re-acquiring a held
// mutex (self-deadlock) must fail the build.
#include "common/thread_annotations.h"

class Widget {
 public:
  void Poke() {
    sqlts::ts::MutexLock outer(mu_);
    sqlts::ts::MutexLock inner(mu_);  // BAD: double acquire
    ++state_;
  }

 private:
  sqlts::ts::Mutex mu_;
  int state_ GUARDED_BY(mu_) = 0;
};

int main() {
  Widget w;
  w.Poke();
  return 0;
}
