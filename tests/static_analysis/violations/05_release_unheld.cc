// expect: releasing mutex 'mu_' that was not held
// Seeded violation (RELEASE): unlocking a mutex the caller does not
// hold must fail the build.
#include "common/thread_annotations.h"

class Widget {
 public:
  void Oops() {
    mu_.unlock();  // BAD: never locked
  }

 private:
  sqlts::ts::Mutex mu_;
};

int main() {
  Widget w;
  w.Oops();
  return 0;
}
